// pcmax command-line scheduler.
//
// Reads a P||Cmax instance (file or generated), schedules it with the
// selected engine, and prints the schedule plus solver statistics.
//
//   pcmax_cli --input jobs.txt
//   pcmax_cli --random 120 16 1 100 42 --engine gpu-dim6 --epsilon 0.2
//   pcmax_cli --random 20 4 1 50 7 --engine exact
//   pcmax_cli --random 50 8 1 99 1 --emit-instance > jobs.txt
//
// Engines: ptas (default; --dp selects the DP solver: bucket, scan,
// blocked-<dims>), eptas (sparsified rounding, same guarantee and --dp
// flags), gpu-dim<dims> (simulated K40, quarter split), resilient
// (GPU chain with CPU and LPT fallback; honors --deadline-ms,
// --mem-budget-bytes, --fault-plan — see docs/ROBUSTNESS.md), lpt, list,
// multifit, exact (unpruned DFS baseline), exact-bb (pruned branch and
// bound with LPT-seeded incumbent; honors --node-budget and --deadline-ms,
// degrading to the incumbent plus a proven lower bound on expiry).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "baselines/exact.hpp"
#include "baselines/heuristics.hpp"
#include "core/bounds.hpp"
#include "core/resilient.hpp"
#include "eptas/eptas.hpp"
#include "eptas/sparsify.hpp"
#include "exact/bb.hpp"
#include "faultsim/injector.hpp"
#include "gpu/gpu_ptas.hpp"
#include "gpu/resilient_gpu.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "partition/block_solver.hpp"
#include "workload/generators.hpp"
#include "workload/io.hpp"

namespace {

using namespace pcmax;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: pcmax_cli (--input FILE | --random N M LO HI SEED)\n"
      "                 [--engine ptas|eptas|gpu-dim<k>|resilient|lpt|list|\n"
      "                  multifit|exact|exact-bb]\n"
      "                 [--dp bucket|scan|blocked-<dims>] [--epsilon E]\n"
      "                 [--node-budget NODES]\n"
      "                 [--quarter-split] [--emit-instance]\n"
      "                 [--devices N] [--topology ring|fullmesh]\n"
      "                 [--placement round-robin|level-contiguous|\n"
      "                  memory-balanced]\n"
      "                 [--checkpoint-every L] [--min-devices N]\n"
      "                 [--deadline-ms MS] [--probe-deadline-ms MS]\n"
      "                 [--mem-budget-bytes BYTES] [--fault-plan PLAN]\n"
      "                 [--trace-out FILE] [--metrics-out FILE]\n"
      "\n"
      "--devices shards GPU-engine DP blocks over a simulated multi-device\n"
      "topology (default 1: single device); --topology picks the link graph\n"
      "and --placement the block-to-device strategy (docs/SHARDING.md).\n"
      "--checkpoint-every L checkpoints the sharded wavefront every L\n"
      "block-levels so a device lost mid-solve is recovered bit-identically\n"
      "(0 = off); --min-devices refuses recovery below N surviving devices\n"
      "and degrades instead (docs/ROBUSTNESS.md).\n"
      "\n"
      "Value flags also accept --flag=VALUE. --trace-out writes a Chrome\n"
      "trace (chrome://tracing, Perfetto); --metrics-out writes counters\n"
      "and histograms as JSON. Either flag enables recording and prints a\n"
      "text summary (see docs/OBSERVABILITY.md).\n"
      "\n"
      "--engine eptas runs the sparsified dual-approximation engine: same\n"
      "(1 + 1/k) guarantee as ptas, geometric class grid, smaller DP tables\n"
      "(docs/PERFORMANCE.md).\n"
      "\n"
      "--engine resilient runs the fallback chain (GPU PTAS, CPU PTAS, LPT)\n"
      "with retries, deadlines, and memory pre-flight; --fault-plan injects\n"
      "deterministic faults, e.g. 'seed=42;device-alloc:nth=3'\n"
      "(see docs/ROBUSTNESS.md).\n"
      "\n"
      "--engine exact-bb proves optimality by branch and bound within\n"
      "--node-budget search nodes (0 = unbounded) and --deadline-ms; on\n"
      "expiry it exits 0 with 'status deadline-exceeded', the LPT-seeded\n"
      "incumbent, and the proven lower bound (docs/TESTING.md).\n");
  std::exit(2);
}

struct Args {
  std::optional<std::string> input;
  std::optional<Instance> random;
  std::string engine = "ptas";
  std::string dp = "bucket";
  double epsilon = 0.3;
  int devices = 1;
  gpusim::TopologyKind topology = gpusim::TopologyKind::kFullMesh;
  placement::PlacementKind placement =
      placement::PlacementKind::kLevelContiguous;
  recover::RecoveryOptions recovery;
  bool quarter_split = false;
  bool emit_instance = false;
  std::uint64_t node_budget = 20'000'000;
  std::int64_t deadline_ms = 0;
  std::int64_t probe_deadline_ms = 0;
  std::uint64_t mem_budget_bytes = 0;
  std::optional<faultsim::FaultPlan> fault_plan;
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    // --flag=VALUE is equivalent to --flag VALUE.
    std::optional<std::string> inline_value;
    if (a.rfind("--", 0) == 0) {
      if (const auto eq = a.find('='); eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
      }
    }
    const auto next = [&](const char* what) -> std::string {
      if (inline_value.has_value()) return *inline_value;
      if (i + 1 >= argc) usage(what);
      return argv[++i];
    };
    if (a == "--input") {
      args.input = next("--input needs a path");
    } else if (a == "--random") {
      if (i + 5 >= argc) usage("--random needs N M LO HI SEED");
      const auto n = static_cast<std::size_t>(std::atoll(argv[++i]));
      const auto m = std::atoll(argv[++i]);
      const auto lo = std::atoll(argv[++i]);
      const auto hi = std::atoll(argv[++i]);
      const auto seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      args.random = workload::uniform_instance(n, m, lo, hi, seed);
    } else if (a == "--engine") {
      args.engine = next("--engine needs a name");
    } else if (a == "--dp") {
      args.dp = next("--dp needs a name");
    } else if (a == "--epsilon") {
      args.epsilon = std::atof(next("--epsilon needs a value").c_str());
    } else if (a == "--devices") {
      args.devices =
          static_cast<int>(std::atoll(next("--devices needs a count").c_str()));
      if (args.devices < 1) usage("--devices needs a count >= 1");
    } else if (a == "--topology") {
      const std::string name = next("--topology needs a name");
      const auto kind = gpusim::parse_topology_kind(name);
      if (!kind.has_value())
        usage(("unknown --topology: " + name +
               " (expected ring or fullmesh)").c_str());
      args.topology = *kind;
    } else if (a == "--placement") {
      const std::string name = next("--placement needs a name");
      const auto kind = placement::parse_placement_kind(name);
      if (!kind.has_value())
        usage(("unknown --placement: " + name +
               " (expected round-robin, level-contiguous, or "
               "memory-balanced)").c_str());
      args.placement = *kind;
    } else if (a == "--checkpoint-every") {
      args.recovery.checkpoint_every =
          std::atoll(next("--checkpoint-every needs a level count").c_str());
      if (args.recovery.checkpoint_every < 0)
        usage("--checkpoint-every needs a count >= 0 (0 = off)");
    } else if (a == "--min-devices") {
      args.recovery.min_devices = static_cast<int>(
          std::atoll(next("--min-devices needs a count").c_str()));
      if (args.recovery.min_devices < 1)
        usage("--min-devices needs a count >= 1");
    } else if (a == "--node-budget") {
      args.node_budget = static_cast<std::uint64_t>(
          std::atoll(next("--node-budget needs a value").c_str()));
    } else if (a == "--quarter-split") {
      args.quarter_split = true;
    } else if (a == "--emit-instance") {
      args.emit_instance = true;
    } else if (a == "--deadline-ms") {
      args.deadline_ms = std::atoll(next("--deadline-ms needs a value").c_str());
    } else if (a == "--probe-deadline-ms") {
      args.probe_deadline_ms =
          std::atoll(next("--probe-deadline-ms needs a value").c_str());
    } else if (a == "--mem-budget-bytes") {
      args.mem_budget_bytes = static_cast<std::uint64_t>(
          std::atoll(next("--mem-budget-bytes needs a value").c_str()));
    } else if (a == "--fault-plan") {
      std::string error;
      args.fault_plan =
          faultsim::parse_fault_plan(next("--fault-plan needs a plan"), &error);
      if (!args.fault_plan.has_value())
        usage(("bad --fault-plan: " + error).c_str());
    } else if (a == "--trace-out") {
      args.trace_out = next("--trace-out needs a path");
    } else if (a == "--metrics-out") {
      args.metrics_out = next("--metrics-out needs a path");
    } else {
      usage(("unknown flag: " + a).c_str());
    }
  }
  return args;
}

int run_ptas(const Instance& instance, const Args& args) {
  std::unique_ptr<dp::DpSolver> solver;
  if (args.dp == "bucket") {
    solver = std::make_unique<dp::LevelBucketSolver>();
  } else if (args.dp == "scan") {
    solver = std::make_unique<dp::LevelScanSolver>();
  } else if (args.dp.rfind("blocked-", 0) == 0) {
    solver = std::make_unique<partition::BlockedSolver>(
        static_cast<std::size_t>(std::atoll(args.dp.c_str() + 8)));
  } else {
    usage(("unknown --dp: " + args.dp).c_str());
  }

  PtasOptions options;
  options.epsilon = args.epsilon;
  options.strategy = args.quarter_split ? SearchStrategy::kQuarterSplit
                                        : SearchStrategy::kBisection;
  const auto result = solve_ptas(instance, *solver, options);
  workload::write_schedule(std::cout, instance, result.schedule);
  std::printf("engine ptas/%s epsilon %.3f target %lld rounds %zu "
              "dp-calls %zu\n",
              solver->name().c_str(), args.epsilon,
              static_cast<long long>(result.best_target),
              result.search_iterations, result.dp_calls.size());
  return 0;
}

int run_eptas(const Instance& instance, const Args& args) {
  std::unique_ptr<dp::DpSolver> solver;
  if (args.dp == "bucket") {
    solver = std::make_unique<dp::LevelBucketSolver>();
  } else if (args.dp == "scan") {
    solver = std::make_unique<dp::LevelScanSolver>();
  } else if (args.dp.rfind("blocked-", 0) == 0) {
    solver = std::make_unique<partition::BlockedSolver>(
        static_cast<std::size_t>(std::atoll(args.dp.c_str() + 8)));
  } else {
    usage(("unknown --dp: " + args.dp).c_str());
  }

  PtasOptions options;
  options.epsilon = args.epsilon;
  options.strategy = args.quarter_split ? SearchStrategy::kQuarterSplit
                                        : SearchStrategy::kBisection;
  const auto result = eptas::solve_eptas(instance, *solver, options);
  // The class ablation at the found target: how many arithmetic classes the
  // geometric snap merged away (the table-size lever — docs/PERFORMANCE.md).
  const auto sparse = eptas::sparsify_instance(
      instance, result.best_target, k_for_epsilon(args.epsilon));
  workload::write_schedule(std::cout, instance, result.schedule);
  std::printf("engine eptas/%s epsilon %.3f target %lld rounds %zu "
              "dp-calls %zu classes %zu/%zu\n",
              solver->name().c_str(), args.epsilon,
              static_cast<long long>(result.best_target),
              result.search_iterations, result.dp_calls.size(),
              sparse.nonzero_dims(), sparse.arithmetic_classes);
  return 0;
}

int run_gpu(const Instance& instance, const Args& args, std::size_t dims) {
  gpusim::Topology topology(args.devices, gpusim::DeviceSpec::k40(),
                            args.topology);
  gpu::GpuPtasOptions options;
  options.epsilon = args.epsilon;
  options.partition_dims = dims;
  options.placement = args.placement;
  options.recovery = args.recovery;
  const auto result = gpu::solve_gpu_ptas(instance, topology, options);
  std::uint64_t peak = 0;
  for (int d = 0; d < topology.device_count(); ++d)
    peak = std::max(peak, topology.device(d).peak_memory());
  workload::write_schedule(std::cout, instance, result.ptas.schedule);
  std::printf("engine gpu-dim%zu epsilon %.3f target %lld rounds %zu "
              "sim-time %s kernels %llu (+%llu children) peak-mem %.2f MB",
              dims, args.epsilon,
              static_cast<long long>(result.ptas.best_target),
              result.ptas.search_iterations,
              result.device_time.to_string().c_str(),
              static_cast<unsigned long long>(result.stats.kernels),
              static_cast<unsigned long long>(result.stats.child_kernels),
              static_cast<double>(peak) / (1 << 20));
  if (args.devices > 1) {
    const auto& xfer = topology.transfer_stats();
    std::printf(" devices %d topology %s placement %s transfers %llu "
                "(%.2f MB)",
                args.devices,
                std::string(gpusim::topology_kind_name(args.topology)).c_str(),
                std::string(placement::placement_kind_name(args.placement))
                    .c_str(),
                static_cast<unsigned long long>(xfer.transfers),
                static_cast<double>(xfer.bytes) / (1 << 20));
  }
  std::printf("\n");
  return 0;
}

int run_resilient(const Instance& instance, const Args& args) {
  gpusim::Topology topology(args.devices, gpusim::DeviceSpec::k40(),
                            args.topology);
  gpu::GpuPtasOptions base;
  base.placement = args.placement;
  base.recovery = args.recovery;
  const auto chain = gpu::make_gpu_chain(topology, base);
  ResilientOptions options;
  options.epsilon = args.epsilon;
  options.deadline_ms = args.deadline_ms;
  options.probe_deadline_ms = args.probe_deadline_ms;
  options.mem_budget_bytes = args.mem_budget_bytes;
  const auto result = solve_resilient(instance, chain, options);

  if (!result.schedule.assignment.empty())
    workload::write_schedule(std::cout, instance, result.schedule);
  std::printf("engine resilient status %s via %s k %lld bound %lld/%lld "
              "certificate %s%s\n",
              result.status.to_string().c_str(),
              result.engine.empty() ? "-" : result.engine.c_str(),
              static_cast<long long>(result.k),
              static_cast<long long>(result.bound_num),
              static_cast<long long>(result.bound_den),
              std::string(certificate_tier_name(result.certificate_tier))
                  .c_str(),
              result.degraded ? " degraded" : "");
  for (std::size_t i = 0; i < result.attempts.size(); ++i) {
    const auto& attempt = result.attempts[i];
    std::printf("attempt %zu: %s k %lld retry %d -> %s\n", i,
                attempt.engine.c_str(), static_cast<long long>(attempt.k),
                attempt.retry, attempt.status.to_string().c_str());
  }
  // A deadline result still carries a valid best-effort schedule; only a
  // solve with no schedule at all is a hard failure.
  return result.ok() ||
                 result.status.code() == StatusCode::kDeadlineExceeded
             ? 0
             : 1;
}

int run_engine(const Instance& instance, const Args& args) {
  if (args.engine == "ptas") return run_ptas(instance, args);
  if (args.engine == "eptas") return run_eptas(instance, args);
  if (args.engine == "resilient") return run_resilient(instance, args);
  if (args.engine.rfind("gpu-dim", 0) == 0)
    return run_gpu(instance, args,
                   static_cast<std::size_t>(
                       std::atoll(args.engine.c_str() + 7)));
  if (args.engine == "lpt" || args.engine == "list" ||
      args.engine == "multifit") {
    const Schedule s = args.engine == "lpt"
                           ? baselines::lpt(instance)
                           : args.engine == "list"
                                 ? baselines::list_scheduling(instance)
                                 : baselines::multifit(instance);
    workload::write_schedule(std::cout, instance, s);
    std::printf("engine %s\n", args.engine.c_str());
    return 0;
  }
  if (args.engine == "exact") {
    const auto r = baselines::solve_exact(instance);
    if (!r.has_value()) {
      std::fprintf(stderr, "exact solver exceeded its node budget\n");
      return 1;
    }
    workload::write_schedule(std::cout, instance, r->schedule);
    std::printf("engine exact nodes %llu\n",
                static_cast<unsigned long long>(r->nodes_visited));
    return 0;
  }
  if (args.engine == "exact-bb") {
    exact::BbOptions options;
    options.node_budget = args.node_budget;
    options.deadline_ms = args.deadline_ms;
    const auto r = exact::solve_bb(instance, options);
    workload::write_schedule(std::cout, instance, r.schedule);
    std::printf("engine exact-bb status %s makespan %lld lower-bound %lld "
                "nodes %llu prunes %llu%s\n",
                r.optimal() ? "ok" : "deadline-exceeded",
                static_cast<long long>(r.makespan),
                static_cast<long long>(r.lower_bound),
                static_cast<unsigned long long>(r.stats.nodes),
                static_cast<unsigned long long>(r.stats.bound_prunes),
                r.optimal() ? " proven-optimal" : "");
    // Budget expiry still yields a valid incumbent plus a certificate;
    // only an exception (classified by the caller) is a failure.
    return 0;
  }
  usage(("unknown --engine: " + args.engine).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  Instance instance;
  if (args.input.has_value()) {
    std::ifstream in(*args.input);
    if (!in) usage(("cannot open " + *args.input).c_str());
    instance = workload::read_instance(in);
  } else if (args.random.has_value()) {
    instance = *args.random;
  } else {
    usage("need --input or --random");
  }

  if (args.emit_instance) {
    workload::write_instance(std::cout, instance);
    return 0;
  }

  std::printf("# %zu jobs on %lld machines, LB %lld UB %lld\n",
              instance.jobs(), static_cast<long long>(instance.machines),
              static_cast<long long>(makespan_lower_bound(instance)),
              static_cast<long long>(makespan_upper_bound(instance)));

  // Fault injection stays on for the whole engine run (any engine, not just
  // resilient — a plain engine under faults shows the raw failure mode).
  std::optional<faultsim::ScopedFaultInjector> injector;
  if (args.fault_plan.has_value()) {
    injector.emplace(*args.fault_plan);
    std::printf("# fault plan: %s\n", args.fault_plan->to_string().c_str());
  }

  // A non-resilient engine under injected faults (or bad luck) may throw;
  // surface the classified status instead of std::terminate.
  const auto guarded_run = [&]() {
    try {
      return run_engine(instance, args);
    } catch (...) {
      std::fprintf(stderr, "error: %s\n",
                   classify_current_exception().to_string().c_str());
      return 1;
    }
  };

  // Either observability flag turns recording on for the engine run only,
  // so trace and metrics cover exactly one solve.
  if (!args.trace_out.has_value() && !args.metrics_out.has_value())
    return guarded_run();

  obs::ObsSession session;
  const int rc = guarded_run();
  if (args.trace_out.has_value()) {
    obs::write_file(*args.trace_out, obs::chrome_trace_json(session.trace()));
    std::printf("trace: %zu events -> %s\n", session.trace().size(),
                args.trace_out->c_str());
  }
  if (args.metrics_out.has_value()) {
    obs::write_file(*args.metrics_out, obs::metrics_json(session.metrics()));
    std::printf("metrics -> %s\n", args.metrics_out->c_str());
  }
  std::fputs(obs::text_summary(session.trace(), session.metrics()).c_str(),
             stdout);
  return rc;
}
