// pcmax differential fuzzer.
//
// Drives randomized cases through every DP engine and the PTAS schedulers
// under a wall-clock budget, checking the repository's central invariant:
// all engines agree bit-exactly with the reference oracle, and every PTAS
// result carries a valid (1 + 1/k) certificate against independent oracles.
// On failure the input is greedily shrunk to a minimal reproducer, a replay
// token is printed, and a repro file is written for CI artifact upload.
//
//   pcmax_fuzz --budget 60 --seed 1        # 60-second campaign
//   pcmax_fuzz --replay 1:4242            # re-run one failing case
//   pcmax_fuzz --budget 600 --seed $RANDOM --repro-dir out/
//
// Exit codes: 0 all cases green (and every engine exercised), 1 invariant
// violation (reproducer printed), 2 usage error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/ptas.hpp"
#include "core/resilient.hpp"
#include "core/rounding.hpp"
#include "eptas/eptas.hpp"
#include "exact/bb.hpp"
#include "faultsim/injector.hpp"
#include "gpu/gpu_ptas.hpp"
#include "gpu/resilient_gpu.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "partition/block_solver.hpp"
#include "partition/divisor.hpp"
#include "testkit/engines.hpp"
#include "testkit/generators.hpp"
#include "testkit/invariants.hpp"
#include "testkit/metamorphic.hpp"
#include "testkit/oracles.hpp"
#include "testkit/replay.hpp"
#include "testkit/shrink.hpp"
#include "workload/shapes.hpp"

namespace {

using namespace pcmax;
using Clock = std::chrono::steady_clock;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: pcmax_fuzz [--budget SECONDS] [--seed SEED]\n"
               "                  [--max-cases N] [--replay SEED:CASE]\n"
               "                  [--mode NAME] [--repro-dir DIR] [--verbose]\n"
               "\n"
               "--mode pins every case to one mode (e.g. exact, faults);\n"
               "the all-engines coverage gate is then skipped.\n");
  std::exit(2);
}

struct Args {
  double budget = 10.0;
  std::uint64_t seed = 1;
  std::uint64_t max_cases = 0;  // 0 = unlimited within the budget
  std::optional<testkit::CaseId> replay;
  /// Pin every case to one mode by name (resolved in main after the Mode
  /// table is known); empty = the usual round-robin + biased mix.
  std::string mode;
  std::string repro_dir = ".";
  bool verbose = false;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) usage(what);
      return argv[++i];
    };
    if (a == "--budget") {
      args.budget = std::atof(next("--budget needs seconds"));
      if (args.budget <= 0) usage("--budget must be positive");
    } else if (a == "--seed") {
      args.seed = static_cast<std::uint64_t>(
          std::strtoull(next("--seed needs a value"), nullptr, 10));
    } else if (a == "--max-cases") {
      args.max_cases = static_cast<std::uint64_t>(
          std::strtoull(next("--max-cases needs a value"), nullptr, 10));
    } else if (a == "--replay") {
      args.replay = testkit::parse_case(next("--replay needs SEED:CASE"));
      if (!args.replay.has_value()) usage("--replay wants the SEED:CASE form");
    } else if (a == "--mode") {
      args.mode = next("--mode needs a mode name");
    } else if (a == "--repro-dir") {
      args.repro_dir = next("--repro-dir needs a path");
    } else if (a == "--verbose") {
      args.verbose = true;
    } else {
      usage(("unknown flag: " + a).c_str());
    }
  }
  return args;
}

enum class Mode : int {
  kDpDifferential = 0,
  kPtasCertificate = 1,
  kLayoutBijection = 2,
  kSimulator = 3,
  kPtasCache = 4,
  kMetamorphic = 5,
  kFaults = 6,
  kExact = 7,
  kRecovery = 8,
  kEptas = 9,
};
constexpr int kModeCount = 10;

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kDpDifferential: return "dp-differential";
    case Mode::kPtasCertificate: return "ptas-certificate";
    case Mode::kLayoutBijection: return "layout-bijection";
    case Mode::kSimulator: return "simulator";
    case Mode::kPtasCache: return "ptas-cache";
    case Mode::kMetamorphic: return "metamorphic";
    case Mode::kFaults: return "faults";
    case Mode::kExact: return "exact";
    case Mode::kRecovery: return "recovery";
    case Mode::kEptas: return "eptas";
  }
  return "?";
}

std::optional<Mode> parse_mode(const std::string& name) {
  for (int i = 0; i < kModeCount; ++i)
    if (name == mode_name(static_cast<Mode>(i))) return static_cast<Mode>(i);
  return std::nullopt;
}

/// Random fault plan for the resilience mode: each site independently gets a
/// one-shot or probability rule, so plans range from benign to storms.
faultsim::FaultPlan random_fault_plan(util::Rng& rng) {
  faultsim::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(rng.uniform(0, 1'000'000));
  for (std::size_t s = 0; s < faultsim::kSiteCount; ++s) {
    if (rng.uniform01() > 0.45) continue;
    faultsim::FaultRule rule;
    rule.site = static_cast<faultsim::Site>(s);
    if (rng.uniform01() < 0.5)
      rule.nth = static_cast<std::uint64_t>(rng.uniform(1, 8));
    else
      rule.permille = static_cast<std::uint32_t>(rng.uniform(50, 700));
    if (rule.site == faultsim::Site::kStreamSync) {
      constexpr std::int64_t kStalls[] = {50, 2000, 5000};
      rule.stall_ms = kStalls[rng.uniform(0, 2)];
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

void append_list(std::string& s, const std::vector<std::int64_t>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) s += ',';
    s += std::to_string(values[i]);
  }
}

std::string describe(const dp::DpProblem& p) {
  std::string s = "counts=[";
  append_list(s, p.counts);
  s += "] weights=[";
  append_list(s, p.weights);
  s += "] capacity=";
  s += std::to_string(p.capacity);
  return s;
}

std::string describe(const Instance& inst) {
  std::string s = "machines=" + std::to_string(inst.machines) + " times=[";
  append_list(s, inst.times);
  s += "]";
  return s;
}

struct Coverage {
  std::uint64_t cases = 0;
  std::uint64_t skipped = 0;
  std::map<std::string, std::uint64_t> per_mode;
  /// Engine-pair comparisons (reference, X), counted per case.
  std::map<std::string, std::uint64_t> per_engine;
  /// PTAS engines whose certificate was checked.
  std::map<std::string, std::uint64_t> per_ptas_engine;
  /// Instance-level schedulers judged against a proven optimum (exact mode).
  std::map<std::string, std::uint64_t> per_scheduler;
};

struct Failure {
  testkit::CaseId id;
  Mode mode = Mode::kDpDifferential;
  std::string diagnosis;
  std::string reproducer;
  /// Canonical fault-plan text when the failing mode injected faults; the
  /// reporter writes it as a standalone replay artifact for --fault-plan.
  std::string fault_plan;
};

class Fuzzer {
 public:
  Fuzzer(const Args& args, std::optional<Mode> mode_filter)
      : args_(args), mode_filter_(mode_filter) {}

  /// Runs one case; returns nullopt when it passed (or was skipped).
  std::optional<Failure> run_case(const testkit::CaseId& id) {
    util::Rng rng(testkit::case_rng_seed(id));
    // The first cases round-robin the modes so even a tiny budget exercises
    // every engine and checker; afterwards the mix is random but biased
    // toward the differential core. A --mode filter pins every case.
    Mode mode;
    if (mode_filter_.has_value()) {
      mode = *mode_filter_;
    } else if (id.index < 3 * kModeCount) {
      mode = static_cast<Mode>(id.index % kModeCount);
    } else {
      const auto roll = rng.uniform(0, 17);
      mode = roll < 5    ? Mode::kDpDifferential
             : roll < 8  ? Mode::kPtasCertificate
             : roll < 9  ? Mode::kLayoutBijection
             : roll < 10 ? Mode::kSimulator
             : roll < 12 ? Mode::kPtasCache
             : roll < 13 ? Mode::kMetamorphic
             : roll < 14 ? Mode::kFaults
             : roll < 16 ? Mode::kExact
             : roll < 17 ? Mode::kRecovery
                         : Mode::kEptas;
    }
    coverage_.cases++;
    coverage_.per_mode[mode_name(mode)]++;
    switch (mode) {
      case Mode::kDpDifferential: return run_dp_differential(id, rng);
      case Mode::kPtasCertificate: return run_ptas_certificate(id, rng);
      case Mode::kLayoutBijection: return run_layout_bijection(id, rng);
      case Mode::kSimulator: return run_simulator(id, rng);
      case Mode::kPtasCache: return run_ptas_cache(id, rng);
      case Mode::kMetamorphic: return run_metamorphic(id, rng);
      case Mode::kFaults: return run_faults(id, rng);
      case Mode::kExact: return run_exact(id, rng);
      case Mode::kRecovery: return run_recovery(id, rng);
      case Mode::kEptas: return run_eptas(id, rng);
    }
    return std::nullopt;
  }

  [[nodiscard]] const Coverage& coverage() const noexcept { return coverage_; }
  [[nodiscard]] const testkit::EngineRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  /// Every engine against the reference, plus reference self-consistency.
  testkit::CheckResult check_problem_all_engines(const dp::DpProblem& problem,
                                                 bool count_coverage) {
    registry_.device().clear_log();
    const auto& engines = registry_.engines();
    const auto reference = engines.front().solve(problem);
    if (auto bad = testkit::check_dp_table(problem, reference))
      return "reference self-check: " + *bad;
    for (std::size_t e = 1; e < engines.size(); ++e) {
      const auto result = engines[e].solve(problem);
      if (count_coverage) coverage_.per_engine[engines[e].name]++;
      if (auto bad = testkit::check_tables_match(
              engines.front().name, reference, engines[e].name, result,
              engines[e].full_table))
        return bad;
    }
    return std::nullopt;
  }

  std::optional<Failure> run_dp_differential(const testkit::CaseId& id,
                                             util::Rng& rng) {
    dp::DpProblem problem;
    if (rng.uniform(0, 3) == 0) {
      // Adversarial table shape with PTAS-style class weights.
      const auto extents = testkit::adversarial_extents(rng, 6, 5'000);
      problem = workload::dp_problem_for_extents(extents, rng.uniform(2, 5));
    } else {
      testkit::DpProblemLimits limits;
      limits.max_cells = 5'000;
      problem = testkit::random_dp_problem(rng, limits);
    }
    auto bad = check_problem_all_engines(problem, /*count_coverage=*/true);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kDpDifferential, *bad, {}, {}};
    const auto shrunk = testkit::shrink_dp_problem(
        problem, [this](const dp::DpProblem& candidate) {
          return check_problem_all_engines(candidate, /*count_coverage=*/false)
              .has_value();
        });
    failure.reproducer = describe(shrunk);
    return failure;
  }

  testkit::CheckResult check_ptas_case(const Instance& instance,
                                       const dp::DpSolver& solver,
                                       double epsilon,
                                       SearchStrategy strategy) {
    PtasOptions options;
    options.epsilon = epsilon;
    options.strategy = strategy;
    const auto k = k_for_epsilon(epsilon);
    const auto result = solve_ptas(instance, solver, options);
    // Tiny instances get the exact branch-and-bound oracle on top of the
    // certificate checks.
    if (instance.jobs() <= 9 && instance.machines <= 4) {
      if (const auto opt = testkit::exact_makespan(instance))
        return testkit::check_ptas_vs_exact(instance, result, k, *opt);
    }
    return testkit::check_ptas_result(instance, result, k);
  }

  std::optional<Failure> run_ptas_certificate(const testkit::CaseId& id,
                                              util::Rng& rng) {
    Instance instance;
    const auto k_choice = rng.uniform(0, 3);
    const double epsilon = k_choice == 0   ? 1.0
                           : k_choice == 1 ? 0.5
                           : k_choice == 2 ? 0.34
                                           : 0.25;
    const auto k = k_for_epsilon(epsilon);
    bool found = false;
    for (int attempt = 0; attempt < 5 && !found; ++attempt) {
      instance = testkit::random_instance(rng);
      // Gate on the DP table size at the lower-bound target (the largest
      // table the search can build): the curse of dimensionality belongs to
      // the benches, not the fuzzer.
      const auto rounded =
          round_instance(instance, makespan_lower_bound(instance), k);
      found = !rounded.feasible || rounded.table_size() <= 100'000;
    }
    if (!found) {
      coverage_.skipped++;
      return std::nullopt;
    }

    const dp::LevelBucketSolver bucket;
    const dp::LevelScanSolver scan;
    const partition::BlockedSolver blocked3(3);
    const partition::BlockedSolver blocked6(6);
    const dp::DpSolver* solvers[] = {&bucket, &scan, &blocked3, &blocked6};
    const auto* solver = solvers[rng.uniform(0, 3)];
    const auto strategy = rng.uniform(0, 1) == 0 ? SearchStrategy::kBisection
                                                 : SearchStrategy::kQuarterSplit;
    coverage_.per_ptas_engine[solver->name()]++;
    auto bad = check_ptas_case(instance, *solver, epsilon, strategy);

    // The GPU PTAS (Algorithm 3 end to end on the simulated device) rides
    // along on small instances.
    if (!bad.has_value() && instance.jobs() <= 16) {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      gpu::GpuPtasOptions gpu_options;
      gpu_options.epsilon = epsilon;
      const auto gpu_result = gpu::solve_gpu_ptas(instance, device, gpu_options);
      coverage_.per_ptas_engine["gpu-ptas"]++;
      bad = testkit::check_ptas_result(instance, gpu_result.ptas, k);
      if (!bad.has_value())
        bad = testkit::check_device_conservation(device);
    }
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kPtasCertificate, *bad, {}, {}};
    const auto shrunk = testkit::shrink_instance(
        instance, [&](const Instance& candidate) {
          return check_ptas_case(candidate, *solver, epsilon, strategy)
              .has_value();
        });
    failure.reproducer = describe(shrunk);
    return failure;
  }

  testkit::CheckResult check_ptas_cache_case(const Instance& instance,
                                             const dp::DpSolver& solver,
                                             double epsilon,
                                             SearchStrategy strategy) {
    PtasOptions options;
    options.epsilon = epsilon;
    options.strategy = strategy;
    const auto k = k_for_epsilon(epsilon);
    const PtasResult uncached = solve_ptas(instance, solver, options);

    // Cold cache: the search trajectory must replay the uncached run exactly.
    options.use_probe_cache = true;
    const PtasResult cold = solve_ptas(instance, solver, options);
    if (auto bad = testkit::check_ptas_cache_equivalence(
            cold, uncached, /*require_same_iterations=*/true))
      return "cold cache: " + *bad;
    if (auto bad = testkit::check_ptas_result(instance, cold, k))
      return "cold cache: " + *bad;

    // Warm shared cache: the second run may answer probes (and skip rounds)
    // from memory but must land on the same schedule.
    ProbeCache shared;
    options.probe_cache = &shared;
    (void)solve_ptas(instance, solver, options);
    const PtasResult warm = solve_ptas(instance, solver, options);
    if (auto bad = testkit::check_ptas_cache_equivalence(
            warm, uncached, /*require_same_iterations=*/false))
      return "warm cache: " + *bad;
    if (auto bad = testkit::check_ptas_result(instance, warm, k))
      return "warm cache: " + *bad;
    return std::nullopt;
  }

  std::optional<Failure> run_ptas_cache(const testkit::CaseId& id,
                                        util::Rng& rng) {
    Instance instance;
    const auto k_choice = rng.uniform(0, 3);
    const double epsilon = k_choice == 0   ? 1.0
                           : k_choice == 1 ? 0.5
                           : k_choice == 2 ? 0.34
                                           : 0.25;
    const auto k = k_for_epsilon(epsilon);
    bool found = false;
    for (int attempt = 0; attempt < 5 && !found; ++attempt) {
      instance = testkit::random_instance(rng);
      // Tighter gate than ptas-certificate: this mode runs the full search
      // four times per case.
      const auto rounded =
          round_instance(instance, makespan_lower_bound(instance), k);
      found = !rounded.feasible || rounded.table_size() <= 50'000;
    }
    if (!found) {
      coverage_.skipped++;
      return std::nullopt;
    }

    const dp::LevelBucketSolver bucket;
    const dp::LevelScanSolver scan;
    const partition::BlockedSolver blocked3(3);
    const partition::BlockedSolver blocked6(6);
    const dp::DpSolver* solvers[] = {&bucket, &scan, &blocked3, &blocked6};
    const auto* solver = solvers[rng.uniform(0, 3)];
    const auto strategy = rng.uniform(0, 1) == 0
                              ? SearchStrategy::kBisection
                              : SearchStrategy::kQuarterSplit;
    coverage_.per_ptas_engine[solver->name()]++;
    auto bad = check_ptas_cache_case(instance, *solver, epsilon, strategy);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kPtasCache, *bad, {}, {}};
    const auto shrunk = testkit::shrink_instance(
        instance, [&](const Instance& candidate) {
          return check_ptas_cache_case(candidate, *solver, epsilon, strategy)
              .has_value();
        });
    failure.reproducer = describe(shrunk);
    return failure;
  }

  std::optional<Failure> run_metamorphic(const testkit::CaseId& id,
                                         util::Rng& rng) {
    Instance instance;
    const auto k_choice = rng.uniform(0, 3);
    const double epsilon = k_choice == 0   ? 1.0
                           : k_choice == 1 ? 0.5
                           : k_choice == 2 ? 0.34
                                           : 0.25;
    const auto k = k_for_epsilon(epsilon);
    bool found = false;
    for (int attempt = 0; attempt < 5 && !found; ++attempt) {
      instance = testkit::random_instance(rng);
      // The suite reruns the full search for the base, permuted, scaled and
      // extended variants (scaling leaves the rounded table size unchanged),
      // so gate as tightly as the cache mode.
      const auto rounded =
          round_instance(instance, makespan_lower_bound(instance), k);
      found = !rounded.feasible || rounded.table_size() <= 30'000;
    }
    if (!found) {
      coverage_.skipped++;
      return std::nullopt;
    }

    const dp::LevelBucketSolver bucket;
    const dp::LevelScanSolver scan;
    const partition::BlockedSolver blocked3(3);
    const partition::BlockedSolver blocked6(6);
    const dp::DpSolver* solvers[] = {&bucket, &scan, &blocked3, &blocked6};
    const auto* solver = solvers[rng.uniform(0, 3)];
    PtasOptions options;
    options.epsilon = epsilon;
    options.strategy = rng.uniform(0, 1) == 0 ? SearchStrategy::kBisection
                                              : SearchStrategy::kQuarterSplit;
    const auto suite_seed = testkit::case_rng_seed(id);
    coverage_.per_ptas_engine[solver->name()]++;
    auto bad =
        testkit::check_metamorphic_suite(instance, *solver, options, suite_seed);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kMetamorphic, *bad, {}, {}};
    const auto shrunk = testkit::shrink_instance(
        instance, [&](const Instance& candidate) {
          return testkit::check_metamorphic_suite(candidate, *solver, options,
                                                  suite_seed)
              .has_value();
        });
    failure.reproducer = describe(shrunk);
    return failure;
  }

  std::optional<Failure> run_layout_bijection(const testkit::CaseId& id,
                                              util::Rng& rng) {
    const auto extents = testkit::adversarial_extents(rng, 6, 20'000);
    const auto dims = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(extents.size())));
    const auto check = [dims](const std::vector<std::int64_t>& e) {
      const dp::MixedRadix radix(e);
      const partition::BlockedLayout layout(
          radix, partition::compute_divisor(e, dims));
      return testkit::check_blocked_bijection(layout);
    };
    auto bad = check(extents);
    if (!bad.has_value()) return std::nullopt;

    // Shrink via the DP-problem shrinker: extents are counts + 1.
    dp::DpProblem as_problem;
    as_problem.capacity = 1;
    for (const auto e : extents) {
      as_problem.counts.push_back(e - 1);
      as_problem.weights.push_back(1);
    }
    Failure failure{id, Mode::kLayoutBijection, *bad, {}, {}};
    const auto shrunk = testkit::shrink_dp_problem(
        as_problem, [&](const dp::DpProblem& candidate) {
          std::vector<std::int64_t> e;
          for (const auto n : candidate.counts) e.push_back(n + 1);
          return check(e).has_value();
        });
    std::string extents_text = "extents=[";
    for (std::size_t i = 0; i < shrunk.counts.size(); ++i) {
      if (i != 0) extents_text += ',';
      extents_text += std::to_string(shrunk.counts[i] + 1);
    }
    extents_text += "] partition-dims=";
    extents_text += std::to_string(dims);
    failure.reproducer = extents_text;
    return failure;
  }

  std::optional<Failure> run_simulator(const testkit::CaseId& id,
                                       util::Rng& rng) {
    testkit::DpProblemLimits limits;
    limits.max_cells = 2'000;
    limits.allow_infeasible = false;
    const auto problem = testkit::random_dp_problem(rng, limits);
    const auto check = [&](const dp::DpProblem& candidate)
        -> testkit::CheckResult {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const gpu::GpuDpSolver solver(device, 5);
      const auto result = solver.solve(candidate);
      const auto reference = dp::ReferenceSolver().solve(candidate);
      if (auto bad = testkit::check_tables_match("reference", reference,
                                                 solver.name(), result, true))
        return bad;
      return testkit::check_device_conservation(device);
    };
    auto bad = check(problem);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kSimulator, *bad, {}, {}};
    const auto shrunk = testkit::shrink_dp_problem(
        problem, [&](const dp::DpProblem& candidate) {
          return check(candidate).has_value();
        });
    failure.reproducer = describe(shrunk);
    return failure;
  }

  /// One instance under one fault plan through both resilient chains: every
  /// solve must end in a valid schedule within its stated bound or a clean
  /// typed error (testkit::check_resilient_result).
  testkit::CheckResult check_resilient_case(const Instance& instance,
                                            const faultsim::FaultPlan& plan) {
    ResilientOptions options;
    options.max_transient_retries = 2;
    options.backoff_ms = 1;  // charged to sim time only; no wall sleeps
    {
      faultsim::ScopedFaultInjector scoped(plan);
      const auto result = solve_resilient(instance, options);
      if (auto bad = testkit::check_resilient_result(instance, result))
        return "cpu chain: " + *bad;
    }
    {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const auto chain = gpu::make_gpu_chain(device);
      faultsim::ScopedFaultInjector scoped(plan);
      const auto result = solve_resilient(instance, chain, options);
      if (auto bad = testkit::check_resilient_result(instance, result))
        return "gpu chain: " + *bad;
    }
    return std::nullopt;
  }

  /// Ground-truth differential: prove OPT by branch and bound, then judge
  /// every instance-level scheduler (LPT, list, MULTIFIT, both PTAS search
  /// drivers, exact-bb itself) against it — the (1 + 1/k) guarantee tested
  /// against the true optimum, not a bound proxy. Unproven instances are
  /// skipped (after a certificate sanity check), never failed. At tiny n
  /// the unpruned brute force cross-checks the branch and bound itself.
  testkit::CheckResult check_exact_case(const Instance& instance,
                                        bool count_coverage) {
    exact::BbOptions options;
    options.node_budget = 4'000'000;
    const auto bb = exact::solve_bb(instance, options);
    if (auto bad = testkit::check_exact_claim(instance, bb))
      return "exact-bb certificate: " + *bad;
    if (!bb.optimal()) {
      if (count_coverage) coverage_.skipped++;
      return std::nullopt;
    }
    const auto opt = bb.makespan;
    if (instance.jobs() <= 12) {
      const auto brute = testkit::brute_force_makespan(instance);
      if (brute.has_value() && *brute != opt)
        return "exact-bb proved OPT " + std::to_string(opt) +
               " but brute force found " + std::to_string(*brute);
    }
    for (const auto& engine : scheduler_registry_.engines()) {
      const auto schedule = engine.solve(instance);
      if (!schedule.has_value()) continue;  // engine declined (budget/table)
      if (count_coverage) coverage_.per_scheduler[engine.name]++;
      const auto [num, den] = engine.bound(instance);
      if (auto bad = testkit::check_schedule_vs_opt(instance, engine.name,
                                                    *schedule, num, den, opt))
        return bad;
    }
    return std::nullopt;
  }

  std::optional<Failure> run_exact(const testkit::CaseId& id, util::Rng& rng) {
    testkit::InstanceLimits limits;
    limits.max_jobs = 200;
    limits.max_machines = 10;
    limits.max_time = 1000;
    const auto instance = testkit::random_instance(rng, limits);
    auto bad = check_exact_case(instance, /*count_coverage=*/true);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kExact, *bad, {}, {}};
    const auto shrunk = testkit::shrink_instance(
        instance, [this](const Instance& candidate) {
          return check_exact_case(candidate, /*count_coverage=*/false)
              .has_value();
        });
    failure.reproducer = describe(shrunk);
    return failure;
  }

  /// Random device-lost / link-down plan for the recovery mode.
  static faultsim::FaultPlan random_loss_plan(util::Rng& rng) {
    faultsim::FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(rng.uniform(0, 1'000'000));
    faultsim::FaultRule lost;
    lost.site = faultsim::Site::kDeviceLost;
    if (rng.uniform01() < 0.7)
      lost.nth = static_cast<std::uint64_t>(rng.uniform(1, 24));
    else
      lost.permille = static_cast<std::uint32_t>(rng.uniform(20, 300));
    plan.rules.push_back(lost);
    if (rng.uniform01() < 0.5) {
      faultsim::FaultRule down;
      down.site = faultsim::Site::kLinkDown;
      if (rng.uniform01() < 0.7)
        down.nth = static_cast<std::uint64_t>(rng.uniform(1, 12));
      else
        down.permille = static_cast<std::uint32_t>(rng.uniform(20, 300));
      plan.rules.push_back(down);
    }
    return plan;
  }

  /// Sharded solve under device-loss injection: the result is either
  /// bit-identical to the fault-free reference (recovery succeeded) or a
  /// typed device-lost error (recovery refused or losses exhausted the
  /// retry budget) — never a wrong table, never a foreign exception.
  testkit::CheckResult check_recovery_case(const dp::DpProblem& problem,
                                           const faultsim::FaultPlan& plan,
                                           int devices,
                                           gpusim::TopologyKind kind,
                                           std::int64_t checkpoint_every,
                                           int min_devices) {
    const auto reference = dp::ReferenceSolver().solve(problem);
    gpusim::Topology topology(devices, gpusim::DeviceSpec::k40(), kind);
    recover::RecoveryOptions recovery;
    recovery.checkpoint_every = checkpoint_every;
    recovery.min_devices = min_devices;
    const gpu::GpuDpSolver solver(topology, 5, 4,
                                  gpu::StreamPolicy::kCyclic,
                                  placement::PlacementKind::kLevelContiguous,
                                  recovery);
    faultsim::ScopedFaultInjector scoped(plan);
    try {
      const auto result = solver.solve(problem);
      return testkit::check_tables_match("reference", reference,
                                         solver.name(), result, true);
    } catch (const StatusError& e) {
      if (e.status().code() == StatusCode::kDeviceLost) return std::nullopt;
      return "recovery solve failed with unexpected status: " +
             e.status().to_string();
    } catch (const gpusim::DeviceLost&) {
      // Loss storm past the per-level retry budget (or recovery off-path):
      // typed, and the resilient driver maps it to kDeviceLost.
      return std::nullopt;
    }
  }

  std::optional<Failure> run_recovery(const testkit::CaseId& id,
                                      util::Rng& rng) {
    testkit::DpProblemLimits limits;
    limits.max_cells = 2'000;
    limits.allow_infeasible = false;
    const auto problem = testkit::random_dp_problem(rng, limits);
    const auto plan = random_loss_plan(rng);
    const auto devices = static_cast<int>(rng.uniform(2, 4));
    const auto kind = rng.uniform(0, 1) == 0 ? gpusim::TopologyKind::kRing
                                             : gpusim::TopologyKind::kFullMesh;
    const auto checkpoint_every = rng.uniform(1, 3);
    const auto min_devices = static_cast<int>(rng.uniform(1, 2));
    auto bad = check_recovery_case(problem, plan, devices, kind,
                                   checkpoint_every, min_devices);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kRecovery, *bad, {}, plan.to_string()};
    const auto shrunk = testkit::shrink_dp_problem(
        problem, [&](const dp::DpProblem& candidate) {
          return check_recovery_case(candidate, plan, devices, kind,
                                     checkpoint_every, min_devices)
              .has_value();
        });
    failure.reproducer = describe(shrunk) + " plan=" + plan.to_string();
    return failure;
  }

  /// Sparsified-EPTAS mode: the full (1 + 1/k) certificate, the target
  /// differential against the classic PTAS at equal epsilon (snapped
  /// weights only shrink, so T*_eptas <= T*_ptas always), cold-cache
  /// equivalence, and — on small instances — the proven optimum itself.
  testkit::CheckResult check_eptas_case(const Instance& instance,
                                        const dp::DpSolver& solver,
                                        double epsilon,
                                        SearchStrategy strategy) {
    PtasOptions options;
    options.epsilon = epsilon;
    options.strategy = strategy;
    const auto k = k_for_epsilon(epsilon);
    const auto result = eptas::solve_eptas(instance, solver, options);
    if (auto bad = testkit::check_ptas_result(instance, result, k)) return bad;

    PtasOptions classic_options = options;
    classic_options.build_schedule = false;
    const auto classic = solve_ptas(instance, solver, classic_options);
    if (result.best_target > classic.best_target)
      return "eptas target " + std::to_string(result.best_target) +
             " exceeds the classic ptas target " +
             std::to_string(classic.best_target) + " at equal epsilon";

    PtasOptions cached_options = options;
    cached_options.use_probe_cache = true;
    const auto cached = eptas::solve_eptas(instance, solver, cached_options);
    if (auto bad = testkit::check_ptas_cache_equivalence(
            cached, result, /*require_same_iterations=*/true))
      return "cold cache: " + *bad;

    if (instance.jobs() <= 9 && instance.machines <= 4) {
      if (const auto opt = testkit::exact_makespan(instance))
        return testkit::check_ptas_vs_exact(instance, result, k, *opt);
    }
    return std::nullopt;
  }

  std::optional<Failure> run_eptas(const testkit::CaseId& id, util::Rng& rng) {
    Instance instance;
    const auto k_choice = rng.uniform(0, 3);
    const double epsilon = k_choice == 0   ? 1.0
                           : k_choice == 1 ? 0.5
                           : k_choice == 2 ? 0.34
                                           : 0.25;
    const auto k = k_for_epsilon(epsilon);
    bool found = false;
    for (int attempt = 0; attempt < 5 && !found; ++attempt) {
      instance = testkit::random_instance(rng);
      // Gate on the *classic* table size: the differential half solves both
      // roundings, and the sparsified table is never the larger one.
      const auto rounded =
          round_instance(instance, makespan_lower_bound(instance), k);
      found = !rounded.feasible || rounded.table_size() <= 50'000;
    }
    if (!found) {
      coverage_.skipped++;
      return std::nullopt;
    }

    const dp::LevelBucketSolver bucket;
    const dp::LevelScanSolver scan;
    const partition::BlockedSolver blocked3(3);
    const dp::DpSolver* solvers[] = {&bucket, &scan, &blocked3};
    const auto* solver = solvers[rng.uniform(0, 2)];
    const auto strategy = rng.uniform(0, 1) == 0
                              ? SearchStrategy::kBisection
                              : SearchStrategy::kQuarterSplit;
    coverage_.per_ptas_engine[solver->name()]++;
    auto bad = check_eptas_case(instance, *solver, epsilon, strategy);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kEptas, *bad, {}, {}};
    const auto shrunk = testkit::shrink_instance(
        instance, [&](const Instance& candidate) {
          return check_eptas_case(candidate, *solver, epsilon, strategy)
              .has_value();
        });
    failure.reproducer = describe(shrunk);
    return failure;
  }

  std::optional<Failure> run_faults(const testkit::CaseId& id,
                                    util::Rng& rng) {
    const auto plan = random_fault_plan(rng);
    testkit::InstanceLimits limits;
    limits.max_jobs = 14;
    limits.max_machines = 5;
    limits.max_time = 500;
    const auto instance = testkit::random_instance(rng, limits);
    auto bad = check_resilient_case(instance, plan);
    if (!bad.has_value()) return std::nullopt;

    Failure failure{id, Mode::kFaults, *bad, {}, plan.to_string()};
    const auto shrunk = testkit::shrink_instance(
        instance, [&](const Instance& candidate) {
          return check_resilient_case(candidate, plan).has_value();
        });
    failure.reproducer = describe(shrunk) + " plan=" + plan.to_string();
    return failure;
  }

  Args args_;
  std::optional<Mode> mode_filter_;
  testkit::EngineRegistry registry_;
  testkit::SchedulerEngineRegistry scheduler_registry_;
  Coverage coverage_;
};

void print_coverage(const Fuzzer& fuzzer) {
  const auto& cov = fuzzer.coverage();
  std::printf("coverage: %llu cases (%llu skipped)\n",
              static_cast<unsigned long long>(cov.cases),
              static_cast<unsigned long long>(cov.skipped));
  for (const auto& [mode, count] : cov.per_mode)
    std::printf("  mode %-18s %llu\n", mode.c_str(),
                static_cast<unsigned long long>(count));
  for (const auto& [engine, count] : cov.per_engine)
    std::printf("  pair reference<->%-14s %llu\n", engine.c_str(),
                static_cast<unsigned long long>(count));
  for (const auto& [engine, count] : cov.per_ptas_engine)
    std::printf("  ptas %-18s %llu certificates\n", engine.c_str(),
                static_cast<unsigned long long>(count));
  for (const auto& [engine, count] : cov.per_scheduler)
    std::printf("  vs-opt %-16s %llu instances\n", engine.c_str(),
                static_cast<unsigned long long>(count));
}

int report_failure(const Args& args, Fuzzer& fuzzer, const Failure& failure) {
  const auto token = testkit::format_case(failure.id);
  std::fprintf(stderr,
               "FAIL case %s mode=%s\n  %s\n  shrunk reproducer: %s\n"
               "  replay with: pcmax_fuzz --seed %llu --replay %s\n",
               token.c_str(), mode_name(failure.mode),
               failure.diagnosis.c_str(), failure.reproducer.c_str(),
               static_cast<unsigned long long>(failure.id.seed),
               token.c_str());
  std::error_code ec;
  std::filesystem::create_directories(args.repro_dir, ec);
  const auto prefix = args.repro_dir + "/fuzz-repro-" +
                      std::to_string(failure.id.seed) + "-" +
                      std::to_string(failure.id.index);
  const auto path = prefix + ".txt";
  std::ofstream out(path);
  if (out) {
    out << "case " << token << "\nmode " << mode_name(failure.mode)
        << "\ndiagnosis " << failure.diagnosis << "\nreproducer "
        << failure.reproducer << "\n";
    std::fprintf(stderr, "  repro written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "  could not write repro file %s\n", path.c_str());
  }

  // Fault-mode failures also get a standalone replay artifact holding the
  // canonical plan text, directly loadable via pcmax_cli --fault-plan.
  if (!failure.fault_plan.empty()) {
    const auto plan_path = prefix + "-faultplan.txt";
    std::ofstream plan_out(plan_path);
    if (plan_out) {
      plan_out << failure.fault_plan << "\n";
      std::fprintf(stderr, "  fault plan replay written to %s\n",
                   plan_path.c_str());
    } else {
      std::fprintf(stderr, "  could not write fault plan %s\n",
                   plan_path.c_str());
    }
  }

  // Replay the failing case once more with observability on and attach the
  // trace and metrics next to the repro: the CI artifact then carries the
  // full search/DP/kernel timeline of the failure (including the shrink
  // probes, which is useful context when diagnosing a flaky engine).
  try {
    obs::ObsSession session;
    fuzzer.run_case(failure.id);
    obs::write_file(prefix + "-trace.json",
                    obs::chrome_trace_json(session.trace()));
    obs::write_file(prefix + "-metrics.json",
                    obs::metrics_json(session.metrics()));
    std::fprintf(stderr, "  trace + metrics written to %s-{trace,metrics}.json\n",
                 prefix.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "  could not record failure trace: %s\n", e.what());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  std::optional<Mode> mode_filter;
  if (!args.mode.empty()) {
    mode_filter = parse_mode(args.mode);
    if (!mode_filter.has_value())
      usage(("unknown --mode: " + args.mode).c_str());
  }
  Fuzzer fuzzer(args, mode_filter);

  if (args.replay.has_value()) {
    std::printf("replaying case %s\n",
                testkit::format_case(*args.replay).c_str());
    if (const auto failure = fuzzer.run_case(*args.replay))
      return report_failure(args, fuzzer, *failure);
    std::printf("case passed\n");
    return 0;
  }

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(args.budget));
  std::uint64_t index = 0;
  while (Clock::now() < deadline &&
         (args.max_cases == 0 || index < args.max_cases)) {
    const testkit::CaseId id{args.seed, index};
    if (args.verbose)
      std::printf("case %s\n", testkit::format_case(id).c_str());
    if (const auto failure = fuzzer.run_case(id)) {
      print_coverage(fuzzer);
      return report_failure(args, fuzzer, *failure);
    }
    ++index;
  }

  print_coverage(fuzzer);

  // A green campaign must actually have exercised every registered engine;
  // otherwise the differential guarantee is vacuous. A --mode filter opts
  // out of the full mix on purpose, so the gate does not apply.
  if (mode_filter.has_value()) {
    std::printf("all %llu cases green (mode %s)\n",
                static_cast<unsigned long long>(fuzzer.coverage().cases),
                mode_name(*mode_filter));
    return 0;
  }
  for (const auto& engine : fuzzer.registry().engines()) {
    if (engine.name == fuzzer.registry().reference().name) continue;
    const auto& per_engine = fuzzer.coverage().per_engine;
    const auto it = per_engine.find(engine.name);
    if (it == per_engine.end() || it->second == 0) {
      std::fprintf(stderr, "engine %s was never exercised — raise --budget\n",
                   engine.name.c_str());
      return 1;
    }
  }
  std::printf("all %llu cases green\n",
              static_cast<unsigned long long>(fuzzer.coverage().cases));
  return 0;
}
