// pcmax solve daemon driver: exercises serve::SolveServer with a burst of
// concurrent requests and verifies the serving layer end to end.
//
//   pcmax_serve --burst 64 --dup-percent 25 --threads 8 --seed 42 --hold
//   pcmax_serve --burst 16 --threads 4 --verify-sequential
//   pcmax_serve --burst 32 --threads 4 --fault-plan 'seed=7;device-alloc:permille=80'
//
// A burst is `--burst` requests over uniform random instances; a
// --dup-percent slice are exact duplicates of earlier requests, which the
// server may coalesce. --hold parks the workers until the whole burst is
// queued, making the coalescing count deterministic. --verify-sequential
// re-solves every request with a standalone solve_resilient (fresh device,
// no shared cache, no coalescing) and requires bit-identical schedules —
// the determinism contract of the serving layer. --json emits a perf
// datapoint consumed by scripts/perf_trajectory.py.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <numeric>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/resilient.hpp"
#include "faultsim/injector.hpp"
#include "gpu/resilient_gpu.hpp"
#include "gpusim/device.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "serve/server.hpp"
#include "workload/generators.hpp"

namespace {

using namespace pcmax;

[[noreturn]] void usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: pcmax_serve [--burst N] [--dup-percent P] [--threads T]\n"
      "                   [--seed S] [--jobs N] [--machines M] [--tmax HI]\n"
      "                   [--epsilon E] [--queue-capacity C] [--hold]\n"
      "                   [--no-coalesce] [--no-cache] [--verify-sequential]\n"
      "                   [--deadline-ms MS] [--mem-budget-bytes BYTES]\n"
      "                   [--fault-plan PLAN] [--trace-out FILE]\n"
      "                   [--metrics-out FILE] [--json FILE]\n"
      "\n"
      "Submits a burst of solve requests (a --dup-percent slice being exact\n"
      "duplicates) to an in-process SolveServer and reports admission,\n"
      "coalescing, shared-cache, and verification results. --hold queues\n"
      "the whole burst before the workers start, so the coalesced count is\n"
      "deterministic. See docs/SERVING.md.\n");
  std::exit(2);
}

struct Args {
  int burst = 64;
  int dup_percent = 25;
  int threads = 4;
  std::uint64_t seed = 42;
  std::size_t jobs = 60;
  std::int64_t machines = 8;
  std::int64_t tmax = 100;
  double epsilon = 0.3;
  std::size_t queue_capacity = 0;  // 0 = burst size
  bool hold = false;
  bool coalesce = true;
  bool share_cache = true;
  bool verify_sequential = false;
  std::int64_t deadline_ms = 0;
  std::uint64_t mem_budget_bytes = 0;
  std::optional<faultsim::FaultPlan> fault_plan;
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
  std::optional<std::string> json_out;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    std::optional<std::string> inline_value;
    if (a.rfind("--", 0) == 0) {
      if (const auto eq = a.find('='); eq != std::string::npos) {
        inline_value = a.substr(eq + 1);
        a.resize(eq);
      }
    }
    const auto next = [&](const char* what) -> std::string {
      if (inline_value.has_value()) return *inline_value;
      if (i + 1 >= argc) usage(what);
      return argv[++i];
    };
    if (a == "--burst") {
      args.burst = std::atoi(next("--burst needs a count").c_str());
    } else if (a == "--dup-percent") {
      args.dup_percent =
          std::atoi(next("--dup-percent needs a percent").c_str());
    } else if (a == "--threads") {
      args.threads = std::atoi(next("--threads needs a count").c_str());
    } else if (a == "--seed") {
      args.seed = static_cast<std::uint64_t>(
          std::atoll(next("--seed needs a value").c_str()));
    } else if (a == "--jobs") {
      args.jobs = static_cast<std::size_t>(
          std::atoll(next("--jobs needs a count").c_str()));
    } else if (a == "--machines") {
      args.machines = std::atoll(next("--machines needs a count").c_str());
    } else if (a == "--tmax") {
      args.tmax = std::atoll(next("--tmax needs a value").c_str());
    } else if (a == "--epsilon") {
      args.epsilon = std::atof(next("--epsilon needs a value").c_str());
    } else if (a == "--queue-capacity") {
      args.queue_capacity = static_cast<std::size_t>(
          std::atoll(next("--queue-capacity needs a count").c_str()));
    } else if (a == "--hold") {
      args.hold = true;
    } else if (a == "--no-coalesce") {
      args.coalesce = false;
    } else if (a == "--no-cache") {
      args.share_cache = false;
    } else if (a == "--verify-sequential") {
      args.verify_sequential = true;
    } else if (a == "--deadline-ms") {
      args.deadline_ms =
          std::atoll(next("--deadline-ms needs a value").c_str());
    } else if (a == "--mem-budget-bytes") {
      args.mem_budget_bytes = static_cast<std::uint64_t>(
          std::atoll(next("--mem-budget-bytes needs a value").c_str()));
    } else if (a == "--fault-plan") {
      std::string error;
      args.fault_plan =
          faultsim::parse_fault_plan(next("--fault-plan needs a plan"),
                                     &error);
      if (!args.fault_plan.has_value())
        usage(("bad --fault-plan: " + error).c_str());
    } else if (a == "--trace-out") {
      args.trace_out = next("--trace-out needs a path");
    } else if (a == "--metrics-out") {
      args.metrics_out = next("--metrics-out needs a path");
    } else if (a == "--json") {
      args.json_out = next("--json needs a path");
    } else {
      usage(("unknown flag: " + a).c_str());
    }
  }
  if (args.burst < 1) usage("--burst must be >= 1");
  if (args.dup_percent < 0 || args.dup_percent > 90)
    usage("--dup-percent must be in [0, 90]");
  if (args.threads < 1) usage("--threads must be >= 1");
  return args;
}

bool same_result(const ResilientResult& a, const ResilientResult& b) {
  return a.status.code() == b.status.code() &&
         a.schedule.assignment == b.schedule.assignment &&
         a.achieved_makespan == b.achieved_makespan && a.engine == b.engine &&
         a.k == b.k && a.bound_num == b.bound_num &&
         a.bound_den == b.bound_den && a.degraded == b.degraded;
}

int run_burst(const Args& args) {
  // Burst layout: `uniques` distinct instances first, then duplicates of
  // them round-robin, shuffled deterministically by --seed.
  const int dups = args.burst * args.dup_percent / 100;
  const int uniques = args.burst - dups;
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(args.burst));
  for (int i = 0; i < uniques; ++i)
    instances.push_back(workload::uniform_instance(
        args.jobs, args.machines, 1, args.tmax,
        args.seed + static_cast<std::uint64_t>(i)));
  for (int i = 0; i < dups; ++i)
    instances.push_back(instances[static_cast<std::size_t>(i % uniques)]);
  std::vector<std::size_t> order(instances.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::mt19937_64 rng(args.seed);
  std::shuffle(order.begin(), order.end(), rng);

  ResilientOptions solve_options;
  solve_options.epsilon = args.epsilon;
  solve_options.deadline_ms = args.deadline_ms;
  solve_options.mem_budget_bytes = args.mem_budget_bytes;
  solve_options.num_threads = 1;  // workers are the parallelism axis here

  serve::ServeOptions serve_options;
  serve_options.workers = args.threads;
  serve_options.queue_capacity = args.queue_capacity != 0
                                     ? args.queue_capacity
                                     : static_cast<std::size_t>(args.burst);
  serve_options.coalesce = args.coalesce;
  serve_options.share_probe_cache = args.share_cache;
  serve_options.start_paused = args.hold;

  std::printf("# serve burst %d (%d dups) workers %d queue %zu%s%s%s\n",
              args.burst, dups, args.threads, serve_options.queue_capacity,
              args.hold ? " hold" : "", args.coalesce ? "" : " no-coalesce",
              args.share_cache ? "" : " no-cache");

  std::optional<faultsim::ScopedFaultInjector> injector;
  if (args.fault_plan.has_value()) {
    injector.emplace(*args.fault_plan);
    std::printf("# fault plan: %s\n", args.fault_plan->to_string().c_str());
  }

  const auto wall_start = std::chrono::steady_clock::now();
  serve::SolveServer server(serve_options);
  struct Submitted {
    std::size_t instance;
    std::future<serve::SolveResponse> future;
  };
  std::vector<Submitted> in_flight;
  std::uint64_t rejected = 0;
  for (const std::size_t index : order) {
    serve::SolveRequest request;
    request.instance = instances[index];
    request.options = solve_options;
    auto admitted = server.submit(std::move(request));
    if (admitted.has_value())
      in_flight.push_back(Submitted{index, std::move(*admitted)});
    else
      ++rejected;
  }
  if (args.hold) server.resume();

  std::vector<std::optional<serve::SolveResponse>> responses(instances.size());
  std::uint64_t failed = 0;
  for (Submitted& s : in_flight) {
    serve::SolveResponse response = s.future.get();
    if (!response.ok()) ++failed;
    responses[s.instance] = std::move(response);
  }
  server.shutdown();
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();

  const serve::ServeStats stats = server.stats();
  std::printf("serve: submitted %llu admitted %llu rejected %llu "
              "coalesced %llu completed %llu failed %llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.failed));
  std::printf("cache: lookups %llu hits %llu cross-hits %llu insertions %llu "
              "evictions %llu\n",
              static_cast<unsigned long long>(stats.cache.lookups),
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.cross_hits),
              static_cast<unsigned long long>(stats.cache.insertions),
              static_cast<unsigned long long>(stats.cache.evictions));

  bool ok = rejected == stats.rejected && failed == stats.failed;
  // With the burst held until fully queued, every duplicate finds its
  // leader still in the queue, so the coalesced count is exact.
  if (args.hold && args.coalesce && stats.rejected == 0)
    ok = ok && stats.coalesced == static_cast<std::uint64_t>(dups);

  // Duplicate submissions must agree bit for bit with the original,
  // coalesced or not.
  std::size_t dup_checked = 0;
  std::size_t dup_identical = 0;
  for (std::size_t i = static_cast<std::size_t>(uniques);
       i < instances.size(); ++i) {
    const auto& dup = responses[i];
    const auto& original =
        responses[(i - static_cast<std::size_t>(uniques)) %
                  static_cast<std::size_t>(uniques)];
    if (!dup.has_value() || !original.has_value()) continue;
    ++dup_checked;
    if (same_result(dup->result, original->result)) ++dup_identical;
  }
  if (dup_checked != 0)
    std::printf("duplicates: identical %zu/%zu\n", dup_identical,
                dup_checked);
  ok = ok && dup_identical == dup_checked;

  if (args.verify_sequential) {
    // Standalone reference: one device, no sharing, no coalescing — the
    // answer a client would get from a direct solve_resilient call.
    std::size_t identical = 0;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(uniques); ++i) {
      if (!responses[i].has_value()) continue;
      ++checked;
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const auto chain = gpu::make_gpu_chain(device);
      const ResilientResult reference =
          solve_resilient(instances[i], chain, solve_options);
      if (same_result(responses[i]->result, reference)) ++identical;
    }
    std::printf("verify: sequential-identical %zu/%zu\n", identical, checked);
    ok = ok && identical == checked;
  }

  if (args.json_out.has_value()) {
    // One perf-trajectory record in the bench --json schema: wall time of
    // the whole burst, cache insertions as "cells", admitted requests as
    // "probes".
    char record[256];
    std::snprintf(
        record, sizeof(record),
        "[{\"name\": \"serve/burst%d-t%d\", \"ns\": %lld, \"cells\": %llu, "
        "\"probes\": %llu, \"cache_hits\": %llu}]\n",
        args.burst, args.threads, static_cast<long long>(wall_ns),
        static_cast<unsigned long long>(stats.cache.insertions),
        static_cast<unsigned long long>(stats.admitted),
        static_cast<unsigned long long>(stats.cache.hits));
    obs::write_file(*args.json_out, record);
  }

  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.trace_out.has_value() && !args.metrics_out.has_value())
    return run_burst(args);

  obs::ObsSession session;
  const int rc = run_burst(args);
  if (args.trace_out.has_value()) {
    obs::write_file(*args.trace_out, obs::chrome_trace_json(session.trace()));
    std::printf("trace: %zu events -> %s\n", session.trace().size(),
                args.trace_out->c_str());
  }
  if (args.metrics_out.has_value()) {
    obs::write_file(*args.metrics_out, obs::metrics_json(session.metrics()));
    std::printf("metrics -> %s\n", args.metrics_out->c_str());
  }
  std::fputs(obs::text_summary(session.trace(), session.metrics()).c_str(),
             stdout);
  return rc;
}
