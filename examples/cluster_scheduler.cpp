// Scenario: nightly batch scheduling for a compute cluster.
//
// A cluster operator assigns a mixed batch of jobs — many short ETL tasks
// plus a few long model-training runs — to identical worker nodes, and
// wants the whole batch to finish as early as possible (minimize makespan).
// This example compares the classic heuristics against the PTAS at several
// accuracy settings and shows the cost knob epsilon controls: tighter
// epsilon, bigger DP tables, better schedules.
#include <cstdio>

#include "baselines/heuristics.hpp"
#include "core/bounds.hpp"
#include "core/ptas.hpp"
#include "util/text_table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace pcmax;

  // 120 jobs on 16 nodes: 85% short ETL tasks (1-15 min), 15% training
  // runs (60-180 min).
  const Instance batch =
      workload::bimodal_instance(120, 16, 1, 15, 60, 180, 0.15, 20260704);
  const auto lb = makespan_lower_bound(batch);
  std::printf("nightly batch: %zu jobs on %lld nodes, lower bound %lld min\n\n",
              batch.jobs(), static_cast<long long>(batch.machines),
              static_cast<long long>(lb));

  util::TextTable table({"scheduler", "makespan (min)", "vs lower bound",
                         "max DP-table", "DP calls"});
  const auto ratio = [&](std::int64_t ms) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4f",
                  static_cast<double>(ms) / static_cast<double>(lb));
    return std::string(buf);
  };

  const auto add_heuristic = [&](const char* name, const Schedule& s) {
    validate_schedule(batch, s);
    const auto ms = makespan(batch, s);
    table.add_row({name, std::to_string(ms), ratio(ms), "-", "-"});
  };
  add_heuristic("list scheduling", baselines::list_scheduling(batch));
  add_heuristic("LPT", baselines::lpt(batch));
  add_heuristic("MULTIFIT", baselines::multifit(batch));

  const dp::LevelBucketSolver solver;
  for (const double eps : {0.5, 0.3, 0.2}) {
    PtasOptions options;
    options.epsilon = eps;
    const auto r = solve_ptas(batch, solver, options);
    validate_schedule(batch, r.schedule);
    std::uint64_t max_table = 1;
    for (const auto& call : r.dp_calls)
      max_table = std::max(max_table, call.table_size);
    char name[32];
    std::snprintf(name, sizeof name, "PTAS eps=%.1f", eps);
    table.add_row({name, std::to_string(r.achieved_makespan),
                   ratio(r.achieved_makespan), std::to_string(max_table),
                   std::to_string(r.dp_calls.size())});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("takeaway: the PTAS buys a provable (1+eps) guarantee; the\n"
              "DP-table column shows the accuracy/work tradeoff the paper's\n"
              "GPU engine exists to accelerate.\n");
  return 0;
}
