// Scenario: explore the data-partitioning scheme on a DP-table shape.
//
// Renders the structure Figure 2 of the paper illustrates: the divisor the
// scheme derives for each dimension, the resulting block grid, block-levels
// (the "colors" of Fig. 2), and in-block anti-diagonal levels — then runs
// the DP once per partition-dimension setting on the simulated K40 and
// reports time and memory, so the effect of the divisor choice is visible
// end to end.
//
// Usage: partition_explorer [extent extent ...]   (default: 6 6 6, Fig. 2)
#include <cstdio>
#include <cstdlib>

#include "gpu/gpu_dp_solver.hpp"
#include "partition/blocked_layout.hpp"
#include "partition/divisor.hpp"
#include "util/text_table.hpp"
#include "workload/shapes.hpp"

int main(int argc, char** argv) {
  using namespace pcmax;

  std::vector<std::int64_t> extents;
  for (int i = 1; i < argc; ++i) extents.push_back(std::atoll(argv[i]));
  if (extents.empty()) extents = {6, 6, 6};  // the paper's Fig. 2 example

  const dp::MixedRadix radix{std::vector<std::int64_t>(extents)};
  std::printf("DP-table %s: %llu cells, %lld anti-diagonal levels\n\n",
              util::format_vector(extents).c_str(),
              static_cast<unsigned long long>(radix.size()),
              static_cast<long long>(radix.max_level() + 1));

  util::TextTable structure({"partition", "divisor", "block size", "blocks",
                             "block-levels", "in-block levels"});
  for (std::size_t dims = 1; dims <= extents.size(); ++dims) {
    const auto divisor = partition::compute_divisor(extents, dims);
    const partition::BlockedLayout layout(radix,
                                          std::vector<std::int64_t>(divisor));
    structure.add_row({"DIM" + std::to_string(dims),
                       util::format_vector(divisor),
                       util::format_vector(layout.block_size()),
                       std::to_string(layout.block_count()),
                       std::to_string(layout.block_levels()),
                       std::to_string(layout.in_block_levels())});
  }
  std::printf("%s\n", structure.to_string().c_str());

  std::printf("simulated K40 run per partitioning (PTAS class weights):\n");
  const auto problem = workload::dp_problem_for_extents(extents);
  util::TextTable timing({"partition", "simulated time", "peak memory",
                          "kernels", "OPT(N)"});
  for (std::size_t dims = 1; dims <= extents.size(); ++dims) {
    gpusim::Device device(gpusim::DeviceSpec::k40());
    const gpu::GpuDpSolver solver(device, dims);
    const auto result = solver.solve(problem);
    char mem[32];
    std::snprintf(mem, sizeof mem, "%.2f KB",
                  static_cast<double>(solver.last_peak_memory()) / 1024.0);
    timing.add_row({"DIM" + std::to_string(dims),
                    solver.last_solve_time().to_string(), mem,
                    std::to_string(device.stats().kernels),
                    std::to_string(result.opt)});
  }
  std::printf("%s", timing.to_string().c_str());
  return 0;
}
