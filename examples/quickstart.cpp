// Quickstart: schedule a handful of jobs on identical machines with the
// PTAS and inspect the result.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: building an Instance,
// choosing epsilon, picking a DP solver, and reading the PtasResult.
#include <cstdio>

#include "core/bounds.hpp"
#include "core/ptas.hpp"
#include "dp/solver.hpp"

int main() {
  using namespace pcmax;

  // Ten jobs (integer processing times) on three identical machines.
  Instance instance;
  instance.machines = 3;
  instance.times = {27, 19, 41, 8, 33, 15, 22, 11, 36, 24};

  std::printf("P||Cmax instance: %zu jobs on %lld machines, total work %lld\n",
              instance.jobs(), static_cast<long long>(instance.machines),
              static_cast<long long>(instance.total_time()));
  std::printf("makespan bounds: LB = %lld, UB = %lld\n",
              static_cast<long long>(makespan_lower_bound(instance)),
              static_cast<long long>(makespan_upper_bound(instance)));

  // Solve with epsilon = 0.3 (guarantee: within 1.25x of optimal, since
  // k = ceil(1/0.3) = 4 and the bound is 1 + 1/k).
  PtasOptions options;
  options.epsilon = 0.3;
  const dp::LevelBucketSolver solver;  // OpenMP level-synchronous DP
  const PtasResult result = solve_ptas(instance, solver, options);

  std::printf("\nPTAS(epsilon=%.1f): makespan %lld (best target T* = %lld)\n",
              options.epsilon,
              static_cast<long long>(result.achieved_makespan),
              static_cast<long long>(result.best_target));
  std::printf("search: %zu bisection rounds, %zu DP evaluations\n",
              result.search_iterations, result.dp_calls.size());

  // Print the schedule machine by machine.
  for (std::int64_t m = 0; m < instance.machines; ++m) {
    std::printf("machine %lld:", static_cast<long long>(m));
    std::int64_t load = 0;
    for (std::size_t j = 0; j < instance.jobs(); ++j) {
      if (result.schedule.assignment[j] == m) {
        std::printf(" job%zu(%lld)", j,
                    static_cast<long long>(instance.times[j]));
        load += instance.times[j];
      }
    }
    std::printf("  -> load %lld\n", static_cast<long long>(load));
  }

  // The schedule is independently checkable.
  validate_schedule(instance, result.schedule);
  std::printf("\nschedule valid; makespan within %.2fx of the lower bound\n",
              static_cast<double>(result.achieved_makespan) /
                  static_cast<double>(makespan_lower_bound(instance)));
  return 0;
}
