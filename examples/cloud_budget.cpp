// Scenario: picking service bundles under multi-resource budgets with the
// higher-dimensional knapsack solver (the paper's Section V future-work
// problem family, running on the same data-partitioning substrate).
//
// A platform team packs optional service features onto a shared node with
// fixed CPU, memory, and network headroom. Each feature has a business
// value and a three-dimensional resource cost; the table spans one
// dimension per resource.
#include <cstdio>

#include "knapsack/solver.hpp"

int main() {
  using namespace pcmax;

  knapsack::KnapsackProblem problem;
  // Headroom: 12 CPU cores, 24 GB RAM, 10 Gbit network.
  problem.budgets = {12, 24, 10};
  struct Named {
    const char* name;
    knapsack::Item item;
  };
  const std::vector<Named> catalogue{
      {"search-index", {9, {4, 8, 1}}},
      {"recommendations", {7, {3, 6, 2}}},
      {"image-resizer", {4, {2, 2, 1}}},
      {"audit-stream", {3, {1, 2, 3}}},
      {"cache-warmer", {2, {1, 3, 0}}},
  };
  for (const auto& n : catalogue) problem.items.push_back(n.item);

  std::printf("budgets: %lld cores, %lld GB, %lld Gbit (table %llu cells)\n\n",
              static_cast<long long>(problem.budgets[0]),
              static_cast<long long>(problem.budgets[1]),
              static_cast<long long>(problem.budgets[2]),
              static_cast<unsigned long long>(problem.table_size()));

  // Solve on the blocked wavefront (same partitioning substrate as the
  // scheduling DP) and cross-check against the reference.
  const auto blocked = knapsack::solve_blocked(problem, 3);
  const auto reference = knapsack::solve_reference(problem);
  if (blocked.table != reference.table) return 1;

  const auto counts = knapsack::reconstruct_items(problem, blocked);
  std::printf("best value %lld with:\n",
              static_cast<long long>(blocked.best));
  std::int64_t used[3] = {0, 0, 0};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    std::printf("  %lld x %-16s (value %lld, cost %lld/%lld/%lld)\n",
                static_cast<long long>(counts[i]), catalogue[i].name,
                static_cast<long long>(catalogue[i].item.value),
                static_cast<long long>(catalogue[i].item.weights[0]),
                static_cast<long long>(catalogue[i].item.weights[1]),
                static_cast<long long>(catalogue[i].item.weights[2]));
    for (int r = 0; r < 3; ++r)
      used[r] += counts[i] * catalogue[i].item.weights[r];
  }
  std::printf("resources used: %lld/%lld cores, %lld/%lld GB, "
              "%lld/%lld Gbit\n",
              static_cast<long long>(used[0]),
              static_cast<long long>(problem.budgets[0]),
              static_cast<long long>(used[1]),
              static_cast<long long>(problem.budgets[1]),
              static_cast<long long>(used[2]),
              static_cast<long long>(problem.budgets[2]));
  return 0;
}
