// Scenario: render-farm frame dispatch on the simulated GPU engine.
//
// A render farm schedules frames of very different complexity onto
// identical render nodes. This example runs the full *GPU* PTAS of the
// paper (quarter-split target search + data-partitioned DP on the simulated
// K40) and reports what the device did: kernels, Dynamic-Parallelism
// children, memory, and simulated time — alongside the schedule quality,
// and a comparison of the quarter split against plain bisection.
#include <cstdio>

#include "core/bounds.hpp"
#include "gpu/gpu_ptas.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace pcmax;

  // 200 frames on 24 nodes; hero shots take 10x longer than background
  // plates.
  const Instance farm =
      workload::bimodal_instance(200, 24, 5, 30, 120, 300, 0.2, 42);
  std::printf("render farm: %zu frames on %lld nodes, lower bound %lld s\n\n",
              farm.jobs(), static_cast<long long>(farm.machines),
              static_cast<long long>(makespan_lower_bound(farm)));

  // GPU PTAS: Algorithm 3 quarter split, data partitioning along 6 dims.
  gpusim::Device device(gpusim::DeviceSpec::k40());
  gpu::GpuPtasOptions options;
  options.partition_dims = 6;
  const auto gpu = gpu::solve_gpu_ptas(farm, device, options);
  validate_schedule(farm, gpu.ptas.schedule);

  std::printf("GPU PTAS (quarter split, GPU-DIM6):\n");
  std::printf("  makespan            %lld s\n",
              static_cast<long long>(gpu.ptas.achieved_makespan));
  std::printf("  search rounds       %zu\n", gpu.ptas.search_iterations);
  std::printf("  DP evaluations      %zu\n", gpu.ptas.dp_calls.size());
  std::printf("  simulated GPU time  %s\n",
              gpu.device_time.to_string().c_str());
  std::printf("  kernels launched    %llu (+%llu dynamic-parallelism)\n",
              static_cast<unsigned long long>(gpu.stats.kernels),
              static_cast<unsigned long long>(gpu.stats.child_kernels));
  std::printf("  device peak memory  %.2f MB\n\n",
              static_cast<double>(device.peak_memory()) / (1 << 20));

  // Same instance with plain bisection on the CPU solver, to show the
  // quarter split's round savings (the effect behind Table VII).
  PtasOptions bisection;
  const auto cpu = solve_ptas(farm, dp::LevelBucketSolver(), bisection);
  std::printf("bisection on the CPU engine finds the same target T* = %lld\n",
              static_cast<long long>(cpu.best_target));
  std::printf("rounds: quarter split %zu vs bisection %zu\n",
              gpu.ptas.search_iterations, cpu.search_iterations);
  if (gpu.ptas.best_target != cpu.best_target) return 1;
  return 0;
}
