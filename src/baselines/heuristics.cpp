#include "baselines/heuristics.hpp"

#include <algorithm>
#include <numeric>

#include "core/bounds.hpp"
#include "core/ptas.hpp"
#include "util/contracts.hpp"

namespace pcmax::baselines {

Schedule list_scheduling(const Instance& instance) {
  instance.validate();
  Schedule schedule;
  schedule.assignment.assign(instance.times.size(), 0);
  std::vector<std::int64_t> loads(
      static_cast<std::size_t>(instance.machines), 0);
  std::vector<std::size_t> order(instance.times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  place_on_least_loaded(instance, order, schedule, loads);
  return schedule;
}

Schedule lpt(const Instance& instance) {
  instance.validate();
  std::vector<std::size_t> order(instance.times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instance.times[a] > instance.times[b];
                   });
  Schedule schedule;
  schedule.assignment.assign(instance.times.size(), 0);
  std::vector<std::int64_t> loads(
      static_cast<std::size_t>(instance.machines), 0);
  place_on_least_loaded(instance, order, schedule, loads);
  return schedule;
}

bool ffd_packs(const Instance& instance, std::int64_t capacity,
               std::vector<std::int64_t>& out_assignment) {
  instance.validate();
  PCMAX_EXPECTS(capacity >= 0);
  std::vector<std::size_t> order(instance.times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instance.times[a] > instance.times[b];
                   });
  std::vector<std::int64_t> loads(
      static_cast<std::size_t>(instance.machines), 0);
  out_assignment.assign(instance.times.size(), -1);
  for (const auto j : order) {
    bool placed = false;
    for (std::size_t b = 0; b < loads.size(); ++b) {
      if (loads[b] + instance.times[j] <= capacity) {
        loads[b] += instance.times[j];
        out_assignment[j] = static_cast<std::int64_t>(b);
        placed = true;
        break;
      }
    }
    if (!placed) return false;
  }
  return true;
}

Schedule multifit(const Instance& instance) {
  instance.validate();
  std::int64_t lo = makespan_lower_bound(instance);
  std::int64_t hi = makespan_upper_bound(instance);
  std::vector<std::int64_t> assignment;
  std::vector<std::int64_t> best;
  // FFD feasibility is not monotone in theory, but bisection over the
  // classic [LB, UB] interval is the standard MULTIFIT formulation.
  while (lo < hi) {
    const std::int64_t c = lo + (hi - lo) / 2;
    if (ffd_packs(instance, c, assignment)) {
      best = assignment;
      hi = c;
    } else {
      lo = c + 1;
    }
  }
  if (best.empty()) {
    const bool ok = ffd_packs(instance, hi, best);
    PCMAX_ENSURES(ok);  // UB always packs (list bound)
  }
  Schedule schedule;
  schedule.assignment = std::move(best);
  return schedule;
}

}  // namespace pcmax::baselines
