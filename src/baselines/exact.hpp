// Exact P||Cmax solver: depth-first branch and bound over job-to-machine
// assignments with LPT seeding, symmetry breaking, and load-bound pruning.
// Exponential worst case — intended for ground truth on small instances
// (approximation-ratio measurements and tests).
#pragma once

#include <cstdint>
#include <optional>

#include "core/instance.hpp"

namespace pcmax::baselines {

struct ExactOptions {
  /// Abort after this many DFS nodes (0 = unlimited). When the budget is
  /// exhausted the solver returns std::nullopt.
  std::uint64_t node_budget = 50'000'000;
};

struct ExactResult {
  std::int64_t makespan = 0;
  Schedule schedule;
  std::uint64_t nodes_visited = 0;
};

/// Minimum-makespan schedule, or nullopt when the node budget ran out.
[[nodiscard]] std::optional<ExactResult> solve_exact(
    const Instance& instance, const ExactOptions& options = {});

}  // namespace pcmax::baselines
