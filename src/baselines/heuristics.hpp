// Classic P||Cmax heuristics the PTAS is compared against.
#pragma once

#include "core/instance.hpp"

namespace pcmax::baselines {

/// Graham list scheduling: jobs in the given order, each to the currently
/// least-loaded machine. Approximation ratio 2 - 1/m.
[[nodiscard]] Schedule list_scheduling(const Instance& instance);

/// Longest Processing Time first: list scheduling on jobs sorted by
/// descending time. Approximation ratio 4/3 - 1/(3m).
[[nodiscard]] Schedule lpt(const Instance& instance);

/// MULTIFIT (Coffman-Garey-Johnson): bisection on the bin capacity with
/// first-fit-decreasing packing into m bins. Approximation ratio 13/11.
/// `iterations` bounds the capacity bisection (7 suffices for the classic
/// bound; we bisect on integers until convergence by default).
[[nodiscard]] Schedule multifit(const Instance& instance);

/// First-fit-decreasing feasibility check used by MULTIFIT: true when all
/// jobs pack into `bins` bins of capacity `capacity`, and if so fills
/// `out_assignment` (job -> bin). Exposed for testing.
[[nodiscard]] bool ffd_packs(const Instance& instance, std::int64_t capacity,
                             std::vector<std::int64_t>& out_assignment);

}  // namespace pcmax::baselines
