#include "baselines/exact.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/heuristics.hpp"
#include "core/bounds.hpp"

namespace pcmax::baselines {

namespace {

struct Dfs {
  const std::vector<std::int64_t>& times;  // sorted descending
  const std::vector<std::size_t>& order;   // original job ids, same order
  std::int64_t lower_bound;
  std::uint64_t budget;

  std::vector<std::int64_t> loads;
  std::vector<std::int64_t> assignment;  // position -> machine
  std::vector<std::int64_t> best_assignment;
  std::int64_t best;
  std::uint64_t nodes = 0;
  bool aborted = false;

  void run(std::size_t j, std::int64_t current) {
    if (aborted) return;
    if (budget != 0 && ++nodes > budget) {
      aborted = true;
      return;
    }
    if (current >= best) return;
    if (j == times.size()) {
      best = current;
      best_assignment = assignment;
      return;
    }
    std::int64_t prev_load = -1;
    for (std::size_t m = 0; m < loads.size(); ++m) {
      if (loads[m] == prev_load) continue;  // symmetric machine states
      prev_load = loads[m];
      loads[m] += times[j];
      assignment[j] = static_cast<std::int64_t>(m);
      run(j + 1, std::max(current, loads[m]));
      loads[m] -= times[j];
      if (best == lower_bound) return;  // provably optimal already
    }
  }
};

}  // namespace

std::optional<ExactResult> solve_exact(const Instance& instance,
                                       const ExactOptions& options) {
  instance.validate();

  std::vector<std::size_t> order(instance.times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instance.times[a] > instance.times[b];
                   });
  std::vector<std::int64_t> sorted_times(order.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    sorted_times[i] = instance.times[order[i]];

  // LPT seed: a good incumbent makes the bound prune aggressively.
  const Schedule lpt_schedule = lpt(instance);
  const std::int64_t lpt_makespan = makespan(instance, lpt_schedule);

  Dfs dfs{sorted_times,
          order,
          makespan_lower_bound(instance),
          options.node_budget,
          std::vector<std::int64_t>(
              static_cast<std::size_t>(instance.machines), 0),
          std::vector<std::int64_t>(order.size(), 0),
          {},
          lpt_makespan,
          0,
          false};
  dfs.run(0, 0);
  if (dfs.aborted) return std::nullopt;

  ExactResult result;
  result.makespan = dfs.best;
  result.nodes_visited = dfs.nodes;
  result.schedule.assignment.assign(instance.times.size(), 0);
  if (dfs.best_assignment.empty()) {
    // LPT was already optimal; return its schedule.
    result.schedule = lpt_schedule;
  } else {
    for (std::size_t i = 0; i < order.size(); ++i)
      result.schedule.assignment[order[i]] = dfs.best_assignment[i];
  }
  validate_schedule(instance, result.schedule);
  return result;
}

}  // namespace pcmax::baselines
