// Block-to-device placement over the blocked DP layout: a PlacementStrategy
// maps every block of a partition::BlockedLayout onto one of N devices.
// Blocks on the same block-level are independent (the wavefront invariant of
// Algorithm 4), so any placement is correct — strategies only trade off how
// many dependent-sub-configuration reads cross devices (transfer volume) and
// how evenly per-device memory fills. See docs/SHARDING.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "partition/blocked_layout.hpp"

namespace pcmax::placement {

/// Visits every dependency-predecessor block of the block with coordinates
/// `g`: the blocks at g - offset for offsets in prod [0, reach_i] excluding
/// the all-zero offset (the block itself), clipped at the grid boundary.
/// `reach` is per-dimension reach in blocks (missing dimensions count as 0).
/// `fn` receives each predecessor's flattened block id; every predecessor
/// lies on a strictly lower block-level than `g`.
template <typename Fn>
void for_each_reach_predecessor(const dp::MixedRadix& grid,
                                std::span<const std::int64_t> g,
                                std::span<const std::int64_t> reach, Fn&& fn) {
  const std::size_t dims = grid.dims();
  std::vector<std::int64_t> offset(dims, 0), pred(dims);
  for (;;) {
    // Next offset in row-major order over prod [0, reach_i], starting past
    // the all-zero offset.
    bool advanced = false;
    for (std::size_t i = dims; i-- > 0;) {
      if (offset[i] + 1 <= (i < reach.size() ? reach[i] : 0)) {
        ++offset[i];
        std::fill(offset.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  offset.end(), 0);
        advanced = true;
        break;
      }
    }
    if (!advanced) return;
    bool in_range = true;
    for (std::size_t i = 0; i < dims; ++i) {
      pred[i] = g[i] - offset[i];
      if (pred[i] < 0) {
        in_range = false;
        break;
      }
    }
    if (in_range) fn(grid.flatten(pred));
  }
}

enum class PlacementKind {
  kRoundRobin,       ///< block b -> b mod N; maximal scatter
  kLevelContiguous,  ///< each block-level split into N contiguous runs
  kMemoryBalanced,   ///< affinity-greedy under a per-device block cap
};

/// "round-robin" / "level-contiguous" / "memory-balanced" — the names the
/// CLI and bench flags accept.
[[nodiscard]] std::string_view placement_kind_name(PlacementKind kind) noexcept;
/// Inverse of placement_kind_name; nullopt for unknown names.
[[nodiscard]] std::optional<PlacementKind> parse_placement_kind(
    std::string_view name) noexcept;

/// A deterministic block -> device assignment policy.
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;

  [[nodiscard]] virtual PlacementKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return placement_kind_name(kind());
  }

  /// Assigns every block of `layout` a device in [0, device_count).
  /// `reach` is the per-dimension dependency reach in blocks (see
  /// gpu/resident.hpp) for strategies that weigh cross-device dependencies;
  /// pass an empty span when unknown and such strategies fall back to pure
  /// load balancing. `excluded` (empty, or one flag per device ordinal;
  /// nonzero = excluded) removes devices from consideration — recovery
  /// re-placement passes the lost devices here and every strategy then
  /// distributes all blocks over the survivors only. At least one device
  /// must remain. The result has exactly layout.block_count() entries.
  [[nodiscard]] virtual std::vector<int> place(
      const partition::BlockedLayout& layout, int device_count,
      std::span<const std::int64_t> reach = {},
      std::span<const std::uint8_t> excluded = {}) const = 0;
};

/// Factory for the built-in strategies.
[[nodiscard]] std::unique_ptr<PlacementStrategy> make_placement(
    PlacementKind kind);

}  // namespace pcmax::placement
