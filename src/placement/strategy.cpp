#include "placement/strategy.hpp"

#include <algorithm>

#include "dp/mixed_radix.hpp"
#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::placement {
namespace {

/// Device ordinals still usable under `excluded` (empty mask = everyone).
/// Every strategy places over this alive list so exclusion composes with
/// any distribution rule.
std::vector<int> alive_devices(int device_count,
                               std::span<const std::uint8_t> excluded) {
  PCMAX_EXPECTS(device_count >= 1);
  PCMAX_EXPECTS(excluded.empty() ||
                excluded.size() >= static_cast<std::size_t>(device_count));
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(device_count));
  for (int d = 0; d < device_count; ++d)
    if (excluded.empty() || excluded[static_cast<std::size_t>(d)] == 0)
      alive.push_back(d);
  PCMAX_EXPECTS(!alive.empty());
  return alive;
}

class RoundRobin final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementKind kind() const noexcept override {
    return PlacementKind::kRoundRobin;
  }

  [[nodiscard]] std::vector<int> place(
      const partition::BlockedLayout& layout, int device_count,
      std::span<const std::int64_t> /*reach*/,
      std::span<const std::uint8_t> excluded) const override {
    const std::vector<int> alive = alive_devices(device_count, excluded);
    std::vector<int> plan(layout.block_count());
    for (std::uint64_t b = 0; b < plan.size(); ++b)
      plan[b] = alive[static_cast<std::size_t>(b % alive.size())];
    return plan;
  }
};

class LevelContiguous final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementKind kind() const noexcept override {
    return PlacementKind::kLevelContiguous;
  }

  [[nodiscard]] std::vector<int> place(
      const partition::BlockedLayout& layout, int device_count,
      std::span<const std::int64_t> /*reach*/,
      std::span<const std::uint8_t> excluded) const override {
    const std::vector<int> alive = alive_devices(device_count, excluded);
    std::vector<int> plan(layout.block_count());
    const dp::LevelBuckets buckets(layout.grid());
    // Each level's blocks (already in ascending id order inside a bucket)
    // split into one contiguous run per alive device, so neighbouring
    // blocks — which share the most dependency overlap — land on the same
    // device.
    for (std::int64_t lvl = 0; lvl < buckets.levels(); ++lvl) {
      const auto ids = buckets.cells_at(lvl);
      const std::uint64_t n = ids.size();
      for (std::uint64_t i = 0; i < n; ++i)
        plan[ids[i]] = alive[static_cast<std::size_t>(i * alive.size() / n)];
    }
    return plan;
  }
};

class MemoryBalanced final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementKind kind() const noexcept override {
    return PlacementKind::kMemoryBalanced;
  }

  [[nodiscard]] std::vector<int> place(
      const partition::BlockedLayout& layout, int device_count,
      std::span<const std::int64_t> reach,
      std::span<const std::uint8_t> excluded) const override {
    const std::vector<int> alive = alive_devices(device_count, excluded);
    const std::uint64_t block_count = layout.block_count();
    // Hard cap: no alive device holds more than ceil(B / A) blocks, so
    // per-device table memory is balanced to within one block regardless of
    // affinity.
    const std::uint64_t cap = util::ceil_div(block_count, alive.size());
    std::vector<int> plan(block_count, -1);
    std::vector<std::uint64_t> load(static_cast<std::size_t>(device_count), 0);
    std::vector<std::uint64_t> votes(static_cast<std::size_t>(device_count));
    const dp::LevelBuckets buckets(layout.grid());
    const dp::MixedRadix& grid = layout.grid();
    std::vector<std::int64_t> g(grid.dims());
    // Greedy in wavefront order: every reach predecessor of a block lies on
    // a strictly lower block-level, so it is already placed when the block
    // is considered and can vote for its device.
    for (std::int64_t lvl = 0; lvl < buckets.levels(); ++lvl) {
      for (const std::uint64_t block_id : buckets.cells_at(lvl)) {
        std::fill(votes.begin(), votes.end(), 0);
        grid.unflatten(block_id, g);
        for_each_reach_predecessor(
            grid, g, reach, [&](std::uint64_t pred) {
              ++votes[static_cast<std::size_t>(plan[pred])];
            });
        int best = -1;
        for (const int d : alive) {
          if (load[static_cast<std::size_t>(d)] >= cap) continue;
          if (best < 0) {
            best = d;
            continue;
          }
          const auto bd = static_cast<std::size_t>(best);
          const auto dd = static_cast<std::size_t>(d);
          // Most dependency affinity wins; ties go to the lighter device,
          // then the lower ordinal — all deterministic.
          if (votes[dd] > votes[bd] ||
              (votes[dd] == votes[bd] && load[dd] < load[bd]))
            best = d;
        }
        PCMAX_EXPECTS(best >= 0);  // cap * alive count >= block_count
        plan[block_id] = best;
        ++load[static_cast<std::size_t>(best)];
      }
    }
    return plan;
  }
};

}  // namespace

std::string_view placement_kind_name(PlacementKind kind) noexcept {
  switch (kind) {
    case PlacementKind::kRoundRobin: return "round-robin";
    case PlacementKind::kLevelContiguous: return "level-contiguous";
    case PlacementKind::kMemoryBalanced: return "memory-balanced";
  }
  return "unknown";
}

std::optional<PlacementKind> parse_placement_kind(
    std::string_view name) noexcept {
  if (name == "round-robin") return PlacementKind::kRoundRobin;
  if (name == "level-contiguous") return PlacementKind::kLevelContiguous;
  if (name == "memory-balanced") return PlacementKind::kMemoryBalanced;
  return std::nullopt;
}

std::unique_ptr<PlacementStrategy> make_placement(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kRoundRobin: return std::make_unique<RoundRobin>();
    case PlacementKind::kLevelContiguous:
      return std::make_unique<LevelContiguous>();
    case PlacementKind::kMemoryBalanced:
      return std::make_unique<MemoryBalanced>();
  }
  return nullptr;
}

}  // namespace pcmax::placement
