// Solver interface for the higher-dimensional DP. Several interchangeable
// implementations exist (reference oracle, Algorithm-2 level scan, bucketed
// OpenMP, blocked/partitioned, GPU-simulated); all must produce identical
// tables. Solvers optionally collect per-cell dependency counts, which drive
// the deterministic CPU/GPU cost models.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dp/config.hpp"
#include "dp/problem.hpp"

namespace pcmax::dp {

/// Sentinel for a cell no machine configuration can reach (only possible
/// when some class weight exceeds the capacity).
inline constexpr std::int32_t kInfeasible =
    std::numeric_limits<std::int32_t>::max();

struct SolveOptions {
  /// Record per-cell dependency counts |C_v| in DpResult::deps.
  bool collect_deps = false;
  /// OpenMP thread count; 0 uses the runtime default.
  int num_threads = 0;
};

struct DpResult {
  /// OPT(N): minimum machine count, or kInfeasible.
  std::int32_t opt = kInfeasible;
  /// Full DP table, row-major; table.back() == opt.
  std::vector<std::int32_t> table;
  /// Per-cell |C_v| (valid sub-configuration count); empty unless
  /// SolveOptions::collect_deps was set. deps[0] corresponds to cell 0,
  /// whose value is its |C_v| even though the origin's OPT is fixed to 0.
  std::vector<std::uint32_t> deps;
  /// |C|: size of the global configuration set.
  std::uint64_t config_count = 0;
};

class DpSolver {
 public:
  virtual ~DpSolver() = default;

  /// Fills the whole DP table for `problem`. Implementations must be
  /// deterministic: same problem, same result, regardless of thread count.
  [[nodiscard]] virtual DpResult solve(const DpProblem& problem,
                                       const SolveOptions& options) const = 0;

  [[nodiscard]] DpResult solve(const DpProblem& problem) const {
    return solve(problem, SolveOptions{});
  }

  /// Human-readable solver name for logs and bench output.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Obviously-correct single-threaded oracle: iterates cells in level order
/// via LevelBuckets and applies Equation (1) directly.
class ReferenceSolver final : public DpSolver {
 public:
  using DpSolver::solve;
  [[nodiscard]] DpResult solve(const DpProblem& problem,
                               const SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override { return "reference"; }
};

/// Paper-faithful Algorithm 2: for every anti-diagonal level l, scan all
/// sigma cells (in parallel) and compute those whose level equals l. The
/// full-table scan per level is deliberate — it is the OpenMP baseline the
/// paper compares against.
class LevelScanSolver final : public DpSolver {
 public:
  using DpSolver::solve;
  [[nodiscard]] DpResult solve(const DpProblem& problem,
                               const SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override { return "level-scan"; }
};

/// Optimized level-synchronous solver: cells are pre-bucketed by level and
/// each bucket is processed with an OpenMP parallel-for.
class LevelBucketSolver final : public DpSolver {
 public:
  using DpSolver::solve;
  [[nodiscard]] DpResult solve(const DpProblem& problem,
                               const SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override { return "level-bucket"; }
};

/// Computes one cell's OPT given the already-filled prefix of the table.
/// Shared by every solver so they cannot diverge on the recurrence itself.
/// `level` must be the cell's anti-diagonal level (coordinate sum of `v`).
/// Returns the OPT value for the cell and (optionally) counts dependencies.
/// When dep_count is null the scan stops early once the cell provably
/// reached its level lower bound ceil(level / max_level_drop); with
/// dep_count set every fitting configuration is visited so |C_v| is exact.
[[nodiscard]] std::int32_t solve_cell(const ConfigSet& configs,
                                      std::span<const std::int64_t> v,
                                      std::int64_t level, std::uint64_t id,
                                      std::span<const std::int32_t> table,
                                      std::uint32_t* dep_count) noexcept;

/// The smallest value `best` (the minimum over sub-configuration OPTs) can
/// take for a cell at `level`: every machine removes at most max_drop jobs,
/// so the cell's final value best + 1 is at least ceil(level / max_drop).
/// Exposed for the engines that run their own reduction loop over
/// ConfigSet::for_each_fitting (blocked, frontier, executable GPU).
[[nodiscard]] constexpr std::int32_t level_floor_best(
    std::int64_t level, std::int64_t max_drop) noexcept {
  if (max_drop <= 0) return kInfeasible;
  return static_cast<std::int32_t>((level + max_drop - 1) / max_drop) - 1;
}

}  // namespace pcmax::dp
