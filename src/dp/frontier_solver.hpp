// Memory-frugal DP solver: keeps only a sliding window of anti-diagonal
// levels instead of the full table.
//
// Every machine configuration removes at least one job, and at most
// `capacity / min_weight` jobs; a cell at level l therefore depends only on
// levels [l - window, l - 1]. Holding just those levels bounds memory by
// the widest `window + 1` consecutive levels — for large tables a small
// fraction of sigma. The tradeoff: no full table, so no schedule
// reconstruction; the solver reports OPT(N) and per-level statistics. The
// paper's Section V ("only the values of the subproblems in these blocks
// are needed on the GPU") gestures at exactly this kind of working-set
// reduction.
//
// Caveat: the level *index* (LevelBuckets) is still table-sized; the
// sliding window bounds the *value* storage, which is what grows with the
// payload in general DP applications (the PTAS stores one int32 per cell,
// knapsack-style tables store values plus choice data).
#pragma once

#include <cstdint>
#include <vector>

#include "dp/solver.hpp"

namespace pcmax::dp {

struct FrontierOptions {
  /// Retain the full row-major table in FrontierResult::table. This gives up
  /// the memory saving (the table is materialized alongside the window) but
  /// makes the frontier solver bit-comparable with the full-table engines —
  /// used by the differential test harness. peak_resident_cells still
  /// reports the windowed working set.
  bool keep_table = false;
};

struct FrontierResult {
  /// OPT(N), or kInfeasible.
  std::int32_t opt = kInfeasible;
  /// Dependency window in levels (max jobs one machine can hold).
  std::int64_t window = 0;
  /// Peak cells resident at once (the memory bound), vs the full table.
  std::uint64_t peak_resident_cells = 0;
  std::uint64_t table_cells = 0;
  /// Full row-major table; empty unless FrontierOptions::keep_table was set.
  std::vector<std::int32_t> table;
};

/// Solves the DP keeping only `window + 1` levels in memory.
[[nodiscard]] FrontierResult solve_frontier(const DpProblem& problem,
                                            const FrontierOptions& options = {});

}  // namespace pcmax::dp
