#include "dp/frontier_solver.hpp"

#include <algorithm>
#include <vector>

#include "dp/config.hpp"
#include "util/contracts.hpp"

namespace pcmax::dp {

FrontierResult solve_frontier(const DpProblem& problem,
                              const FrontierOptions& options) {
  problem.validate();
  const MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(radix.dims() <= 64);
  const ConfigSet configs(problem.counts, problem.weights, problem.capacity,
                          radix);
  const LevelBuckets buckets(radix);

  FrontierResult result;
  result.table_cells = radix.size();
  if (options.keep_table)
    result.table.assign(radix.size(), kInfeasible);

  // Window: the largest number of jobs any configuration removes.
  std::int64_t window = 0;
  for (std::size_t c = 0; c < configs.size(); ++c)
    window = std::max(window, configs.level_drop(c));
  result.window = window;
  if (window == 0) {
    // No configurations at all: OPT is 0 only for the empty count vector.
    result.opt = problem.total_jobs() == 0 ? 0 : kInfeasible;
    result.peak_resident_cells = 1;
    if (options.keep_table) result.table[0] = 0;
    return result;
  }

  // Ring of the last `window + 1` levels. Each slot holds the level's
  // values aligned with its (sorted) bucket; lookups binary-search the
  // dependency's id inside its level bucket.
  const auto slots = static_cast<std::size_t>(window) + 1;
  std::vector<std::vector<std::int32_t>> ring(slots);
  std::vector<std::int64_t> ring_level(slots, -1);

  const auto values_of = [&](std::int64_t level) -> std::vector<std::int32_t>& {
    const auto slot = static_cast<std::size_t>(level % static_cast<std::int64_t>(slots));
    PCMAX_ENSURES(ring_level[slot] == level);
    return ring[slot];
  };

  std::int64_t coords[64];
  std::span<std::int64_t> v(coords, radix.dims());

  for (std::int64_t level = 0; level < buckets.levels(); ++level) {
    const auto cells = buckets.cells_at(level);
    const auto slot = static_cast<std::size_t>(level % static_cast<std::int64_t>(slots));
    ring[slot].assign(cells.size(), kInfeasible);
    ring_level[slot] = level;

    std::uint64_t resident = 0;
    for (const auto& r : ring) resident += r.size();
    result.peak_resident_cells = std::max(result.peak_resident_cells,
                                          resident);

    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::uint64_t id = cells[i];
      if (id == 0) {
        ring[slot][i] = 0;
        continue;
      }
      radix.unflatten(id, v);
      std::int32_t best = kInfeasible;
      for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!configs.fits(c, v)) continue;
        const std::uint64_t sub_id = id - configs.delta(c);
        const std::int64_t sub_level = level - configs.level_drop(c);
        const auto sub_cells = buckets.cells_at(sub_level);
        const auto it = std::lower_bound(sub_cells.begin(), sub_cells.end(),
                                         sub_id);
        PCMAX_ENSURES(it != sub_cells.end() && *it == sub_id);
        const auto pos = static_cast<std::size_t>(it - sub_cells.begin());
        const std::int32_t sub = values_of(sub_level)[pos];
        if (sub < best) best = sub;
      }
      ring[slot][i] = best == kInfeasible ? kInfeasible : best + 1;
    }
    if (options.keep_table)
      for (std::size_t i = 0; i < cells.size(); ++i)
        result.table[cells[i]] = ring[slot][i];
  }

  result.opt = values_of(buckets.levels() - 1)[0];
  return result;
}

}  // namespace pcmax::dp
