#include "dp/frontier_solver.hpp"

#include <algorithm>
#include <vector>

#include "dp/config.hpp"
#include "dp/solver.hpp"
#include "faultsim/injector.hpp"
#include "util/contracts.hpp"

namespace pcmax::dp {

FrontierResult solve_frontier(const DpProblem& problem,
                              const FrontierOptions& options) {
  problem.validate();
  const MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(radix.dims() <= 64);
  const ConfigSet configs(problem.counts, problem.weights, problem.capacity,
                          radix);
  const LevelBuckets buckets(radix);

  FrontierResult result;
  result.table_cells = radix.size();
  if (options.keep_table) {
    faultsim::check_host_alloc(radix.size() * sizeof(std::int32_t));
    result.table.assign(radix.size(), kInfeasible);
  }

  // Window: the largest number of jobs any configuration removes.
  const std::int64_t window = configs.max_level_drop();
  result.window = window;
  if (window == 0) {
    // No configurations at all: OPT is 0 only for the empty count vector.
    result.opt = problem.total_jobs() == 0 ? 0 : kInfeasible;
    result.peak_resident_cells = 1;
    if (options.keep_table) result.table[0] = 0;
    return result;
  }

  // Ring of the last `window + 1` levels. Each slot holds the level's
  // values aligned with its (sorted) bucket; lookups binary-search the
  // dependency's id inside its level bucket.
  const auto slots = static_cast<std::size_t>(window) + 1;
  std::vector<std::vector<std::int32_t>> ring(slots);
  std::vector<std::int64_t> ring_level(slots, -1);

  const auto values_of = [&](std::int64_t level) -> std::vector<std::int32_t>& {
    const auto slot = static_cast<std::size_t>(level % static_cast<std::int64_t>(slots));
    PCMAX_ENSURES(ring_level[slot] == level);
    return ring[slot];
  };

  std::int64_t coords[64];
  std::span<std::int64_t> v(coords, radix.dims());

  // Per-configuration cursor into the dependency's level bucket. Cells
  // within a level ascend by id, so sub_id = id - delta(c) ascends per
  // configuration and the cursor only ever moves forward within a level —
  // an amortized O(|bucket|) replacement for per-dependency binary search.
  std::vector<std::size_t> cursor(configs.size(), 0);

  for (std::int64_t level = 0; level < buckets.levels(); ++level) {
    const auto cells = buckets.cells_at(level);
    const auto slot = static_cast<std::size_t>(level % static_cast<std::int64_t>(slots));
    ring[slot].assign(cells.size(), kInfeasible);
    ring_level[slot] = level;

    std::uint64_t resident = 0;
    for (const auto& r : ring) resident += r.size();
    result.peak_resident_cells = std::max(result.peak_resident_cells,
                                          resident);

    std::fill(cursor.begin(), cursor.end(), 0);
    const std::int32_t floor_best = level_floor_best(level, window);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::uint64_t id = cells[i];
      if (id == 0) {
        ring[slot][i] = 0;
        continue;
      }
      radix.unflatten(id, v);
      std::int32_t best = kInfeasible;
      configs.for_each_fitting(v, level, [&](std::size_t c) {
        const std::uint64_t sub_id = id - configs.delta(c);
        const std::int64_t sub_level = level - configs.level_drop(c);
        const auto sub_cells = buckets.cells_at(sub_level);
        std::size_t& cur = cursor[c];
        while (cur < sub_cells.size() && sub_cells[cur] < sub_id) ++cur;
        PCMAX_ENSURES(cur < sub_cells.size() && sub_cells[cur] == sub_id);
        const std::int32_t sub = values_of(sub_level)[cur];
        if (sub < best) best = sub;
        return best > floor_best;
      });
      ring[slot][i] = best == kInfeasible ? kInfeasible : best + 1;
    }
    if (options.keep_table)
      for (std::size_t i = 0; i < cells.size(); ++i)
        result.table[cells[i]] = ring[slot][i];
  }

  result.opt = values_of(buckets.levels() - 1)[0];
  faultsim::maybe_corrupt_table(result.table, result.opt);
  return result;
}

}  // namespace pcmax::dp
