#include "dp/solver.hpp"

#include <omp.h>

#include "faultsim/injector.hpp"
#include "util/contracts.hpp"

namespace pcmax::dp {

namespace {

/// Shared per-solve context so the three solvers differ only in their
/// iteration strategy.
struct SolveContext {
  MixedRadix radix;
  ConfigSet configs;
  DpResult result;

  SolveContext(const DpProblem& problem, const SolveOptions& options)
      : radix(problem.radix()),
        configs(problem.counts, problem.weights, problem.capacity, radix) {
    problem.validate();
    // Solvers keep coordinates in fixed stack buffers inside hot loops.
    PCMAX_EXPECTS(radix.dims() <= 64);
    faultsim::check_host_alloc(radix.size() * sizeof(std::int32_t));
    result.table.assign(radix.size(), kInfeasible);
    result.table[0] = 0;
    if (options.collect_deps) result.deps.assign(radix.size(), 0);
    result.config_count = configs.size();
  }

  void finish() {
    result.opt = result.table.back();
    faultsim::maybe_corrupt_table(result.table, result.opt);
  }
};

int resolve_threads(const SolveOptions& options) {
  return options.num_threads > 0 ? options.num_threads
                                 : omp_get_max_threads();
}

}  // namespace

std::int32_t solve_cell(const ConfigSet& configs,
                        std::span<const std::int64_t> v, std::int64_t level,
                        std::uint64_t id,
                        std::span<const std::int32_t> table,
                        std::uint32_t* dep_count) noexcept {
  std::int32_t best = kInfeasible;
  std::uint32_t deps = 0;
  const bool exact_deps = dep_count != nullptr;
  const std::int32_t floor_best =
      level_floor_best(level, configs.max_level_drop());
  configs.for_each_fitting(
      v, level, [&](std::size_t c) noexcept {
        ++deps;
        const std::int32_t sub = table[id - configs.delta(c)];
        if (sub < best) best = sub;
        return exact_deps || best > floor_best;
      });
  if (dep_count != nullptr) *dep_count = deps;
  return best == kInfeasible ? kInfeasible : best + 1;
}

DpResult ReferenceSolver::solve(const DpProblem& problem,
                                const SolveOptions& options) const {
  SolveContext ctx(problem, options);
  const LevelBuckets buckets(ctx.radix);
  std::vector<std::int64_t> v(ctx.radix.dims());
  for (std::int64_t level = 1; level < buckets.levels(); ++level) {
    for (const std::uint64_t id : buckets.cells_at(level)) {
      ctx.radix.unflatten(id, v);
      std::uint32_t* deps =
          options.collect_deps ? &ctx.result.deps[id] : nullptr;
      ctx.result.table[id] =
          solve_cell(ctx.configs, v, level, id, ctx.result.table, deps);
    }
  }
  if (options.collect_deps && !ctx.result.deps.empty()) {
    // The origin's dependency count (configs fitting the zero vector) is
    // zero by construction since configurations are non-empty.
    ctx.result.deps[0] = 0;
  }
  ctx.finish();
  return ctx.result;
}

DpResult LevelScanSolver::solve(const DpProblem& problem,
                                const SolveOptions& options) const {
  SolveContext ctx(problem, options);
  const auto size = ctx.radix.size();
  const std::int64_t levels = ctx.radix.max_level();
  const int threads = resolve_threads(options);

  // Algorithm 2, lines 10-25: one sequential pass per anti-diagonal level,
  // each pass scanning the entire table in parallel.
  for (std::int64_t level = 1; level <= levels; ++level) {
#pragma omp parallel for num_threads(threads) schedule(static) \
    firstprivate(level)
    for (std::int64_t signed_id = 1;
         signed_id < static_cast<std::int64_t>(size); ++signed_id) {
      const auto id = static_cast<std::uint64_t>(signed_id);
      std::int64_t coords[64];
      std::span<std::int64_t> v(coords, ctx.radix.dims());
      ctx.radix.unflatten(id, v);
      std::int64_t d = 0;
      for (const auto x : v) d += x;
      if (d != level) continue;
      std::uint32_t* deps =
          options.collect_deps ? &ctx.result.deps[id] : nullptr;
      ctx.result.table[id] =
          solve_cell(ctx.configs, v, level, id, ctx.result.table, deps);
    }
  }
  ctx.finish();
  return ctx.result;
}

DpResult LevelBucketSolver::solve(const DpProblem& problem,
                                  const SolveOptions& options) const {
  SolveContext ctx(problem, options);
  const LevelBuckets buckets(ctx.radix);
  const int threads = resolve_threads(options);

  for (std::int64_t level = 1; level < buckets.levels(); ++level) {
    const auto cells = buckets.cells_at(level);
#pragma omp parallel for num_threads(threads) schedule(dynamic, 64)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(cells.size());
         ++i) {
      const std::uint64_t id = cells[static_cast<std::size_t>(i)];
      std::int64_t coords[64];
      std::span<std::int64_t> v(coords, ctx.radix.dims());
      ctx.radix.unflatten(id, v);
      std::uint32_t* deps =
          options.collect_deps ? &ctx.result.deps[id] : nullptr;
      ctx.result.table[id] =
          solve_cell(ctx.configs, v, level, id, ctx.result.table, deps);
    }
  }
  ctx.finish();
  return ctx.result;
}

}  // namespace pcmax::dp
