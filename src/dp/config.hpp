// Machine-configuration enumeration.
//
// For the PTAS, a machine configuration is a vector s = (s_1, ..., s_d) of
// per-class job counts assignable to one machine: 0 <= s_i <= n_i, s != 0, and
// sum_i s_i * w_i <= capacity, where w_i is the class weight (for Hochbaum-
// Shmoys rounding, w_i is the class index and the capacity is k^2 — exact
// integer arithmetic, see DESIGN.md). The set C of all configurations is the
// dependency stencil of the DP recurrence: OPT(v) = 1 + min_{s in C, s <= v}
// OPT(v - s).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dp/fitset.hpp"
#include "dp/mixed_radix.hpp"

namespace pcmax::dp {

/// All machine configurations for a count vector / weight vector / capacity,
/// stored flat (dims() entries per configuration) together with the row-major
/// flat-index delta each configuration induces on the DP table.
class ConfigSet {
 public:
  /// Enumerates every configuration. `counts`, `weights` must have equal,
  /// positive length; weights must be positive; capacity must be >= 0.
  /// `radix` must be the table radix (extents counts[i]+1) so index deltas
  /// can be precomputed.
  ConfigSet(std::span<const std::int64_t> counts,
            std::span<const std::int64_t> weights, std::int64_t capacity,
            const MixedRadix& radix);

  [[nodiscard]] std::size_t size() const noexcept { return deltas_.size(); }
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }

  /// The i-th configuration vector.
  [[nodiscard]] std::span<const std::int64_t> config(std::size_t i) const {
    return {flat_.data() + i * dims_, dims_};
  }

  /// Row-major flat-index delta of the i-th configuration: flatten(v) -
  /// flatten(v - s) for any v >= s.
  [[nodiscard]] std::uint64_t delta(std::size_t i) const noexcept {
    return deltas_[i];
  }

  /// Total weight sum_j s_j * w_j of the i-th configuration.
  [[nodiscard]] std::int64_t weight(std::size_t i) const noexcept {
    return weights_[i];
  }

  /// Total job count sum_j s_j of the i-th configuration (its level drop).
  [[nodiscard]] std::int64_t level_drop(std::size_t i) const noexcept {
    return level_drops_[i];
  }

  /// True when configuration i fits under cell coordinates `v` (s <= v).
  [[nodiscard]] bool fits(std::size_t i,
                          std::span<const std::int64_t> v) const noexcept {
    const std::int64_t* s = flat_.data() + i * dims_;
    for (std::size_t j = 0; j < dims_; ++j)
      if (s[j] > v[j]) return false;
    return true;
  }

  /// Largest level drop of any configuration: the most jobs one machine can
  /// hold. 0 when the set is empty.
  [[nodiscard]] std::int64_t max_level_drop() const noexcept {
    return hot_.max_drop();
  }

  /// The SoA fits kernel (fitset.hpp): visits every configuration fitting
  /// under `v` in descending-level-drop order, calling fn(config_index) with
  /// the index in this set's (enumeration) order; fn returns false to stop.
  /// `level` must equal the coordinate sum of `v`.
  template <typename Fn>
  void for_each_fitting(std::span<const std::int64_t> v, std::int64_t level,
                        Fn&& fn) const {
    hot_.for_each_fitting(v, level, static_cast<Fn&&>(fn));
  }

 private:
  std::size_t dims_;
  std::vector<std::int64_t> flat_;        // size() * dims() entries
  std::vector<std::uint64_t> deltas_;     // per configuration
  std::vector<std::int64_t> weights_;     // per configuration
  std::vector<std::int64_t> level_drops_; // per configuration
  FitSet hot_;                            // SoA fits kernel over flat_
};

/// Number of sub-configuration *candidates* the paper's GPU kernel
/// FindValidSub enumerates for a cell v: prod_i (v_i + 1) (Algorithm 5,
/// lines 13-16) — every s <= v before validity filtering.
[[nodiscard]] std::uint64_t candidate_count(std::span<const std::int64_t> v);

}  // namespace pcmax::dp
