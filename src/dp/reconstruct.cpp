#include "dp/reconstruct.hpp"

#include "util/contracts.hpp"

namespace pcmax::dp {

std::vector<std::vector<std::int64_t>> reconstruct_machines(
    const DpProblem& problem, const DpResult& result) {
  problem.validate();
  const MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(result.table.size() == radix.size());
  PCMAX_EXPECTS(result.opt != kInfeasible);

  const ConfigSet configs(problem.counts, problem.weights, problem.capacity,
                          radix);

  std::vector<std::vector<std::int64_t>> machines;
  machines.reserve(static_cast<std::size_t>(result.opt));

  std::vector<std::int64_t> v = problem.counts;
  std::uint64_t id = radix.flatten(v);
  while (id != 0) {
    const std::int32_t opt_here = result.table[id];
    PCMAX_ENSURES(opt_here != kInfeasible && opt_here > 0);
    bool advanced = false;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (!configs.fits(c, v)) continue;
      const std::uint64_t sub_id = id - configs.delta(c);
      if (result.table[sub_id] != opt_here - 1) continue;
      const auto s = configs.config(c);
      machines.emplace_back(s.begin(), s.end());
      for (std::size_t j = 0; j < v.size(); ++j) v[j] -= s[j];
      id = sub_id;
      advanced = true;
      break;
    }
    // A solved table always admits a predecessor on the optimal path.
    PCMAX_ENSURES(advanced);
  }

  PCMAX_ENSURES(machines.size() == static_cast<std::size_t>(result.opt));
  return machines;
}

}  // namespace pcmax::dp
