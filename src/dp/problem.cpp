#include "dp/problem.hpp"

#include <numeric>

#include "util/contracts.hpp"

namespace pcmax::dp {

void DpProblem::validate() const {
  PCMAX_EXPECTS(!counts.empty());
  PCMAX_EXPECTS(counts.size() == weights.size());
  PCMAX_EXPECTS(capacity >= 0);
  for (const auto n : counts) PCMAX_EXPECTS(n >= 0);
  for (const auto w : weights) PCMAX_EXPECTS(w >= 1);
}

MixedRadix DpProblem::radix() const {
  std::vector<std::int64_t> extents(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) extents[i] = counts[i] + 1;
  return MixedRadix(std::move(extents));
}

std::int64_t DpProblem::total_jobs() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
}

std::uint64_t DpProblem::table_size() const { return radix().size(); }

}  // namespace pcmax::dp
