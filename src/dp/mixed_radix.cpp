#include "dp/mixed_radix.hpp"

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::dp {

MixedRadix::MixedRadix(std::vector<std::int64_t> extents)
    : extents_(std::move(extents)) {
  PCMAX_EXPECTS(!extents_.empty());
  for (const auto e : extents_) PCMAX_EXPECTS(e >= 1);

  strides_.assign(extents_.size(), 1);
  size_ = 1;
  for (std::size_t i = extents_.size(); i-- > 0;) {
    strides_[i] = size_;
    size_ = util::checked_mul(size_, static_cast<std::uint64_t>(extents_[i]));
    max_level_ += extents_[i] - 1;
  }
}

std::uint64_t MixedRadix::flatten(std::span<const std::int64_t> v) const {
  PCMAX_EXPECTS(v.size() == extents_.size());
  std::uint64_t index = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    PCMAX_EXPECTS(v[i] >= 0 && v[i] < extents_[i]);
    index += static_cast<std::uint64_t>(v[i]) * strides_[i];
  }
  return index;
}

void MixedRadix::unflatten(std::uint64_t index,
                           std::span<std::int64_t> out) const {
  PCMAX_EXPECTS(index < size_);
  PCMAX_EXPECTS(out.size() == extents_.size());
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    out[i] = static_cast<std::int64_t>(index / strides_[i]);
    index %= strides_[i];
  }
}

std::vector<std::int64_t> MixedRadix::unflatten(std::uint64_t index) const {
  std::vector<std::int64_t> v(dims());
  unflatten(index, v);
  return v;
}

std::int64_t MixedRadix::level_of(std::uint64_t index) const {
  PCMAX_EXPECTS(index < size_);
  std::int64_t level = 0;
  for (std::size_t i = 0; i < extents_.size(); ++i) {
    level += static_cast<std::int64_t>(index / strides_[i]);
    index %= strides_[i];
  }
  return level;
}

bool MixedRadix::contains(std::span<const std::int64_t> v) const noexcept {
  if (v.size() != extents_.size()) return false;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] < 0 || v[i] >= extents_[i]) return false;
  return true;
}

LevelBuckets::LevelBuckets(const MixedRadix& radix) {
  const auto levels = static_cast<std::size_t>(radix.max_level()) + 1;
  std::vector<std::uint64_t> counts(levels, 0);

  // Counting sort by level. Levels are computed incrementally by walking the
  // coordinate odometer instead of dividing per cell; this is O(size) total.
  const auto& extents = radix.extents();
  std::vector<std::int64_t> coord(radix.dims(), 0);
  std::int64_t level = 0;
  for (std::uint64_t id = 0; id < radix.size(); ++id) {
    ++counts[static_cast<std::size_t>(level)];
    // Advance odometer (row-major: last coordinate fastest).
    for (std::size_t i = radix.dims(); i-- > 0;) {
      if (++coord[i] < extents[i]) {
        ++level;
        break;
      }
      level -= extents[i] - 1;
      coord[i] = 0;
    }
  }

  offsets_.assign(levels + 1, 0);
  for (std::size_t l = 0; l < levels; ++l)
    offsets_[l + 1] = offsets_[l] + counts[l];

  ids_.resize(radix.size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  std::fill(coord.begin(), coord.end(), 0);
  level = 0;
  for (std::uint64_t id = 0; id < radix.size(); ++id) {
    ids_[cursor[static_cast<std::size_t>(level)]++] = id;
    for (std::size_t i = radix.dims(); i-- > 0;) {
      if (++coord[i] < extents[i]) {
        ++level;
        break;
      }
      level -= extents[i] - 1;
      coord[i] = 0;
    }
  }
}

std::span<const std::uint64_t> LevelBuckets::cells_at(
    std::int64_t level) const {
  PCMAX_EXPECTS(level >= 0 && level < levels());
  const auto l = static_cast<std::size_t>(level);
  return {ids_.data() + offsets_[l], ids_.data() + offsets_[l + 1]};
}

}  // namespace pcmax::dp
