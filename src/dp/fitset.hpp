// The shared dependency-stencil kernel: a set of non-negative coordinate
// rows (machine configurations for the PTAS DP, item weight vectors for the
// knapsack DP) stored in a structure-of-arrays hot layout, with the
// componentwise fits test (s <= v) every DP engine's inner loop spends its
// time in. One implementation serves all engines so the differential fuzzer
// cross-checks the optimized path everywhere at once.
//
// Three structural optimizations, all exact:
//  * rows are sorted by descending level drop (sum of coordinates) and
//    bucketed by drop, so a cell at anti-diagonal level l only scans rows
//    with drop <= l — rows that remove more jobs than the cell holds can
//    never fit and are skipped without a comparison;
//  * a per-dimension maximum-coordinate prefilter: dimensions where the
//    cell's coordinate already reaches the set-wide maximum cannot reject
//    any row, so the inner fits test only touches the remaining dimensions;
//  * the fits test itself is branchless (an AND-accumulated comparison over
//    the SoA columns), trading unpredictable per-dimension branches for
//    straight-line compares.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pcmax::dp {

class FitSet {
 public:
  FitSet() = default;

  /// `rows` holds `size` rows of `dims` coordinates each, flattened
  /// row-major in the caller's original order; every coordinate must be
  /// >= 0. for_each_fitting reports rows by their original index, so
  /// callers keep addressing their own row-indexed data.
  FitSet(std::span<const std::int64_t> rows, std::size_t dims);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }

  /// Largest level drop (row coordinate sum) over the set; 0 when empty.
  [[nodiscard]] std::int64_t max_drop() const noexcept { return max_drop_; }

  /// Maximum coordinate of any row in dimension j.
  [[nodiscard]] std::int64_t max_coord(std::size_t j) const noexcept {
    return max_coord_[j];
  }

  /// Visits every row s with s <= v componentwise, in descending-level-drop
  /// order, calling fn(original_row_index); fn returns true to continue or
  /// false to stop the scan. `level` must be the coordinate sum of `v` (the
  /// cell's anti-diagonal level); rows with drop > level are skipped
  /// wholesale. dims() must be <= 64.
  template <typename Fn>
  void for_each_fitting(std::span<const std::int64_t> v, std::int64_t level,
                        Fn&& fn) const {
    if (size_ == 0 || level <= 0) return;
    // Prefilter: only dimensions whose cell coordinate is below the
    // set-wide maximum can reject a row.
    const std::int64_t* cols[64];
    std::int64_t caps[64];
    std::size_t checked = 0;
    for (std::size_t j = 0; j < dims_; ++j) {
      if (v[j] < max_coord_[j]) {
        cols[checked] = soa_.data() + j * size_;
        caps[checked] = v[j];
        ++checked;
      }
    }
    const std::size_t begin =
        level >= max_drop_
            ? 0
            : begin_at_drop_[static_cast<std::size_t>(level)];
    for (std::size_t i = begin; i < size_; ++i) {
      std::uint64_t ok = 1;
      for (std::size_t t = 0; t < checked; ++t)
        ok &= static_cast<std::uint64_t>(cols[t][i] <= caps[t]);
      if (ok == 0) continue;
      if (!fn(static_cast<std::size_t>(orig_[i]))) return;
    }
  }

 private:
  std::size_t dims_ = 0;
  std::size_t size_ = 0;
  std::vector<std::int64_t> soa_;        // dims_ columns of size_ entries
  std::vector<std::uint32_t> orig_;      // sorted position -> original row
  std::vector<std::size_t> begin_at_drop_;  // first position with drop <= l
  std::vector<std::int64_t> max_coord_;  // per dimension
  std::int64_t max_drop_ = 0;
};

}  // namespace pcmax::dp
