#include "dp/fitset.hpp"

#include <algorithm>
#include <numeric>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace pcmax::dp {

FitSet::FitSet(std::span<const std::int64_t> rows, std::size_t dims)
    : dims_(dims) {
  PCMAX_EXPECTS(dims >= 1);
  PCMAX_EXPECTS(dims <= 64);
  PCMAX_EXPECTS(rows.size() % dims == 0);
  size_ = rows.size() / dims;
  PCMAX_EXPECTS(size_ <= 0xFFFFFFFFull);
  for (const auto x : rows) PCMAX_EXPECTS(x >= 0);
  // Per-build aggregates only: the fits scan itself is the DP's innermost
  // loop and must stay untouched by instrumentation.
  obs::count("fitset.builds");
  obs::count("fitset.rows", size_);
  obs::observe("fitset.rows_per_build", static_cast<std::int64_t>(size_));

  std::vector<std::int64_t> drops(size_, 0);
  for (std::size_t i = 0; i < size_; ++i)
    for (std::size_t j = 0; j < dims_; ++j)
      drops[i] += rows[i * dims_ + j];
  max_drop_ = size_ == 0 ? 0 : *std::max_element(drops.begin(), drops.end());

  // Descending drop; original order breaks ties so the scan order is
  // deterministic and stable across rebuilds.
  orig_.resize(size_);
  std::iota(orig_.begin(), orig_.end(), 0u);
  std::stable_sort(orig_.begin(), orig_.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return drops[a] > drops[b];
                   });

  // Transpose into dimension-major columns in sorted order.
  soa_.resize(size_ * dims_);
  max_coord_.assign(dims_, 0);
  for (std::size_t pos = 0; pos < size_; ++pos) {
    const std::size_t row = orig_[pos];
    for (std::size_t j = 0; j < dims_; ++j) {
      const std::int64_t x = rows[row * dims_ + j];
      soa_[j * size_ + pos] = x;
      max_coord_[j] = std::max(max_coord_[j], x);
    }
  }

  // begin_at_drop_[l]: first sorted position whose drop is <= l — i.e. the
  // number of rows with drop > l, since positions are sorted descending.
  std::vector<std::size_t> rows_with_drop(
      static_cast<std::size_t>(max_drop_) + 1, 0);
  for (std::size_t i = 0; i < size_; ++i)
    ++rows_with_drop[static_cast<std::size_t>(drops[i])];
  begin_at_drop_.assign(static_cast<std::size_t>(max_drop_) + 1, 0);
  for (std::size_t l = static_cast<std::size_t>(max_drop_); l-- > 0;)
    begin_at_drop_[l] = begin_at_drop_[l + 1] + rows_with_drop[l + 1];
}

}  // namespace pcmax::dp
