// Backtracks a solved DP table into one machine configuration per machine
// (Algorithm 1, line 10: "Obtain the schedule for rounded down long job
// sizes").
#pragma once

#include <cstdint>
#include <vector>

#include "dp/config.hpp"
#include "dp/problem.hpp"
#include "dp/solver.hpp"

namespace pcmax::dp {

/// One configuration per used machine; concatenated they sum to the count
/// vector N. Configurations are emitted in deterministic (first-fit over the
/// enumeration order) backtracking order.
[[nodiscard]] std::vector<std::vector<std::int64_t>> reconstruct_machines(
    const DpProblem& problem, const DpResult& result);

}  // namespace pcmax::dp
