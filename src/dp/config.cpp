#include "dp/config.hpp"

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::dp {

namespace {

struct EnumState {
  std::span<const std::int64_t> counts;
  std::span<const std::int64_t> weights;
  std::int64_t capacity;
  const MixedRadix* radix;
  std::vector<std::int64_t> current;
  std::vector<std::int64_t>* flat;
  std::vector<std::uint64_t>* deltas;
  std::vector<std::int64_t>* out_weights;
  std::vector<std::int64_t>* level_drops;
};

void enumerate(EnumState& st, std::size_t dim, std::int64_t used,
               std::int64_t jobs) {
  if (dim == st.counts.size()) {
    if (jobs == 0) return;  // the all-zero vector is not a configuration
    st.flat->insert(st.flat->end(), st.current.begin(), st.current.end());
    st.deltas->push_back(st.radix->flatten(st.current));
    st.out_weights->push_back(used);
    st.level_drops->push_back(jobs);
    return;
  }
  const std::int64_t w = st.weights[dim];
  const std::int64_t max_by_capacity = (st.capacity - used) / w;
  const std::int64_t bound = std::min(st.counts[dim], max_by_capacity);
  for (std::int64_t s = 0; s <= bound; ++s) {
    st.current[dim] = s;
    enumerate(st, dim + 1, used + s * w, jobs + s);
  }
  st.current[dim] = 0;
}

}  // namespace

ConfigSet::ConfigSet(std::span<const std::int64_t> counts,
                     std::span<const std::int64_t> weights,
                     std::int64_t capacity, const MixedRadix& radix)
    : dims_(counts.size()) {
  PCMAX_EXPECTS(!counts.empty());
  PCMAX_EXPECTS(counts.size() == weights.size());
  PCMAX_EXPECTS(radix.dims() == counts.size());
  PCMAX_EXPECTS(capacity >= 0);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    PCMAX_EXPECTS(counts[i] >= 0);
    PCMAX_EXPECTS(weights[i] >= 1);
    PCMAX_EXPECTS(radix.extents()[i] == counts[i] + 1);
  }

  EnumState st{counts, weights,        capacity,  &radix,
               std::vector<std::int64_t>(counts.size(), 0),
               &flat_,  &deltas_,      &weights_, &level_drops_};
  enumerate(st, 0, 0, 0);
  if (!flat_.empty()) hot_ = FitSet(flat_, dims_);
}

std::uint64_t candidate_count(std::span<const std::int64_t> v) {
  std::uint64_t n = 1;
  for (const auto c : v)
    n = util::checked_mul(n, static_cast<std::uint64_t>(c) + 1);
  return n;
}

}  // namespace pcmax::dp
