// Row-major mixed-radix index arithmetic for higher-dimensional DP tables.
//
// A DP table over a count vector N = (n_1, ..., n_d) has extents
// (n_1+1, ..., n_d+1); every cell is a coordinate vector v with
// 0 <= v_i <= n_i, stored at the row-major flat index
//   sum_i v_i * stride_i,  stride_d = 1, stride_i = stride_{i+1} * extent_{i+1}.
// The anti-diagonal level of a cell is sum_i v_i (Algorithm 2, line 7).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pcmax::dp {

class MixedRadix {
 public:
  /// Extents are per-dimension sizes; every extent must be >= 1.
  /// Throws util::contract_violation on empty/invalid extents and
  /// util::overflow_error if the table size exceeds 2^64-1.
  explicit MixedRadix(std::vector<std::int64_t> extents);

  [[nodiscard]] std::size_t dims() const noexcept { return extents_.size(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] const std::vector<std::int64_t>& extents() const noexcept {
    return extents_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& strides() const noexcept {
    return strides_;
  }

  /// Row-major flat index of a coordinate vector (must be in range).
  [[nodiscard]] std::uint64_t flatten(std::span<const std::int64_t> v) const;

  /// Inverse of flatten; writes dims() coordinates into `out`.
  void unflatten(std::uint64_t index, std::span<std::int64_t> out) const;

  /// Convenience overload allocating the coordinate vector.
  [[nodiscard]] std::vector<std::int64_t> unflatten(std::uint64_t index) const;

  /// Anti-diagonal level (sum of coordinates) of the cell at `index`.
  [[nodiscard]] std::int64_t level_of(std::uint64_t index) const;

  /// Largest possible level: sum of (extent_i - 1).
  [[nodiscard]] std::int64_t max_level() const noexcept { return max_level_; }

  /// True when `v` is a valid coordinate vector for this radix.
  [[nodiscard]] bool contains(std::span<const std::int64_t> v) const noexcept;

 private:
  std::vector<std::int64_t> extents_;
  std::vector<std::uint64_t> strides_;
  std::uint64_t size_ = 0;
  std::int64_t max_level_ = 0;
};

/// Cell ids of a table grouped by anti-diagonal level in CSR form:
/// cells with level l are ids()[offsets()[l] .. offsets()[l+1]).
/// Within a level, ids are in increasing row-major order — the same
/// deterministic order Algorithm 2's scan visits them in.
class LevelBuckets {
 public:
  explicit LevelBuckets(const MixedRadix& radix);

  [[nodiscard]] std::int64_t levels() const noexcept {
    return static_cast<std::int64_t>(offsets_.size()) - 1;
  }
  [[nodiscard]] std::span<const std::uint64_t> cells_at(
      std::int64_t level) const;
  [[nodiscard]] std::uint64_t count_at(std::int64_t level) const {
    return static_cast<std::uint64_t>(cells_at(level).size());
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<std::uint64_t> ids_;
};

}  // namespace pcmax::dp
