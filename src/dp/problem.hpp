// The higher-dimensional dynamic-programming problem solved inside the PTAS:
// given per-class job counts N, per-class weights w, and a machine capacity,
// compute OPT(N) = the minimum number of machines so that every machine's
// configuration s satisfies sum_i s_i * w_i <= capacity (Equation 1).
#pragma once

#include <cstdint>
#include <vector>

#include "dp/mixed_radix.hpp"

namespace pcmax::dp {

struct DpProblem {
  /// Per-class job counts n_i >= 0 (a zero count makes that dimension
  /// degenerate but is permitted; the PTAS compacts zero classes away).
  std::vector<std::int64_t> counts;
  /// Per-class weights w_i >= 1. For Hochbaum-Shmoys rounding these are the
  /// class indices and the capacity is k^2.
  std::vector<std::int64_t> weights;
  /// Machine capacity in weight units.
  std::int64_t capacity = 0;

  /// Throws util::contract_violation when the fields are inconsistent.
  void validate() const;

  /// Table radix with extents (n_i + 1).
  [[nodiscard]] MixedRadix radix() const;

  /// Total number of jobs n' = sum n_i (the number of anti-diagonal levels
  /// minus one).
  [[nodiscard]] std::int64_t total_jobs() const noexcept;

  /// DP-table size sigma = prod (n_i + 1).
  [[nodiscard]] std::uint64_t table_size() const;
};

}  // namespace pcmax::dp
