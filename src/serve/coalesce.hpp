// Request coalescing key. Two queued requests coalesce when one solve can
// answer both bit for bit. The key anchors on the canonical ProbeKey of the
// instance rounded at its makespan lower bound — the same rounded-problem
// identity the probe cache uses — and then pins everything else that feeds
// the resilient driver: the verbatim processing times (instances that merely
// round alike may still differ in reconstruction), the machine count, the
// rounding parameter k, and every ResilientOptions field that can change
// the outcome (deadlines, memory budget, retry policy, thread count). Equal
// keys therefore guarantee equal ResilientResults from a deterministic
// solve, which is what lets a coalesced follower reuse its leader's answer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/probe_cache.hpp"
#include "core/resilient.hpp"

namespace pcmax::serve {

struct RequestKey {
  /// Canonical rounded-problem identity at T = lower bound; empty (default)
  /// when that rounding has no long jobs, in which case the verbatim fields
  /// below still fully identify the request.
  ProbeKey anchor;
  std::vector<std::int64_t> times;
  std::int64_t machines = 0;
  std::int64_t k = 0;
  std::int64_t deadline_ms = 0;
  std::int64_t probe_deadline_ms = 0;
  std::uint64_t mem_budget_bytes = 0;
  std::int64_t backoff_ms = 0;
  int max_transient_retries = 0;
  int num_threads = 0;

  bool operator==(const RequestKey&) const = default;
};

struct RequestKeyHash {
  [[nodiscard]] std::size_t operator()(const RequestKey& key) const noexcept;
};

/// The coalescing key of (instance, options). The instance must be valid.
[[nodiscard]] RequestKey request_key_for(const Instance& instance,
                                         const ResilientOptions& options);

}  // namespace pcmax::serve
