#include "serve/queue.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace pcmax::serve {

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity)
    : capacity_(capacity) {
  PCMAX_EXPECTS(capacity >= 1);
}

Status BoundedRequestQueue::push(PendingRequest&& request) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
      return Status(StatusCode::kUnavailable, "serve queue is closed");
    if (queue_.size() >= capacity_)
      return Status(StatusCode::kUnavailable,
                    "serve queue is full (" + std::to_string(capacity_) +
                        " requests queued)");
    queue_.push_back(std::move(request));
  }
  ready_.notify_one();
  return Status::ok();
}

bool BoundedRequestQueue::pop(PendingRequest& leader,
                              std::vector<PendingRequest>& followers,
                              bool coalesce) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  leader = std::move(queue_.front());
  queue_.pop_front();
  if (coalesce) {
    // Stable sweep: duplicates leave in submission order, the rest keep
    // their relative order.
    auto keep = queue_.begin();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->key == leader.key) {
        followers.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    queue_.erase(keep, queue_.end());
  }
  return true;
}

void BoundedRequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t BoundedRequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool BoundedRequestQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace pcmax::serve
