// Request/response types of the solve daemon. A client submits a
// SolveRequest (instance + resilience policy) and gets back a future
// SolveResponse; PendingRequest is the queued form the server moves between
// the submission path and a worker.
#pragma once

#include <cstdint>
#include <future>

#include "core/instance.hpp"
#include "core/resilient.hpp"
#include "core/status.hpp"
#include "serve/coalesce.hpp"

namespace pcmax::serve {

struct SolveRequest {
  Instance instance;
  /// Per-request resilience policy (deadline, memory budget, retries).
  /// The probe_cache field is server-owned: whatever the client sets is
  /// replaced by the server's shared cache (or null when sharing is off).
  ResilientOptions options;
};

struct SolveResponse {
  std::int64_t request_id = -1;
  /// kOk, or the terminal failure (mirrors ResilientResult::status; also
  /// kUnavailable when the server shut down before serving the request).
  Status status;
  ResilientResult result;
  /// True when this response was produced by another request's solve: the
  /// request coalesced behind a queued duplicate (the leader) and shares
  /// its result bit for bit.
  bool coalesced = false;
  int worker = -1;  ///< index of the worker that served it

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

/// A queued request: identity, payload, coalescing key, and the promise the
/// serving worker fulfills.
struct PendingRequest {
  std::int64_t id = -1;
  SolveRequest request;
  RequestKey key;
  std::promise<SolveResponse> promise;
};

}  // namespace pcmax::serve
