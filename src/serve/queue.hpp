// Bounded request queue with admission control. Submission never blocks:
// a request is either admitted or rejected right away with a typed
// kUnavailable Status (queue full, or server shutting down), so overload
// surfaces as fast feedback instead of unbounded latency. Workers block in
// pop(); a pop can sweep every queued duplicate of the popped request
// (equal RequestKey) out with it, which is how the server coalesces.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "core/status.hpp"
#include "serve/request.hpp"

namespace pcmax::serve {

class BoundedRequestQueue {
 public:
  /// `capacity` bounds queued (not yet popped) requests; must be >= 1.
  explicit BoundedRequestQueue(std::size_t capacity);

  /// Admits `request`, or rejects without blocking: kUnavailable when the
  /// queue holds `capacity` requests or has been closed.
  [[nodiscard]] Status push(PendingRequest&& request);

  /// Blocks until a request is available or the queue is closed and
  /// drained. Pops the oldest request into `leader`; when `coalesce` is
  /// set, also moves every queued request with the same key into
  /// `followers` (in submission order). Returns false only when closed and
  /// empty — every admitted request is handed to exactly one pop.
  [[nodiscard]] bool pop(PendingRequest& leader,
                         std::vector<PendingRequest>& followers,
                         bool coalesce);

  /// Stops admission; queued requests still drain through pop().
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<PendingRequest> queue_;
  bool closed_ = false;
};

}  // namespace pcmax::serve
