#include "serve/coalesce.hpp"

#include "core/bounds.hpp"
#include "core/rounding.hpp"

namespace pcmax::serve {

namespace {

// FNV-1a style mixing over 64-bit words; matches the spirit of
// ProbeKeyHash without depending on its exact constants.
std::size_t mix(std::size_t seed, std::uint64_t value) noexcept {
  seed ^= static_cast<std::size_t>(value) + 0x9e3779b97f4a7c15ULL +
          (seed << 6) + (seed >> 2);
  return seed;
}

}  // namespace

std::size_t RequestKeyHash::operator()(const RequestKey& key) const noexcept {
  std::size_t seed = ProbeKeyHash{}(key.anchor);
  seed = mix(seed, static_cast<std::uint64_t>(key.times.size()));
  for (const std::int64_t t : key.times)
    seed = mix(seed, static_cast<std::uint64_t>(t));
  seed = mix(seed, static_cast<std::uint64_t>(key.machines));
  seed = mix(seed, static_cast<std::uint64_t>(key.k));
  seed = mix(seed, static_cast<std::uint64_t>(key.deadline_ms));
  seed = mix(seed, static_cast<std::uint64_t>(key.probe_deadline_ms));
  seed = mix(seed, key.mem_budget_bytes);
  seed = mix(seed, static_cast<std::uint64_t>(key.backoff_ms));
  seed = mix(seed, static_cast<std::uint64_t>(key.max_transient_retries));
  seed = mix(seed, static_cast<std::uint64_t>(key.num_threads));
  return seed;
}

RequestKey request_key_for(const Instance& instance,
                           const ResilientOptions& options) {
  RequestKey key;
  key.k = k_for_epsilon(options.epsilon);
  const RoundedInstance rounded =
      round_instance(instance, makespan_lower_bound(instance), key.k);
  if (rounded.feasible && !rounded.class_index.empty())
    key.anchor = probe_key_for(rounded);
  key.times = instance.times;
  key.machines = instance.machines;
  key.deadline_ms = options.deadline_ms;
  key.probe_deadline_ms = options.probe_deadline_ms;
  key.mem_budget_bytes = options.mem_budget_bytes;
  key.backoff_ms = options.backoff_ms;
  key.max_transient_retries = options.max_transient_retries;
  key.num_threads = options.num_threads;
  return key;
}

}  // namespace pcmax::serve
