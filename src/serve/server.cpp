#include "serve/server.hpp"

#include <utility>

#include "gpu/gpu_ptas.hpp"
#include "gpu/resilient_gpu.hpp"
#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace pcmax::serve {

namespace {

// Cheap structural validation mirroring Instance::validate, reported as a
// typed Status instead of a contract violation: a malformed request is a
// client error, not a server bug.
Status validate_request(const Instance& instance) {
  if (instance.machines < 1)
    return Status(StatusCode::kInvalidInput, "machines must be >= 1");
  if (instance.times.empty())
    return Status(StatusCode::kInvalidInput, "instance has no jobs");
  for (const std::int64_t t : instance.times)
    if (t < 1)
      return Status(StatusCode::kInvalidInput,
                    "processing times must be >= 1");
  return Status::ok();
}

}  // namespace

SolveServer::SolveServer(const ServeOptions& options)
    : options_(options),
      queue_(options.queue_capacity),
      paused_(options.start_paused) {
  PCMAX_EXPECTS(options.workers >= 1);
  if (options_.share_probe_cache)
    cache_ = std::make_unique<ShardedProbeCache>(options_.cache_entries,
                                                 options_.cache_shards);
  if (options_.use_gpu_engine)
    topology_ = std::make_unique<gpusim::Topology>(
        options_.workers, gpusim::DeviceSpec::k40(),
        gpusim::TopologyKind::kFullMesh);
  quarantined_ = std::vector<std::atomic<bool>>(
      static_cast<std::size_t>(options_.workers));
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

SolveServer::~SolveServer() { shutdown(); }

Result<std::future<SolveResponse>> SolveServer::submit(SolveRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (Status invalid = validate_request(request.instance); !invalid.is_ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.rejected");
    return invalid;
  }

  PendingRequest pending;
  pending.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  pending.key = request_key_for(request.instance, request.options);
  pending.request = std::move(request);
  std::future<SolveResponse> future = pending.promise.get_future();

  if (obs::TraceRecorder* t = obs::trace(); t != nullptr)
    t->instant("serve/enqueue",
               {obs::arg("id", pending.id),
                obs::arg("jobs", static_cast<std::int64_t>(
                                     pending.request.instance.times.size()))});
  Status admitted = queue_.push(std::move(pending));
  if (!admitted.is_ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.rejected");
    if (obs::TraceRecorder* t = obs::trace(); t != nullptr)
      t->instant("serve/reject", {obs::arg("queued", static_cast<std::int64_t>(
                                               queue_.size()))});
    return admitted;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.admitted");
  if (obs::TraceRecorder* t = obs::trace(); t != nullptr)
    t->instant("serve/admit", {obs::arg("queued", static_cast<std::int64_t>(
                                            queue_.size()))});
  return future;
}

void SolveServer::resume() {
  {
    const std::lock_guard<std::mutex> lock(gate_mutex_);
    paused_ = false;
  }
  gate_.notify_all();
}

void SolveServer::shutdown() {
  if (shut_down_.exchange(true)) {
    for (std::thread& worker : workers_)
      if (worker.joinable()) worker.join();
    return;
  }
  queue_.close();
  resume();  // release workers still parked at the start gate
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

ServeStats SolveServer::stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  for (const std::atomic<bool>& q : quarantined_)
    stats.quarantined += q.load(std::memory_order_relaxed) ? 1 : 0;
  stats.quarantine_entered =
      quarantine_entered_.load(std::memory_order_relaxed);
  stats.quarantine_readmitted =
      quarantine_readmitted_.load(std::memory_order_relaxed);
  if (cache_) stats.cache = cache_->stats();
  return stats;
}

int SolveServer::reset_and_readmit() {
  if (topology_) topology_->reset();
  int readmitted = 0;
  for (std::atomic<bool>& q : quarantined_)
    if (q.exchange(false, std::memory_order_relaxed)) ++readmitted;
  if (readmitted > 0) {
    quarantine_readmitted_.fetch_add(static_cast<std::uint64_t>(readmitted),
                                     std::memory_order_relaxed);
    obs::count("serve.quarantine.readmitted",
               static_cast<std::uint64_t>(readmitted));
    if (obs::TraceRecorder* t = obs::trace(); t != nullptr)
      t->instant("serve/readmit",
                 {obs::arg("workers", static_cast<std::int64_t>(readmitted))});
  }
  return readmitted;
}

void SolveServer::maybe_quarantine(int index, const ResilientResult& result) {
  const auto lost_device = [](const Status& s) {
    return s.code() == StatusCode::kDeviceLost;
  };
  bool lost = lost_device(result.status);
  for (const AttemptRecord& attempt : result.attempts)
    lost = lost || lost_device(attempt.status);
  if (!lost) return;
  const auto i = static_cast<std::size_t>(index);
  if (quarantined_[i].exchange(true, std::memory_order_relaxed))
    return;  // already quarantined
  quarantine_entered_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.quarantine.entered");
  if (obs::TraceRecorder* t = obs::trace(); t != nullptr)
    t->instant("serve/quarantine", {obs::arg("worker", index)});
}

void SolveServer::worker_main(int index) {
  // Every event this thread records lands on its own track, so one
  // request's spans are readable even when eight workers interleave.
  const obs::ScopedTrack track(obs::kWorkerTidBase + index);

  // Each worker owns device `index` of the server's shared topology:
  // engine recovery (device reset) after one tenant's fault never disturbs
  // another tenant's in-flight solve, and per-device memory accounting
  // reflects one real multi-GPU node's budgets. A quarantined worker (its
  // device was lost) serves on the CPU-only chain — skipping the dead GPU
  // engine's guaranteed-failed attempt — until reset_and_readmit.
  const std::vector<SolveEngine> gpu_chain =
      options_.use_gpu_engine ? gpu::make_gpu_chain(topology_->device(index))
                              : std::vector<SolveEngine>{};
  const std::vector<SolveEngine> cpu_chain = make_default_chain();

  {
    std::unique_lock<std::mutex> lock(gate_mutex_);
    gate_.wait(lock, [&] { return !paused_; });
  }

  PendingRequest leader;
  std::vector<PendingRequest> followers;
  while (queue_.pop(leader, followers, options_.coalesce)) {
    const bool gpu_ok =
        options_.use_gpu_engine &&
        !quarantined_[static_cast<std::size_t>(index)].load(
            std::memory_order_relaxed);
    SolveResponse response =
        serve_one(leader, gpu_ok ? gpu_chain : cpu_chain, index);
    maybe_quarantine(index, response.result);
    for (PendingRequest& follower : followers) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      obs::count("serve.coalesced");
      if (obs::TraceRecorder* t = obs::trace(); t != nullptr)
        t->instant("serve/coalesce", {obs::arg("id", follower.id),
                                      obs::arg("leader", leader.id)});
      SolveResponse echoed = response;
      echoed.request_id = follower.id;
      echoed.coalesced = true;
      follower.promise.set_value(std::move(echoed));
    }
    followers.clear();
    leader.promise.set_value(std::move(response));
  }
}

SolveResponse SolveServer::serve_one(PendingRequest& leader,
                                     std::span<const SolveEngine> chain,
                                     int index) {
  // Tag everything this request records ("req" trace arg) and everything
  // it inserts into the shared cache (cross-hit attribution). Tag 0 is
  // "untagged", so shift the id by one.
  const obs::ScopedRequestTag tag(leader.id);
  const ShardedProbeCache::OwnerTagScope owner(
      static_cast<std::uint64_t>(leader.id) + 1);
  const obs::ScopedSpan span(
      "serve/solve",
      {obs::arg("jobs", static_cast<std::int64_t>(
                    leader.request.instance.times.size())),
       obs::arg("machines", leader.request.instance.machines)});

  SolveResponse response;
  response.request_id = leader.id;
  response.worker = index;

  ResilientOptions options = leader.request.options;
  options.probe_cache = cache_.get();
  try {
    response.result = solve_resilient(leader.request.instance, chain, options);
    response.status = response.result.status;
  } catch (...) {
    // solve_resilient itself never throws; this guards response plumbing
    // (e.g. bad_alloc while copying the schedule).
    response.status = classify_current_exception();
  }
  if (response.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.completed");
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.failed");
  }
  return response;
}

}  // namespace pcmax::serve
