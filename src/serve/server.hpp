// The multi-tenant solve daemon. SolveServer owns a bounded request queue
// and N worker threads; each worker owns a simulated device and a full
// resilient engine chain (GPU PTAS -> CPU PTAS variants -> LPT), so one
// tenant's device faults degrade only that tenant's requests. The workers
// share one ShardedProbeCache, so rounded problems one request solved are
// cross-hits for every later request that rounds the same way.
//
// Request lifecycle:
//   submit() validates, assigns an id, computes the coalescing key, and
//   either admits the request to the queue (future returned) or rejects it
//   immediately with kUnavailable (queue full / shutting down) — admission
//   control, never unbounded queuing.
//   A worker pops the oldest request; with coalescing on it also claims
//   every queued duplicate (equal RequestKey). It solves once via
//   solve_resilient under the request's own deadline/memory policy, then
//   answers the leader and every follower with the same result (followers
//   marked coalesced).
//   shutdown() stops admission, drains the queue, and joins the workers;
//   every admitted request is answered before shutdown returns.
//
// Determinism: solve_resilient is deterministic for a given instance and
// policy, and cache hits only substitute OPT values the DP itself would
// have produced, so the response for a request is bit-identical whether it
// was solved alone, raced 8 workers, hit the shared cache, or coalesced
// behind a duplicate. tests/serve/test_serve_determinism.cpp holds this.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/probe_cache.hpp"
#include "core/resilient.hpp"
#include "core/status.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"

namespace pcmax::gpusim {
class Topology;
}  // namespace pcmax::gpusim

namespace pcmax::serve {

struct ServeOptions {
  int workers = 4;
  std::size_t queue_capacity = 64;
  /// Merge queued duplicate requests into one solve.
  bool coalesce = true;
  /// Lead each worker's chain with the simulated-GPU engine (the CPU PTAS
  /// engines and LPT always follow as fallbacks).
  bool use_gpu_engine = true;
  /// Share one ShardedProbeCache across all workers; off = every request
  /// solves all its probes for real.
  bool share_probe_cache = true;
  std::size_t cache_entries = ProbeCacheBase::kDefaultMaxEntries;
  std::size_t cache_shards = ShardedProbeCache::kDefaultShards;
  /// Start with the workers parked until resume(). Burst tests submit the
  /// whole batch first, so which requests coalesce does not depend on
  /// worker timing.
  bool start_paused = false;
};

/// Point-in-time server counters. submitted = admitted + rejected;
/// admitted = completed + failed + still in flight; coalesced counts the
/// follower requests answered from a leader's solve (a subset of
/// completed/failed).
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Workers currently serving on their CPU-only chain because their
  /// device was lost (see SolveServer::reset_and_readmit).
  std::uint64_t quarantined = 0;
  std::uint64_t quarantine_entered = 0;    ///< cumulative entries
  std::uint64_t quarantine_readmitted = 0; ///< cumulative re-admissions
  /// Shared-cache counters; all zero when share_probe_cache is off.
  ProbeCacheStats cache;
};

class SolveServer {
 public:
  explicit SolveServer(const ServeOptions& options = {});
  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;
  /// Equivalent to shutdown(): every admitted request is answered first.
  ~SolveServer();

  /// Admits the request and returns the future response, or rejects with
  /// kInvalidInput (malformed instance) / kUnavailable (queue full or
  /// server shutting down). Never blocks on solve progress.
  [[nodiscard]] Result<std::future<SolveResponse>> submit(SolveRequest request);

  /// Releases workers parked by ServeOptions::start_paused. Idempotent.
  void resume();

  /// Stops admission, drains every queued request, joins the workers.
  /// Idempotent.
  void shutdown();

  [[nodiscard]] ServeStats stats() const;

  /// Resurrects quarantined workers: resets the shared topology (bringing
  /// lost devices and downed links back healthy and cold-starting the
  /// interconnect) and re-admits every quarantined worker to its GPU chain.
  /// Returns the number of workers re-admitted. The caller must quiesce the
  /// server first (no requests in flight — e.g. between bursts, or after
  /// draining the queue): resetting devices under a live solve would yank
  /// state from under it. Worker threads themselves only read their own
  /// health flag between requests, so this is safe whenever no solve is
  /// running.
  int reset_and_readmit();

  /// The shared cross-request cache; null when share_probe_cache is off.
  [[nodiscard]] ShardedProbeCache* probe_cache() noexcept {
    return cache_.get();
  }

 private:
  void worker_main(int index);
  [[nodiscard]] SolveResponse serve_one(PendingRequest& leader,
                                        std::span<const SolveEngine> chain,
                                        int index);
  /// Moves the worker onto its CPU-only chain when the attempt log shows a
  /// lost device.
  void maybe_quarantine(int index, const ResilientResult& result);

  ServeOptions options_;
  std::unique_ptr<ShardedProbeCache> cache_;  // null when sharing is off
  /// One device per worker, drawn from a shared fullmesh topology so the
  /// daemon's memory accounting models one multi-GPU node rather than N
  /// unrelated simulators; null when use_gpu_engine is off. Workers only
  /// ever touch their own device — no cross-worker transfers or barriers —
  /// so worker isolation (and response determinism) is unchanged.
  std::unique_ptr<gpusim::Topology> topology_;
  /// Per-worker health: true = quarantined (device lost; serve on the
  /// CPU-only chain until reset_and_readmit). Workers read/write only
  /// their own slot between requests; reset_and_readmit writes all slots
  /// on a quiesced server.
  std::vector<std::atomic<bool>> quarantined_;
  std::atomic<std::uint64_t> quarantine_entered_{0};
  std::atomic<std::uint64_t> quarantine_readmitted_{0};
  BoundedRequestQueue queue_;

  std::mutex gate_mutex_;
  std::condition_variable gate_;
  bool paused_;

  std::atomic<std::int64_t> next_id_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};

  std::atomic<bool> shut_down_{false};
  std::vector<std::thread> workers_;
};

}  // namespace pcmax::serve
