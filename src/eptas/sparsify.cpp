#include "eptas/sparsify.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::eptas {

std::vector<std::int64_t> geometric_grid(std::int64_t k) {
  PCMAX_EXPECTS(k >= 1);
  std::vector<std::int64_t> grid;
  const std::int64_t top = k * k;
  for (std::int64_t g = k; g < top;) {
    grid.push_back(g);
    // Ratio step floor(g * (k+1) / k), but never stall: at g == k the floor
    // already advances (g + g/k >= g + 1), so the max() guard is belt and
    // braces for k == 1.
    g = std::min(top, std::max(g + 1, (g * (k + 1)) / k));
  }
  grid.push_back(top);
  return grid;
}

std::int64_t snap_to_grid(const std::vector<std::int64_t>& grid,
                          std::int64_t value) {
  PCMAX_EXPECTS(!grid.empty());
  PCMAX_EXPECTS(value >= grid.front());
  // Largest grid value <= value: the element before the first one > value.
  const auto it = std::upper_bound(grid.begin(), grid.end(), value);
  return *std::prev(it);
}

std::int64_t SparsifiedInstance::long_jobs() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
}

std::uint64_t SparsifiedInstance::table_size() const {
  std::uint64_t size = 1;
  for (const auto n : counts)
    size = util::checked_mul(size, static_cast<std::uint64_t>(n) + 1);
  return size;
}

SparsifiedInstance sparsify_instance(const Instance& instance,
                                     std::int64_t target, std::int64_t k) {
  instance.validate();
  PCMAX_EXPECTS(target >= 1);
  PCMAX_EXPECTS(k >= 1);

  SparsifiedInstance out;
  out.target = target;
  out.k = k;

  const std::vector<std::int64_t> grid = geometric_grid(k);
  std::map<std::int64_t, std::vector<std::size_t>> classes;
  std::set<std::int64_t> arithmetic;
  for (std::size_t j = 0; j < instance.times.size(); ++j) {
    const std::int64_t t = instance.times[j];
    if (t > target) {
      out.feasible = false;
      return out;
    }
    if (t * k <= target) {
      out.short_jobs.push_back(j);
      continue;
    }
    // Long job: arithmetic class floor(t * k^2 / T) in [k, k^2], snapped
    // down to the geometric grid.
    const std::int64_t c = (t * k * k) / target;
    PCMAX_ENSURES(c >= k && c <= k * k);
    arithmetic.insert(c);
    const std::int64_t g = snap_to_grid(grid, c);
    PCMAX_ENSURES(g >= k && g <= c);
    classes[g].push_back(j);
  }

  out.arithmetic_classes = arithmetic.size();
  out.class_index.reserve(classes.size());
  for (auto& [g, jobs] : classes) {
    out.class_index.push_back(g);
    out.counts.push_back(static_cast<std::int64_t>(jobs.size()));
    out.jobs_per_class.push_back(std::move(jobs));
  }
  return out;
}

dp::DpProblem to_dp_problem(const SparsifiedInstance& sparse) {
  PCMAX_EXPECTS(sparse.feasible);
  PCMAX_EXPECTS(!sparse.class_index.empty());
  dp::DpProblem problem;
  problem.counts = sparse.counts;
  problem.weights = sparse.class_index;
  problem.capacity = sparse.k * sparse.k;
  return problem;
}

}  // namespace pcmax::eptas
