#include "eptas/eptas.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/bounds.hpp"
#include "core/probe_cache.hpp"
#include "core/rounding.hpp"
#include "core/search.hpp"
#include "dp/reconstruct.hpp"
#include "eptas/sparsify.hpp"
#include "faultsim/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::eptas {

namespace {

/// Runs the DP for one sparsified target (or answers it from `cache`) and
/// records the invocation. The eptas.* counters sit next to the dp.*
/// family; the class ablation (arithmetic vs grid classes) is observed per
/// probe so a metrics export shows what sparsification bought.
std::int32_t evaluate_target(const SparsifiedInstance& sparse,
                             const dp::DpSolver& solver,
                             const PtasOptions& options,
                             ProbeCacheBase* cache,
                             std::vector<DpInvocation>& calls) {
  DpInvocation call;
  call.target = sparse.target;
  call.nonzero_dims = sparse.nonzero_dims();
  call.long_jobs = sparse.long_jobs();
  call.table_size = sparse.table_size();
  const obs::ScopedSpan span(
      "eptas/invocation",
      {obs::arg("target", sparse.target),
       obs::arg("table", static_cast<std::int64_t>(call.table_size))});
  std::int32_t opt = 0;
  if (!sparse.class_index.empty()) {
    const dp::DpProblem problem = to_dp_problem(sparse);
    ProbeKey key;
    if (cache != nullptr) {
      key = probe_key_for(problem);
      if (const auto hit = cache->lookup(key)) {
        opt = *hit;
        call.cached = true;
      }
    }
    if (!call.cached) {
      // The sparsified table is a host allocation like every DP table;
      // charge the site before the solver touches memory so an injected
      // host-OOM surfaces here, typed, instead of deep inside the kernel.
      faultsim::check_host_alloc(
          util::checked_mul(call.table_size, sizeof(std::int32_t)));
      dp::SolveOptions solve_options;
      solve_options.num_threads = options.num_threads;
      opt = solver.solve(problem, solve_options).opt;
      if (cache != nullptr) cache->insert(key, opt);
    }
  }
  call.opt = opt;
  obs::count("eptas.invocations");
  obs::observe("eptas.table_size", static_cast<std::int64_t>(call.table_size));
  obs::observe("eptas.classes_arith",
               static_cast<std::int64_t>(sparse.arithmetic_classes));
  obs::observe("eptas.classes_grid",
               static_cast<std::int64_t>(sparse.nonzero_dims()));
  if (call.cached) {
    obs::count("eptas.cache_answered");
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->instant("eptas/cache-hit", {obs::arg("target", sparse.target),
                                      obs::arg("opt", opt)});
  } else if (!sparse.class_index.empty()) {
    obs::count("eptas.cells", call.table_size);
  }
  calls.push_back(call);
  return opt;
}

/// Per-run delta of a (possibly shared, already warm) cache's counters.
ProbeCacheStats stats_delta(const ProbeCacheStats& now,
                            const ProbeCacheStats& before) {
  ProbeCacheStats d;
  d.lookups = now.lookups - before.lookups;
  d.hits = now.hits - before.hits;
  d.insertions = now.insertions - before.insertions;
  d.evictions = now.evictions - before.evictions;
  return d;
}

}  // namespace

PtasResult solve_eptas(const Instance& instance, const dp::DpSolver& solver,
                       const PtasOptions& options) {
  instance.validate();
  const std::int64_t k = k_for_epsilon(options.epsilon);
  const std::int64_t lb = makespan_lower_bound(instance);
  const std::int64_t ub = makespan_upper_bound(instance);
  const obs::ScopedSpan span(
      "eptas/solve",
      {obs::arg("k", k), obs::arg("machines", instance.machines)});

  PtasResult result;
  ProbeCache local_cache;
  ProbeCacheBase* cache = nullptr;
  if (options.use_probe_cache)
    cache = options.probe_cache != nullptr ? options.probe_cache
                                           : &local_cache;
  const ProbeCacheStats stats_before =
      cache != nullptr ? cache->stats() : ProbeCacheStats{};
  // Bounds are instance-specific, so they live for this run only even when
  // the (canonically keyed) cache is shared.
  MonotoneBounds bounds;
  MonotoneBounds* bounds_ptr = cache != nullptr ? &bounds : nullptr;

  const FeasibilityOracle oracle = [&](std::int64_t target) {
    const SparsifiedInstance sparse = sparsify_instance(instance, target, k);
    if (!sparse.feasible) return false;
    const std::int32_t opt =
        evaluate_target(sparse, solver, options, cache, result.dp_calls);
    return opt <= instance.machines;
  };

  const SearchResult search =
      options.strategy == SearchStrategy::kQuarterSplit
          ? quarter_split_search(lb, ub, oracle, options.segments, bounds_ptr)
          : bisection_search(lb, ub, oracle, bounds_ptr);
  result.best_target = search.best_target;
  result.search_iterations = search.iterations;
  if (cache != nullptr) {
    result.cache_stats = stats_delta(cache->stats(), stats_before);
    result.cache_stats.bound_skips = search.bound_skips;
  }

  if (!options.build_schedule) return result;

  const ScheduleBuild build = build_eptas_schedule_at_target(
      instance, solver, k, result.best_target, options.num_threads,
      result.dp_calls);
  result.schedule = build.schedule;
  result.achieved_makespan = build.achieved_makespan;
  return result;
}

ScheduleBuild build_eptas_schedule_at_target(
    const Instance& instance, const dp::DpSolver& solver, std::int64_t k,
    std::int64_t target, int num_threads,
    std::vector<DpInvocation>& dp_calls) {
  instance.validate();
  // Reconstruction at T*: schedule the sparsified long jobs via the DP
  // backtrack, then add short jobs greedily — structurally identical to
  // build_schedule_at_target, over grid classes.
  const obs::ScopedSpan span("eptas/reconstruct",
                             {obs::arg("target", target)});
  const SparsifiedInstance sparse = sparsify_instance(instance, target, k);
  PCMAX_ENSURES(sparse.feasible);

  ScheduleBuild build;
  build.schedule.assignment.assign(instance.times.size(), 0);
  std::vector<std::int64_t> loads(
      static_cast<std::size_t>(instance.machines), 0);

  if (!sparse.class_index.empty()) {
    const dp::DpProblem problem = to_dp_problem(sparse);
    faultsim::check_host_alloc(
        util::checked_mul(sparse.table_size(), sizeof(std::int32_t)));
    dp::SolveOptions solve_options;
    solve_options.num_threads = num_threads;
    const dp::DpResult dp_result = [&] {
      const obs::ScopedSpan dp_span(
          "eptas/invocation",
          {obs::arg("target", sparse.target),
           obs::arg("table",
                    static_cast<std::int64_t>(sparse.table_size()))});
      return solver.solve(problem, solve_options);
    }();
    obs::count("eptas.invocations");
    obs::count("eptas.cells", sparse.table_size());
    obs::observe("eptas.table_size",
                 static_cast<std::int64_t>(sparse.table_size()));
    dp_calls.push_back(DpInvocation{
        sparse.target, sparse.table_size(), sparse.nonzero_dims(),
        sparse.long_jobs(), dp_result.opt});
    PCMAX_ENSURES(dp_result.opt <= instance.machines);

    const auto machines = dp::reconstruct_machines(problem, dp_result);
    std::vector<std::size_t> cursor(sparse.class_index.size(), 0);
    for (std::size_t m = 0; m < machines.size(); ++m) {
      for (std::size_t d = 0; d < machines[m].size(); ++d) {
        for (std::int64_t c = 0; c < machines[m][d]; ++c) {
          const std::size_t job = sparse.jobs_per_class[d][cursor[d]++];
          build.schedule.assignment[job] = static_cast<std::int64_t>(m);
          loads[m] += instance.times[job];
        }
      }
    }
  }

  place_on_least_loaded(instance, sparse.short_jobs, build.schedule, loads);
  build.achieved_makespan = *std::max_element(loads.begin(), loads.end());
  validate_schedule(instance, build.schedule);
  return build;
}

std::uint64_t eptas_table_bytes(const Instance& instance, std::int64_t k) {
  const SparsifiedInstance sparse =
      sparsify_instance(instance, makespan_lower_bound(instance), k);
  return util::checked_mul(sparse.table_size(), sizeof(std::int32_t));
}

namespace {

/// DpSolver decorator enforcing the resilient driver's per-solve and
/// per-probe deadlines at probe granularity (the same discipline as the
/// classic CPU engines' DeadlineSolver in core/resilient.cpp).
class DeadlineGuardedSolver final : public dp::DpSolver {
 public:
  DeadlineGuardedSolver(const dp::DpSolver& inner, Deadline overall,
                        std::int64_t probe_ms)
      : inner_(inner), overall_(overall), probe_ms_(probe_ms) {}

  using dp::DpSolver::solve;
  [[nodiscard]] dp::DpResult solve(
      const dp::DpProblem& problem,
      const dp::SolveOptions& options) const override {
    overall_.check("solve");
    const Deadline probe = Deadline::after_ms(probe_ms_);
    dp::DpResult result = inner_.solve(problem, options);
    probe.check("probe");
    overall_.check("solve");
    return result;
  }

  [[nodiscard]] std::string name() const override { return inner_.name(); }

 private:
  const dp::DpSolver& inner_;
  Deadline overall_;
  std::int64_t probe_ms_;
};

}  // namespace

SolveEngine make_eptas_engine() {
  SolveEngine engine;
  engine.name = "eptas";
  engine.uses_k = true;
  engine.bound = [](std::int64_t, std::int64_t k) {
    return std::pair<std::int64_t, std::int64_t>{k + 1, k};
  };
  engine.mem_estimate = [](const Instance& instance, std::int64_t k) {
    return eptas_table_bytes(instance, k);
  };
  engine.run = [solver = std::make_shared<dp::LevelBucketSolver>()](
                   const Instance& instance, std::int64_t k,
                   const EngineContext& ctx) {
    const DeadlineGuardedSolver guarded(*solver, ctx.deadline,
                                        ctx.probe_deadline_ms);
    PtasOptions options;
    options.epsilon = epsilon_for_k(k);
    options.num_threads = ctx.num_threads;
    options.use_probe_cache = ctx.probe_cache != nullptr;
    options.probe_cache = ctx.probe_cache;
    PtasResult r = solve_eptas(instance, guarded, options);
    return EngineOutcome{std::move(r.schedule), r.achieved_makespan,
                         r.best_target};
  };
  return engine;
}

}  // namespace pcmax::eptas
