// Structured rounding (sparsification) for the EPTAS engine, in exact
// integer arithmetic.
//
// The classic Hochbaum-Shmoys rounding (core/rounding.hpp) puts each long
// job into the arithmetic class c = floor(t * k^2 / T), one of up to
// k^2 - k + 1 distinct values in [k, k^2]. The DP table is
// prod_i (n_i + 1) over the populated classes, so the class count is the
// table's dimensionality — and the dominant cost driver at small epsilon.
//
// Following the sparsification idea of Jansen-Klein-Verschae ("Closing the
// Gap for Makespan Scheduling via Sparsification") with the practical
// framing of Berndt et al. ("Load Balancing: The Long Road from Theory to
// Practice"), the EPTAS rounding snaps each arithmetic class DOWN onto a
// geometric grid over the same integer range:
//
//   g_0 = k,   g_{i+1} = min(k^2, max(g_i + 1, floor(g_i * (k+1) / k)))
//
// which has O(k log k) values instead of O(k^2). Merging classes multiplies
// their counts into one dimension — (a + b + 1) cells where the classic
// table had (a + 1)(b + 1) — so the table shrinks in both dimensionality
// and volume at the same epsilon.
//
// The (1 + 1/k) guarantee is preserved exactly, with the same resolution
// k^2 and the same capacity k^2 as the classic rounding:
//
//   * Snap error. For any grid value g < k^2 the next grid value satisfies
//     next(g) <= g * (k+1) / k (the max(g_i + 1, ...) guard only fires when
//     floor(g(k+1)/k) == g, i.e. g + 1 <= g(k+1)/k because g >= k). A class
//     c snapped to g has c < next(g), hence c + 1 <= next(g) <= g + g/k;
//     for g = k^2 directly c + 1 <= k^2 + 1 <= k^2 + k^2/k. Either way
//     c + 1 <= g * (k+1) / k.
//   * Per-machine inflation. A long job in class c has true time
//     t < (c + 1) * T / k^2, so a machine whose grid weights sum to
//     sum(g) <= k^2 (the DP capacity) has true load
//     < sum(c + 1) * T / k^2 <= (k+1)/k * sum(g) * T / k^2
//     <= (k+1)/k * T — exactly the classic bound.
//   * Dual feasibility. At any T >= OPT, each machine of an optimal
//     schedule has sum(t) <= T, hence sum(c) <= k^2, and g <= c always, so
//     sum(g) <= k^2: the sparsified DP needs at most m machines. Rounding
//     down twice only shrinks weights, so T* <= OPT and, for the same T,
//     opt_sparse(T) <= opt_classic(T) (the differential invariant the
//     fuzzer checks).
//   * Short jobs (t * k <= T) are untouched: greedy least-loaded placement
//     keeps the makespan within max(long bound, T + T/k) = (1 + 1/k) * T.
//
// Working entirely on integer grid values keeps every probe-cache key
// exact: the sparsified DP problem is {counts, grid weights, k^2}, which
// probe_key_for canonicalizes just like a classic rounding (see
// tests/eptas/test_probe_soundness.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "dp/problem.hpp"

namespace pcmax::eptas {

/// The geometric class grid for accuracy k: ascending integers from k to
/// k^2 with ratio at most (k+1)/k between neighbours. Size O(k log k).
/// Requires k >= 1 (k == 1 yields the single class {1}).
[[nodiscard]] std::vector<std::int64_t> geometric_grid(std::int64_t k);

/// Largest grid value <= `value`. Requires an ascending non-empty grid and
/// value >= grid.front().
[[nodiscard]] std::int64_t snap_to_grid(const std::vector<std::int64_t>& grid,
                                        std::int64_t value);

/// A sparsified rounding: same shape as core RoundedInstance, but
/// class_index holds geometric grid values and arithmetic_classes records
/// how many distinct classic classes were merged away (the ablation the
/// bench measures).
struct SparsifiedInstance {
  std::int64_t target = 0;  ///< T
  std::int64_t k = 0;       ///< ceil(1/epsilon)

  /// False when some job exceeds T outright (T infeasible); the class data
  /// below is empty in that case.
  bool feasible = true;

  /// Populated grid classes, ascending; values in [k, k^2], each on the
  /// geometric grid.
  std::vector<std::int64_t> class_index;
  /// counts[i]: number of long jobs snapped into class_index[i].
  std::vector<std::int64_t> counts;
  /// jobs_per_class[i]: original job ids snapped into class_index[i].
  std::vector<std::vector<std::size_t>> jobs_per_class;
  /// Job ids with t_j * k <= T (placed greedily after the DP).
  std::vector<std::size_t> short_jobs;
  /// Distinct arithmetic classes floor(t * k^2 / T) before snapping; always
  /// >= class_index.size(). The gap is what sparsification bought.
  std::size_t arithmetic_classes = 0;

  [[nodiscard]] std::size_t nonzero_dims() const noexcept {
    return class_index.size();
  }
  [[nodiscard]] std::int64_t long_jobs() const noexcept;
  /// DP-table size prod(counts_i + 1); 1 when there are no long jobs.
  [[nodiscard]] std::uint64_t table_size() const;
};

/// Classifies, rounds, and snaps `instance` for target `T`. The short/long
/// split and infeasibility test are identical to round_instance; only long
/// jobs' class indices differ. Requires T >= 1, k >= 1.
[[nodiscard]] SparsifiedInstance sparsify_instance(const Instance& instance,
                                                   std::int64_t target,
                                                   std::int64_t k);

/// The DP problem of a sparsified rounding: weights are the grid class
/// values, capacity is k^2 — byte-compatible with the classic rounding's
/// problems, so probe-cache keys stay canonical across both engines.
/// Requires a feasible sparsification with at least one long job.
[[nodiscard]] dp::DpProblem to_dp_problem(const SparsifiedInstance& sparse);

}  // namespace pcmax::eptas
