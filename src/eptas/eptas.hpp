// The EPTAS sparsified dual-approximation engine for P||Cmax.
//
// Same skeleton as solve_ptas (core/ptas.hpp): a binary or quarter-split
// search over target makespans, each probe answered by the shared SoA
// fitset DP — but the rounding is the sparsified structured rounding of
// eptas/sparsify.hpp, so every probe's table has O(1/eps * log(1/eps))
// dimensions instead of O(1/eps^2). The guarantee is identical:
//
//   achieved makespan <= (1 + 1/k) * OPT,  k = ceil(1/epsilon)
//
// (proof in sparsify.hpp), which is what the 500-case suite in
// tests/eptas/test_guarantees.cpp verifies against branch-and-bound proven
// optima. The result reuses PtasResult so every testkit checker
// (check_ptas_result, check_ptas_vs_exact, check_ptas_cache_equivalence,
// the metamorphic relations) applies unchanged.
//
// Integration contract (mirrors the classic engine):
//   * probe cache — keys are built from the actual sparsified DP problem
//     via probe_key_for(DpProblem), so entries are shareable with classic
//     roundings exactly when the problems are byte-identical;
//   * obs — spans eptas/solve, eptas/invocation, eptas/reconstruct and
//     counters eptas.invocations / eptas.cells / eptas.cache_answered /
//     eptas.classes_arith / eptas.classes_grid next to the dp.* family;
//   * faultsim — the sparsified table allocation is a kHostAlloc site, like
//     every other DP table in the repository;
//   * resilient chain — make_eptas_engine() drops into the SolveEngine
//     fallback chains (gpu/resilient_gpu.cpp places it between the GPU
//     engine and the classic CPU PTAS engines).
#pragma once

#include "core/instance.hpp"
#include "core/ptas.hpp"
#include "core/resilient.hpp"
#include "dp/solver.hpp"

namespace pcmax::eptas {

/// Solves `instance` with the sparsified EPTAS rounding. Options and result
/// have the exact same semantics as solve_ptas; only the rounding (and
/// hence the probe-cache keys, table sizes, and obs counters) differ.
[[nodiscard]] PtasResult solve_eptas(const Instance& instance,
                                     const dp::DpSolver& solver,
                                     const PtasOptions& options = {});

/// Reconstruction at an already-found feasible target (the sparsified
/// counterpart of build_schedule_at_target). Exposed for alternative
/// drivers and the teeth tests.
[[nodiscard]] ScheduleBuild build_eptas_schedule_at_target(
    const Instance& instance, const dp::DpSolver& solver, std::int64_t k,
    std::int64_t target, int num_threads,
    std::vector<DpInvocation>& dp_calls);

/// Worst-case sparsified DP-table bytes over the search range (T = LB
/// keeps the most jobs long). Throws util::overflow_error when the size
/// does not fit 64 bits. The resilient pre-flight and the registry's
/// table-size gate both use this.
[[nodiscard]] std::uint64_t eptas_table_bytes(const Instance& instance,
                                              std::int64_t k);

/// The sparsified engine as a resilient-chain entry: bound (k+1)/k,
/// pre-flight via eptas_table_bytes, per-probe deadlines, shared probe
/// cache. Sits between the GPU engine and the classic CPU engines in
/// gpu::make_gpu_chain — its tables are strictly smaller than the classic
/// CPU engines', so it is the strongest CPU fallback.
[[nodiscard]] SolveEngine make_eptas_engine();

}  // namespace pcmax::eptas
