// Plain-text instance and schedule serialization, used by the CLI tool and
// for exchanging instances with other schedulers.
//
// Instance format (whitespace tolerant, '#' starts a comment line):
//   line 1: m              (machine count)
//   line 2: t_1 t_2 ... t_n  (processing times, any line breaks)
//
// Parsing is strict and typed: every malformed input — non-numeric tokens,
// a missing or non-positive machine count, zero/negative processing times,
// values that overflow 64 bits, a job total that overflows 64-bit makespan
// arithmetic — is rejected with a line-anchored ParseError (or, via
// try_parse_instance, a kInvalidInput Status) instead of producing a
// half-built instance.
//
// Schedule format: one "job machine load" triple per line after a header.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/instance.hpp"
#include "core/status.hpp"
#include "util/contracts.hpp"

namespace pcmax::workload {

/// Malformed instance text. Derives from util::contract_violation so
/// pre-existing callers that catch the old type keep working; carries the
/// 1-based input line the diagnosis is anchored to (0 = whole input).
class ParseError : public util::contract_violation {
 public:
  ParseError(int line, const std::string& message)
      : util::contract_violation(
            line > 0 ? "instance:" + std::to_string(line) + ": " + message
                     : "instance: " + message),
        line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Parses an instance; throws ParseError on malformed input.
[[nodiscard]] Instance read_instance(std::istream& in);
[[nodiscard]] Instance parse_instance(const std::string& text);

/// Non-throwing variant: a parsed instance, or a kInvalidInput Status
/// carrying the ParseError diagnosis. The boundary production loaders use.
[[nodiscard]] Result<Instance> try_parse_instance(std::string_view text);

/// Serializes an instance in the format read_instance accepts.
void write_instance(std::ostream& out, const Instance& instance);

/// Human-readable schedule dump: per machine, its jobs and load, then the
/// makespan.
void write_schedule(std::ostream& out, const Instance& instance,
                    const Schedule& schedule);

}  // namespace pcmax::workload
