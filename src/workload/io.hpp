// Plain-text instance and schedule serialization, used by the CLI tool and
// for exchanging instances with other schedulers.
//
// Instance format (whitespace tolerant, '#' starts a comment line):
//   line 1: m              (machine count)
//   line 2: t_1 t_2 ... t_n  (processing times, any line breaks)
//
// Schedule format: one "job machine load" triple per line after a header.
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"

namespace pcmax::workload {

/// Parses an instance; throws util::contract_violation with a line-anchored
/// message on malformed input.
[[nodiscard]] Instance read_instance(std::istream& in);
[[nodiscard]] Instance parse_instance(const std::string& text);

/// Serializes an instance in the format read_instance accepts.
void write_instance(std::ostream& out, const Instance& instance);

/// Human-readable schedule dump: per machine, its jobs and load, then the
/// makespan.
void write_schedule(std::ostream& out, const Instance& instance,
                    const Schedule& schedule);

}  // namespace pcmax::workload
