// DP-table shapes for the benchmark harnesses.
//
// The paper organizes its evaluation by DP-table size and dimension
// structure rather than by raw scheduling instances (Section IV.A filters
// its instance set down to "typical sizes"). Tables I-VI publish the exact
// dimension vectors for the six sizes studied in Fig. 4; we reuse them
// verbatim, and synthesize comparable grids for the three size groups of
// Fig. 3. dp_problem_for_extents turns a dimension vector into the DP
// problem the PTAS would build for it: counts = extent - 1, weights =
// distinct Hochbaum-Shmoys class indices in [k, k^2], capacity k^2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dp/problem.hpp"

namespace pcmax::workload {

struct TableShape {
  std::string label;                  ///< e.g. "3456/d5"
  std::uint64_t table_size = 0;       ///< prod(extents)
  std::vector<std::int64_t> extents;  ///< per-dimension sizes (n_i + 1)
};

/// DP problem for a table shape with PTAS class weights (k defaults to the
/// paper's epsilon = 0.3 setting).
[[nodiscard]] dp::DpProblem dp_problem_for_extents(
    const std::vector<std::int64_t>& extents, std::int64_t k = 4);

/// The published dimension vectors of Tables I-VI, keyed by table size:
/// 3456, 8640, 12960, 20736, 362880, 403200.
[[nodiscard]] const std::vector<TableShape>& paper_table_shapes();

/// Variants of one published size (all entries of paper_table_shapes()
/// whose table_size matches).
[[nodiscard]] std::vector<TableShape> paper_shapes_for_size(
    std::uint64_t table_size);

/// Fig. 3 size grids. Group 'a' spans 100..10'000, 'b' 20'000..100'000,
/// 'c' 110'000..500'000; 12 shapes each.
[[nodiscard]] const std::vector<TableShape>& fig3_group(char group);

}  // namespace pcmax::workload
