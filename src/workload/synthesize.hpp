// DP-shape synthesis: factor a target table size into a given number of
// dimension extents. The paper notes that "selecting the appropriate
// instances that can result in an expected table size and different number
// of non-zero dimensions is impossible" when working from raw scheduling
// instances — synthesizing the table shape directly sidesteps that and is
// how the Fig. 3/4 grids in this repository are built.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace pcmax::workload {

/// Factors `table_size` into exactly `dims` extents, each in
/// [min_extent, max_extent], preferring balanced factors (the search
/// maximizes the smallest extent, then lexicographically-smallest
/// descending order). Returns nullopt when no factorization exists.
[[nodiscard]] std::optional<std::vector<std::int64_t>> factor_table_size(
    std::uint64_t table_size, std::size_t dims, std::int64_t min_extent = 2,
    std::int64_t max_extent = 32);

/// All dimension counts d in [min_dims, max_dims] for which `table_size`
/// factors, with one synthesized shape each — the per-size variants Fig. 4
/// plots.
[[nodiscard]] std::vector<std::vector<std::int64_t>> shape_variants(
    std::uint64_t table_size, std::size_t min_dims, std::size_t max_dims);

}  // namespace pcmax::workload
