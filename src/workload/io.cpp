#include "workload/io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace pcmax::workload {

namespace {

/// Strips '#' comments and concatenates the remaining tokens.
std::string strip_comments(std::istream& in) {
  std::string out, line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

Instance read_instance(std::istream& in) {
  std::istringstream tokens(strip_comments(in));
  Instance instance;
  if (!(tokens >> instance.machines))
    throw util::contract_violation("instance: missing machine count");
  std::int64_t t = 0;
  while (tokens >> t) instance.times.push_back(t);
  if (!tokens.eof())
    throw util::contract_violation("instance: non-numeric token");
  instance.validate();
  return instance;
}

Instance parse_instance(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

void write_instance(std::ostream& out, const Instance& instance) {
  instance.validate();
  out << "# pcmax instance: " << instance.jobs() << " jobs\n"
      << instance.machines << "\n";
  for (std::size_t j = 0; j < instance.times.size(); ++j) {
    out << instance.times[j];
    out << ((j + 1) % 16 == 0 || j + 1 == instance.times.size() ? '\n' : ' ');
  }
}

void write_schedule(std::ostream& out, const Instance& instance,
                    const Schedule& schedule) {
  validate_schedule(instance, schedule);
  const auto loads = machine_loads(instance, schedule);
  for (std::int64_t m = 0; m < instance.machines; ++m) {
    out << "machine " << m << " (load "
        << loads[static_cast<std::size_t>(m)] << "):";
    for (std::size_t j = 0; j < instance.jobs(); ++j)
      if (schedule.assignment[j] == m)
        out << " " << j << ":" << instance.times[j];
    out << "\n";
  }
  out << "makespan " << *std::max_element(loads.begin(), loads.end())
      << "\n";
}

}  // namespace pcmax::workload
