#include "workload/io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace pcmax::workload {

namespace {

/// Parses one whitespace-delimited token as a strictly formatted int64.
/// Rejects partial matches ("12x"), signs without digits, and 64-bit
/// overflow, each with the offending token in the message.
std::int64_t parse_i64(std::string_view token, int line, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc::result_out_of_range)
    throw ParseError(line, std::string(what) + " '" + std::string(token) +
                               "' overflows 64-bit integers");
  if (ec != std::errc{} || ptr != token.data() + token.size())
    throw ParseError(line, std::string("non-numeric ") + what + " '" +
                               std::string(token) + "'");
  return value;
}

Instance parse_lines(std::istream& in) {
  Instance instance;
  bool saw_machines = false;
  std::int64_t total = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::size_t pos = 0;
    while (pos < line.size()) {
      if (std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
        ++pos;
        continue;
      }
      std::size_t end = pos;
      while (end < line.size() &&
             std::isspace(static_cast<unsigned char>(line[end])) == 0)
        ++end;
      const std::string_view token(line.data() + pos, end - pos);
      pos = end;
      if (!saw_machines) {
        instance.machines = parse_i64(token, line_no, "machine count");
        if (instance.machines < 1)
          throw ParseError(line_no, "machine count " +
                                        std::to_string(instance.machines) +
                                        " must be >= 1");
        saw_machines = true;
        continue;
      }
      const std::int64_t t = parse_i64(token, line_no, "processing time");
      if (t < 1)
        throw ParseError(line_no, "processing time " + std::to_string(t) +
                                      " must be >= 1");
      // The makespan bounds sum all times into an int64; an instance whose
      // total wraps would corrupt every downstream bound, so reject it at
      // the boundary.
      if (__builtin_add_overflow(total, t, &total))
        throw ParseError(line_no,
                         "total processing time overflows 64-bit makespan "
                         "arithmetic");
      instance.times.push_back(t);
    }
  }
  if (!saw_machines) throw ParseError(0, "missing machine count");
  if (instance.times.empty())
    throw ParseError(0, "instance has no processing times");
  instance.validate();
  return instance;
}

}  // namespace

Instance read_instance(std::istream& in) { return parse_lines(in); }

Instance parse_instance(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

Result<Instance> try_parse_instance(std::string_view text) {
  try {
    return parse_instance(std::string(text));
  } catch (const std::exception& e) {
    return Status(StatusCode::kInvalidInput, e.what());
  }
}

void write_instance(std::ostream& out, const Instance& instance) {
  instance.validate();
  out << "# pcmax instance: " << instance.jobs() << " jobs\n"
      << instance.machines << "\n";
  for (std::size_t j = 0; j < instance.times.size(); ++j) {
    out << instance.times[j];
    out << ((j + 1) % 16 == 0 || j + 1 == instance.times.size() ? '\n' : ' ');
  }
}

void write_schedule(std::ostream& out, const Instance& instance,
                    const Schedule& schedule) {
  validate_schedule(instance, schedule);
  const auto loads = machine_loads(instance, schedule);
  for (std::int64_t m = 0; m < instance.machines; ++m) {
    out << "machine " << m << " (load "
        << loads[static_cast<std::size_t>(m)] << "):";
    for (std::size_t j = 0; j < instance.jobs(); ++j)
      if (schedule.assignment[j] == m)
        out << " " << j << ":" << instance.times[j];
    out << "\n";
  }
  out << "makespan " << *std::max_element(loads.begin(), loads.end())
      << "\n";
}

}  // namespace pcmax::workload
