// Random P||Cmax instance generators. The paper generates instances from the
// uniform distribution over varying job/machine counts; normal and bimodal
// variants are provided for the example applications and wider testing.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace pcmax::workload {

/// n jobs uniform in [lo, hi] on m machines. Deterministic per seed.
[[nodiscard]] Instance uniform_instance(std::size_t jobs,
                                        std::int64_t machines, std::int64_t lo,
                                        std::int64_t hi, std::uint64_t seed);

/// Normal(mean, stddev) clamped to [1, 2*mean].
[[nodiscard]] Instance normal_instance(std::size_t jobs, std::int64_t machines,
                                       double mean, double stddev,
                                       std::uint64_t seed);

/// Mixture: with probability `long_fraction` a job is uniform in
/// [long_lo, long_hi], otherwise uniform in [short_lo, short_hi]. Models
/// workloads with a few dominant jobs (e.g. render frames vs thumbnails).
[[nodiscard]] Instance bimodal_instance(std::size_t jobs,
                                        std::int64_t machines,
                                        std::int64_t short_lo,
                                        std::int64_t short_hi,
                                        std::int64_t long_lo,
                                        std::int64_t long_hi,
                                        double long_fraction,
                                        std::uint64_t seed);

}  // namespace pcmax::workload
