#include "workload/synthesize.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pcmax::workload {

namespace {

/// DFS over non-increasing factor sequences; tracks the best (most
/// balanced) complete factorization.
struct FactorSearch {
  std::uint64_t target;
  std::size_t dims;
  std::int64_t min_extent;
  std::int64_t max_extent;
  std::vector<std::int64_t> current;
  std::optional<std::vector<std::int64_t>> best;

  void run(std::uint64_t remaining, std::int64_t cap) {
    if (current.size() == dims) {
      if (remaining != 1) return;
      if (!best.has_value() || current.back() > best->back()) best = current;
      return;
    }
    const auto slots = dims - current.size();
    for (std::int64_t f = std::min<std::int64_t>(
             cap, static_cast<std::int64_t>(remaining));
         f >= min_extent; --f) {
      if (remaining % static_cast<std::uint64_t>(f) != 0) continue;
      // Feasibility pruning: the remaining product must fit in the
      // remaining slots given factors <= f and >= min_extent.
      std::uint64_t rest = remaining / static_cast<std::uint64_t>(f);
      std::uint64_t max_rest = 1, min_rest = 1;
      bool overflow = false;
      for (std::size_t s = 1; s < slots; ++s) {
        max_rest *= static_cast<std::uint64_t>(f);
        min_rest *= static_cast<std::uint64_t>(min_extent);
        if (max_rest > (1ull << 62)) {
          overflow = true;
          break;
        }
      }
      if (!overflow && (rest > max_rest || rest < min_rest)) continue;
      current.push_back(f);
      run(rest, f);
      current.pop_back();
    }
  }
};

}  // namespace

std::optional<std::vector<std::int64_t>> factor_table_size(
    std::uint64_t table_size, std::size_t dims, std::int64_t min_extent,
    std::int64_t max_extent) {
  PCMAX_EXPECTS(table_size >= 1);
  PCMAX_EXPECTS(dims >= 1);
  PCMAX_EXPECTS(min_extent >= 1);
  PCMAX_EXPECTS(min_extent <= max_extent);

  FactorSearch search{table_size, dims, min_extent, max_extent, {}, {}};
  search.run(table_size, max_extent);
  return search.best;
}

std::vector<std::vector<std::int64_t>> shape_variants(
    std::uint64_t table_size, std::size_t min_dims, std::size_t max_dims) {
  PCMAX_EXPECTS(min_dims >= 1 && min_dims <= max_dims);
  std::vector<std::vector<std::int64_t>> variants;
  for (std::size_t d = min_dims; d <= max_dims; ++d) {
    auto shape = factor_table_size(table_size, d);
    if (shape.has_value()) variants.push_back(std::move(*shape));
  }
  return variants;
}

}  // namespace pcmax::workload
