#include "workload/shapes.hpp"

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::workload {

namespace {

TableShape make_shape(std::vector<std::int64_t> extents) {
  TableShape shape;
  std::uint64_t size = 1;
  for (const auto e : extents) {
    PCMAX_EXPECTS(e >= 1);
    size = util::checked_mul(size, static_cast<std::uint64_t>(e));
  }
  shape.table_size = size;
  shape.label = std::to_string(size) + "/d" + std::to_string(extents.size());
  shape.extents = std::move(extents);
  return shape;
}

}  // namespace

dp::DpProblem dp_problem_for_extents(const std::vector<std::int64_t>& extents,
                                     std::int64_t k) {
  PCMAX_EXPECTS(!extents.empty());
  PCMAX_EXPECTS(k >= 1);
  dp::DpProblem problem;
  problem.capacity = k * k;
  const std::int64_t distinct = k * k - k + 1;  // classes k .. k^2
  for (std::size_t i = 0; i < extents.size(); ++i) {
    PCMAX_EXPECTS(extents[i] >= 1);
    problem.counts.push_back(extents[i] - 1);
    problem.weights.push_back(k + static_cast<std::int64_t>(i) % distinct);
  }
  problem.validate();
  return problem;
}

const std::vector<TableShape>& paper_table_shapes() {
  static const std::vector<TableShape> shapes = [] {
    std::vector<TableShape> out;
    // Table I: size 3456.
    out.push_back(make_shape({6, 4, 6, 6, 4}));
    out.push_back(make_shape({2, 6, 3, 4, 6, 4}));
    out.push_back(make_shape({2, 2, 4, 3, 2, 6, 3, 2}));
    out.push_back(make_shape({3, 2, 3, 2, 2, 2, 2, 3, 4}));
    out.push_back(make_shape({2, 3, 2, 2, 3, 3, 2, 2, 2, 2}));
    // Table II: size 8640.
    out.push_back(make_shape({5, 3, 6, 3, 4, 4, 2}));
    out.push_back(make_shape({5, 6, 2, 3, 2, 2, 4, 3}));
    out.push_back(make_shape({3, 3, 4, 3, 2, 2, 5, 2, 2}));
    // Table III: size 12960.
    out.push_back(make_shape({3, 16, 15, 18}));
    out.push_back(make_shape({4, 5, 3, 6, 4, 3, 3}));
    out.push_back(make_shape({3, 4, 3, 4, 3, 5, 3, 2}));
    out.push_back(make_shape({3, 3, 3, 2, 3, 4, 2, 5, 2}));
    // Table IV: size 20736.
    out.push_back(make_shape({4, 4, 6, 6, 2, 3, 3, 2}));
    out.push_back(make_shape({2, 4, 2, 3, 3, 3, 3, 2, 2, 2, 2}));
    // Table V: size 362880.
    out.push_back(make_shape({5, 6, 3, 7, 6, 4, 8, 3}));
    out.push_back(make_shape({3, 3, 3, 4, 5, 7, 2, 3, 4, 4}));
    // Table VI: size 403200.
    out.push_back(make_shape({3, 10, 7, 6, 4, 8, 10}));
    out.push_back(make_shape({4, 5, 4, 2, 3, 5, 7, 3, 8}));
    return out;
  }();
  return shapes;
}

std::vector<TableShape> paper_shapes_for_size(std::uint64_t table_size) {
  std::vector<TableShape> out;
  for (const auto& shape : paper_table_shapes())
    if (shape.table_size == table_size) out.push_back(shape);
  return out;
}

const std::vector<TableShape>& fig3_group(char group) {
  static const std::vector<TableShape> a = [] {
    std::vector<TableShape> out;
    out.push_back(make_shape({5, 5, 4}));                 // 100
    out.push_back(make_shape({4, 4, 3, 5}));              // 240
    out.push_back(make_shape({5, 5, 5, 4}));              // 500
    out.push_back(make_shape({4, 4, 4, 3, 5}));           // 960
    out.push_back(make_shape({4, 4, 4, 3, 3, 3}));        // 1728
    out.push_back(make_shape({4, 4, 4, 4, 10}));          // 2560
    out.push_back(make_shape({6, 4, 6, 6, 4}));           // 3456 (Table I)
    out.push_back(make_shape({4, 4, 4, 4, 3, 6}));        // 4608
    out.push_back(make_shape({4, 4, 4, 5, 3, 6}));        // 5760
    out.push_back(make_shape({6, 4, 6, 6, 4, 2}));        // 6912
    out.push_back(make_shape({5, 3, 6, 3, 4, 4, 2}));     // 8640 (Table II)
    out.push_back(make_shape({5, 5, 5, 5, 4, 4}));        // 10000
    return out;
  }();
  static const std::vector<TableShape> b = [] {
    std::vector<TableShape> out;
    out.push_back(make_shape({4, 4, 6, 6, 2, 3, 3, 2}));     // 20736 (IV)
    out.push_back(make_shape({4, 4, 5, 4, 3, 3, 3, 3}));     // 25920
    out.push_back(make_shape({6, 7, 8, 9, 10}));             // 30240
    out.push_back(make_shape({6, 4, 6, 6, 4, 10}));          // 34560
    out.push_back(make_shape({6, 4, 6, 6, 4, 4, 3}));        // 41472
    out.push_back(make_shape({5, 3, 6, 3, 4, 4, 2, 6}));     // 51840
    out.push_back(make_shape({6, 6, 6, 4, 3, 4, 2, 3}));     // 62208
    out.push_back(make_shape({8, 6, 4, 5, 4, 3, 3, 2}));     // 69120
    out.push_back(make_shape({6, 6, 6, 6, 5, 4, 3}));        // 77760
    out.push_back(make_shape({6, 6, 6, 6, 8, 8}));           // 82944
    out.push_back(make_shape({9, 8, 7, 6, 5, 6}));           // 90720
    out.push_back(make_shape({10, 10, 10, 10, 10}));         // 100000
    return out;
  }();
  static const std::vector<TableShape> c = [] {
    std::vector<TableShape> out;
    out.push_back(make_shape({10, 10, 10, 10, 12}));            // 120000
    out.push_back(make_shape({7, 6, 8, 6, 6, 4, 3}));           // 145152
    out.push_back(make_shape({8, 8, 6, 6, 6, 4, 3}));           // 165888
    out.push_back(make_shape({6, 6, 6, 6, 6, 6, 4}));           // 186624
    out.push_back(make_shape({4, 4, 6, 6, 2, 3, 3, 2, 10}));    // 207360
    out.push_back(make_shape({8, 7, 6, 6, 5, 4, 3, 2}));        // 241920
    out.push_back(make_shape({6, 7, 8, 9, 10, 9}));             // 272160
    out.push_back(make_shape({6, 6, 6, 6, 6, 8, 5}));           // 311040
    out.push_back(make_shape({5, 6, 3, 7, 6, 4, 8, 3}));        // 362880 (V)
    out.push_back(make_shape({3, 10, 7, 6, 4, 8, 10}));         // 403200 (VI)
    out.push_back(make_shape({6, 4, 6, 6, 4, 2, 7, 9}));        // 435456
    out.push_back(make_shape({8, 7, 6, 6, 5, 4, 3, 2, 2}));     // 483840
    return out;
  }();
  switch (group) {
    case 'a':
      return a;
    case 'b':
      return b;
    case 'c':
      return c;
    default:
      throw util::contract_violation("fig3_group: group must be a, b, or c");
  }
}

}  // namespace pcmax::workload
