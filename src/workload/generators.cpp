#include "workload/generators.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace pcmax::workload {

Instance uniform_instance(std::size_t jobs, std::int64_t machines,
                          std::int64_t lo, std::int64_t hi,
                          std::uint64_t seed) {
  PCMAX_EXPECTS(jobs >= 1);
  PCMAX_EXPECTS(lo >= 1 && lo <= hi);
  util::Rng rng(seed);
  Instance inst;
  inst.machines = machines;
  inst.times.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j)
    inst.times.push_back(rng.uniform(lo, hi));
  inst.validate();
  return inst;
}

Instance normal_instance(std::size_t jobs, std::int64_t machines, double mean,
                         double stddev, std::uint64_t seed) {
  PCMAX_EXPECTS(jobs >= 1);
  PCMAX_EXPECTS(mean >= 1.0);
  util::Rng rng(seed);
  Instance inst;
  inst.machines = machines;
  inst.times.reserve(jobs);
  const auto hi = static_cast<std::int64_t>(2.0 * mean);
  for (std::size_t j = 0; j < jobs; ++j)
    inst.times.push_back(rng.clamped_normal(mean, stddev, 1, hi));
  inst.validate();
  return inst;
}

Instance bimodal_instance(std::size_t jobs, std::int64_t machines,
                          std::int64_t short_lo, std::int64_t short_hi,
                          std::int64_t long_lo, std::int64_t long_hi,
                          double long_fraction, std::uint64_t seed) {
  PCMAX_EXPECTS(jobs >= 1);
  PCMAX_EXPECTS(short_lo >= 1 && short_lo <= short_hi);
  PCMAX_EXPECTS(long_lo >= 1 && long_lo <= long_hi);
  PCMAX_EXPECTS(long_fraction >= 0.0 && long_fraction <= 1.0);
  util::Rng rng(seed);
  Instance inst;
  inst.machines = machines;
  inst.times.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    if (rng.uniform01() < long_fraction)
      inst.times.push_back(rng.uniform(long_lo, long_hi));
    else
      inst.times.push_back(rng.uniform(short_lo, short_hi));
  }
  inst.validate();
  return inst;
}

}  // namespace pcmax::workload
