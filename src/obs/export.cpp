#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace pcmax::obs {

namespace {

// Chrome trace timestamps are microseconds. Both conversions below are
// exact decimals (ps -> us needs 6 fractional digits, ns -> us needs 3),
// so the output is deterministic for deterministic inputs.
void append_us_from_ps(std::string& out, std::int64_t ps) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64, ps / 1000000,
                ps % 1000000);
  out += buf;
}

void append_us_from_ns(std::string& out, std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out += buf;
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_args_object(std::string& out, const TraceEvent& event) {
  out += "\"args\":{";
  bool first = true;
  for (const TraceArg& a : event.args) {
    if (!a.used()) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, a.key);
    out += ':';
    out += std::to_string(a.value);
  }
  out += '}';
}

void append_thread_metadata(std::string& out, std::int32_t pid,
                            std::int32_t tid, const std::string& name) {
  out += "{\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
  append_json_string(out, name);
  out += "}},\n";
}

std::string host_thread_name(std::int32_t tid) {
  if (tid == kParentTid) return "main";
  if (tid >= kWorkerTidBase)
    return "worker " + std::to_string(tid - kWorkerTidBase);
  return "thread " + std::to_string(tid);
}

void append_metadata(std::string& out, std::int32_t pid, int sort_index,
                     const std::string& process_name) {
  out += "{\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
  append_json_string(out, process_name);
  out += "}},\n{\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out +=
      ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":{\"sort_index\":";
  out += std::to_string(sort_index);
  out += "}},\n";
}

// Host-side begin/end/instant events are recorded without a pid; the track
// is derived from the clock domain: events stamped by a simulated clock go
// to the algorithm track, the rest to the wall-clock host track.
bool on_sim_track(const TraceEvent& event) {
  return event.kind != EventKind::kComplete && event.sim_ps >= 0;
}

void append_digest_args(std::string& out, const TraceEvent& event) {
  for (const TraceArg& a : event.args) {
    if (!a.used()) continue;
    out += ' ';
    out += a.key;
    out += '=';
    out += std::to_string(a.value);
  }
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& trace) {
  const std::vector<TraceEvent> events = trace.snapshot();

  std::string out;
  out.reserve(events.size() * 120 + 512);
  out += "{\"traceEvents\":[\n";

  bool algo_track = false;
  std::set<std::int32_t> stream_pids;
  std::set<std::pair<std::int32_t, std::int32_t>> host_tracks;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kComplete) {
      stream_pids.insert(e.pid);
    } else {
      const std::int32_t pid = on_sim_track(e) ? kAlgoPid : kHostPid;
      if (pid == kAlgoPid) algo_track = true;
      if (e.tid != kParentTid) host_tracks.insert({pid, e.tid});
    }
  }

  append_metadata(out, kHostPid, 0, "host (wall clock)");
  if (algo_track) append_metadata(out, kAlgoPid, 1, "algorithm (sim time)");
  int sort = 2;
  for (const std::int32_t pid : stream_pids) {
    std::string name;
    if (pid >= kInterconnectPidBase) {
      name = "interconnect link " + std::to_string(pid - kInterconnectPidBase) +
             " (sim time)";
    } else {
      const std::int32_t device = (pid - kStreamPidBase) / kDevicePidStride;
      const std::int32_t stream = (pid - kStreamPidBase) % kDevicePidStride;
      name = device == 0
                 ? "gpusim stream " + std::to_string(stream) + " (sim time)"
                 : "gpusim device " + std::to_string(device) + " stream " +
                       std::to_string(stream) + " (sim time)";
    }
    append_metadata(out, pid, sort++, name);
  }
  // Thread-name rows only appear once a non-main host thread recorded
  // something, so single-threaded traces are unchanged.
  if (!host_tracks.empty()) {
    append_thread_metadata(out, kHostPid, kParentTid,
                           host_thread_name(kParentTid));
    if (algo_track)
      append_thread_metadata(out, kAlgoPid, kParentTid,
                             host_thread_name(kParentTid));
    for (const auto& [pid, tid] : host_tracks)
      append_thread_metadata(out, pid, tid, host_thread_name(tid));
  }

  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    switch (e.kind) {
      case EventKind::kSpanBegin: out += 'B'; break;
      case EventKind::kSpanEnd: out += 'E'; break;
      case EventKind::kComplete: out += 'X'; break;
      case EventKind::kInstant: out += 'i'; break;
    }
    out += "\",\"pid\":";
    if (e.kind == EventKind::kComplete) {
      out += std::to_string(e.pid);
      out += ",\"tid\":";
      out += std::to_string(e.tid);
      out += ",\"ts\":";
      append_us_from_ps(out, e.sim_ps);
      out += ",\"dur\":";
      append_us_from_ps(out, e.dur_ps);
    } else if (on_sim_track(e)) {
      out += std::to_string(kAlgoPid);
      out += ",\"tid\":";
      out += std::to_string(e.tid);
      out += ",\"ts\":";
      append_us_from_ps(out, e.sim_ps);
    } else {
      out += std::to_string(kHostPid);
      out += ",\"tid\":";
      out += std::to_string(e.tid);
      out += ",\"ts\":";
      append_us_from_ns(out, e.wall_ns);
    }
    if (e.kind == EventKind::kInstant) out += ",\"s\":\"t\"";
    out += ",\"name\":";
    append_json_string(out, e.name);
    if (e.kind != EventKind::kSpanEnd) {
      out += ',';
      append_args_object(out, e);
    }
    out += '}';
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string metrics_json(const MetricsRegistry& metrics) {
  std::string out = "{\n\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : metrics.counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n  ";
    append_json_string(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += "\n},\n\"histograms\": {";
  first = true;
  for (const auto& h : metrics.histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n  ";
    append_json_string(out, h.name);
    out += ": {\"total\": ";
    out += std::to_string(h.total);
    out += ", \"sum\": ";
    out += std::to_string(h.sum);
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le\": ";
      out += std::to_string(MetricsRegistry::bucket_upper(b));
      out += ", \"count\": ";
      out += std::to_string(h.counts[b]);
      out += '}';
    }
    out += "]}";
  }
  out += "\n}\n}\n";
  return out;
}

std::string text_summary(const TraceRecorder& trace,
                         const MetricsRegistry& metrics) {
  const std::vector<TraceEvent> events = trace.snapshot();
  std::size_t spans = 0;
  std::size_t kernels = 0;
  std::size_t instants = 0;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kSpanBegin: ++spans; break;
      case EventKind::kComplete: ++kernels; break;
      case EventKind::kInstant: ++instants; break;
      case EventKind::kSpanEnd: break;
    }
  }
  std::ostringstream out;
  out << "trace: " << events.size() << " events (" << spans << " spans, "
      << kernels << " kernel spans, " << instants << " instants)\n";
  const auto counters = metrics.counters();
  if (!counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters)
      out << "  " << name << " = " << value << "\n";
  }
  const auto histograms = metrics.histograms();
  if (!histograms.empty()) {
    out << "histograms:\n";
    for (const auto& h : histograms) {
      out << "  " << h.name << ": n=" << h.total << " sum=" << h.sum;
      for (std::size_t b = 0; b < h.counts.size(); ++b)
        if (h.counts[b] != 0)
          out << " le" << MetricsRegistry::bucket_upper(b) << "="
              << h.counts[b];
      out << "\n";
    }
  }
  return out.str();
}

std::string trace_digest(const TraceRecorder& trace) {
  const std::vector<TraceEvent> events = trace.snapshot();
  std::string out;
  out.reserve(events.size() * 64);
  std::size_t depth = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kSpanEnd && depth > 0) --depth;
    out.append(2 * depth, ' ');
    switch (e.kind) {
      case EventKind::kSpanBegin:
        out += "begin ";
        out += e.name;
        append_digest_args(out, e);
        ++depth;
        break;
      case EventKind::kSpanEnd:
        out += "end ";
        out += e.name;
        break;
      case EventKind::kInstant:
        out += "instant ";
        out += e.name;
        append_digest_args(out, e);
        break;
      case EventKind::kComplete:
        out += "kernel stream=";
        out += std::to_string(e.pid - kStreamPidBase);
        out += " tid=";
        out += std::to_string(e.tid);
        out += ' ';
        out += e.name;
        out += " start=";
        out += std::to_string(e.sim_ps);
        out += " dur=";
        out += std::to_string(e.dur_ps);
        append_digest_args(out, e);
        break;
    }
    if (e.kind != EventKind::kComplete && e.tid != kParentTid) {
      out += " tid=";
      out += std::to_string(e.tid);
    }
    if (e.kind != EventKind::kComplete && e.sim_ps >= 0) {
      out += " sim=";
      out += std::to_string(e.sim_ps);
    }
    out += '\n';
  }
  return out;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  file << contents;
}

}  // namespace pcmax::obs
