// Global registry of named counters and fixed-bucket histograms. Like the
// trace recorder, the registry is reachable only through a global pointer
// that is null unless an ObsSession is alive, so instrumented code pays a
// single relaxed load when metrics are disabled.
//
// Histograms use fixed power-of-two buckets: bucket 0 counts values <= 0 and
// bucket b >= 1 counts values in [2^(b-1), 2^b). Fixed bounds keep snapshots
// mergeable and make golden comparisons trivial.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pcmax::obs {

class MetricsRegistry {
 public:
  static constexpr std::size_t kHistogramBuckets = 42;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Add delta to a named counter (created on first use).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Record one sample into a named histogram (created on first use).
  void observe(std::string_view name, std::int64_t value);

  /// Current counter value; 0 for counters never touched.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  struct HistogramSnapshot {
    std::string name;
    std::uint64_t total = 0;  // number of samples
    std::int64_t sum = 0;     // sum of sample values
    std::array<std::uint64_t, kHistogramBuckets> counts{};
  };

  /// All counters, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters()
      const;

  /// All histograms, sorted by name.
  [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;

  /// Bucket index for a sample value (exposed for tests/exporters).
  [[nodiscard]] static std::size_t bucket_index(std::int64_t value) noexcept;

  /// Inclusive upper bound of a bucket (2^b - 1; bucket 0 covers <= 0).
  [[nodiscard]] static std::int64_t bucket_upper(std::size_t bucket) noexcept;

 private:
  struct Histogram {
    std::uint64_t total = 0;
    std::int64_t sum = 0;
    std::array<std::uint64_t, kHistogramBuckets> counts{};
  };

  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

namespace detail {
extern std::atomic<MetricsRegistry*> g_metrics;
}  // namespace detail

/// Active registry, or nullptr when metrics are disabled.
[[nodiscard]] inline MetricsRegistry* metrics() noexcept {
  return detail::g_metrics.load(std::memory_order_acquire);
}

/// Install (or, with nullptr, remove) the global registry.
void install_metrics(MetricsRegistry* registry) noexcept;

/// Convenience: bump a counter iff metrics are enabled.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (MetricsRegistry* m = metrics(); m != nullptr) m->add(name, delta);
}

/// Convenience: record a histogram sample iff metrics are enabled.
inline void observe(std::string_view name, std::int64_t value) {
  if (MetricsRegistry* m = metrics(); m != nullptr) m->observe(name, value);
}

}  // namespace pcmax::obs
