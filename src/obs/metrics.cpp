#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

namespace pcmax::obs {

namespace detail {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace detail

void install_metrics(MetricsRegistry* registry) noexcept {
  detail::g_metrics.store(registry, std::memory_order_release);
}

std::size_t MetricsRegistry::bucket_index(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  std::size_t bucket = 1;
  while (bucket + 1 < kHistogramBuckets && value >= (std::int64_t{1} << bucket))
    ++bucket;
  return bucket;
}

std::int64_t MetricsRegistry::bucket_upper(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 62) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << bucket) - 1;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(name), delta);
  }
}

void MetricsRegistry::observe(std::string_view name, std::int64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  Histogram& h = it->second;
  ++h.total;
  h.sum += value;
  ++h.counts[bucket_index(value)];
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, value] : counters_) out.emplace_back(name, value);
  return out;
}

std::vector<MetricsRegistry::HistogramSnapshot> MetricsRegistry::histograms()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.total = h.total;
    snap.sum = h.sum;
    snap.counts = h.counts;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace pcmax::obs
