// Exporters for recorded traces and metrics:
//  - chrome_trace_json: chrome://tracing / Perfetto "traceEvents" JSON. One
//    pid per track: pid 1 = host wall clock, pid 10 = algorithm spans on the
//    simulated clock, pid 100+s = gpusim stream s (kernel family spans on
//    tid 1, dynamic-parallelism children on tid 2).
//  - metrics_json: flat counters + fixed-bucket histograms.
//  - text_summary: human-readable one-screen digest of both.
//  - trace_digest: deterministic text form of the event sequence (names,
//    args, structure, simulated timestamps; wall-clock timestamps are
//    excluded) used by the golden-trace regression tests.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pcmax::obs {

[[nodiscard]] std::string chrome_trace_json(const TraceRecorder& trace);
[[nodiscard]] std::string metrics_json(const MetricsRegistry& metrics);
[[nodiscard]] std::string text_summary(const TraceRecorder& trace,
                                       const MetricsRegistry& metrics);
[[nodiscard]] std::string trace_digest(const TraceRecorder& trace);

/// Write a string to a file; throws std::runtime_error when the file cannot
/// be opened (callers surface the path in their own error handling).
void write_file(const std::string& path, const std::string& contents);

}  // namespace pcmax::obs
