#include "obs/session.hpp"

#include "util/contracts.hpp"

namespace pcmax::obs {

ObsSession::ObsSession() {
  PCMAX_EXPECTS(obs::trace() == nullptr);
  PCMAX_EXPECTS(obs::metrics() == nullptr);
  install_trace(&trace_);
  install_metrics(&metrics_);
}

ObsSession::~ObsSession() {
  install_trace(nullptr);
  install_metrics(nullptr);
}

}  // namespace pcmax::obs
