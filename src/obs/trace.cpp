#include "obs/trace.hpp"

#include <chrono>

#include "util/contracts.hpp"

namespace pcmax::obs {

namespace detail {
std::atomic<TraceRecorder*> g_trace{nullptr};
}  // namespace detail

void install_trace(TraceRecorder* recorder) noexcept {
  detail::g_trace.store(recorder, std::memory_order_release);
}

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void copy_name(char (&dst)[47], std::string_view name) noexcept {
  const std::size_t n =
      name.size() < sizeof(dst) - 1 ? name.size() : sizeof(dst) - 1;
  std::memcpy(dst, name.data(), n);
  dst[n] = '\0';
}

// The simulated-clock sampler is per thread: each serve worker drives its
// own gpusim device, and a shared sampler would stamp one worker's events
// with another worker's clock (and corrupt nested guard restore order).
thread_local std::function<std::int64_t()> t_sim_clock;

}  // namespace

TraceRecorder::TraceRecorder() : wall_origin_ns_(steady_ns()) {}

TraceEvent& TraceRecorder::append_locked() {
  if (count_ == blocks_.size() * kBlockSize)
    blocks_.push_back(std::make_unique<Block>());
  TraceEvent& event = blocks_.back()->events[count_ % kBlockSize];
  event.seq = count_;
  ++count_;
  return event;
}

void TraceRecorder::record(EventKind kind, std::string_view name,
                           std::int32_t pid, std::int32_t tid,
                           std::int64_t sim_start_ps, std::int64_t sim_dur_ps,
                           std::initializer_list<TraceArg> args) {
  PCMAX_EXPECTS(args.size() <= 2);
  const std::int64_t wall = steady_ns() - wall_origin_ns_;
  std::int64_t sim = -1;
  if (kind == EventKind::kComplete)
    sim = sim_start_ps;
  else if (t_sim_clock)
    sim = t_sim_clock();
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent& event = append_locked();
  event.kind = kind;
  copy_name(event.name, name);
  event.pid = pid;
  event.tid = tid;
  event.wall_ns = wall;
  event.sim_ps = sim;
  if (kind == EventKind::kComplete) event.dur_ps = sim_dur_ps;
  std::size_t slot = 0;
  for (const TraceArg& a : args) event.args[slot++] = a;
  if (detail::t_request >= 0 && kind != EventKind::kSpanEnd)
    event.args[slot] = arg("req", detail::t_request);
}

void TraceRecorder::begin_span(std::string_view name,
                               std::initializer_list<TraceArg> args) {
  record(EventKind::kSpanBegin, name, kHostPid, detail::t_track, -1, -1, args);
}

void TraceRecorder::end_span(std::string_view name) {
  record(EventKind::kSpanEnd, name, kHostPid, detail::t_track, -1, -1, {});
}

void TraceRecorder::instant(std::string_view name,
                            std::initializer_list<TraceArg> args) {
  record(EventKind::kInstant, name, kHostPid, detail::t_track, -1, -1, args);
}

void TraceRecorder::complete(std::string_view name, std::int32_t pid,
                             std::int32_t tid, std::int64_t sim_start_ps,
                             std::int64_t sim_dur_ps,
                             std::initializer_list<TraceArg> args) {
  PCMAX_EXPECTS(sim_start_ps >= 0);
  PCMAX_EXPECTS(sim_dur_ps >= 0);
  record(EventKind::kComplete, name, pid, tid, sim_start_ps, sim_dur_ps, args);
}

std::function<std::int64_t()> TraceRecorder::set_sim_clock(
    std::function<std::int64_t()> clock) {
  std::function<std::int64_t()> previous = std::move(t_sim_clock);
  t_sim_clock = std::move(clock);
  return previous;
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  events.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i)
    events.push_back(blocks_[i / kBlockSize]->events[i % kBlockSize]);
  return events;
}

}  // namespace pcmax::obs
