// RAII scope that turns observability on: owns one TraceRecorder and one
// MetricsRegistry and installs them globally for its lifetime. Exactly one
// session may be alive at a time (nesting would silently split the data).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pcmax::obs {

class ObsSession {
 public:
  ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
  ~ObsSession();

  [[nodiscard]] TraceRecorder& trace() noexcept { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  TraceRecorder trace_;
  MetricsRegistry metrics_;
};

}  // namespace pcmax::obs
