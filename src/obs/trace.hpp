// Structured trace recording: spans and instant events with two clock
// domains. Every event captures the host wall clock (monotonic ns since the
// recorder was created) and, when a simulated clock is installed, the gpusim
// device clock (integer picoseconds). The exporter places sim-stamped events
// on simulated-time tracks so algorithm spans nest around the kernel
// timeline they caused, which no single wall-clock track could show.
//
// Recording is globally disabled unless an ObsSession (see session.hpp) is
// alive: every instrumentation site reduces to one relaxed atomic load and a
// predictable branch, so instrumented builds pay nothing when tracing is off.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace pcmax::obs {

// Track (pid) layout used by the Chrome exporter and the invariant checkers.
// Host code records spans without choosing a pid; the exporter derives the
// track from the clock domain. Only gpusim kernel spans carry explicit pids.
inline constexpr std::int32_t kHostPid = 1;         // wall-clock host track
inline constexpr std::int32_t kAlgoPid = 10;        // sim-clock algorithm track
inline constexpr std::int32_t kStreamPidBase = 100; // + stream id per stream
// Multi-device layout: device d's stream s records on
// kStreamPidBase + d * kDevicePidStride + s, so each device owns a
// contiguous pid range and single-device traces keep their historical pids.
inline constexpr std::int32_t kDevicePidStride = 100;
// Interconnect link l's transfer spans record on kInterconnectPidBase + l,
// far above any device stream pid so the ranges never collide.
inline constexpr std::int32_t kInterconnectPidBase = 10000;
inline constexpr std::int32_t kParentTid = 1;       // kernel family spans
inline constexpr std::int32_t kChildTid = 2;        // dynamic-parallelism children
// Host-track threads: tid 1 is the main thread; serve workers record on
// kWorkerTidBase + worker index so concurrent requests get their own rows.
inline constexpr std::int32_t kWorkerTidBase = 10;

enum class EventKind : std::uint8_t {
  kSpanBegin,
  kSpanEnd,
  kComplete,  // span with explicit start + duration (gpusim kernels)
  kInstant,
};

/// One named integer attached to an event. Keys longer than the inline
/// buffer are truncated; instrumentation sites use short literal keys.
struct TraceArg {
  char key[15] = {};
  std::int64_t value = 0;
  [[nodiscard]] bool used() const noexcept { return key[0] != '\0'; }
};

/// Build a TraceArg from a literal key and value (truncating the key).
[[nodiscard]] inline TraceArg arg(std::string_view key,
                                  std::int64_t value) noexcept {
  TraceArg a;
  const std::size_t n = key.size() < sizeof(a.key) - 1 ? key.size()
                                                       : sizeof(a.key) - 1;
  std::memcpy(a.key, key.data(), n);
  a.value = value;
  return a;
}

/// Fixed-size event record; names are copied inline so recording never
/// allocates outside the arena and events survive their call site.
struct TraceEvent {
  char name[47] = {};
  EventKind kind = EventKind::kInstant;
  std::int32_t pid = kHostPid;
  std::int32_t tid = kParentTid;
  std::int64_t wall_ns = -1;  // monotonic ns since recorder creation
  std::int64_t sim_ps = -1;   // simulated ps; -1 when no sim clock installed
  std::int64_t dur_ps = -1;   // kComplete only
  std::uint64_t seq = 0;      // global record order
  // Slots 0..1 hold the call site's args; slot 2 is reserved for the
  // automatic "req" tag stamped from the calling thread's ScopedRequestTag.
  TraceArg args[3];
};

/// Thread-safe, arena-backed recorder. Events live in fixed-size blocks that
/// are never reallocated, so recording is a bump-pointer append under a
/// mutex. Instrumentation sites must reach a recorder only through the
/// global obs::trace() accessor, which is null when tracing is disabled.
class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Open a span on the host/algorithm track (pid chosen at export time
  /// from the clock domain). Close with end_span using the same name.
  void begin_span(std::string_view name,
                  std::initializer_list<TraceArg> args = {});
  void end_span(std::string_view name);

  /// Point event on the host/algorithm track.
  void instant(std::string_view name,
               std::initializer_list<TraceArg> args = {});

  /// Span with an explicit simulated-time extent on an explicit track;
  /// used for gpusim kernels whose timing is only known at synchronize().
  void complete(std::string_view name, std::int32_t pid, std::int32_t tid,
                std::int64_t sim_start_ps, std::int64_t sim_dur_ps,
                std::initializer_list<TraceArg> args = {});

  /// Install a simulated-clock sampler (e.g. reading Device::now()) for the
  /// calling thread; returns the previously installed sampler so guards can
  /// nest. The sampler is thread-local so concurrent workers, each driving
  /// its own simulated device, never stamp each other's events.
  std::function<std::int64_t()> set_sim_clock(
      std::function<std::int64_t()> clock);

  [[nodiscard]] std::size_t size() const;

  /// Copy of all events in record (seq) order.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  static constexpr std::size_t kBlockSize = 1024;
  struct Block {
    TraceEvent events[kBlockSize];
  };

  TraceEvent& append_locked();
  void record(EventKind kind, std::string_view name, std::int32_t pid,
              std::int32_t tid, std::int64_t sim_start_ps,
              std::int64_t sim_dur_ps, std::initializer_list<TraceArg> args);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::size_t count_ = 0;
  std::int64_t wall_origin_ns_ = 0;
};

namespace detail {
extern std::atomic<TraceRecorder*> g_trace;
// Per-thread event stamps. Host-side begin/end/instant events record on the
// calling thread's track (tid) and, when a ScopedRequestTag is live, carry
// its id as an automatic "req" arg. Trivially initialized so the thread-
// local access stays cheap on instrumentation fast paths.
inline thread_local std::int32_t t_track = kParentTid;
inline thread_local std::int64_t t_request = -1;
}  // namespace detail

/// Active recorder, or nullptr when tracing is disabled. The relaxed load
/// plus branch is the entire disabled-path cost of an instrumentation site.
[[nodiscard]] inline TraceRecorder* trace() noexcept {
  return detail::g_trace.load(std::memory_order_acquire);
}

/// Install (or, with nullptr, remove) the global recorder. Owned by
/// ObsSession; exposed separately so tests can scope recorders directly.
void install_trace(TraceRecorder* recorder) noexcept;

/// RAII begin/end pair; a no-op when tracing is disabled. The name must be
/// a literal (or otherwise outlive the guard).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      std::initializer_list<TraceArg> args = {}) {
    if (TraceRecorder* t = trace(); t != nullptr) {
      t->begin_span(name, args);
      recorder_ = t;
      name_ = name;
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->end_span(name_);
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
};

/// RAII sim-clock installer; restores the previous sampler on destruction
/// and is a no-op when tracing is disabled.
class SimClockGuard {
 public:
  explicit SimClockGuard(std::function<std::int64_t()> clock) {
    if (TraceRecorder* t = trace(); t != nullptr) {
      recorder_ = t;
      previous_ = t->set_sim_clock(std::move(clock));
    }
  }
  SimClockGuard(const SimClockGuard&) = delete;
  SimClockGuard& operator=(const SimClockGuard&) = delete;
  ~SimClockGuard() {
    if (recorder_ != nullptr) recorder_->set_sim_clock(std::move(previous_));
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  std::function<std::int64_t()> previous_;
};

/// Routes the calling thread's host-side events to an explicit track (tid)
/// for the lifetime of the guard. Serve workers use kWorkerTidBase + index;
/// the previous track is restored on destruction so guards nest. Unlike the
/// recorder-backed guards this always takes effect — the track must be set
/// before a recorder is installed mid-flight ever observes the thread.
class ScopedTrack {
 public:
  explicit ScopedTrack(std::int32_t tid) noexcept
      : previous_(detail::t_track) {
    detail::t_track = tid;
  }
  ScopedTrack(const ScopedTrack&) = delete;
  ScopedTrack& operator=(const ScopedTrack&) = delete;
  ~ScopedTrack() { detail::t_track = previous_; }

 private:
  std::int32_t previous_;
};

/// Tags every event the calling thread records with an automatic "req" arg
/// carrying this id, so one request's spans and instants can be filtered
/// out of an interleaved multi-worker trace. Ids are non-negative; the
/// previous tag is restored on destruction so nested tags (e.g. a coalesced
/// leader solving for followers) work.
class ScopedRequestTag {
 public:
  explicit ScopedRequestTag(std::int64_t id) noexcept
      : previous_(detail::t_request) {
    detail::t_request = id >= 0 ? id : previous_;
  }
  ScopedRequestTag(const ScopedRequestTag&) = delete;
  ScopedRequestTag& operator=(const ScopedRequestTag&) = delete;
  ~ScopedRequestTag() { detail::t_request = previous_; }

 private:
  std::int64_t previous_;
};

}  // namespace pcmax::obs
