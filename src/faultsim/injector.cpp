#include "faultsim/injector.hpp"

#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pcmax::faultsim {

namespace {

/// splitmix64: the standard 64-bit finalizer. Decisions hash (seed, site,
/// hit ordinal) so they are independent of call order across sites and of
/// which threads raced to a given ordinal.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultRule& rule : plan_.rules)
    rules_[static_cast<std::size_t>(rule.site)].push_back(rule);
}

std::optional<FiredFault> FaultInjector::should_fire(Site site) {
  const auto s = static_cast<std::size_t>(site);
  const std::uint64_t hit =
      hits_[s].fetch_add(1, std::memory_order_relaxed) + 1;
  for (const FaultRule& rule : rules_[s]) {
    bool fires = false;
    if (rule.nth != 0) {
      fires = hit == rule.nth;
    } else if (rule.permille != 0) {
      const std::uint64_t h =
          mix(mix(plan_.seed ^ (static_cast<std::uint64_t>(site) << 56)) ^ hit);
      fires = h % 1000 < rule.permille;
    }
    if (!fires) continue;
    fired_[s].fetch_add(1, std::memory_order_relaxed);
    obs::count(std::string("fault.injected.") + std::string(site_name(site)));
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->instant("fault/injected",
                  {obs::arg("site", static_cast<std::int64_t>(s)),
                   obs::arg("hit", static_cast<std::int64_t>(hit))});
    return FiredFault{site, hit, rule.stall_ms};
  }
  return std::nullopt;
}

FaultInjector::SiteStats FaultInjector::stats(Site site) const noexcept {
  const auto s = static_cast<std::size_t>(site);
  return SiteStats{hits_[s].load(std::memory_order_relaxed),
                   fired_[s].load(std::memory_order_relaxed)};
}

std::uint64_t FaultInjector::total_fired() const noexcept {
  std::uint64_t total = 0;
  for (const auto& f : fired_) total += f.load(std::memory_order_relaxed);
  return total;
}

namespace detail {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace detail

void install_injector(FaultInjector* injector) noexcept {
  detail::g_injector.store(injector, std::memory_order_release);
}

void check_host_alloc(std::uint64_t bytes) {
  if (const auto fault = fault_at(Site::kHostAlloc)) {
    obs::observe("fault.host_alloc_denied_bytes",
                 static_cast<std::int64_t>(bytes));
    throw std::bad_alloc();
  }
}

bool maybe_corrupt_table(std::span<std::int32_t> table, std::int32_t& opt) {
  const auto fault = fault_at(Site::kDpCell);
  if (!fault.has_value()) return false;
  // dp::kInfeasible, spelled without a dp dependency (dp links faultsim).
  constexpr std::int32_t kInfeasible = std::numeric_limits<std::int32_t>::max();
  if (table.empty()) {
    // opt + 1 would overflow when opt == kInfeasible (INT32_MAX).
    opt = opt == kInfeasible ? opt - 1 : (opt <= 0 ? opt + 1 : opt - 1);
    return true;
  }
  // Decrement the first finite positive cell at or after a seeded start
  // offset: a too-small OPT violates the weight lower bound / monotonicity
  // the invariant checkers test, and steers reconstruction into its
  // Expects/Ensures contracts.
  const std::uint64_t start =
      mix(injector()->plan().seed ^ fault->hit) % table.size();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::size_t idx = (start + i) % table.size();
    if (table[idx] != kInfeasible && table[idx] > 0) {
      --table[idx];
      if (idx == table.size() - 1) opt = table[idx];
      return true;
    }
  }
  // Degenerate table (origin only): corrupt OPT directly.
  opt = opt == kInfeasible ? opt - 1 : opt + 1;
  return true;
}

}  // namespace pcmax::faultsim
