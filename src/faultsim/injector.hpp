// The fault injector: a globally installable decision engine that the
// instrumented sites (gpusim device, DP solvers) consult. Mirrors the obs
// layer's discipline exactly — when no injector is installed, every hook
// reduces to one relaxed atomic load and a predictable branch
// (BM_FaultHookDisabled holds the line) — so production binaries carry the
// hooks at zero cost and tests/CI install a ScopedFaultInjector to turn
// chaos on.
//
// Decisions are deterministic: nth-triggers fire at an exact per-site hit
// ordinal, probability rules hash (plan seed, site, hit ordinal) with
// splitmix64, and per-site hit counters are atomic so concurrent OpenMP
// solver threads each get a unique ordinal. Every fired fault emits an obs
// instant ("fault/injected") and a per-site counter when observability is
// enabled, so traces show exactly which injected fault steered a solve.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <new>
#include <optional>
#include <span>

#include "faultsim/fault_plan.hpp"

namespace pcmax::faultsim {

/// What a fired fault tells the site to do. Today only kStreamSync carries a
/// magnitude (the injected stall); other sites just observe that it fired.
struct FiredFault {
  Site site = Site::kDeviceAlloc;
  std::uint64_t hit = 0;       ///< 1-based per-site hit ordinal that fired
  std::int64_t stall_ms = 0;   ///< kStreamSync: simulated stall to inject
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Records one hit at `site` and decides whether it fires. Thread-safe;
  /// hit ordinals are unique across threads.
  [[nodiscard]] std::optional<FiredFault> should_fire(Site site);

  struct SiteStats {
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };
  [[nodiscard]] SiteStats stats(Site site) const noexcept;
  /// Total faults fired across all sites.
  [[nodiscard]] std::uint64_t total_fired() const noexcept;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  /// Rules grouped per site for O(rules-at-site) decisions.
  std::array<std::vector<FaultRule>, kSiteCount> rules_;
  std::array<std::atomic<std::uint64_t>, kSiteCount> hits_{};
  std::array<std::atomic<std::uint64_t>, kSiteCount> fired_{};
};

namespace detail {
extern std::atomic<FaultInjector*> g_injector;
}  // namespace detail

/// Active injector, or nullptr when fault injection is off. The relaxed
/// load plus branch is the entire disabled-path cost of every hook.
[[nodiscard]] inline FaultInjector* injector() noexcept {
  return detail::g_injector.load(std::memory_order_acquire);
}

/// Install (or, with nullptr, remove) the global injector.
void install_injector(FaultInjector* injector) noexcept;

/// RAII installer; exactly one injector may be active at a time.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultPlan plan) : injector_(std::move(plan)) {
    install_injector(&injector_);
  }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
  ~ScopedFaultInjector() { install_injector(nullptr); }

  [[nodiscard]] FaultInjector& injector() noexcept { return injector_; }

 private:
  FaultInjector injector_;
};

// --- Hooks (what instrumented sites call) --------------------------------

/// Did a fault fire at `site`? One relaxed load when no injector is active.
[[nodiscard]] inline std::optional<FiredFault> fault_at(Site site) {
  FaultInjector* f = injector();
  if (f == nullptr) [[likely]]
    return std::nullopt;
  return f->should_fire(site);
}

/// Host-allocation site: throws std::bad_alloc when a kHostAlloc fault
/// fires. Call before sizing large DP-table vectors; `bytes` is recorded in
/// the fault metrics but the throw carries no message (bad_alloc cannot).
void check_host_alloc(std::uint64_t bytes);

/// DP-cell corruption site: when a kDpCell fault fires, deterministically
/// corrupts one finite cell of the just-filled table (decrement, so the
/// existing invariant checkers — monotonicity / weight lower bound / the
/// reconstruction contracts — can detect it) and keeps `opt` consistent
/// with table.back(). With an empty table (OPT-only engines) `opt` itself
/// is corrupted. Returns true when corruption was applied.
bool maybe_corrupt_table(std::span<std::int32_t> table, std::int32_t& opt);

}  // namespace pcmax::faultsim
