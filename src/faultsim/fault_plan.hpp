// Deterministic fault-injection plans. A FaultPlan names the sites where
// faults fire and how: either a one-shot nth-hit trigger ("the 3rd device
// allocation fails") or a seeded per-hit probability in permille. Plans have
// a single-line textual form so the CLI can take them on the command line,
// the fuzzer can write them next to shrunk reproducers, and CI can replay
// them verbatim:
//
//   seed=42;device-alloc:nth=3;kernel-launch:permille=10;
//   stream-sync:nth=1:stall-ms=250;dp-cell:nth=2;host-alloc:permille=5
//
// (shown wrapped; the format is one ';'-separated line). Determinism
// contract: the same plan fired against the same sequence of site hits
// makes identical decisions on every platform — probability rules hash
// (seed, site, hit-ordinal) instead of consuming shared RNG state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pcmax::faultsim {

/// The instrumented choke points. Sites are identified by stable names used
/// in plan text, metrics counters, and trace instants.
enum class Site : std::uint8_t {
  kDeviceAlloc,   ///< gpusim::Device::allocate
  kHostAlloc,     ///< DP-table host allocations in the CPU solvers
  kKernelLaunch,  ///< gpusim::Device kernel enqueue
  kStreamSync,    ///< gpusim::Device::synchronize (stream stall)
  kDpCell,        ///< DP result finalization (transient cell corruption)
  kDeviceLost,    ///< gpusim::Device::synchronize (device permanently lost)
  kLinkDown,      ///< gpusim::Topology::transfer (directed link permanently down)
};
inline constexpr std::size_t kSiteCount = 7;

[[nodiscard]] std::string_view site_name(Site site) noexcept;
[[nodiscard]] std::optional<Site> parse_site(std::string_view name) noexcept;

struct FaultRule {
  Site site = Site::kDeviceAlloc;
  /// One-shot trigger: fire exactly at the nth hit of the site (1-based).
  /// 0 disables the trigger and `permille` decides instead.
  std::uint64_t nth = 0;
  /// Per-hit firing probability in 1/1000 (0..1000); only used when nth==0.
  std::uint32_t permille = 0;
  /// Site-specific magnitude: for kStreamSync, the injected stall in
  /// milliseconds of simulated time. Ignored elsewhere.
  std::int64_t stall_ms = 0;
};

struct FaultPlan {
  /// Seed for probability decisions (and recorded for replay).
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  /// Single-line parseable form; parse_fault_plan(to_string()) round-trips.
  [[nodiscard]] std::string to_string() const;
};

/// Parses the single-line plan form. Returns nullopt on malformed text and,
/// when `error` is non-null, stores a diagnosis there.
[[nodiscard]] std::optional<FaultPlan> parse_fault_plan(
    std::string_view text, std::string* error = nullptr);

}  // namespace pcmax::faultsim
