#include "faultsim/fault_plan.hpp"

#include <charconv>

namespace pcmax::faultsim {

namespace {

constexpr std::string_view kSiteNames[kSiteCount] = {
    "device-alloc", "host-alloc",  "kernel-launch", "stream-sync",
    "dp-cell",      "device-lost", "link-down"};

bool set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Parses "key=value" into key and an unsigned value.
bool parse_kv(std::string_view token, std::string_view& key,
              std::uint64_t& value) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos) return false;
  key = token.substr(0, eq);
  const std::string_view digits = token.substr(eq + 1);
  if (digits.empty()) return false;
  const auto [ptr, ec] = std::from_chars(
      digits.data(), digits.data() + digits.size(), value);
  return ec == std::errc{} && ptr == digits.data() + digits.size();
}

bool parse_rule(std::string_view text, FaultRule& rule, std::string* error) {
  // site[:key=value]...
  std::size_t colon = text.find(':');
  const std::string_view name = text.substr(0, colon);
  const auto site = parse_site(name);
  if (!site.has_value())
    return set_error(error, "unknown fault site: " + std::string(name));
  rule.site = *site;
  while (colon != std::string_view::npos) {
    const std::size_t start = colon + 1;
    colon = text.find(':', start);
    const std::string_view token =
        text.substr(start, colon == std::string_view::npos ? std::string_view::npos
                                                           : colon - start);
    std::string_view key;
    std::uint64_t value = 0;
    if (!parse_kv(token, key, value))
      return set_error(error, "malformed rule token: " + std::string(token));
    if (key == "nth") {
      if (value == 0) return set_error(error, "nth must be >= 1");
      rule.nth = value;
    } else if (key == "permille") {
      if (value > 1000) return set_error(error, "permille must be <= 1000");
      rule.permille = static_cast<std::uint32_t>(value);
    } else if (key == "stall-ms") {
      rule.stall_ms = static_cast<std::int64_t>(value);
    } else {
      return set_error(error, "unknown rule key: " + std::string(key));
    }
  }
  if (rule.nth == 0 && rule.permille == 0)
    return set_error(error, "rule for " + std::string(name) +
                                " needs nth=N or permille=P");
  return true;
}

}  // namespace

std::string_view site_name(Site site) noexcept {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<Site> parse_site(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kSiteCount; ++i)
    if (kSiteNames[i] == name) return static_cast<Site>(i);
  return std::nullopt;
}

std::string FaultPlan::to_string() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const FaultRule& rule : rules) {
    out += ';';
    out += site_name(rule.site);
    if (rule.nth != 0) out += ":nth=" + std::to_string(rule.nth);
    if (rule.permille != 0)
      out += ":permille=" + std::to_string(rule.permille);
    if (rule.stall_ms != 0) out += ":stall-ms=" + std::to_string(rule.stall_ms);
  }
  return out;
}

std::optional<FaultPlan> parse_fault_plan(std::string_view text,
                                          std::string* error) {
  FaultPlan plan;
  bool saw_seed = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string_view::npos) semi = text.size();
    const std::string_view part = text.substr(pos, semi - pos);
    pos = semi + 1;
    if (part.empty()) continue;
    if (part.rfind("seed=", 0) == 0) {
      std::string_view key;
      std::uint64_t value = 0;
      if (!parse_kv(part, key, value)) {
        set_error(error, "malformed seed: " + std::string(part));
        return std::nullopt;
      }
      plan.seed = value;
      saw_seed = true;
      continue;
    }
    FaultRule rule;
    if (!parse_rule(part, rule, error)) return std::nullopt;
    plan.rules.push_back(rule);
  }
  if (!saw_seed && plan.rules.empty()) {
    set_error(error, "empty fault plan");
    return std::nullopt;
  }
  return plan;
}

}  // namespace pcmax::faultsim
