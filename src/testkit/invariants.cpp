#include "testkit/invariants.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

#include "core/bounds.hpp"
#include "core/certificate.hpp"
#include "testkit/oracles.hpp"
#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::testkit {

namespace {

std::string cell_label(const dp::MixedRadix& radix, std::uint64_t id) {
  std::string s = "cell " + std::to_string(id) + " = (";
  const auto v = radix.unflatten(id);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) s += ',';
    s += std::to_string(v[i]);
  }
  s += ")";
  return s;
}

}  // namespace

CheckResult check_schedule(const Instance& instance, const Schedule& schedule) {
  try {
    validate_schedule(instance, schedule);
  } catch (const util::contract_violation& e) {
    return std::string("invalid schedule: ") + e.what();
  }
  const auto loads = machine_loads(instance, schedule);
  const auto total = std::accumulate(loads.begin(), loads.end(),
                                     std::int64_t{0});
  if (total != instance.total_time())
    return "load conservation violated: machine loads sum to " +
           std::to_string(total) + " but the instance has " +
           std::to_string(instance.total_time()) + " total time";
  return std::nullopt;
}

CheckResult check_ptas_result(const Instance& instance,
                              const PtasResult& result, std::int64_t k) {
  if (auto bad = check_schedule(instance, result.schedule)) return bad;
  const auto actual = makespan(instance, result.schedule);
  if (actual != result.achieved_makespan)
    return "achieved_makespan " + std::to_string(result.achieved_makespan) +
           " does not match the schedule's real makespan " +
           std::to_string(actual);
  const auto lb = makespan_lower_bound(instance);
  const auto ub = makespan_upper_bound(instance);
  if (result.best_target < lb || result.best_target > ub)
    return "best_target " + std::to_string(result.best_target) +
           " outside [LB, UB] = [" + std::to_string(lb) + ", " +
           std::to_string(ub) + "]";
  if (!within_ptas_guarantee(result.achieved_makespan, result.best_target, k))
    return "makespan " + std::to_string(result.achieved_makespan) +
           " violates the (1 + 1/" + std::to_string(k) +
           ") bound against target " + std::to_string(result.best_target);
  const auto oracle_lb = oracle_lower_bound(instance);
  if (result.achieved_makespan < oracle_lb)
    return "makespan " + std::to_string(result.achieved_makespan) +
           " beats the oracle lower bound " + std::to_string(oracle_lb) +
           " — the schedule or the loads are corrupt";
  return std::nullopt;
}

CheckResult check_ptas_vs_exact(const Instance& instance,
                                const PtasResult& result, std::int64_t k,
                                std::int64_t exact_opt) {
  if (auto bad = check_ptas_result(instance, result, k)) return bad;
  if (result.achieved_makespan < exact_opt)
    return "makespan " + std::to_string(result.achieved_makespan) +
           " below the exact optimum " + std::to_string(exact_opt);
  // makespan <= (1 + 1/k) * OPT, exactly: makespan * k <= (k + 1) * OPT.
  if (result.achieved_makespan * k > (k + 1) * exact_opt)
    return "makespan " + std::to_string(result.achieved_makespan) +
           " exceeds (1 + 1/" + std::to_string(k) + ") * OPT with OPT = " +
           std::to_string(exact_opt);
  return std::nullopt;
}

CheckResult check_dp_table(const dp::DpProblem& problem,
                           const dp::DpResult& result) {
  const auto radix = problem.radix();
  if (result.table.size() != radix.size())
    return "table has " + std::to_string(result.table.size()) +
           " cells, expected " + std::to_string(radix.size());
  if (result.table[0] != 0)
    return "origin cell is " + std::to_string(result.table[0]) +
           ", expected 0";
  if (result.table.back() != result.opt)
    return "table.back() = " + std::to_string(result.table.back()) +
           " disagrees with opt = " + std::to_string(result.opt);
  if (!result.deps.empty() && result.deps.size() != radix.size())
    return "deps has " + std::to_string(result.deps.size()) +
           " entries, expected " + std::to_string(radix.size());

  std::vector<std::int64_t> v(radix.dims());
  for (std::uint64_t id = 0; id < radix.size(); ++id) {
    const auto value = result.table[id];
    if (value == dp::kInfeasible) continue;
    if (value < 0)
      return cell_label(radix, id) + " holds negative OPT " +
             std::to_string(value);
    radix.unflatten(id, v);

    // Monotonicity: removing one job never increases the machine count.
    for (std::size_t d = 0; d < v.size(); ++d) {
      if (v[d] == 0) continue;
      const auto pred_id = id - radix.strides()[d];
      const auto pred = result.table[pred_id];
      if (pred == dp::kInfeasible)
        return cell_label(radix, id) + " is reachable (OPT " +
               std::to_string(value) + ") but its axis-" + std::to_string(d) +
               " predecessor is infeasible";
      if (pred > value)
        return "monotonicity violated along axis " + std::to_string(d) +
               ": " + cell_label(radix, id) + " has OPT " +
               std::to_string(value) + " < predecessor's " +
               std::to_string(pred);
    }

    // Weight lower bound: OPT(v) machines carry at most capacity each.
    std::int64_t weight = 0, level = 0;
    for (std::size_t d = 0; d < v.size(); ++d) {
      weight += v[d] * problem.weights[d];
      level += v[d];
    }
    if (level > 0 && problem.capacity > 0) {
      const auto min_machines = static_cast<std::int64_t>(
          util::ceil_div(static_cast<std::uint64_t>(weight),
                         static_cast<std::uint64_t>(problem.capacity)));
      if (value < min_machines)
        return cell_label(radix, id) + " claims OPT " + std::to_string(value) +
               " but total weight " + std::to_string(weight) +
               " needs at least " + std::to_string(min_machines) +
               " machines of capacity " + std::to_string(problem.capacity);
    }
    // Level upper bound: one machine per job always suffices once reachable.
    if (value > level)
      return cell_label(radix, id) + " claims OPT " + std::to_string(value) +
             " for only " + std::to_string(level) + " jobs";
  }
  return std::nullopt;
}

CheckResult check_tables_match(const std::string& name_a,
                               const dp::DpResult& a, const std::string& name_b,
                               const dp::DpResult& b, bool compare_tables) {
  if (a.opt != b.opt)
    return name_a + " and " + name_b + " disagree on OPT: " +
           std::to_string(a.opt) + " vs " + std::to_string(b.opt);
  if (!compare_tables) return std::nullopt;
  if (a.table.size() != b.table.size())
    return name_a + " and " + name_b + " produced tables of different size: " +
           std::to_string(a.table.size()) + " vs " +
           std::to_string(b.table.size());
  for (std::uint64_t id = 0; id < a.table.size(); ++id)
    if (a.table[id] != b.table[id])
      return name_a + " and " + name_b + " diverge at cell " +
             std::to_string(id) + ": " + std::to_string(a.table[id]) +
             " vs " + std::to_string(b.table[id]);
  return std::nullopt;
}

CheckResult check_blocked_bijection(const partition::BlockedLayout& layout) {
  const auto& radix = layout.table_radix();
  const auto size = radix.size();
  std::vector<char> seen(size, 0);
  std::vector<std::int64_t> v(radix.dims());
  for (std::uint64_t id = 0; id < size; ++id) {
    const auto blocked = layout.to_blocked(id);
    if (blocked >= size)
      return "to_blocked(" + std::to_string(id) + ") = " +
             std::to_string(blocked) + " out of range " + std::to_string(size);
    if (seen[blocked] != 0)
      return "to_blocked collides at blocked offset " +
             std::to_string(blocked);
    seen[blocked] = 1;
    if (layout.from_blocked(blocked) != id)
      return "from_blocked(to_blocked(" + std::to_string(id) +
             ")) != identity";
    radix.unflatten(id, v);
    if (layout.blocked_offset(v) != blocked)
      return "blocked_offset disagrees with to_blocked at " +
             cell_label(radix, id);
  }
  return std::nullopt;
}

CheckResult check_ptas_cache_equivalence(const PtasResult& cached,
                                         const PtasResult& uncached,
                                         bool require_same_iterations) {
  if (cached.best_target != uncached.best_target)
    return "probe cache changed the best target: " +
           std::to_string(cached.best_target) + " (cached) vs " +
           std::to_string(uncached.best_target) + " (uncached)";
  if (cached.achieved_makespan != uncached.achieved_makespan)
    return "probe cache changed the makespan: " +
           std::to_string(cached.achieved_makespan) + " (cached) vs " +
           std::to_string(uncached.achieved_makespan) + " (uncached)";
  if (cached.schedule.assignment != uncached.schedule.assignment)
    return "probe cache changed the schedule assignment";
  if (require_same_iterations &&
      cached.search_iterations != uncached.search_iterations)
    return "cold probe cache changed the search rounds: " +
           std::to_string(cached.search_iterations) + " (cached) vs " +
           std::to_string(uncached.search_iterations) + " (uncached)";
  return std::nullopt;
}

CheckResult check_resilient_result(const Instance& instance,
                                   const ResilientResult& result) {
  const StatusCode code = result.status.code();
  const bool carries_schedule =
      code == StatusCode::kOk || code == StatusCode::kDeadlineExceeded;
  if (!carries_schedule) {
    if (code == StatusCode::kInternal)
      return "unclassified failure (kInternal): " + result.status.message();
    if (result.attempts.empty() && code != StatusCode::kInvalidInput &&
        code != StatusCode::kUnavailable)
      return "failure " + std::string(status_code_name(code)) +
             " with no recorded attempts";
    return std::nullopt;
  }

  if (result.engine.empty())
    return "result carries a schedule but names no engine";
  if (auto bad = check_schedule(instance, result.schedule)) return bad;
  const std::int64_t actual = makespan(instance, result.schedule);
  if (actual != result.achieved_makespan)
    return "achieved_makespan " + std::to_string(result.achieved_makespan) +
           " does not match the schedule's real makespan " +
           std::to_string(actual);
  if (actual < oracle_lower_bound(instance))
    return "makespan " + std::to_string(actual) +
           " beats the oracle lower bound " +
           std::to_string(oracle_lower_bound(instance));
  if (result.bound_num < result.bound_den || result.bound_den <= 0)
    return "stated quality bound " + std::to_string(result.bound_num) + "/" +
           std::to_string(result.bound_den) + " is not a ratio >= 1";
  // The stated bound is against OPT, which LPT's makespan upper-bounds:
  // makespan <= (num/den) * OPT <= (num/den) * LPT must hold exactly.
  const std::int64_t lpt_ub = lpt_makespan(instance);
  if (actual * result.bound_den > result.bound_num * lpt_ub)
    return "makespan " + std::to_string(actual) +
           " violates the stated bound " + std::to_string(result.bound_num) +
           "/" + std::to_string(result.bound_den) +
           " against the LPT upper bound " + std::to_string(lpt_ub);
  if (code == StatusCode::kDeadlineExceeded && !result.degraded)
    return "deadline best-effort result is not marked degraded";
  return std::nullopt;
}

CheckResult check_exact_claim(const Instance& instance,
                              const exact::BbResult& result) {
  if (auto bad = check_schedule(instance, result.schedule)) return bad;
  const auto actual = makespan(instance, result.schedule);
  if (actual != result.makespan)
    return "claimed makespan " + std::to_string(result.makespan) +
           " does not match the schedule's real makespan " +
           std::to_string(actual);
  if (result.lower_bound > result.makespan)
    return "lower bound " + std::to_string(result.lower_bound) +
           " exceeds the claimed makespan " + std::to_string(result.makespan);
  if (result.lower_bound < makespan_lower_bound(instance))
    return "lower bound " + std::to_string(result.lower_bound) +
           " is weaker than the trivial instance bound " +
           std::to_string(makespan_lower_bound(instance));
  const StatusCode code = result.status.code();
  if (code == StatusCode::kOk) {
    if (result.lower_bound != result.makespan)
      return "status ok but lower bound " + std::to_string(result.lower_bound) +
             " != makespan " + std::to_string(result.makespan) +
             " — optimality is claimed but not certified";
    return std::nullopt;
  }
  if (code != StatusCode::kDeadlineExceeded)
    return "exact engine returned unexpected status " +
           std::string(status_code_name(code)) + ": " +
           result.status.message();
  // Budget expiry: the incumbent must still be at least LPT quality.
  const auto lpt_ub = lpt_makespan(instance);
  if (result.makespan > lpt_ub)
    return "budget-expired incumbent " + std::to_string(result.makespan) +
           " is worse than LPT's " + std::to_string(lpt_ub);
  return std::nullopt;
}

CheckResult check_schedule_vs_opt(const Instance& instance,
                                  const std::string& engine,
                                  const Schedule& schedule,
                                  std::int64_t bound_num,
                                  std::int64_t bound_den, std::int64_t opt) {
  if (opt <= 0) return "claimed optimum " + std::to_string(opt) + " is not positive";
  if (bound_num < bound_den || bound_den <= 0)
    return engine + " states a quality bound " + std::to_string(bound_num) +
           "/" + std::to_string(bound_den) + " that is not a ratio >= 1";
  if (auto bad = check_schedule(instance, schedule))
    return engine + ": " + *bad;
  const auto actual = makespan(instance, schedule);
  if (actual < opt)
    return engine + " produced makespan " + std::to_string(actual) +
           " below the proven optimum " + std::to_string(opt) +
           " — the optimum (or the schedule's loads) is wrong";
  // makespan <= (num/den) * OPT, exactly: makespan * den <= num * OPT.
  const auto lhs = util::checked_mul(static_cast<std::uint64_t>(actual),
                                     static_cast<std::uint64_t>(bound_den));
  const auto rhs = util::checked_mul(static_cast<std::uint64_t>(bound_num),
                                     static_cast<std::uint64_t>(opt));
  if (lhs > rhs)
    return engine + " violates its a-priori guarantee: makespan " +
           std::to_string(actual) + " > " + std::to_string(bound_num) + "/" +
           std::to_string(bound_den) + " * OPT with OPT = " +
           std::to_string(opt);
  return std::nullopt;
}

CheckResult check_device_conservation(const gpusim::Device& device) {
  const auto now = device.now();
  std::map<int, util::SimTime> busy;
  std::map<int, util::SimTime> last_finish;
  for (const auto& record : device.log()) {
    if (record.finish < record.start)
      return "kernel " + record.name + " finishes before it starts";
    if (record.finish > now)
      return "kernel " + record.name +
             " finishes after the device clock: " +
             record.finish.to_string() + " > " + now.to_string();
    // Per-stream FIFO: the log is in launch order, so each kernel must
    // start at or after its stream predecessor's finish.
    const auto it = last_finish.find(record.stream);
    if (it != last_finish.end() && record.start < it->second)
      return "stream " + std::to_string(record.stream) +
             " overlaps: kernel " + record.name + " starts at " +
             record.start.to_string() + " before the previous finish " +
             it->second.to_string();
    last_finish[record.stream] = record.finish;
    busy[record.stream] += record.finish - record.start;
  }
  // Charged time >= critical path: no stream can have been busy for longer
  // than the device clock advanced.
  for (const auto& [stream, total] : busy)
    if (total > now)
      return "stream " + std::to_string(stream) + " was busy for " +
             total.to_string() + " but the device clock only reached " +
             now.to_string();
  return std::nullopt;
}

}  // namespace pcmax::testkit
