// Replayable fuzz-case identifiers. A fuzz campaign is identified by its
// seed; every case inside it by a sequential index. The textual form
// "seed:case" is what pcmax_fuzz prints on failure and accepts via
// --replay, so a shrunk failure can be reproduced exactly on any host
// (the generators are mt19937_64-based and platform-deterministic).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pcmax::testkit {

struct CaseId {
  std::uint64_t seed = 0;   ///< campaign seed (--seed)
  std::uint64_t index = 0;  ///< case number within the campaign

  friend bool operator==(const CaseId&, const CaseId&) = default;
};

/// "seed:case" textual form.
[[nodiscard]] std::string format_case(const CaseId& id);

/// Parses "seed:case"; nullopt on malformed input (missing colon,
/// non-numeric fields, trailing garbage).
[[nodiscard]] std::optional<CaseId> parse_case(std::string_view text);

/// Deterministic RNG seed for one case: a splitmix64 mix of campaign seed
/// and case index, so neighbouring cases draw unrelated streams.
[[nodiscard]] std::uint64_t case_rng_seed(const CaseId& id) noexcept;

}  // namespace pcmax::testkit
