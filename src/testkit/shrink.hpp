// Greedy input shrinking: given a failing input and a predicate that
// re-checks the failure, repeatedly try structurally smaller candidates and
// keep any that still fail, until a fixpoint. The result is always a valid
// input that still fails the predicate — the minimal reproducer the fuzzer
// reports. Shrinking is deterministic (no randomness), so a shrunk case is
// itself replayable.
#pragma once

#include <cstdint>
#include <functional>

#include "core/instance.hpp"
#include "dp/problem.hpp"

namespace pcmax::testkit {

struct ShrinkOptions {
  /// Cap on predicate evaluations; greedy passes stop once exhausted.
  /// Shrinking re-runs the (possibly expensive) failing check, so the cap
  /// bounds worst-case shrink time.
  std::uint64_t max_evaluations = 10'000;
  /// Memoize predicate verdicts by candidate value. The fixpoint loop
  /// re-proposes identical candidates every round (each pass restarts from
  /// the same shrink steps), so without the memo the oracle re-runs on
  /// inputs it already judged; cached verdicts spend no budget. Safe
  /// because shrinking requires a deterministic predicate anyway — a flaky
  /// predicate already breaks replayability.
  bool memoize = true;
};

/// Predicate: true while the candidate still reproduces the failure.
using DpProblemPredicate = std::function<bool(const dp::DpProblem&)>;
using InstancePredicate = std::function<bool(const Instance&)>;

/// Minimizes a failing DP problem: drops whole dimensions, then shrinks
/// counts, weights, and the capacity toward their minimal values. The
/// returned problem satisfies `fails` and DpProblem::validate().
[[nodiscard]] dp::DpProblem shrink_dp_problem(dp::DpProblem failing,
                                              const DpProblemPredicate& fails,
                                              const ShrinkOptions& options = {});

/// Minimizes a failing instance: removes jobs (binary chunks first, then
/// singles), reduces the machine count, then shrinks processing times
/// toward 1. The returned instance satisfies `fails` and validate().
[[nodiscard]] Instance shrink_instance(Instance failing,
                                       const InstancePredicate& fails,
                                       const ShrinkOptions& options = {});

}  // namespace pcmax::testkit
