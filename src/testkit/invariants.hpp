// Invariant checkers: each verifies one structural property the repository
// guarantees and returns nullopt on success or a human-readable diagnosis on
// violation. They are the assertion vocabulary shared by the property tests
// and the differential fuzzer, and they check from first principles — none
// of them re-runs the code under test to judge itself.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/instance.hpp"
#include "core/ptas.hpp"
#include "core/resilient.hpp"
#include "dp/problem.hpp"
#include "dp/solver.hpp"
#include "exact/bb.hpp"
#include "gpusim/device.hpp"
#include "partition/blocked_layout.hpp"

namespace pcmax::testkit {

/// nullopt == the invariant holds; otherwise a diagnosis suitable for a
/// test failure message or a fuzz report.
using CheckResult = std::optional<std::string>;

/// Schedule validity plus conservation: every job on a real machine, and
/// the per-machine loads sum to the instance's total processing time.
[[nodiscard]] CheckResult check_schedule(const Instance& instance,
                                         const Schedule& schedule);

/// Full PTAS certificate: the schedule is valid, achieved_makespan matches
/// the actual loads, the found target lies in [LB, UB], the makespan
/// respects the (1 + 1/k) guarantee against the target, and the makespan is
/// at least the oracle lower bound (testkit/oracles.hpp).
[[nodiscard]] CheckResult check_ptas_result(const Instance& instance,
                                            const PtasResult& result,
                                            std::int64_t k);

/// Sharper variant when the exact optimum is known: OPT <= makespan and
/// makespan * k <= (k + 1) * OPT, both in exact integers.
[[nodiscard]] CheckResult check_ptas_vs_exact(const Instance& instance,
                                              const PtasResult& result,
                                              std::int64_t k,
                                              std::int64_t exact_opt);

/// DP-table self-consistency: origin 0, table.back() == opt, monotonicity
/// along every axis (a finite cell's axis-predecessors are finite and no
/// larger), the weight lower bound OPT(v) >= ceil(weight(v) / capacity),
/// and the level upper bound OPT(v) <= level(v) for reachable cells.
[[nodiscard]] CheckResult check_dp_table(const dp::DpProblem& problem,
                                         const dp::DpResult& result);

/// Two engines agree: equal OPT always; equal tables when `compare_tables`
/// (OPT-only engines pass an empty table).
[[nodiscard]] CheckResult check_tables_match(const std::string& name_a,
                                             const dp::DpResult& a,
                                             const std::string& name_b,
                                             const dp::DpResult& b,
                                             bool compare_tables);

/// The blocked layout is a bijection on [0, table_size): to_blocked and
/// from_blocked are mutual inverses and to_blocked covers every offset
/// exactly once; blocked_offset agrees with to_blocked on coordinates.
[[nodiscard]] CheckResult check_blocked_bijection(
    const partition::BlockedLayout& layout);

/// The probe cache is semantically invisible: a cached PTAS run returns the
/// same best target, achieved makespan, and schedule as an uncached run of
/// the same instance/solver/strategy. A cold-cache run replays the uncached
/// search trajectory exactly, so `require_same_iterations` additionally
/// demands equal round counts; pass false for runs against a warm shared
/// cache, where skipped rounds are legitimate.
[[nodiscard]] CheckResult check_ptas_cache_equivalence(
    const PtasResult& cached, const PtasResult& uncached,
    bool require_same_iterations);

/// The resilient-driver contract under faults: a kOk result carries a valid
/// schedule whose makespan matches an independent recomputation, respects
/// its stated rational quality bound against the oracle lower bound, and
/// names the engine that produced it; a kDeadlineExceeded result still
/// carries a valid best-effort schedule and is marked degraded; any other
/// failure must be a classified code (never kOk-with-no-schedule and never
/// kInternal, which the driver reserves for bugs).
[[nodiscard]] CheckResult check_resilient_result(const Instance& instance,
                                                 const ResilientResult& result);

/// The exact engine's certificate is internally consistent: the schedule is
/// valid with correct load conservation, its real makespan matches the
/// claimed one, lower_bound <= makespan always, lower_bound >= the trivial
/// instance bound, and a kOk status claims exactly lower_bound == makespan
/// (proven optimality) while budget expiry must carry kDeadlineExceeded and
/// an incumbent no worse than LPT. Checks the claim's shape, not OPT itself
/// — pair with check_schedule_vs_opt or a brute-force oracle for that.
[[nodiscard]] CheckResult check_exact_claim(const Instance& instance,
                                            const exact::BbResult& result);

/// Ground-truth differential check: `schedule` (produced by `engine`) must
/// be valid, never beat the true optimum `opt`, and respect the engine's
/// stated a-priori guarantee makespan * bound_den <= bound_num * opt in
/// exact integer arithmetic (overflow-checked).
[[nodiscard]] CheckResult check_schedule_vs_opt(
    const Instance& instance, const std::string& engine,
    const Schedule& schedule, std::int64_t bound_num, std::int64_t bound_den,
    std::int64_t opt);

/// Simulated-device conservation laws over the kernel log: every kernel's
/// finish >= start, nothing finishes after the device clock, per-stream
/// FIFO (kernels on one stream never overlap), and the device clock is at
/// least every stream's total busy time — charged time >= critical path.
[[nodiscard]] CheckResult check_device_conservation(
    const gpusim::Device& device);

}  // namespace pcmax::testkit
