#include "testkit/replay.hpp"

#include <charconv>

namespace pcmax::testkit {

namespace {

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  return value;
}

}  // namespace

std::string format_case(const CaseId& id) {
  return std::to_string(id.seed) + ":" + std::to_string(id.index);
}

std::optional<CaseId> parse_case(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto seed = parse_u64(text.substr(0, colon));
  const auto index = parse_u64(text.substr(colon + 1));
  if (!seed.has_value() || !index.has_value()) return std::nullopt;
  return CaseId{*seed, *index};
}

std::uint64_t case_rng_seed(const CaseId& id) noexcept {
  // splitmix64 over (seed advanced by index+1 increments); the +1 keeps
  // case 0 of campaign s distinct from campaign s itself.
  std::uint64_t x = id.seed + (id.index + 1) * 0x9e3779b97f4a7c15ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace pcmax::testkit
