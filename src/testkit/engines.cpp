#include "testkit/engines.hpp"

#include <stdexcept>

#include "baselines/heuristics.hpp"
#include "core/bounds.hpp"
#include "core/ptas.hpp"
#include "core/resilient.hpp"
#include "core/rounding.hpp"
#include "dp/frontier_solver.hpp"
#include "eptas/eptas.hpp"
#include "eptas/sparsify.hpp"
#include "exact/bb.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "partition/block_solver.hpp"

namespace pcmax::testkit {

EngineRegistry::EngineRegistry()
    : device_(std::make_unique<gpusim::Device>(gpusim::DeviceSpec::k40())) {
  const auto add_solver = [this](std::unique_ptr<dp::DpSolver> solver) {
    auto* raw = solver.get();
    owned_.push_back(std::move(solver));
    engines_.push_back(Engine{
        raw->name(), true,
        [raw](const dp::DpProblem& problem) { return raw->solve(problem); }});
  };

  // The reference oracle must stay first: it is the baseline every other
  // engine is compared against.
  add_solver(std::make_unique<dp::ReferenceSolver>());
  add_solver(std::make_unique<dp::LevelScanSolver>());
  add_solver(std::make_unique<dp::LevelBucketSolver>());
  add_solver(std::make_unique<partition::BlockedSolver>(3));
  add_solver(std::make_unique<partition::BlockedSolver>(6));
  add_solver(std::make_unique<gpu::GpuDpSolver>(*device_, 5));
  add_solver(std::make_unique<gpu::NaiveGpuDpSolver>(*device_));

  // The frontier engine reports OPT from a sliding window; keep_table makes
  // its full table comparable too.
  engines_.push_back(Engine{"frontier", true, [](const dp::DpProblem& problem) {
    dp::FrontierOptions options;
    options.keep_table = true;
    auto frontier = dp::solve_frontier(problem, options);
    dp::DpResult result;
    result.opt = frontier.opt;
    result.table = std::move(frontier.table);
    return result;
  }});
}

namespace {

/// True when the rounded DP table at the trivial lower bound (the largest
/// table any search probe can produce) fits in `max_cells`. checked_mul
/// inside table_size() throws on 64-bit overflow, which also means "no".
bool ptas_table_fits(const Instance& instance, std::int64_t k,
                     std::uint64_t max_cells) {
  try {
    const auto rounded =
        round_instance(instance, makespan_lower_bound(instance), k);
    return rounded.feasible && rounded.table_size() <= max_cells;
  } catch (const std::overflow_error&) {
    return false;
  }
}

/// Sparsified counterpart: the EPTAS table at the trivial lower bound.
/// Always <= the classic table (snapping only merges classes), so this gate
/// admits a superset of the instances the classic gate admits.
bool eptas_table_fits(const Instance& instance, std::int64_t k,
                      std::uint64_t max_cells) {
  try {
    const auto sparse =
        eptas::sparsify_instance(instance, makespan_lower_bound(instance), k);
    return sparse.feasible && sparse.table_size() <= max_cells;
  } catch (const std::overflow_error&) {
    return false;
  }
}

}  // namespace

SchedulerEngineRegistry::SchedulerEngineRegistry(std::int64_t k,
                                                std::uint64_t bb_node_budget,
                                                std::uint64_t max_table_cells)
    : k_(k), solver_(std::make_unique<dp::LevelBucketSolver>()) {
  using Bound = std::pair<std::int64_t, std::int64_t>;

  engines_.push_back(SchedulerEngine{
      "lpt",
      [](const Instance& i) {
        return Bound{4 * i.machines - 1, 3 * i.machines};
      },
      [](const Instance& i) { return std::optional(baselines::lpt(i)); }});
  engines_.push_back(SchedulerEngine{
      "list",
      [](const Instance& i) { return Bound{2 * i.machines - 1, i.machines}; },
      [](const Instance& i) {
        return std::optional(baselines::list_scheduling(i));
      }});
  engines_.push_back(SchedulerEngine{
      "multifit", [](const Instance&) { return Bound{13, 11}; },
      [](const Instance& i) { return std::optional(baselines::multifit(i)); }});

  const auto add_ptas = [this, k, max_table_cells](const char* name,
                                                   SearchStrategy strategy) {
    dp::DpSolver* solver = solver_.get();
    engines_.push_back(SchedulerEngine{
        name, [k](const Instance&) { return Bound{k + 1, k}; },
        [solver, k, max_table_cells, strategy](
            const Instance& i) -> std::optional<Schedule> {
          if (!ptas_table_fits(i, k, max_table_cells)) return std::nullopt;
          PtasOptions options;
          options.epsilon = epsilon_for_k(k);
          options.strategy = strategy;
          options.build_schedule = true;
          return solve_ptas(i, *solver, options).schedule;
        }});
  };
  add_ptas("ptas-bisection", SearchStrategy::kBisection);
  add_ptas("ptas-quarter", SearchStrategy::kQuarterSplit);

  // The sparsified EPTAS engine: identical (k+1)/k a-priori bound, smaller
  // tables (geometric class grid — see eptas/sparsify.hpp), judged against
  // proven OPT by the same harness as the classic PTAS engines.
  {
    dp::DpSolver* solver = solver_.get();
    engines_.push_back(SchedulerEngine{
        "eptas", [k](const Instance&) { return Bound{k + 1, k}; },
        [solver, k, max_table_cells](
            const Instance& i) -> std::optional<Schedule> {
          if (!eptas_table_fits(i, k, max_table_cells)) return std::nullopt;
          PtasOptions options;
          options.epsilon = epsilon_for_k(k);
          options.build_schedule = true;
          return eptas::solve_eptas(i, *solver, options).schedule;
        }});
  }

  engines_.push_back(SchedulerEngine{
      "exact-bb", [](const Instance&) { return Bound{1, 1}; },
      [bb_node_budget](const Instance& i) -> std::optional<Schedule> {
        exact::BbOptions options;
        options.node_budget = bb_node_budget;
        auto result = exact::solve_bb(i, options);
        if (!result.optimal()) return std::nullopt;
        return std::move(result.schedule);
      }});
}

}  // namespace pcmax::testkit
