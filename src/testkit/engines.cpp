#include "testkit/engines.hpp"

#include "dp/frontier_solver.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "partition/block_solver.hpp"

namespace pcmax::testkit {

EngineRegistry::EngineRegistry()
    : device_(std::make_unique<gpusim::Device>(gpusim::DeviceSpec::k40())) {
  const auto add_solver = [this](std::unique_ptr<dp::DpSolver> solver) {
    auto* raw = solver.get();
    owned_.push_back(std::move(solver));
    engines_.push_back(Engine{
        raw->name(), true,
        [raw](const dp::DpProblem& problem) { return raw->solve(problem); }});
  };

  // The reference oracle must stay first: it is the baseline every other
  // engine is compared against.
  add_solver(std::make_unique<dp::ReferenceSolver>());
  add_solver(std::make_unique<dp::LevelScanSolver>());
  add_solver(std::make_unique<dp::LevelBucketSolver>());
  add_solver(std::make_unique<partition::BlockedSolver>(3));
  add_solver(std::make_unique<partition::BlockedSolver>(6));
  add_solver(std::make_unique<gpu::GpuDpSolver>(*device_, 5));
  add_solver(std::make_unique<gpu::NaiveGpuDpSolver>(*device_));

  // The frontier engine reports OPT from a sliding window; keep_table makes
  // its full table comparable too.
  engines_.push_back(Engine{"frontier", true, [](const dp::DpProblem& problem) {
    dp::FrontierOptions options;
    options.keep_table = true;
    auto frontier = dp::solve_frontier(problem, options);
    dp::DpResult result;
    result.opt = frontier.opt;
    result.table = std::move(frontier.table);
    return result;
  }});
}

}  // namespace pcmax::testkit
