// Invariant checkers over recorded observability data (obs/). Structural
// checks validate a trace against the track model (balanced spans, monotone
// simulated time, non-overlapping stream spans, children nested in parent
// families); the reconciliation check ties the metric counters back to the
// algorithm-level aggregates they mirror.
#pragma once

#include "core/ptas.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testkit/invariants.hpp"

namespace pcmax::testkit {

/// Structural trace invariants:
///  - begin/end span events balance LIFO with matching names;
///  - simulated timestamps on host/algorithm events never decrease;
///  - kernel (complete) spans carry sane extents and stream pids, and spans
///    on one (stream, tid) track never overlap — the fluid scheduler runs
///    each simulated stream FIFO;
///  - every child kernel span (tid 2) lies inside a parent family span
///    (tid 1) on the same stream, mirroring CUDA Dynamic Parallelism
///    completion semantics.
[[nodiscard]] CheckResult check_trace_structure(const obs::TraceRecorder& trace);

/// Counter totals reconcile with one PtasResult produced while `metrics`
/// was the installed registry (the session must cover exactly that solve):
/// dp.invocations == dp_calls.size(), dp.cache_answered == cached calls,
/// dp.cells == summed uncached long-job table sizes, search.rounds ==
/// search_iterations, and the probe_cache counters match cache_stats.
[[nodiscard]] CheckResult check_trace_reconciles(
    const obs::MetricsRegistry& metrics, const PtasResult& result);

}  // namespace pcmax::testkit
