#include "testkit/metamorphic.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "core/rounding.hpp"
#include "util/rng.hpp"

namespace pcmax::testkit {

namespace {

// Each relation runs the transformed instance with a private cache: a warm
// shared cache would let the second run skip probes and change its
// trajectory, which is exactly the kind of accidental coupling these checks
// must not depend on.
PtasOptions isolated(const PtasOptions& options) {
  PtasOptions out = options;
  out.probe_cache = nullptr;
  return out;
}

/// Resolves the driver: an empty PtasSolveFn means the classic solve_ptas.
PtasResult run_solve(const PtasSolveFn& solve, const Instance& instance,
                     const dp::DpSolver& solver, const PtasOptions& options) {
  if (solve) return solve(instance, solver, options);
  return solve_ptas(instance, solver, options);
}

CheckResult certify(const char* what, const Instance& instance,
                    const PtasResult& result, const PtasOptions& options) {
  if (!options.build_schedule) return std::nullopt;
  const std::int64_t k = k_for_epsilon(options.epsilon);
  if (CheckResult bad = check_ptas_result(instance, result, k)) {
    std::ostringstream out;
    out << what << " run fails its own certificate: " << *bad;
    return out.str();
  }
  return std::nullopt;
}

}  // namespace

CheckResult check_permutation_metamorphic(const Instance& instance,
                                          const dp::DpSolver& solver,
                                          const PtasOptions& options,
                                          std::uint64_t shuffle_seed,
                                          const PtasSolveFn& solve) {
  const PtasOptions opts = isolated(options);
  Instance permuted = instance;
  util::Rng rng(shuffle_seed);
  for (std::size_t i = permuted.times.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(i) - 1));
    std::swap(permuted.times[i - 1], permuted.times[j]);
  }

  const PtasResult base = run_solve(solve, instance, solver, opts);
  const PtasResult perm = run_solve(solve, permuted, solver, opts);

  // Rounding at any target sees only the multiset of job times, so the
  // feasibility oracle — and with it the whole search trajectory — is
  // identical for both orderings.
  if (base.best_target != perm.best_target) {
    std::ostringstream out;
    out << "permutation changed the target: base T*=" << base.best_target
        << " permuted T*=" << perm.best_target << " (seed " << shuffle_seed
        << ")";
    return out.str();
  }
  if (base.search_iterations != perm.search_iterations) {
    std::ostringstream out;
    out << "permutation changed the search trajectory: base rounds="
        << base.search_iterations << " permuted rounds="
        << perm.search_iterations << " (seed " << shuffle_seed << ")";
    return out.str();
  }
  if (CheckResult bad = certify("base", instance, base, opts)) return bad;
  return certify("permuted", permuted, perm, opts);
}

CheckResult check_scaling_metamorphic(const Instance& instance,
                                      const dp::DpSolver& solver,
                                      const PtasOptions& options,
                                      std::int64_t factor,
                                      const PtasSolveFn& solve) {
  if (factor < 2) factor = 2;
  const PtasOptions opts = isolated(options);

  // Overflow guard: the upper bound sums all times, so the scaled sum must
  // stay comfortably inside int64. Oversized inputs pass vacuously.
  std::int64_t total = 0;
  for (const auto t : instance.times) total += t;
  if (total > std::numeric_limits<std::int64_t>::max() / (4 * factor))
    return std::nullopt;

  Instance scaled = instance;
  for (auto& t : scaled.times) t *= factor;

  const PtasResult base = run_solve(solve, instance, solver, opts);
  const PtasResult big = run_solve(solve, scaled, solver, opts);

  // Rounding at target c*T is identical to rounding at T with unscaled
  // times (class indices floor(c*t*k^2 / (c*T)) are unchanged), so
  // feasible_scaled(c*T) == feasible(T). With a monotone oracle the scaled
  // threshold lies in (c*(T*-1), c*T*], and both lower-bound components
  // scale compatibly, hence ceil(T*_scaled / c) == T* exactly.
  const std::int64_t folded = (big.best_target + factor - 1) / factor;
  if (folded != base.best_target) {
    std::ostringstream out;
    out << "scaling by " << factor << " broke the target relation: base T*="
        << base.best_target << " scaled T*=" << big.best_target
        << " ceil(scaled/factor)=" << folded;
    return out.str();
  }
  if (CheckResult bad = certify("base", instance, base, opts)) return bad;
  return certify("scaled", scaled, big, opts);
}

CheckResult check_extension_metamorphic(const Instance& instance,
                                        const dp::DpSolver& solver,
                                        const PtasOptions& options,
                                        const PtasSolveFn& solve) {
  const PtasOptions opts = isolated(options);
  const PtasResult base = run_solve(solve, instance, solver, opts);

  // A filler job of size exactly T* on one extra machine changes nothing:
  // below T* the filler alone is infeasible (it exceeds the target), and at
  // any T >= T* it fits on the added machine (it joins some class c <= k^2,
  // raising the rounded OPT by at most one against a machine count that
  // also grew by one). The new lower bound is exactly T* because T* >=
  // max job time and m*T* >= total time.
  Instance extended = instance;
  extended.machines += 1;
  extended.times.push_back(base.best_target);
  const PtasResult ext = run_solve(solve, extended, solver, opts);

  if (ext.best_target != base.best_target) {
    std::ostringstream out;
    out << "machine+filler extension moved the target: base T*="
        << base.best_target << " extended T*=" << ext.best_target;
    return out.str();
  }
  if (CheckResult bad = certify("base", instance, base, opts)) return bad;
  return certify("extended", extended, ext, opts);
}

CheckResult check_metamorphic_suite(const Instance& instance,
                                    const dp::DpSolver& solver,
                                    const PtasOptions& options,
                                    std::uint64_t seed,
                                    const PtasSolveFn& solve) {
  if (CheckResult bad = check_permutation_metamorphic(instance, solver,
                                                      options, seed, solve))
    return bad;
  const std::int64_t factor = 2 + static_cast<std::int64_t>(seed % 5);
  if (CheckResult bad = check_scaling_metamorphic(instance, solver, options,
                                                  factor, solve))
    return bad;
  return check_extension_metamorphic(instance, solver, options, solve);
}

}  // namespace pcmax::testkit
