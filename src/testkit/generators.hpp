// Seeded random generators for differential and property testing. Unlike
// workload::uniform_instance and friends (which model the paper's benchmark
// distributions), these are *adversarial*: they deliberately hit the corner
// regimes where makespan schedulers historically diverge from their paper
// guarantees — prime and degenerate table extents, all-short instances that
// skip the DP entirely, single-class problems, capacity-tight and outright
// infeasible classes, and processing times spanning nine orders of
// magnitude. Every generator draws from a caller-owned util::Rng, so a case
// is reproducible from its seed alone (see testkit/replay.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "dp/problem.hpp"
#include "util/rng.hpp"

namespace pcmax::testkit {

struct DpProblemLimits {
  std::size_t max_dims = 5;
  std::int64_t max_count = 6;
  std::int64_t max_weight = 12;
  std::int64_t max_capacity = 24;
  /// Permit classes whose weight exceeds the capacity (the whole table
  /// becomes kInfeasible past the origin) — engines must agree on that too.
  bool allow_infeasible = true;
  /// Upper bound on the table size; generators resample dimensions until
  /// prod(count_i + 1) fits. Keeps differential cases fast.
  std::uint64_t max_cells = 20'000;
};

/// Random DP problem. Styles rotate between generic, degenerate (zero
/// counts), single-class, tight-capacity, and infeasible-class shapes.
[[nodiscard]] dp::DpProblem random_dp_problem(util::Rng& rng,
                                              const DpProblemLimits& limits = {});

struct InstanceLimits {
  std::size_t max_jobs = 48;
  std::int64_t max_machines = 12;
  /// Ceiling on processing times; magnitudes are drawn log-uniformly so
  /// small and huge times are equally likely.
  std::int64_t max_time = 1'000'000'000;
};

/// Random P||Cmax instance. Styles rotate between wide-uniform, all-short
/// (every job tiny — the PTAS's pure greedy path), all-identical,
/// few-dominant-jobs, and power-of-two times.
[[nodiscard]] Instance random_instance(util::Rng& rng,
                                       const InstanceLimits& limits = {});

/// Adversarial table extents: prime, unit (degenerate), single-dimension,
/// perfect-square, and mixed shapes, capped at `max_cells` total cells.
[[nodiscard]] std::vector<std::int64_t> adversarial_extents(
    util::Rng& rng, std::size_t max_dims = 6, std::uint64_t max_cells = 20'000);

/// Random instance *text* for parser fuzzing. Roughly half the draws are
/// well-formed serializations dressed with comments and ragged whitespace;
/// the rest carry one adversarial mutation — garbage tokens, signs glued to
/// digits, zero/negative values, 64-bit-overflowing literals, a truncated
/// or empty body. The parser must either return a validated instance or
/// throw workload::ParseError; any other escape is a bug.
[[nodiscard]] std::string random_instance_text(util::Rng& rng);

}  // namespace pcmax::testkit
