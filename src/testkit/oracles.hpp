// Cheap independent oracles for makespan results. The differential fuzzer
// never trusts the code under test to judge itself: a PTAS result is checked
// against (a) the exact branch-and-bound optimum when the instance is small
// enough, and (b) an LPT-derived lower bound that is valid for every
// instance. The latter exploits the tight per-instance LPT analysis
// (Della Croce & Scatamacchia 2018 refine Graham's 4/3 - 1/(3m)): since
// LPT <= (4/3 - 1/(3m)) * OPT, any schedule's optimum satisfies
// OPT >= ceil(3m * LPT / (4m - 1)) — an O(n log n) lower bound that is
// frequently much sharper than max(avg load, max job).
//
// Ground-truth hierarchy (docs/TESTING.md "Ground truth"):
//   brute force  — plain DFS, trustworthy-by-inspection; n <= ~12 only
//   exact-bb     — pruned branch and bound (src/exact/); proves OPT into
//                  the hundreds of jobs, itself cross-checked against
//                  brute force on the enumerable range
//   LPT bound    — always available; a bound, not an optimum
#pragma once

#include <cstdint>
#include <optional>

#include "core/instance.hpp"

namespace pcmax::testkit {

/// Makespan of the LPT schedule (upper bound on OPT).
[[nodiscard]] std::int64_t lpt_makespan(const Instance& instance);

/// max(trivial bound, LPT-ratio bound): always <= OPT.
[[nodiscard]] std::int64_t oracle_lower_bound(const Instance& instance);

/// Exact optimum via the pruned branch and bound (exact/bb.hpp), or nullopt
/// when the node budget expired before optimality was proven. Scales to
/// hundreds of jobs on typical instances.
[[nodiscard]] std::optional<std::int64_t> exact_makespan(
    const Instance& instance, std::uint64_t node_budget = 2'000'000);

/// Exact optimum via the unpruned baseline DFS (baselines/exact.hpp), or
/// nullopt on budget expiry. Kept as an independent cross-check for the
/// branch and bound itself; use only at tiny n (<= ~12).
[[nodiscard]] std::optional<std::int64_t> brute_force_makespan(
    const Instance& instance, std::uint64_t node_budget = 2'000'000);

}  // namespace pcmax::testkit
