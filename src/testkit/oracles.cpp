#include "testkit/oracles.hpp"

#include <algorithm>

#include "baselines/exact.hpp"
#include "baselines/heuristics.hpp"
#include "core/bounds.hpp"
#include "exact/bb.hpp"
#include "util/checked_math.hpp"

namespace pcmax::testkit {

std::int64_t lpt_makespan(const Instance& instance) {
  return makespan(instance, baselines::lpt(instance));
}

std::int64_t oracle_lower_bound(const Instance& instance) {
  const std::int64_t trivial = makespan_lower_bound(instance);
  // LPT <= (4m - 1) / (3m) * OPT  =>  OPT >= 3m * LPT / (4m - 1).
  const std::int64_t m = instance.machines;
  const std::int64_t lpt = lpt_makespan(instance);
  // 3m * LPT stays in range: the fuzz generators cap times at ~1e9 and jobs
  // at ~64, but guard with checked arithmetic anyway so a caller with
  // 1e12-scale times gets an exception instead of a wrong bound.
  const auto numerator = util::checked_mul(static_cast<std::uint64_t>(3 * m),
                                           static_cast<std::uint64_t>(lpt));
  const auto lpt_bound = static_cast<std::int64_t>(
      util::ceil_div(numerator, static_cast<std::uint64_t>(4 * m - 1)));
  return std::max(trivial, lpt_bound);
}

std::optional<std::int64_t> exact_makespan(const Instance& instance,
                                           std::uint64_t node_budget) {
  exact::BbOptions options;
  options.node_budget = node_budget;
  const auto result = exact::solve_bb(instance, options);
  if (!result.optimal()) return std::nullopt;
  return result.makespan;
}

std::optional<std::int64_t> brute_force_makespan(const Instance& instance,
                                                 std::uint64_t node_budget) {
  baselines::ExactOptions options;
  options.node_budget = node_budget;
  const auto result = baselines::solve_exact(instance, options);
  if (!result.has_value()) return std::nullopt;
  return result->makespan;
}

}  // namespace pcmax::testkit
