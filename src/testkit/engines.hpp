// One registry of every DP engine in the repository, behind a uniform
// solve signature, so differential tests and the fuzzer enumerate engines
// instead of hard-coding them. Adding a new engine here automatically puts
// it under the fuzzer's cross-engine comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "dp/solver.hpp"
#include "gpusim/device.hpp"

namespace pcmax::testkit {

struct Engine {
  std::string name;
  /// True when the engine materializes the full table bit-exactly (the
  /// frontier engine does so only under its keep_table option, which the
  /// registry enables).
  bool full_table = true;
  std::function<dp::DpResult(const dp::DpProblem&)> solve;
};

/// Owns the simulated device plus every solver instance. The first entry is
/// always the reference oracle; all comparisons run other engines against
/// it.
class EngineRegistry {
 public:
  EngineRegistry();

  [[nodiscard]] const std::vector<Engine>& engines() const noexcept {
    return engines_;
  }
  [[nodiscard]] const Engine& reference() const noexcept {
    return engines_.front();
  }
  /// The simulated device backing the GPU engines (for conservation checks
  /// and log maintenance between fuzz cases).
  [[nodiscard]] gpusim::Device& device() noexcept { return *device_; }

 private:
  std::unique_ptr<gpusim::Device> device_;
  std::vector<std::unique_ptr<dp::DpSolver>> owned_;
  std::vector<Engine> engines_;
};

/// Instance-level schedulers (heuristics, PTAS drivers, the exact branch
/// and bound) behind one signature, so the ground-truth differential
/// harness (`pcmax_fuzz` exact mode, tests/exact/test_guarantees.cpp)
/// enumerates every scheduler and judges each against the proven optimum
/// instead of against other engines.
struct SchedulerEngine {
  std::string name;
  /// A-priori guarantee as an exact rational >= 1: any schedule the engine
  /// returns satisfies makespan * den <= num * OPT. A function because the
  /// classic bounds depend on the machine count (LPT's (4m-1)/(3m)).
  std::function<std::pair<std::int64_t, std::int64_t>(const Instance&)> bound;
  /// Produce a schedule, or nullopt when the engine declines the instance
  /// (the PTAS engines gate on rounded-table size, exact-bb on its node
  /// budget). Declining is never a failure.
  std::function<std::optional<Schedule>(const Instance&)> solve;
};

/// Owns the DP solver behind the PTAS engines. Engines: lpt, list,
/// multifit, ptas-bisection, ptas-quarter, eptas (all at accuracy `k`; the
/// last uses the sparsified structured rounding of eptas/sparsify.hpp), and
/// exact-bb (guarantee 1/1, declining when `bb_node_budget` expires).
/// The PTAS/EPTAS engines decline instances whose rounded DP table at the
/// trivial lower bound would exceed `max_table_cells`.
class SchedulerEngineRegistry {
 public:
  explicit SchedulerEngineRegistry(std::int64_t k = 4,
                                   std::uint64_t bb_node_budget = 4'000'000,
                                   std::uint64_t max_table_cells = 4'000'000);

  [[nodiscard]] const std::vector<SchedulerEngine>& engines() const noexcept {
    return engines_;
  }
  [[nodiscard]] std::int64_t k() const noexcept { return k_; }

 private:
  std::int64_t k_;
  std::unique_ptr<dp::DpSolver> solver_;
  std::vector<SchedulerEngine> engines_;
};

}  // namespace pcmax::testkit
