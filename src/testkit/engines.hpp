// One registry of every DP engine in the repository, behind a uniform
// solve signature, so differential tests and the fuzzer enumerate engines
// instead of hard-coding them. Adding a new engine here automatically puts
// it under the fuzzer's cross-engine comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dp/solver.hpp"
#include "gpusim/device.hpp"

namespace pcmax::testkit {

struct Engine {
  std::string name;
  /// True when the engine materializes the full table bit-exactly (the
  /// frontier engine does so only under its keep_table option, which the
  /// registry enables).
  bool full_table = true;
  std::function<dp::DpResult(const dp::DpProblem&)> solve;
};

/// Owns the simulated device plus every solver instance. The first entry is
/// always the reference oracle; all comparisons run other engines against
/// it.
class EngineRegistry {
 public:
  EngineRegistry();

  [[nodiscard]] const std::vector<Engine>& engines() const noexcept {
    return engines_;
  }
  [[nodiscard]] const Engine& reference() const noexcept {
    return engines_.front();
  }
  /// The simulated device backing the GPU engines (for conservation checks
  /// and log maintenance between fuzz cases).
  [[nodiscard]] gpusim::Device& device() noexcept { return *device_; }

 private:
  std::unique_ptr<gpusim::Device> device_;
  std::vector<std::unique_ptr<dp::DpSolver>> owned_;
  std::vector<Engine> engines_;
};

}  // namespace pcmax::testkit
