#include "testkit/trace_checks.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

namespace pcmax::testkit {

namespace {

struct Interval {
  std::int64_t start;
  std::int64_t end;
  std::string name;
};

CheckResult fail(const std::ostringstream& out) { return out.str(); }

}  // namespace

CheckResult check_trace_structure(const obs::TraceRecorder& trace) {
  const std::vector<obs::TraceEvent> events = trace.snapshot();

  // Balanced, name-matched begin/end nesting on the host/algorithm track.
  std::vector<std::string> stack;
  std::int64_t last_sim = -1;
  for (const obs::TraceEvent& e : events) {
    switch (e.kind) {
      case obs::EventKind::kSpanBegin:
        stack.emplace_back(e.name);
        break;
      case obs::EventKind::kSpanEnd: {
        if (stack.empty()) {
          std::ostringstream out;
          out << "span end '" << e.name << "' (seq " << e.seq
              << ") with no open span";
          return fail(out);
        }
        if (stack.back() != e.name) {
          std::ostringstream out;
          out << "span end '" << e.name << "' (seq " << e.seq
              << ") does not match open span '" << stack.back() << "'";
          return fail(out);
        }
        stack.pop_back();
        break;
      }
      case obs::EventKind::kInstant:
      case obs::EventKind::kComplete:
        break;
    }
    // Simulated time is monotone in record order for host-side events: the
    // device clock only moves forward.
    if (e.kind != obs::EventKind::kComplete && e.sim_ps >= 0) {
      if (e.sim_ps < last_sim) {
        std::ostringstream out;
        out << "simulated time went backwards at '" << e.name << "' (seq "
            << e.seq << "): " << e.sim_ps << " < " << last_sim;
        return fail(out);
      }
      last_sim = e.sim_ps;
    }
  }
  if (!stack.empty()) {
    std::ostringstream out;
    out << stack.size() << " span(s) never closed; innermost '"
        << stack.back() << "'";
    return fail(out);
  }

  // Kernel spans: sane extents, and per-(pid, tid) non-overlap.
  std::map<std::pair<std::int32_t, std::int32_t>, std::vector<Interval>>
      tracks;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::EventKind::kComplete) continue;
    if (e.sim_ps < 0 || e.dur_ps < 0) {
      std::ostringstream out;
      out << "kernel span '" << e.name << "' (seq " << e.seq
          << ") has negative extent: start=" << e.sim_ps
          << " dur=" << e.dur_ps;
      return fail(out);
    }
    if (e.pid < obs::kStreamPidBase) {
      std::ostringstream out;
      out << "kernel span '" << e.name << "' (seq " << e.seq
          << ") on non-stream pid " << e.pid;
      return fail(out);
    }
    tracks[{e.pid, e.tid}].push_back(
        Interval{e.sim_ps, e.sim_ps + e.dur_ps, e.name});
  }
  for (auto& [key, intervals] : tracks) {
    std::stable_sort(intervals.begin(), intervals.end(),
                     [](const Interval& a, const Interval& b) {
                       return a.start < b.start;
                     });
    for (std::size_t i = 0; i + 1 < intervals.size(); ++i) {
      if (intervals[i + 1].start < intervals[i].end) {
        std::ostringstream out;
        out << "overlapping kernel spans on stream "
            << key.first - obs::kStreamPidBase << " tid " << key.second
            << ": '" << intervals[i].name << "' [" << intervals[i].start
            << ", " << intervals[i].end << ") overlaps '"
            << intervals[i + 1].name << "' starting at "
            << intervals[i + 1].start;
        return fail(out);
      }
    }
  }

  // Child nesting: every tid-2 span inside some tid-1 family on its stream.
  for (const auto& [key, children] : tracks) {
    if (key.second != obs::kChildTid) continue;
    const auto parents_it = tracks.find({key.first, obs::kParentTid});
    if (parents_it == tracks.end()) {
      std::ostringstream out;
      out << "child kernel spans on stream "
          << key.first - obs::kStreamPidBase << " but no parent spans";
      return fail(out);
    }
    const std::vector<Interval>& parents = parents_it->second;  // sorted
    for (const Interval& child : children) {
      // Last parent starting at or before the child (parents are disjoint
      // and sorted, so it is the only candidate container).
      auto it = std::upper_bound(
          parents.begin(), parents.end(), child.start,
          [](std::int64_t t, const Interval& p) { return t < p.start; });
      const bool nested = it != parents.begin() &&
                          child.start >= std::prev(it)->start &&
                          child.end <= std::prev(it)->end;
      if (!nested) {
        std::ostringstream out;
        out << "child kernel '" << child.name << "' [" << child.start << ", "
            << child.end << ") on stream "
            << key.first - obs::kStreamPidBase
            << " is not nested inside any parent family span";
        return fail(out);
      }
    }
  }

  return std::nullopt;
}

CheckResult check_trace_reconciles(const obs::MetricsRegistry& metrics,
                                   const PtasResult& result) {
  const std::uint64_t invocations = metrics.counter("dp.invocations");
  if (invocations != result.dp_calls.size()) {
    std::ostringstream out;
    out << "dp.invocations counter " << invocations << " != dp_calls.size() "
        << result.dp_calls.size();
    return fail(out);
  }

  std::uint64_t cached = 0;
  std::uint64_t cells = 0;
  for (const DpInvocation& call : result.dp_calls) {
    if (call.cached) {
      ++cached;
    } else if (call.long_jobs > 0) {
      cells += call.table_size;
    }
  }
  if (metrics.counter("dp.cache_answered") != cached) {
    std::ostringstream out;
    out << "dp.cache_answered counter " << metrics.counter("dp.cache_answered")
        << " != cached dp_calls " << cached;
    return fail(out);
  }
  if (metrics.counter("dp.cells") != cells) {
    std::ostringstream out;
    out << "dp.cells counter " << metrics.counter("dp.cells")
        << " != summed uncached table sizes " << cells;
    return fail(out);
  }

  if (metrics.counter("search.rounds") !=
      static_cast<std::uint64_t>(result.search_iterations)) {
    std::ostringstream out;
    out << "search.rounds counter " << metrics.counter("search.rounds")
        << " != search_iterations " << result.search_iterations;
    return fail(out);
  }

  if (metrics.counter("probe_cache.lookups") !=
      result.cache_stats.lookups) {
    std::ostringstream out;
    out << "probe_cache.lookups counter "
        << metrics.counter("probe_cache.lookups") << " != cache_stats.lookups "
        << result.cache_stats.lookups;
    return fail(out);
  }
  if (metrics.counter("probe_cache.hits") != result.cache_stats.hits) {
    std::ostringstream out;
    out << "probe_cache.hits counter " << metrics.counter("probe_cache.hits")
        << " != cache_stats.hits " << result.cache_stats.hits;
    return fail(out);
  }
  if (metrics.counter("search.bound_skips") !=
      result.cache_stats.bound_skips) {
    std::ostringstream out;
    out << "search.bound_skips counter "
        << metrics.counter("search.bound_skips")
        << " != cache_stats.bound_skips " << result.cache_stats.bound_skips;
    return fail(out);
  }

  return std::nullopt;
}

}  // namespace pcmax::testkit
