// Metamorphic relations over the PTAS: transformations of an instance with
// an exactly predictable effect on the found target. Each relation is proved
// against the rounding/search semantics (see the notes in metamorphic.cpp),
// so a violation is a real defect, not test flakiness. All relations hold
// for every DP engine because they only constrain PTAS-level outputs.
//
// The relations are also rounding-agnostic: they rely only on (a) rounding
// being a function of the job-time multiset, (b) the class indices
// floor(t * k^2 / T) being invariant under integer scaling of both t and T,
// and (c) a T*-sized filler landing in the top class. The sparsified EPTAS
// rounding (eptas/sparsify.hpp) snaps classes as a pure function of (c, k),
// so all three properties carry over verbatim — pass solve_eptas as the
// `solve` driver to run the identical suite over the sparsified engine.
#pragma once

#include <cstdint>
#include <functional>

#include "core/instance.hpp"
#include "core/ptas.hpp"
#include "dp/solver.hpp"
#include "testkit/invariants.hpp"

namespace pcmax::testkit {

/// The PTAS-shaped solve entry point a metamorphic run drives. An empty
/// function means solve_ptas; wrap eptas::solve_eptas (same signature) to
/// cover the sparsified engine.
using PtasSolveFn = std::function<PtasResult(
    const Instance&, const dp::DpSolver&, const PtasOptions&)>;

/// Permuting the job order leaves the found target and the search
/// trajectory unchanged: rounding is a function of the job-time multiset.
/// (The achieved makespan may legitimately differ — greedy short-job
/// placement is order-dependent — so both runs are certificate-checked
/// instead of compared.)
[[nodiscard]] CheckResult check_permutation_metamorphic(
    const Instance& instance, const dp::DpSolver& solver,
    const PtasOptions& options, std::uint64_t shuffle_seed,
    const PtasSolveFn& solve = {});

/// Scaling every job time by an integer factor c scales the found target
/// exactly: ceil(T*_scaled / c) == T*.
[[nodiscard]] CheckResult check_scaling_metamorphic(
    const Instance& instance, const dp::DpSolver& solver,
    const PtasOptions& options, std::int64_t factor,
    const PtasSolveFn& solve = {});

/// Adding one machine plus one filler job of size exactly T* leaves the
/// found target unchanged: the filler is infeasible below T* and occupies
/// the new machine alone at T*.
[[nodiscard]] CheckResult check_extension_metamorphic(
    const Instance& instance, const dp::DpSolver& solver,
    const PtasOptions& options, const PtasSolveFn& solve = {});

/// All three relations; the seed drives the permutation shuffle and the
/// scaling factor. Stops at the first violated relation.
[[nodiscard]] CheckResult check_metamorphic_suite(
    const Instance& instance, const dp::DpSolver& solver,
    const PtasOptions& options, std::uint64_t seed,
    const PtasSolveFn& solve = {});

}  // namespace pcmax::testkit
