#include "testkit/generators.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

#include "util/contracts.hpp"

namespace pcmax::testkit {

namespace {

constexpr std::int64_t kSmallPrimes[] = {2, 3, 5, 7, 11, 13, 17, 19, 23};

std::uint64_t cells_of(const std::vector<std::int64_t>& counts) {
  std::uint64_t cells = 1;
  for (const auto n : counts) cells *= static_cast<std::uint64_t>(n + 1);
  return cells;
}

/// Log-uniform integer in [1, hi]: exponent first, then a value in that
/// decade, so 3 and 3'000'000 are about equally likely.
std::int64_t log_uniform(util::Rng& rng, std::int64_t hi) {
  PCMAX_EXPECTS(hi >= 1);
  const auto max_exp =
      static_cast<std::int64_t>(std::floor(std::log10(static_cast<double>(hi))));
  const auto exp = rng.uniform(0, max_exp);
  std::int64_t lo_decade = 1;
  for (std::int64_t i = 0; i < exp; ++i) lo_decade *= 10;
  const auto hi_decade = std::min(hi, lo_decade * 10 - 1);
  return rng.uniform(lo_decade, hi_decade);
}

}  // namespace

dp::DpProblem random_dp_problem(util::Rng& rng, const DpProblemLimits& limits) {
  PCMAX_EXPECTS(limits.max_dims >= 1);
  PCMAX_EXPECTS(limits.max_count >= 1);
  PCMAX_EXPECTS(limits.max_weight >= 1);
  PCMAX_EXPECTS(limits.max_capacity >= 1);
  for (;;) {
    dp::DpProblem p;
    const auto style = rng.uniform(0, limits.allow_infeasible ? 4 : 3);
    const auto dims = static_cast<std::size_t>(
        rng.uniform(1, static_cast<std::int64_t>(limits.max_dims)));

    switch (style) {
      case 2: {  // single class, count stretched beyond the usual cap
        p.counts.push_back(rng.uniform(0, limits.max_count * 2));
        p.weights.push_back(rng.uniform(1, limits.max_weight));
        break;
      }
      default: {
        for (std::size_t i = 0; i < dims; ++i) {
          p.counts.push_back(rng.uniform(0, limits.max_count));
          p.weights.push_back(rng.uniform(1, limits.max_weight));
        }
        if (style == 1)  // degenerate: at least one empty class
          p.counts[static_cast<std::size_t>(
              rng.uniform(0, static_cast<std::int64_t>(dims) - 1))] = 0;
        break;
      }
    }

    const auto max_w = *std::max_element(p.weights.begin(), p.weights.end());
    if (style == 3) {
      // Tight: exactly one heaviest-class job per machine.
      p.capacity = max_w;
    } else {
      p.capacity = rng.uniform(1, limits.max_capacity);
      // Honour the flag: without allow_infeasible every class must fit on a
      // machine, so a randomly small capacity is raised to the heaviest
      // weight (keeping the tight case reachable for all styles).
      if (!limits.allow_infeasible && p.capacity < max_w) p.capacity = max_w;
    }
    if (style == 4) {
      // Infeasible class: one weight strictly above the capacity, so every
      // cell using that class is unreachable.
      const auto victim = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(p.counts.size()) - 1));
      p.weights[victim] = p.capacity + rng.uniform(1, 4);
      if (p.counts[victim] == 0) p.counts[victim] = 1;
    }

    if (cells_of(p.counts) > limits.max_cells) continue;
    p.validate();
    return p;
  }
}

Instance random_instance(util::Rng& rng, const InstanceLimits& limits) {
  PCMAX_EXPECTS(limits.max_jobs >= 1);
  PCMAX_EXPECTS(limits.max_machines >= 1);
  PCMAX_EXPECTS(limits.max_time >= 2);
  Instance inst;
  inst.machines = rng.uniform(1, limits.max_machines);
  const auto jobs = static_cast<std::size_t>(
      rng.uniform(1, static_cast<std::int64_t>(limits.max_jobs)));
  const auto style = rng.uniform(0, 4);
  switch (style) {
    case 0:  // wide log-uniform spread
      for (std::size_t j = 0; j < jobs; ++j)
        inst.times.push_back(log_uniform(rng, limits.max_time));
      break;
    case 1: {  // all short: every job far below the average load, so any
               // reasonable target classifies them all short (greedy path)
      const auto t_max = std::max<std::int64_t>(2, inst.machines);
      for (std::size_t j = 0; j < jobs; ++j)
        inst.times.push_back(rng.uniform(1, t_max));
      break;
    }
    case 2: {  // all identical
      const auto t = log_uniform(rng, limits.max_time);
      inst.times.assign(jobs, t);
      break;
    }
    case 3: {  // few dominant jobs over a sea of unit jobs
      const auto dominants = rng.uniform(1, std::min<std::int64_t>(
                                                static_cast<std::int64_t>(jobs), 4));
      for (std::int64_t j = 0; j < dominants; ++j)
        inst.times.push_back(log_uniform(rng, limits.max_time));
      while (inst.times.size() < jobs) inst.times.push_back(1);
      break;
    }
    default: {  // powers of two: exercises exact halving/rounding boundaries
      for (std::size_t j = 0; j < jobs; ++j) {
        const auto shift = rng.uniform(0, 20);
        inst.times.push_back(std::int64_t{1} << shift);
      }
      break;
    }
  }
  inst.validate();
  return inst;
}

std::vector<std::int64_t> adversarial_extents(util::Rng& rng,
                                              std::size_t max_dims,
                                              std::uint64_t max_cells) {
  PCMAX_EXPECTS(max_dims >= 1);
  PCMAX_EXPECTS(max_cells >= 2);
  const auto style = rng.uniform(0, 4);
  std::vector<std::int64_t> extents;
  const auto pick_prime = [&] {
    return kSmallPrimes[static_cast<std::size_t>(rng.uniform(0, 8))];
  };
  switch (style) {
    case 0: {  // all-prime extents: the divisor fully splits every dimension
      const auto dims =
          rng.uniform(1, static_cast<std::int64_t>(std::min<std::size_t>(max_dims, 4)));
      for (std::int64_t i = 0; i < dims; ++i) extents.push_back(pick_prime());
      break;
    }
    case 1: {  // degenerate: unit extents interleaved with real ones
      const auto dims = rng.uniform(2, static_cast<std::int64_t>(max_dims));
      for (std::int64_t i = 0; i < dims; ++i)
        extents.push_back(rng.uniform(0, 1) == 0 ? 1 : rng.uniform(2, 8));
      break;
    }
    case 2: {  // single dimension, as long as the cell budget allows
      extents.push_back(rng.uniform(
          2, static_cast<std::int64_t>(std::min<std::uint64_t>(max_cells, 4096))));
      break;
    }
    case 3: {  // perfect squares: divisor picks the exact square root
      const auto dims =
          rng.uniform(1, static_cast<std::int64_t>(std::min<std::size_t>(max_dims, 3)));
      for (std::int64_t i = 0; i < dims; ++i) {
        const auto root = rng.uniform(2, 5);
        extents.push_back(root * root);
      }
      break;
    }
    default: {  // mixed composite/prime
      const auto dims = rng.uniform(1, static_cast<std::int64_t>(max_dims));
      for (std::int64_t i = 0; i < dims; ++i)
        extents.push_back(rng.uniform(0, 1) == 0 ? pick_prime()
                                                 : rng.uniform(2, 10));
      break;
    }
  }
  // Enforce the cell budget by demoting trailing dimensions to extent 1.
  std::uint64_t cells = 1;
  for (auto& e : extents) {
    if (cells * static_cast<std::uint64_t>(e) > max_cells) e = 1;
    cells *= static_cast<std::uint64_t>(e);
  }
  return extents;
}

std::string random_instance_text(util::Rng& rng) {
  // Start from a well-formed serialization with cosmetic noise the parser
  // must tolerate (comments, ragged line breaks).
  const std::int64_t machines = rng.uniform(1, 8);
  const std::int64_t jobs = rng.uniform(0, 12);
  std::string text;
  if (rng.uniform01() < 0.3) text += "# parser fuzz case\n";
  text += std::to_string(machines);
  text += rng.uniform01() < 0.3 ? "   # machines\n" : "\n";
  for (std::int64_t j = 0; j < jobs; ++j) {
    text += std::to_string(log_uniform(rng, 1'000'000));
    text += rng.uniform01() < 0.2 ? "\n" : " ";
  }
  text += "\n";
  if (rng.uniform01() < 0.5) return text;

  // Adversarial half: exactly one mutation per case, so a failure shrinks
  // to a single cause.
  switch (rng.uniform(0, 7)) {
    case 0:
      return "";
    case 1:  // truncation (may still parse; the property allows either)
      return text.substr(0, text.size() / 2);
    case 2: {  // garbage token spliced at a random position
      static constexpr const char* kGarbage[] = {"banana", "1x2",  "--3",
                                                 "12-",    "0x10", "1e9"};
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(text.size())));
      return text.substr(0, pos) + " " +
             kGarbage[static_cast<std::size_t>(
                 rng.uniform(0, std::ssize(kGarbage) - 1))] +
             " " + text.substr(pos);
    }
    case 3:
      return "0\n1 2 3\n";  // zero machines
    case 4:
      return std::to_string(machines) + "\n1 0 3\n";  // zero time
    case 5:
      return std::to_string(machines) + "\n5 -7 2\n";  // negative time
    case 6:  // literal overflows int64
      return std::to_string(machines) + "\n99999999999999999999999 1\n";
    default:  // each time fits but their sum wraps
      return "1\n9223372036854775807 9223372036854775807\n";
  }
}

}  // namespace pcmax::testkit
