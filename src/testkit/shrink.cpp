#include "testkit/shrink.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pcmax::testkit {

namespace {

/// Shared evaluation budget across all shrink passes.
class Budget {
 public:
  explicit Budget(std::uint64_t max_evaluations)
      : left_(max_evaluations) {}
  [[nodiscard]] bool spend() noexcept {
    if (left_ == 0) return false;
    --left_;
    return true;
  }

 private:
  std::uint64_t left_;
};

template <typename T, typename Predicate>
bool try_accept(T& current, T candidate, const Predicate& fails,
                Budget& budget) {
  if (!budget.spend()) return false;
  if (!fails(candidate)) return false;
  current = std::move(candidate);
  return true;
}

/// Candidate values for shrinking `value` toward `floor`, most aggressive
/// first: the floor itself, the halfway point, the decrement.
std::vector<std::int64_t> shrink_steps(std::int64_t value, std::int64_t floor) {
  std::vector<std::int64_t> steps;
  if (value <= floor) return steps;
  steps.push_back(floor);
  const auto half = floor + (value - floor) / 2;
  if (half != floor && half != value) steps.push_back(half);
  if (value - 1 != floor && value - 1 != half) steps.push_back(value - 1);
  return steps;
}

}  // namespace

dp::DpProblem shrink_dp_problem(dp::DpProblem failing,
                                const DpProblemPredicate& fails,
                                const ShrinkOptions& options) {
  failing.validate();
  PCMAX_EXPECTS(fails(failing));
  Budget budget(options.max_evaluations);

  bool progressed = true;
  while (progressed) {
    progressed = false;

    // Pass 1: drop whole dimensions (a d-dimensional reproducer is worth
    // far more than any amount of count shrinking).
    for (std::size_t d = 0; failing.counts.size() > 1 &&
                            d < failing.counts.size();) {
      dp::DpProblem candidate = failing;
      candidate.counts.erase(candidate.counts.begin() +
                             static_cast<std::ptrdiff_t>(d));
      candidate.weights.erase(candidate.weights.begin() +
                              static_cast<std::ptrdiff_t>(d));
      if (try_accept(failing, std::move(candidate), fails, budget))
        progressed = true;  // same index now names the next dimension
      else
        ++d;
    }

    // Pass 2: shrink per-class counts toward 0.
    for (std::size_t d = 0; d < failing.counts.size(); ++d)
      for (const auto step : shrink_steps(failing.counts[d], 0)) {
        dp::DpProblem candidate = failing;
        candidate.counts[d] = step;
        if (try_accept(failing, std::move(candidate), fails, budget)) {
          progressed = true;
          break;
        }
      }

    // Pass 3: shrink weights toward 1.
    for (std::size_t d = 0; d < failing.weights.size(); ++d)
      for (const auto step : shrink_steps(failing.weights[d], 1)) {
        dp::DpProblem candidate = failing;
        candidate.weights[d] = step;
        if (try_accept(failing, std::move(candidate), fails, budget)) {
          progressed = true;
          break;
        }
      }

    // Pass 4: shrink the capacity toward 0.
    for (const auto step : shrink_steps(failing.capacity, 0)) {
      dp::DpProblem candidate = failing;
      candidate.capacity = step;
      if (try_accept(failing, std::move(candidate), fails, budget)) {
        progressed = true;
        break;
      }
    }
  }
  return failing;
}

Instance shrink_instance(Instance failing, const InstancePredicate& fails,
                         const ShrinkOptions& options) {
  failing.validate();
  PCMAX_EXPECTS(fails(failing));
  Budget budget(options.max_evaluations);

  bool progressed = true;
  while (progressed) {
    progressed = false;

    // Pass 1: delete jobs, ddmin-style — halves first, then single jobs.
    for (std::size_t chunk = std::max<std::size_t>(failing.times.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0; start + 1 <= failing.times.size() &&
                                  failing.times.size() > 1;) {
        const auto len = std::min(chunk, failing.times.size() - start);
        if (len >= failing.times.size()) {
          ++start;
          continue;  // never delete every job
        }
        Instance candidate = failing;
        candidate.times.erase(
            candidate.times.begin() + static_cast<std::ptrdiff_t>(start),
            candidate.times.begin() + static_cast<std::ptrdiff_t>(start + len));
        if (try_accept(failing, std::move(candidate), fails, budget))
          progressed = true;  // same start now names the next chunk
        else
          start += len;
      }
      if (chunk == 1) break;
    }

    // Pass 2: fewer machines.
    for (const auto step : shrink_steps(failing.machines, 1)) {
      Instance candidate = failing;
      candidate.machines = step;
      if (try_accept(failing, std::move(candidate), fails, budget)) {
        progressed = true;
        break;
      }
    }

    // Pass 3: shrink processing times toward 1.
    for (std::size_t j = 0; j < failing.times.size(); ++j)
      for (const auto step : shrink_steps(failing.times[j], 1)) {
        Instance candidate = failing;
        candidate.times[j] = step;
        if (try_accept(failing, std::move(candidate), fails, budget)) {
          progressed = true;
          break;
        }
      }
  }
  return failing;
}

}  // namespace pcmax::testkit
