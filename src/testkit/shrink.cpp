#include "testkit/shrink.hpp"

#include <algorithm>
#include <map>

#include "util/contracts.hpp"

namespace pcmax::testkit {

namespace {

/// Flattened candidate state used as the memo key; -1 separates fields
/// (every real value is >= 0, so the separator is unambiguous).
std::vector<std::int64_t> memo_key(const dp::DpProblem& problem) {
  std::vector<std::int64_t> key = problem.counts;
  key.push_back(-1);
  key.insert(key.end(), problem.weights.begin(), problem.weights.end());
  key.push_back(-1);
  key.push_back(problem.capacity);
  return key;
}

std::vector<std::int64_t> memo_key(const Instance& instance) {
  std::vector<std::int64_t> key = instance.times;
  key.push_back(-1);
  key.push_back(instance.machines);
  return key;
}

/// Budgeted, memoizing predicate wrapper shared by all shrink passes.
/// Cached verdicts spend no budget; only real predicate runs do.
template <typename T>
class Evaluator {
 public:
  Evaluator(const std::function<bool(const T&)>& fails,
            const ShrinkOptions& options)
      : fails_(fails),
        left_(options.max_evaluations),
        memoize_(options.memoize) {}

  /// True when the candidate still fails (i.e. is worth keeping); false on
  /// a passing candidate or an exhausted budget.
  [[nodiscard]] bool still_fails(const T& candidate) {
    if (memoize_) {
      const auto it = memo_.find(memo_key(candidate));
      if (it != memo_.end()) return it->second;
    }
    if (left_ == 0) return false;
    --left_;
    const bool verdict = fails_(candidate);
    if (memoize_) memo_.emplace(memo_key(candidate), verdict);
    return verdict;
  }

 private:
  const std::function<bool(const T&)>& fails_;
  std::uint64_t left_;
  bool memoize_;
  std::map<std::vector<std::int64_t>, bool> memo_;
};

template <typename T>
bool try_accept(T& current, T candidate, Evaluator<T>& evaluator) {
  if (!evaluator.still_fails(candidate)) return false;
  current = std::move(candidate);
  return true;
}

/// Candidate values for shrinking `value` toward `floor`, most aggressive
/// first: the floor itself, the halfway point, the decrement.
std::vector<std::int64_t> shrink_steps(std::int64_t value, std::int64_t floor) {
  std::vector<std::int64_t> steps;
  if (value <= floor) return steps;
  steps.push_back(floor);
  const auto half = floor + (value - floor) / 2;
  if (half != floor && half != value) steps.push_back(half);
  if (value - 1 != floor && value - 1 != half) steps.push_back(value - 1);
  return steps;
}

}  // namespace

dp::DpProblem shrink_dp_problem(dp::DpProblem failing,
                                const DpProblemPredicate& fails,
                                const ShrinkOptions& options) {
  failing.validate();
  PCMAX_EXPECTS(fails(failing));
  Evaluator<dp::DpProblem> evaluator(fails, options);

  bool progressed = true;
  while (progressed) {
    progressed = false;

    // Pass 1: drop whole dimensions (a d-dimensional reproducer is worth
    // far more than any amount of count shrinking).
    for (std::size_t d = 0; failing.counts.size() > 1 &&
                            d < failing.counts.size();) {
      dp::DpProblem candidate = failing;
      candidate.counts.erase(candidate.counts.begin() +
                             static_cast<std::ptrdiff_t>(d));
      candidate.weights.erase(candidate.weights.begin() +
                              static_cast<std::ptrdiff_t>(d));
      if (try_accept(failing, std::move(candidate), evaluator))
        progressed = true;  // same index now names the next dimension
      else
        ++d;
    }

    // Pass 2: shrink per-class counts toward 0.
    for (std::size_t d = 0; d < failing.counts.size(); ++d)
      for (const auto step : shrink_steps(failing.counts[d], 0)) {
        dp::DpProblem candidate = failing;
        candidate.counts[d] = step;
        if (try_accept(failing, std::move(candidate), evaluator)) {
          progressed = true;
          break;
        }
      }

    // Pass 3: shrink weights toward 1.
    for (std::size_t d = 0; d < failing.weights.size(); ++d)
      for (const auto step : shrink_steps(failing.weights[d], 1)) {
        dp::DpProblem candidate = failing;
        candidate.weights[d] = step;
        if (try_accept(failing, std::move(candidate), evaluator)) {
          progressed = true;
          break;
        }
      }

    // Pass 4: shrink the capacity toward 0.
    for (const auto step : shrink_steps(failing.capacity, 0)) {
      dp::DpProblem candidate = failing;
      candidate.capacity = step;
      if (try_accept(failing, std::move(candidate), evaluator)) {
        progressed = true;
        break;
      }
    }
  }
  return failing;
}

Instance shrink_instance(Instance failing, const InstancePredicate& fails,
                         const ShrinkOptions& options) {
  failing.validate();
  PCMAX_EXPECTS(fails(failing));
  Evaluator<Instance> evaluator(fails, options);

  bool progressed = true;
  while (progressed) {
    progressed = false;

    // Pass 1: delete jobs, ddmin-style — halves first, then single jobs.
    for (std::size_t chunk = std::max<std::size_t>(failing.times.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0; start + 1 <= failing.times.size() &&
                                  failing.times.size() > 1;) {
        const auto len = std::min(chunk, failing.times.size() - start);
        if (len >= failing.times.size()) {
          ++start;
          continue;  // never delete every job
        }
        Instance candidate = failing;
        candidate.times.erase(
            candidate.times.begin() + static_cast<std::ptrdiff_t>(start),
            candidate.times.begin() + static_cast<std::ptrdiff_t>(start + len));
        if (try_accept(failing, std::move(candidate), evaluator))
          progressed = true;  // same start now names the next chunk
        else
          start += len;
      }
      if (chunk == 1) break;
    }

    // Pass 2: fewer machines.
    for (const auto step : shrink_steps(failing.machines, 1)) {
      Instance candidate = failing;
      candidate.machines = step;
      if (try_accept(failing, std::move(candidate), evaluator)) {
        progressed = true;
        break;
      }
    }

    // Pass 3: shrink processing times toward 1.
    for (std::size_t j = 0; j < failing.times.size(); ++j)
      for (const auto step : shrink_steps(failing.times[j], 1)) {
        Instance candidate = failing;
        candidate.times[j] = step;
        if (try_accept(failing, std::move(candidate), evaluator)) {
          progressed = true;
          break;
        }
      }
  }
  return failing;
}

}  // namespace pcmax::testkit
