// Solvers for the higher-dimensional knapsack DP, mirroring the scheduling
// DP's solver family: a level-ordered reference, a blocked wavefront built
// on the partition substrate, and a simulated-GPU engine charging the same
// structural quantities. All produce bit-identical tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "knapsack/problem.hpp"

namespace pcmax::knapsack {

struct KnapsackResult {
  /// Best value at the full budget vector.
  std::int64_t best = 0;
  /// Full DP table, row-major over the budget radix.
  std::vector<std::int64_t> table;
};

/// Level-ordered single-threaded oracle.
[[nodiscard]] KnapsackResult solve_reference(const KnapsackProblem& problem);

/// Block-wavefront solver on the data-partitioning scheme: the table is
/// stored blocked, block-levels run as a wavefront, blocks of one level in
/// parallel (OpenMP). `partition_dims` selects how many dimensions the
/// divisor keeps, exactly as for the scheduling DP.
[[nodiscard]] KnapsackResult solve_blocked(const KnapsackProblem& problem,
                                           std::size_t partition_dims,
                                           int num_threads = 0);

/// Simulated-GPU engine: the blocked traversal drives kernel charges on
/// `device` (one level kernel per in-block anti-diagonal level, blocks of a
/// block-level cyclic over 4 streams). Returns the same table; the device
/// clock advances by the simulated execution time.
[[nodiscard]] KnapsackResult solve_gpu(const KnapsackProblem& problem,
                                       gpusim::Device& device,
                                       std::size_t partition_dims,
                                       int stream_count = 4);

/// Greedy backtrack of a solved table into item counts (one entry per item
/// type). The reconstruction is deterministic: first item in catalogue
/// order that explains the cell value.
[[nodiscard]] std::vector<std::int64_t> reconstruct_items(
    const KnapsackProblem& problem, const KnapsackResult& result);

}  // namespace pcmax::knapsack
