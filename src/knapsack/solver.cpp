#include "knapsack/solver.hpp"

#include <omp.h>

#include <algorithm>

#include "dp/fitset.hpp"
#include "partition/blocked_layout.hpp"
#include "partition/divisor.hpp"
#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::knapsack {

namespace {

/// The item catalogue's weight vectors as a FitSet, so the knapsack DP's
/// inner loop shares the SoA fits kernel with the scheduling DP engines.
dp::FitSet item_fitset(const KnapsackProblem& problem, std::size_t dims) {
  std::vector<std::int64_t> rows;
  rows.reserve(problem.items.size() * dims);
  for (const auto& item : problem.items)
    rows.insert(rows.end(), item.weights.begin(), item.weights.end());
  return dp::FitSet(rows, dims);
}

/// Computes one cell from already-filled predecessors, addressed through
/// `lookup` (row-major for the reference solver, blocked for the blocked
/// solver). Returns the cell's value. The max-reduction has no usable lower
/// bound, so every fitting item is visited (no early exit).
template <typename Lookup>
std::int64_t solve_cell(const KnapsackProblem& problem,
                        const dp::FitSet& fits,
                        std::span<const std::int64_t> c, Lookup&& lookup) {
  std::int64_t best = 0;  // taking nothing is always allowed
  std::int64_t level = 0;
  for (const auto x : c) level += x;
  fits.for_each_fitting(c, level, [&](std::size_t i) {
    const Item& item = problem.items[i];
    best = std::max(best, lookup(c, item) + item.value);
    return true;
  });
  return best;
}

}  // namespace

KnapsackResult solve_reference(const KnapsackProblem& problem) {
  problem.validate();
  const dp::MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(radix.dims() <= 64);
  const dp::LevelBuckets buckets(radix);

  KnapsackResult result;
  result.table.assign(radix.size(), 0);
  const dp::FitSet fits = item_fitset(problem, radix.dims());

  std::int64_t coords[64];
  std::span<std::int64_t> c(coords, radix.dims());
  std::int64_t sub[64];
  const auto lookup = [&](std::span<const std::int64_t> cell,
                          const Item& item) {
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < cell.size(); ++i) {
      sub[i] = cell[i] - item.weights[i];
      id += static_cast<std::uint64_t>(sub[i]) * radix.strides()[i];
    }
    return result.table[id];
  };

  for (std::int64_t level = 1; level < buckets.levels(); ++level) {
    for (const auto id : buckets.cells_at(level)) {
      radix.unflatten(id, c);
      result.table[id] = solve_cell(problem, fits, c, lookup);
    }
  }
  result.best = result.table.back();
  return result;
}

KnapsackResult solve_blocked(const KnapsackProblem& problem,
                             std::size_t partition_dims, int num_threads) {
  problem.validate();
  const dp::MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(radix.dims() <= 64);

  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), partition_dims));
  const dp::LevelBuckets block_buckets(layout.grid());
  const dp::LevelBuckets in_block_buckets(layout.block());

  std::vector<std::int64_t> blocked(radix.size(), 0);
  const dp::FitSet fits = item_fitset(problem, radix.dims());
  const int threads =
      num_threads > 0 ? num_threads : omp_get_max_threads();

  const auto run_block = [&](std::uint64_t block_id) {
    const auto dims = radix.dims();
    std::int64_t bcoords[64], lcoords[64], cell[64], sub[64];
    layout.grid().unflatten(block_id,
                            std::span<std::int64_t>(bcoords, dims));
    const auto& bs = layout.block().extents();
    const auto lookup = [&](std::span<const std::int64_t> cc,
                            const Item& item) {
      for (std::size_t i = 0; i < cc.size(); ++i)
        sub[i] = cc[i] - item.weights[i];
      return blocked[layout.blocked_offset(
          std::span<const std::int64_t>(sub, dims))];
    };
    const std::uint64_t base = block_id * layout.cells_per_block();
    for (std::int64_t lvl = 0; lvl < in_block_buckets.levels(); ++lvl) {
      for (const auto local_id : in_block_buckets.cells_at(lvl)) {
        layout.block().unflatten(local_id,
                                 std::span<std::int64_t>(lcoords, dims));
        for (std::size_t i = 0; i < dims; ++i)
          cell[i] = bcoords[i] * bs[i] + lcoords[i];
        blocked[base + local_id] = solve_cell(
            problem, fits, std::span<const std::int64_t>(cell, dims),
            lookup);
      }
    }
  };

  for (std::int64_t lvl = 0; lvl < block_buckets.levels(); ++lvl) {
    const auto blocks = block_buckets.cells_at(lvl);
#pragma omp parallel for num_threads(threads) schedule(dynamic, 1)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(blocks.size());
         ++i)
      run_block(blocks[static_cast<std::size_t>(i)]);
  }

  KnapsackResult result;
  result.table.assign(radix.size(), 0);
  std::int64_t coords[64];
  std::span<std::int64_t> c(coords, radix.dims());
  for (std::uint64_t id = 0; id < radix.size(); ++id) {
    radix.unflatten(id, c);
    result.table[id] = blocked[layout.blocked_offset(c)];
  }
  result.best = result.table.back();
  return result;
}

KnapsackResult solve_gpu(const KnapsackProblem& problem,
                         gpusim::Device& device, std::size_t partition_dims,
                         int stream_count) {
  problem.validate();
  PCMAX_EXPECTS(stream_count >= 1);
  PCMAX_EXPECTS(stream_count <= device.spec().max_streams);
  const dp::MixedRadix radix = problem.radix();

  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), partition_dims));
  const dp::LevelBuckets block_buckets(layout.grid());
  const dp::LevelBuckets in_block_buckets(layout.block());

  // Device footprint: the blocked value table plus the item catalogue.
  const auto table_buf = device.allocate(radix.size() * 8);
  const auto items_buf =
      device.allocate(problem.items.size() * (radix.dims() + 1) * 8);

  // Charge kernels per (block, in-block level): one thread per cell, each
  // testing every item (direct-indexed lookups — knapsack needs no search
  // function, so the win over an unpartitioned kernel is layout locality
  // and stream concurrency, not search-scope reduction).
  const std::uint64_t dims = radix.dims();
  const std::uint64_t items = problem.items.size();
  for (std::int64_t lvl = 0; lvl < block_buckets.levels(); ++lvl) {
    if (lvl > 0) device.synchronize();
    const auto blocks = block_buckets.cells_at(lvl);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const int stream = static_cast<int>(
          i % static_cast<std::size_t>(stream_count));
      for (std::int64_t in_lvl = 0; in_lvl < in_block_buckets.levels();
           ++in_lvl) {
        const std::uint64_t cells = in_block_buckets.count_at(in_lvl);
        if (cells == 0) continue;
        gpusim::WorkEstimate w;
        w.threads = cells;
        w.thread_ops = cells * items * (2 * dims + 2);
        // One in-block lookup per fitting item; blocked layout keeps them
        // within the contiguous block (coalesced by segment).
        w.transactions =
            util::ceil_div(cells * items * 8, std::uint64_t{128});
        device.launch_estimated(stream, "KnapsackLevel", w);
      }
    }
  }
  device.synchronize();

  // Values come from the real blocked solve (bit-identical by construction).
  return solve_blocked(problem, partition_dims);
}

std::vector<std::int64_t> reconstruct_items(const KnapsackProblem& problem,
                                            const KnapsackResult& result) {
  problem.validate();
  const dp::MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(result.table.size() == radix.size());

  std::vector<std::int64_t> counts(problem.items.size(), 0);
  std::vector<std::int64_t> c(radix.extents());
  for (auto& x : c) --x;  // full budget vector
  std::uint64_t id = radix.size() - 1;

  while (result.table[id] > 0) {
    bool advanced = false;
    for (std::size_t i = 0; i < problem.items.size(); ++i) {
      const Item& item = problem.items[i];
      bool fits = true;
      for (std::size_t j = 0; j < c.size(); ++j)
        if (item.weights[j] > c[j]) {
          fits = false;
          break;
        }
      if (!fits) continue;
      std::uint64_t sub_id = id;
      for (std::size_t j = 0; j < c.size(); ++j)
        sub_id -= static_cast<std::uint64_t>(item.weights[j]) *
                  radix.strides()[j];
      if (result.table[sub_id] + item.value != result.table[id]) continue;
      ++counts[i];
      for (std::size_t j = 0; j < c.size(); ++j) c[j] -= item.weights[j];
      id = sub_id;
      advanced = true;
      break;
    }
    PCMAX_ENSURES(advanced);
  }
  return counts;
}

}  // namespace pcmax::knapsack
