#include "knapsack/problem.hpp"

#include "util/contracts.hpp"

namespace pcmax::knapsack {

void KnapsackProblem::validate() const {
  PCMAX_EXPECTS(!budgets.empty());
  for (const auto b : budgets) PCMAX_EXPECTS(b >= 0);
  PCMAX_EXPECTS(!items.empty());
  for (const auto& item : items) {
    PCMAX_EXPECTS(item.value > 0);
    PCMAX_EXPECTS(item.weights.size() == budgets.size());
    std::int64_t total = 0;
    for (const auto w : item.weights) {
      PCMAX_EXPECTS(w >= 0);
      total += w;
    }
    // A free item would create a dependency cycle (same-level self edge).
    PCMAX_EXPECTS(total >= 1);
  }
}

dp::MixedRadix KnapsackProblem::radix() const {
  std::vector<std::int64_t> extents(budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) extents[i] = budgets[i] + 1;
  return dp::MixedRadix(std::move(extents));
}

std::uint64_t KnapsackProblem::table_size() const { return radix().size(); }

}  // namespace pcmax::knapsack
