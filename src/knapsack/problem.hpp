// Higher-dimensional (multi-constraint) unbounded knapsack — the problem
// family the paper's Section V names as the next target for the
// data-partitioning scheme (following Berger & Galea's GPU knapsack [15]).
//
// The DP table spans one dimension per resource: K(c_1, ..., c_d) is the
// best value achievable within the budget vector c, with
//   K(c) = max over items i with w_i <= c of K(c - w_i) + v_i,  K(0) = 0.
// Every item consumes at least one unit of some resource, so dependencies
// sit on strictly lower anti-diagonal levels and the same block-wavefront
// machinery that drives the scheduling DP applies unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/mixed_radix.hpp"

namespace pcmax::knapsack {

struct Item {
  std::int64_t value = 0;                ///< > 0
  std::vector<std::int64_t> weights;     ///< per resource, >= 0, not all 0
};

struct KnapsackProblem {
  /// Per-resource budgets, each >= 0. The DP table has extents budget+1.
  std::vector<std::int64_t> budgets;
  /// Item catalogue (unbounded copies of each item may be taken).
  std::vector<Item> items;

  /// Throws util::contract_violation when the fields are inconsistent.
  void validate() const;

  [[nodiscard]] std::size_t dims() const noexcept { return budgets.size(); }
  [[nodiscard]] dp::MixedRadix radix() const;
  [[nodiscard]] std::uint64_t table_size() const;
};

}  // namespace pcmax::knapsack
