#include "partition/divisor.hpp"

#include <algorithm>
#include <numeric>

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::partition {

std::int64_t divisor_for_extent(std::int64_t extent) {
  PCMAX_EXPECTS(extent >= 1);
  if (extent == 1) return 1;
  const auto e = static_cast<std::uint64_t>(extent);
  // Algorithm 4 lines 6-8: start at floor(sqrt(e)) and decrement until the
  // candidate divides e.
  auto div = static_cast<std::int64_t>(util::isqrt(e));
  while (extent % div != 0) --div;
  // Prime extents end at div == 1; the published block tables show a full
  // split into unit segments in that case.
  if (div == 1) div = extent;
  return div;
}

std::vector<std::int64_t> compute_divisor(
    std::span<const std::int64_t> extents, std::size_t dims_to_partition) {
  PCMAX_EXPECTS(!extents.empty());
  for (const auto e : extents) PCMAX_EXPECTS(e >= 1);

  // Rank dimensions by extent, descending; stable so earlier dimensions win
  // ties, matching the published tables.
  std::vector<std::size_t> order(extents.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return extents[a] > extents[b];
  });

  std::vector<std::int64_t> divisor(extents.size(), 1);
  const std::size_t chosen = std::min(dims_to_partition, extents.size());
  for (std::size_t r = 0; r < chosen; ++r)
    divisor[order[r]] = divisor_for_extent(extents[order[r]]);
  return divisor;
}

std::vector<std::int64_t> block_sizes(std::span<const std::int64_t> extents,
                                      std::span<const std::int64_t> divisor) {
  PCMAX_EXPECTS(extents.size() == divisor.size());
  std::vector<std::int64_t> sizes(extents.size());
  for (std::size_t i = 0; i < extents.size(); ++i) {
    PCMAX_EXPECTS(divisor[i] >= 1);
    PCMAX_EXPECTS(extents[i] % divisor[i] == 0);
    sizes[i] = extents[i] / divisor[i];
  }
  return sizes;
}

}  // namespace pcmax::partition
