// Block-wavefront DP solver: the CPU realization of the paper's
// data-partitioning scheme (Algorithms 4 and 5).
//
// The table is stored in blocked layout. Block-levels (sum of block
// coordinates) are processed sequentially; blocks within a block-level are
// independent and run in parallel; inside a block, in-block anti-diagonal
// levels run sequentially with all cells of a level independent. Dependencies
// of a cell live either in the same block at a strictly lower in-block level
// or in a block of a strictly lower block-level, so this order is safe.
#pragma once

#include <cstdint>
#include <span>

#include "dp/solver.hpp"
#include "partition/blocked_layout.hpp"

namespace pcmax::partition {

/// Observation hooks used by the GPU engine to charge simulated kernel costs
/// while the real computation proceeds. Default implementations do nothing.
class BlockObserver {
 public:
  struct CellStat {
    /// prod(v_i + 1): sub-configuration candidates FindValidSub enumerates.
    std::uint64_t candidates = 0;
    /// |C_v|: valid dependencies SetOPT reduces over.
    std::uint32_t deps = 0;
  };

  virtual ~BlockObserver() = default;
  virtual void on_solve_begin(const BlockedLayout& /*layout*/,
                              std::uint64_t /*config_count*/) {}
  virtual void on_block_level(std::int64_t /*level*/,
                              std::span<const std::uint64_t> /*blocks*/) {}
  virtual void on_in_block_level(std::uint64_t /*block_id*/,
                                 std::int64_t /*in_level*/,
                                 std::span<const CellStat> /*cells*/) {}
  virtual void on_solve_end() {}
};

class BlockedSolver final : public dp::DpSolver {
 public:
  /// `partition_dims` is the number of dimensions the divisor keeps
  /// (GPU-DIM3 ... GPU-DIM9 in the paper). `observer` may be null; when set
  /// it receives per-level work statistics during solve().
  explicit BlockedSolver(std::size_t partition_dims,
                         BlockObserver* observer = nullptr)
      : partition_dims_(partition_dims), observer_(observer) {}

  using DpSolver::solve;
  [[nodiscard]] dp::DpResult solve(
      const dp::DpProblem& problem,
      const dp::SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override {
    return "blocked-dim" + std::to_string(partition_dims_);
  }

  [[nodiscard]] std::size_t partition_dims() const noexcept {
    return partition_dims_;
  }

 private:
  std::size_t partition_dims_;
  BlockObserver* observer_;
};

}  // namespace pcmax::partition
