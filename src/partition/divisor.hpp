// The divisor computation of Algorithm 4 (lines 4-10).
//
// For each table dimension of extent e = n_i + 1 the divisor entry is the
// number of segments the dimension is split into: the largest divisor of e
// not exceeding floor(sqrt(e)). When that divisor is 1 and e > 1 (prime
// extents), the paper's Tables I-VI show a full split into unit segments
// (block size 1), so the entry falls back to e itself. Only the `dim`
// largest dimensions keep their divisor entry (Algorithm 4 line 10); the
// rest are set to 1 (unpartitioned). Ties are broken by dimension order,
// earlier dimensions first.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pcmax::partition {

/// Divisor entry for a single dimension extent (>= 1).
[[nodiscard]] std::int64_t divisor_for_extent(std::int64_t extent);

/// Full divisor vector for a table, partitioning along the
/// `dims_to_partition` largest dimensions (Algorithm 4 lines 4-10).
[[nodiscard]] std::vector<std::int64_t> compute_divisor(
    std::span<const std::int64_t> extents, std::size_t dims_to_partition);

/// Per-dimension block sizes: extent_i / divisor_i (divisor entries always
/// divide their extents exactly).
[[nodiscard]] std::vector<std::int64_t> block_sizes(
    std::span<const std::int64_t> extents,
    std::span<const std::int64_t> divisor);

}  // namespace pcmax::partition
