#include "partition/blocked_layout.hpp"

#include "partition/divisor.hpp"
#include "util/contracts.hpp"

namespace pcmax::partition {

namespace {

dp::MixedRadix make_grid(const dp::MixedRadix& radix,
                         const std::vector<std::int64_t>& divisor) {
  PCMAX_EXPECTS(divisor.size() == radix.dims());
  return dp::MixedRadix(std::vector<std::int64_t>(divisor));
}

dp::MixedRadix make_block(const dp::MixedRadix& radix,
                          const std::vector<std::int64_t>& divisor) {
  return dp::MixedRadix(block_sizes(radix.extents(), divisor));
}

}  // namespace

BlockedLayout::BlockedLayout(const dp::MixedRadix& radix,
                             std::vector<std::int64_t> divisor)
    : radix_(radix),
      divisor_(std::move(divisor)),
      grid_(make_grid(radix, divisor_)),
      grid_block_(make_block(radix, divisor_)) {}

std::uint64_t BlockedLayout::block_of(
    std::span<const std::int64_t> cell) const {
  PCMAX_EXPECTS(cell.size() == radix_.dims());
  std::uint64_t id = 0;
  const auto& bs = grid_block_.extents();
  const auto& strides = grid_.strides();
  for (std::size_t i = 0; i < cell.size(); ++i)
    id += static_cast<std::uint64_t>(cell[i] / bs[i]) * strides[i];
  return id;
}

std::uint64_t BlockedLayout::blocked_offset(
    std::span<const std::int64_t> cell) const {
  PCMAX_EXPECTS(cell.size() == radix_.dims());
  const auto& bs = grid_block_.extents();
  std::uint64_t block_id = 0, local = 0;
  for (std::size_t i = 0; i < cell.size(); ++i) {
    block_id += static_cast<std::uint64_t>(cell[i] / bs[i]) *
                grid_.strides()[i];
    local += static_cast<std::uint64_t>(cell[i] % bs[i]) *
             grid_block_.strides()[i];
  }
  return block_id * cells_per_block() + local;
}

std::uint64_t BlockedLayout::to_blocked(std::uint64_t row_major) const {
  std::int64_t coords[64];
  PCMAX_EXPECTS(radix_.dims() <= 64);
  std::span<std::int64_t> c(coords, radix_.dims());
  radix_.unflatten(row_major, c);
  return blocked_offset(c);
}

std::uint64_t BlockedLayout::from_blocked(std::uint64_t blocked) const {
  PCMAX_EXPECTS(blocked < radix_.size());
  const std::uint64_t block_id = blocked / cells_per_block();
  const std::uint64_t local = blocked % cells_per_block();
  std::int64_t bcoords[64], lcoords[64], cell[64];
  PCMAX_EXPECTS(radix_.dims() <= 64);
  grid_.unflatten(block_id, std::span<std::int64_t>(bcoords, radix_.dims()));
  grid_block_.unflatten(local, std::span<std::int64_t>(lcoords, radix_.dims()));
  const auto& bs = grid_block_.extents();
  for (std::size_t i = 0; i < radix_.dims(); ++i)
    cell[i] = bcoords[i] * bs[i] + lcoords[i];
  return radix_.flatten(std::span<const std::int64_t>(cell, radix_.dims()));
}

void BlockedLayout::cell_at(std::uint64_t block_id,
                            std::span<const std::int64_t> local,
                            std::span<std::int64_t> out) const {
  PCMAX_EXPECTS(local.size() == radix_.dims());
  PCMAX_EXPECTS(out.size() == radix_.dims());
  std::int64_t bcoords[64];
  PCMAX_EXPECTS(radix_.dims() <= 64);
  grid_.unflatten(block_id, std::span<std::int64_t>(bcoords, radix_.dims()));
  const auto& bs = grid_block_.extents();
  for (std::size_t i = 0; i < radix_.dims(); ++i) {
    PCMAX_EXPECTS(local[i] >= 0 && local[i] < bs[i]);
    out[i] = bcoords[i] * bs[i] + local[i];
  }
}

}  // namespace pcmax::partition
