#include "partition/block_solver.hpp"

#include <omp.h>

#include <vector>

#include "dp/config.hpp"
#include "faultsim/injector.hpp"
#include "partition/divisor.hpp"
#include "util/contracts.hpp"

namespace pcmax::partition {

namespace {

/// Per-block worker: fills every cell of `block_id`, walking in-block
/// anti-diagonal levels in order. The blocked table is shared but each block
/// writes only its own contiguous region; reads may touch earlier blocks,
/// which are complete because block-levels are processed in order.
class BlockWorker {
 public:
  BlockWorker(const BlockedLayout& layout,
              const dp::ConfigSet& configs,
              const dp::LevelBuckets& in_block_buckets,
              std::span<std::int32_t> blocked_table,
              std::span<std::uint32_t> deps_row_major, BlockObserver* observer)
      : layout_(layout),
        configs_(configs),
        in_block_buckets_(in_block_buckets),
        blocked_table_(blocked_table),
        deps_row_major_(deps_row_major),
        observer_(observer) {}

  void run(std::uint64_t block_id) {
    const auto dims = layout_.table_radix().dims();
    std::int64_t bcoords[64], lcoords[64], cell[64], sub[64];
    layout_.grid().unflatten(block_id,
                             std::span<std::int64_t>(bcoords, dims));
    const auto& bs = layout_.block().extents();
    const std::uint64_t base = block_id * layout_.cells_per_block();

    std::vector<BlockObserver::CellStat> stats;
    for (std::int64_t lvl = 0; lvl < in_block_buckets_.levels(); ++lvl) {
      const auto locals = in_block_buckets_.cells_at(lvl);
      if (observer_ != nullptr) {
        stats.clear();
        stats.reserve(locals.size());
      }
      for (const auto local_id : locals) {
        layout_.block().unflatten(local_id,
                                  std::span<std::int64_t>(lcoords, dims));
        std::uint64_t candidates = 1;
        for (std::size_t i = 0; i < dims; ++i) {
          cell[i] = bcoords[i] * bs[i] + lcoords[i];
          candidates *= static_cast<std::uint64_t>(cell[i]) + 1;
        }
        const std::span<const std::int64_t> v(cell, dims);
        std::int64_t level = 0;
        for (std::size_t i = 0; i < dims; ++i) level += cell[i];

        std::uint32_t dep_count = 0;
        std::int32_t best = dp::kInfeasible;
        if (base + local_id != 0) {  // origin is pinned to 0
          // Dependency counts feed the deps table and the observer's cost
          // model, so the early exit is only legal when neither is active.
          const bool exact = !deps_row_major_.empty() || observer_ != nullptr;
          const std::int32_t floor_best =
              dp::level_floor_best(level, configs_.max_level_drop());
          configs_.for_each_fitting(v, level, [&](std::size_t c) {
            ++dep_count;
            const auto s = configs_.config(c);
            for (std::size_t i = 0; i < dims; ++i) sub[i] = cell[i] - s[i];
            const std::int32_t val = blocked_table_[layout_.blocked_offset(
                std::span<const std::int64_t>(sub, dims))];
            if (val < best) best = val;
            return exact || best > floor_best;
          });
          blocked_table_[base + local_id] =
              best == dp::kInfeasible ? dp::kInfeasible : best + 1;
        }
        if (!deps_row_major_.empty())
          deps_row_major_[layout_.table_radix().flatten(v)] = dep_count;
        if (observer_ != nullptr) stats.push_back({candidates, dep_count});
      }
      if (observer_ != nullptr)
        observer_->on_in_block_level(block_id, lvl, stats);
    }
  }

 private:
  const BlockedLayout& layout_;
  const dp::ConfigSet& configs_;
  const dp::LevelBuckets& in_block_buckets_;
  std::span<std::int32_t> blocked_table_;
  std::span<std::uint32_t> deps_row_major_;
  BlockObserver* observer_;
};

}  // namespace

dp::DpResult BlockedSolver::solve(const dp::DpProblem& problem,
                                  const dp::SolveOptions& options) const {
  problem.validate();
  const dp::MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(radix.dims() <= 64);

  const BlockedLayout layout(
      radix, compute_divisor(radix.extents(), partition_dims_));
  const dp::ConfigSet configs(problem.counts, problem.weights,
                              problem.capacity, radix);
  const dp::LevelBuckets block_buckets(layout.grid());
  const dp::LevelBuckets in_block_buckets(layout.block());

  dp::DpResult result;
  result.config_count = configs.size();
  faultsim::check_host_alloc(2 * radix.size() * sizeof(std::int32_t));
  std::vector<std::int32_t> blocked(radix.size(), dp::kInfeasible);
  blocked[0] = 0;
  if (options.collect_deps || observer_ != nullptr)
    result.deps.assign(radix.size(), 0);

  if (observer_ != nullptr) observer_->on_solve_begin(layout, configs.size());

  BlockWorker worker(layout, configs, in_block_buckets, blocked, result.deps,
                     observer_);
  const int threads =
      options.num_threads > 0 ? options.num_threads : omp_get_max_threads();

  for (std::int64_t lvl = 0; lvl < block_buckets.levels(); ++lvl) {
    const auto blocks = block_buckets.cells_at(lvl);
    if (observer_ != nullptr) observer_->on_block_level(lvl, blocks);
    // The observer sees blocks in deterministic order, so observed runs are
    // sequential; unobserved runs fan blocks of a level out across threads.
    if (observer_ != nullptr) {
      for (const auto block_id : blocks) worker.run(block_id);
    } else {
#pragma omp parallel for num_threads(threads) schedule(dynamic, 1)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(blocks.size());
           ++i)
        worker.run(blocks[static_cast<std::size_t>(i)]);
    }
  }

  if (observer_ != nullptr) observer_->on_solve_end();

  // Convert the blocked table back to row-major for the caller.
  result.table.assign(radix.size(), dp::kInfeasible);
  std::int64_t coords[64];
  std::span<std::int64_t> c(coords, radix.dims());
  for (std::uint64_t id = 0; id < radix.size(); ++id) {
    radix.unflatten(id, c);
    result.table[id] = blocked[layout.blocked_offset(c)];
  }
  result.opt = result.table.back();
  faultsim::maybe_corrupt_table(result.table, result.opt);
  if (!options.collect_deps) result.deps.clear();
  return result;
}

}  // namespace pcmax::partition
