// The memory re-organization of Algorithm 4 (lines 20-28): cells of each
// block are stored consecutively so block-local kernels touch one contiguous
// region. A cell with coordinates c maps to
//   blocked_offset(c) = block_id(c) * cells_per_block + local_offset(c)
// where block_id is the row-major index of the block coordinates
// (floor(c_i / block_size_i)) in the block grid, and local_offset is the
// row-major index of the local coordinates (c_i mod block_size_i) within the
// block. The divisor divides every extent exactly, so the map is a bijection
// on [0, table_size).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dp/mixed_radix.hpp"

namespace pcmax::partition {

class BlockedLayout {
 public:
  /// `radix` is the DP-table radix; `divisor` must have one entry per
  /// dimension, each dividing the corresponding extent exactly.
  BlockedLayout(const dp::MixedRadix& radix, std::vector<std::int64_t> divisor);

  [[nodiscard]] const std::vector<std::int64_t>& divisor() const noexcept {
    return divisor_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& block_size() const noexcept {
    return grid_block_.extents();
  }
  /// Radix over block coordinates (extents = divisor entries).
  [[nodiscard]] const dp::MixedRadix& grid() const noexcept { return grid_; }
  /// Radix over local coordinates (extents = block sizes).
  [[nodiscard]] const dp::MixedRadix& block() const noexcept {
    return grid_block_;
  }

  [[nodiscard]] std::uint64_t block_count() const noexcept {
    return grid_.size();
  }
  [[nodiscard]] std::uint64_t cells_per_block() const noexcept {
    return grid_block_.size();
  }
  /// Number of block-levels (colors in Fig. 2).
  [[nodiscard]] std::int64_t block_levels() const noexcept {
    return grid_.max_level() + 1;
  }
  /// Number of in-block anti-diagonal levels (Algorithm 5 line 4).
  [[nodiscard]] std::int64_t in_block_levels() const noexcept {
    return grid_block_.max_level() + 1;
  }

  /// Block id a cell belongs to.
  [[nodiscard]] std::uint64_t block_of(
      std::span<const std::int64_t> cell) const;

  /// Blocked offset of a cell given by coordinates.
  [[nodiscard]] std::uint64_t blocked_offset(
      std::span<const std::int64_t> cell) const;

  /// Blocked offset of a cell given by its row-major index.
  [[nodiscard]] std::uint64_t to_blocked(std::uint64_t row_major) const;

  /// Inverse: row-major index of a blocked offset.
  [[nodiscard]] std::uint64_t from_blocked(std::uint64_t blocked) const;

  /// Global coordinates of the cell with the given block id and local
  /// coordinates.
  void cell_at(std::uint64_t block_id, std::span<const std::int64_t> local,
               std::span<std::int64_t> out) const;

  /// Permutes a row-major array into blocked order (Algorithm 4 line 28).
  template <typename T>
  [[nodiscard]] std::vector<T> reorganize(std::span<const T> row_major) const {
    std::vector<T> blocked(row_major.size());
    std::vector<std::int64_t> c(radix_.dims());
    for (std::uint64_t id = 0; id < row_major.size(); ++id) {
      radix_.unflatten(id, c);
      blocked[blocked_offset(c)] = row_major[id];
    }
    return blocked;
  }

  [[nodiscard]] const dp::MixedRadix& table_radix() const noexcept {
    return radix_;
  }

 private:
  dp::MixedRadix radix_;
  std::vector<std::int64_t> divisor_;
  dp::MixedRadix grid_;        // extents = divisor
  dp::MixedRadix grid_block_;  // extents = block sizes
};

}  // namespace pcmax::partition
