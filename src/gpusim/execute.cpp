#include "gpusim/execute.hpp"

#include <vector>

#include "gpusim/coalescing.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpusim {

WorkEstimate execute_kernel(const LaunchConfig& config, const KernelFn& fn,
                            const DeviceSpec& spec) {
  PCMAX_EXPECTS(static_cast<bool>(fn));
  PCMAX_EXPECTS(config.grid_blocks >= 1 && config.block_threads >= 1);
  spec.validate();

  WorkEstimate estimate;
  estimate.threads = config.total_threads();

  std::vector<ThreadTrace> warp_traces;
  warp_traces.reserve(static_cast<std::size_t>(spec.warp_size));

  for (std::uint32_t b = 0; b < config.grid_blocks; ++b) {
    // Warps never span thread blocks; partial trailing warps are allowed.
    for (std::uint32_t warp_base = 0; warp_base < config.block_threads;
         warp_base += static_cast<std::uint32_t>(spec.warp_size)) {
      warp_traces.clear();
      const std::uint32_t warp_end =
          std::min(warp_base + static_cast<std::uint32_t>(spec.warp_size),
                   config.block_threads);
      for (std::uint32_t t = warp_base; t < warp_end; ++t) {
        ThreadCtx ctx(b, t, config.block_threads);
        fn(ctx);
        estimate.thread_ops += ctx.op_count();
        warp_traces.push_back(ctx.accesses());
      }
      estimate.transactions +=
          warp_transactions(warp_traces, spec.memory_segment_bytes);
    }
  }
  obs::count("gpusim.executed_kernels");
  obs::count("gpusim.executed_threads", estimate.threads);
  obs::count("gpusim.thread_ops", estimate.thread_ops);
  obs::count("gpusim.transactions", estimate.transactions);
  return estimate;
}

}  // namespace pcmax::gpusim
