// Kernel descriptions accepted by the simulated device.
//
// A kernel is either *executable* — a per-thread functor the simulator runs
// on the host while tracking its memory accesses — or *analytic* — a
// WorkEstimate whose structural quantities (threads, per-thread ops,
// coalesced transactions, child launches) the caller computed itself. Both
// forms feed the same cost model; the executable form exists so the model's
// inputs can be validated against real access patterns, the analytic form so
// large DP tables can be simulated without materializing billions of
// per-thread traces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "gpusim/thread_ctx.hpp"

namespace pcmax::gpusim {

struct LaunchConfig {
  std::uint32_t grid_blocks = 1;
  std::uint32_t block_threads = 1;

  [[nodiscard]] std::uint64_t total_threads() const noexcept {
    return static_cast<std::uint64_t>(grid_blocks) * block_threads;
  }
};

/// Structural cost of one kernel execution.
struct WorkEstimate {
  /// Total threads that perform work.
  std::uint64_t threads = 0;
  /// Arithmetic/flow operations summed over all threads.
  std::uint64_t thread_ops = 0;
  /// Global-memory transactions after warp coalescing, summed over warps.
  std::uint64_t transactions = 0;
  /// Kernels launched from device threads (Dynamic Parallelism).
  std::uint64_t child_launches = 0;

  WorkEstimate& operator+=(const WorkEstimate& o) noexcept {
    threads += o.threads;
    thread_ops += o.thread_ops;
    transactions += o.transactions;
    child_launches += o.child_launches;
    return *this;
  }
};

using KernelFn = std::function<void(ThreadCtx&)>;

}  // namespace pcmax::gpusim
