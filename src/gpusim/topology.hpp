// A multi-device topology: N simulated devices connected by an interconnect
// whose links carry modeled transfers on the shared simulated clock.
//
// The link graph is either a bidirectional ring (device i connects to its
// two cyclic neighbours; a transfer takes the shorter direction) or a full
// mesh (every ordered pair has a direct link). Each directed link has a
// fixed latency and bandwidth, and serializes the transfers routed over it:
// a transfer departs a link no earlier than the link's previous transfer
// arrived (contention-free serialization per link — no packet interleaving,
// no routing dynamics; see docs/SHARDING.md for the model's limits).
//
// Transfers are store-and-forward per hop and purely additive on the sim
// clock, like kernel and allocation charges: Topology never moves real
// bytes — the DP values are computed host-side by the BlockedSolver, and
// the topology charges what moving them would have cost.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"
#include "util/sim_time.hpp"

namespace pcmax::gpusim {

/// Shape of the link graph connecting the devices.
enum class TopologyKind {
  kRing,      ///< device i <-> i±1 (mod N); transfers take the short way
  kFullMesh,  ///< direct link between every ordered device pair
};

/// "ring" / "fullmesh", the names the CLI and bench flags accept.
[[nodiscard]] std::string_view topology_kind_name(TopologyKind kind) noexcept;
/// Inverse of topology_kind_name; nullopt for unknown names.
[[nodiscard]] std::optional<TopologyKind> parse_topology_kind(
    std::string_view name) noexcept;

/// Cost parameters of one directed link. The defaults model a PCIe 3.0 x16
/// peer-to-peer path (the interconnect a multi-K40 node of the paper's era
/// would have had): ~5 us end-to-end latency, 16 GB/s per direction.
struct InterconnectSpec {
  util::SimTime link_latency = util::SimTime::microseconds(5);
  double link_bandwidth_gbps = 16.0;

  /// Throws util::contract_violation when fields are inconsistent.
  void validate() const;

  /// Time one link is busy carrying `bytes` (serialization, no latency).
  [[nodiscard]] util::SimTime serialization(std::uint64_t bytes) const;
};

class Topology {
 public:
  /// Builds `device_count` devices from `spec` (ordinals 0..N-1, so each
  /// device's kernel spans land on its own set of trace tracks) connected
  /// per `kind`.
  Topology(int device_count, const DeviceSpec& spec,
           TopologyKind kind = TopologyKind::kFullMesh,
           InterconnectSpec link = {});

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  [[nodiscard]] int device_count() const noexcept {
    return static_cast<int>(devices_.size());
  }
  [[nodiscard]] Device& device(int i);
  [[nodiscard]] const Device& device(int i) const;

  /// True when device `i` was lost mid-solve (injected `device-lost` fault,
  /// or declared unreachable after link failures). Sticky until reset().
  [[nodiscard]] bool device_lost(int i) const;
  /// Devices not currently lost.
  [[nodiscard]] int alive_count() const noexcept;
  /// Directed links taken down by injected `link-down` faults.
  [[nodiscard]] int down_link_count() const noexcept;
  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] const InterconnectSpec& link_spec() const noexcept {
    return link_;
  }

  /// Links a transfer from `from` to `to` traverses (0 when from == to).
  [[nodiscard]] int hop_count(int from, int to) const;

  /// Charges one transfer of `bytes` from `from` to `to` (from != to),
  /// store-and-forward over the hop path: on each link the transfer departs
  /// at max(arrival at the hop, link free time) and arrives one latency
  /// plus one serialization later; the link is busy until then. Starts at
  /// the source device's current clock. Returns the arrival time at `to`;
  /// device clocks are NOT advanced — the caller decides when a consumer
  /// must wait (see GpuDpSolver's level loop).
  ///
  /// Routes around links downed by injected `link-down` faults (ring: the
  /// other direction; mesh: a two-hop detour through the lowest-ordinal
  /// live intermediate). Throws DeviceLost when either endpoint is lost or
  /// no live route remains (the destination is then marked lost too: from
  /// the solver's point of view an unreachable device is a lost device).
  util::SimTime transfer(int from, int to, std::uint64_t bytes);

  /// The cross-device wavefront barrier: synchronizes every live device and
  /// aligns their clocks to the latest one, so the next block-level starts
  /// simultaneously everywhere. Lost devices are skipped (their clocks stay
  /// frozen at the moment of loss). Returns the aligned time.
  util::SimTime barrier();

  /// Latest device clock.
  [[nodiscard]] util::SimTime now() const noexcept;

  /// Advances every device clock by `delta` (externally-accounted time,
  /// e.g. probe rounds simulated on scratch topologies).
  void advance(util::SimTime delta);

  /// Resets every device (see Device::reset, which also revives lost ones)
  /// and cold-starts the interconnect: per-link free-at timestamps,
  /// TransferStats, and downed links are all cleared, so a post-recovery
  /// solve observes the exact transfer charges of a fresh topology. The
  /// clocks survive.
  void reset();

  /// Mutes or unmutes trace emission on every device and on the
  /// interconnect spans (scratch topologies modeling concurrent probes
  /// disable emission, like scratch devices do).
  void set_trace_emission(bool enabled) noexcept;

  struct TransferStats {
    std::uint64_t transfers = 0;  ///< transfer() calls
    std::uint64_t bytes = 0;      ///< payload bytes summed over transfers
    std::uint64_t hops = 0;       ///< links traversed, summed
    util::SimTime busy;           ///< total time links spent carrying data
  };
  [[nodiscard]] const TransferStats& transfer_stats() const noexcept {
    return transfer_stats_;
  }

  /// Device stats summed over all devices.
  [[nodiscard]] Device::Stats aggregate_stats() const;

 private:
  /// A concrete hop sequence: nodes visited and the directed link of each
  /// hop. Empty `nodes` means no live route exists.
  struct Route {
    std::vector<int> nodes;
    std::vector<std::size_t> links;
  };

  /// Directed-link index for one hop.
  [[nodiscard]] std::size_t link_index(int from, int to) const;
  /// Ring walk in one direction; empty Route when a link on it is down or
  /// an intermediate device is lost.
  [[nodiscard]] Route ring_route(int from, int to, int step) const;
  /// Live route avoiding down links and lost intermediates.
  [[nodiscard]] Route route(int from, int to) const;

  TopologyKind kind_;
  InterconnectSpec link_;
  std::vector<std::unique_ptr<Device>> devices_;
  /// Per directed link: the time its last transfer arrived.
  std::vector<util::SimTime> link_free_at_;
  /// Per directed link: 1 once a `link-down` fault took it out (sticky
  /// until reset()).
  std::vector<std::uint8_t> link_down_;
  TransferStats transfer_stats_;
  bool trace_emission_ = true;
};

}  // namespace pcmax::gpusim
