// Per-thread execution context handed to executable kernels. Records the
// thread's global-memory access trace and operation count; the simulator
// groups traces into warps and derives coalesced transaction counts.
#pragma once

#include <cstdint>
#include <vector>

namespace pcmax::gpusim {

class ThreadCtx {
 public:
  ThreadCtx(std::uint32_t block_idx, std::uint32_t thread_idx,
            std::uint32_t block_dim) noexcept
      : block_idx_(block_idx), thread_idx_(thread_idx), block_dim_(block_dim) {}

  /// blockIdx.x, threadIdx.x, blockDim.x and the flattened global id.
  [[nodiscard]] std::uint32_t block_idx() const noexcept { return block_idx_; }
  [[nodiscard]] std::uint32_t thread_idx() const noexcept {
    return thread_idx_;
  }
  [[nodiscard]] std::uint32_t block_dim() const noexcept { return block_dim_; }
  [[nodiscard]] std::uint64_t global_id() const noexcept {
    return static_cast<std::uint64_t>(block_idx_) * block_dim_ + thread_idx_;
  }

  /// Records a global-memory read of the word at byte address `addr`.
  void load(std::uint64_t addr) { accesses_.push_back(addr); }
  /// Records a global-memory write of the word at byte address `addr`.
  void store(std::uint64_t addr) { accesses_.push_back(addr); }
  /// Records `n` arithmetic/flow operations.
  void ops(std::uint64_t n) noexcept { ops_ += n; }

  [[nodiscard]] const std::vector<std::uint64_t>& accesses() const noexcept {
    return accesses_;
  }
  [[nodiscard]] std::uint64_t op_count() const noexcept { return ops_; }

 private:
  std::uint32_t block_idx_;
  std::uint32_t thread_idx_;
  std::uint32_t block_dim_;
  std::vector<std::uint64_t> accesses_;
  std::uint64_t ops_ = 0;
};

}  // namespace pcmax::gpusim
