// Hardware description of the simulated GPU. The defaults model the NVIDIA
// Tesla K40 the paper evaluates on (15 SMX units x 192 cores at 745 MHz,
// 12 GB of global memory, Hyper-Q with up to 32 streams, Dynamic
// Parallelism). The cost constants are coarse published figures — the
// simulator is a structural model, not a cycle-accurate one (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>

#include "util/sim_time.hpp"

namespace pcmax::gpusim {

struct DeviceSpec {
  std::string name = "generic-gpu";

  // Compute resources.
  int sm_count = 15;
  int cores_per_sm = 192;
  int warp_size = 32;
  /// Resident warps one SM can keep in flight to hide memory latency.
  int max_warps_per_sm = 64;
  double clock_ghz = 0.745;

  // Concurrency features.
  int max_streams = 32;           ///< Hyper-Q hardware work queues.
  bool dynamic_parallelism = true;

  // Memory system.
  std::uint64_t global_memory_bytes = 12ull << 30;
  int memory_segment_bytes = 128;  ///< coalescing granularity
  util::SimTime memory_latency = util::SimTime::nanoseconds(350);
  double mem_bandwidth_gbps = 288.0;  ///< DRAM bandwidth (GDDR5 on K40)
  /// Outstanding memory requests one warp keeps in flight.
  int warp_mlp = 2;

  // Fixed overheads.
  util::SimTime host_launch_overhead = util::SimTime::microseconds(20);
  /// Dynamic-parallelism launch latency. Device-side launches on Kepler go
  /// through a pending-launch buffer and are expensive under load.
  util::SimTime child_launch_overhead = util::SimTime::microseconds(500);
  /// Concurrent device-side launch queues draining child kernels.
  int dp_launch_lanes = 4;
  util::SimTime sync_overhead = util::SimTime::microseconds(4);
  /// Watchdog budget for a single synchronize(): an injected stream stall
  /// that reaches this bound is treated as a hung stream and synchronize()
  /// throws StreamStalled. Inert unless a fault injector stalls the stream.
  util::SimTime stall_watchdog = util::SimTime::milliseconds(2000);

  /// Duration of one core clock cycle.
  [[nodiscard]] util::SimTime cycle_time() const {
    return util::SimTime::from_ns(1.0 / clock_ghz);
  }

  [[nodiscard]] int total_cores() const noexcept {
    return sm_count * cores_per_sm;
  }

  /// Throws util::contract_violation when fields are inconsistent.
  void validate() const;

  /// The Tesla K40 configuration used throughout the benchmarks.
  [[nodiscard]] static DeviceSpec k40();
  /// A Tesla K20 (the K40's smaller sibling): fewer SMX, less memory.
  [[nodiscard]] static DeviceSpec k20();
  /// A generic modern data-center GPU: many small SMs, HBM bandwidth,
  /// cheap device-side launches. Used by the device-sweep ablation to show
  /// how the cost model responds to hardware generations.
  [[nodiscard]] static DeviceSpec modern();
};

}  // namespace pcmax::gpusim
