#include "gpusim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "faultsim/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpusim {

std::string_view topology_kind_name(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kFullMesh: return "fullmesh";
  }
  return "unknown";
}

std::optional<TopologyKind> parse_topology_kind(
    std::string_view name) noexcept {
  if (name == "ring") return TopologyKind::kRing;
  if (name == "fullmesh") return TopologyKind::kFullMesh;
  return std::nullopt;
}

void InterconnectSpec::validate() const {
  PCMAX_EXPECTS(link_latency >= util::SimTime{});
  PCMAX_EXPECTS(std::isfinite(link_bandwidth_gbps));
  PCMAX_EXPECTS(link_bandwidth_gbps > 0.0);
}

util::SimTime InterconnectSpec::serialization(std::uint64_t bytes) const {
  // 1 GB/s moves one byte per nanosecond.
  return util::SimTime::from_ns(static_cast<double>(bytes) /
                                link_bandwidth_gbps);
}

Topology::Topology(int device_count, const DeviceSpec& spec,
                   TopologyKind kind, InterconnectSpec link)
    : kind_(kind), link_(link) {
  PCMAX_EXPECTS(device_count >= 1);
  link_.validate();
  devices_.reserve(static_cast<std::size_t>(device_count));
  for (int i = 0; i < device_count; ++i)
    devices_.push_back(std::make_unique<Device>(spec, i));
  const std::size_t n = static_cast<std::size_t>(device_count);
  link_free_at_.assign(kind_ == TopologyKind::kRing ? 2 * n : n * n,
                       util::SimTime{});
  link_down_.assign(link_free_at_.size(), 0);
}

Device& Topology::device(int i) {
  PCMAX_EXPECTS(i >= 0 && i < device_count());
  return *devices_[static_cast<std::size_t>(i)];
}

const Device& Topology::device(int i) const {
  PCMAX_EXPECTS(i >= 0 && i < device_count());
  return *devices_[static_cast<std::size_t>(i)];
}

bool Topology::device_lost(int i) const {
  PCMAX_EXPECTS(i >= 0 && i < device_count());
  return devices_[static_cast<std::size_t>(i)]->lost();
}

int Topology::alive_count() const noexcept {
  int alive = 0;
  for (const auto& device : devices_)
    if (!device->lost()) ++alive;
  return alive;
}

int Topology::down_link_count() const noexcept {
  int down = 0;
  for (const std::uint8_t d : link_down_) down += d != 0 ? 1 : 0;
  return down;
}

int Topology::hop_count(int from, int to) const {
  PCMAX_EXPECTS(from >= 0 && from < device_count());
  PCMAX_EXPECTS(to >= 0 && to < device_count());
  if (from == to) return 0;
  if (kind_ == TopologyKind::kFullMesh) return 1;
  const int n = device_count();
  const int forward = (to - from + n) % n;
  return std::min(forward, n - forward);
}

std::size_t Topology::link_index(int from, int to) const {
  const std::size_t n = devices_.size();
  if (kind_ == TopologyKind::kFullMesh)
    return static_cast<std::size_t>(from) * n + static_cast<std::size_t>(to);
  // Ring: +1-direction links first (index = source), then -1-direction.
  if (to == (from + 1) % static_cast<int>(n))
    return static_cast<std::size_t>(from);
  PCMAX_EXPECTS(to == (from - 1 + static_cast<int>(n)) %
                          static_cast<int>(n));
  return n + static_cast<std::size_t>(from);
}

Topology::Route Topology::ring_route(int from, int to, int step) const {
  Route r;
  r.nodes.push_back(from);
  const int n = device_count();
  const std::size_t sz = devices_.size();
  for (int at = from; at != to;) {
    // +1-direction links sit at index `source`, -1-direction at n+`source`.
    const std::size_t link = step == 1 ? static_cast<std::size_t>(at)
                                       : sz + static_cast<std::size_t>(at);
    if (link_down_[link] != 0) return {};
    at = (at + step + n) % n;
    // Store-and-forward needs every intermediate hop alive.
    if (at != to && devices_[static_cast<std::size_t>(at)]->lost()) return {};
    r.links.push_back(link);
    r.nodes.push_back(at);
  }
  return r;
}

Topology::Route Topology::route(int from, int to) const {
  if (kind_ == TopologyKind::kFullMesh) {
    const std::size_t direct = link_index(from, to);
    if (link_down_[direct] == 0) return Route{{from, to}, {direct}};
    // Two-hop detour through the lowest-ordinal live intermediate whose
    // links are both up; deterministic, like ring tie-breaking.
    for (int v = 0; v < device_count(); ++v) {
      if (v == from || v == to) continue;
      if (devices_[static_cast<std::size_t>(v)]->lost()) continue;
      const std::size_t a = link_index(from, v);
      const std::size_t b = link_index(v, to);
      if (link_down_[a] != 0 || link_down_[b] != 0) continue;
      return Route{{from, v, to}, {a, b}};
    }
    return {};
  }
  const int n = device_count();
  const int forward = (to - from + n) % n;
  // Shorter direction wins; an exact tie (even N, antipodal pair) takes the
  // +1 direction so routing stays deterministic. A blocked direction falls
  // back to the other one.
  const int prefer = forward <= n - forward ? 1 : -1;
  Route r = ring_route(from, to, prefer);
  if (r.nodes.empty()) r = ring_route(from, to, -prefer);
  return r;
}

util::SimTime Topology::transfer(int from, int to, std::uint64_t bytes) {
  PCMAX_EXPECTS(from >= 0 && from < device_count());
  PCMAX_EXPECTS(to >= 0 && to < device_count());
  PCMAX_EXPECTS(from != to);
  if (devices_[static_cast<std::size_t>(from)]->lost())
    throw DeviceLost("transfer source device " + std::to_string(from) +
                     " is lost");
  if (devices_[static_cast<std::size_t>(to)]->lost())
    throw DeviceLost("transfer destination device " + std::to_string(to) +
                     " is lost");
  if (faultsim::fault_at(faultsim::Site::kLinkDown).has_value()) {
    // The first link of the currently preferred route goes down, for good:
    // this transfer and every later one must route around it.
    const Route preferred = route(from, to);
    if (!preferred.links.empty()) link_down_[preferred.links.front()] = 1;
  }
  const Route r = route(from, to);
  if (r.nodes.empty()) {
    // No live route: from the solver's point of view the destination is as
    // good as lost, so mark it and report the loss with a typed error.
    devices_[static_cast<std::size_t>(to)]->mark_lost();
    throw DeviceLost("device " + std::to_string(to) + " unreachable from " +
                     std::to_string(from) + ": no live route");
  }
  const util::SimTime serialize = link_.serialization(bytes);
  util::SimTime at = devices_[static_cast<std::size_t>(from)]->now();
  for (std::size_t hop = 0; hop < r.links.size(); ++hop) {
    const std::size_t link = r.links[hop];
    const util::SimTime depart = std::max(at, link_free_at_[link]);
    const util::SimTime arrive = depart + link_.link_latency + serialize;
    link_free_at_[link] = arrive;
    transfer_stats_.busy += arrive - depart;
    ++transfer_stats_.hops;
    if (trace_emission_) {
      if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr) {
        const std::string name = "xfer d" + std::to_string(r.nodes[hop]) +
                                 "->d" + std::to_string(r.nodes[hop + 1]);
        tr->complete(name, obs::kInterconnectPidBase +
                               static_cast<std::int32_t>(link),
                     obs::kParentTid, depart.ps(), (arrive - depart).ps(),
                     {obs::arg("bytes", static_cast<std::int64_t>(bytes)),
                      obs::arg("dst", to)});
      }
    }
    at = arrive;
  }
  ++transfer_stats_.transfers;
  transfer_stats_.bytes += bytes;
  if (trace_emission_) {
    obs::count("interconnect.transfers");
    obs::count("interconnect.bytes", bytes);
  }
  return at;
}

util::SimTime Topology::barrier() {
  util::SimTime latest;
  for (const auto& device : devices_) {
    if (device->lost()) continue;
    latest = std::max(latest, device->synchronize());
  }
  for (const auto& device : devices_) {
    if (device->lost()) continue;
    device->advance(latest - device->now());
  }
  return latest;
}

util::SimTime Topology::now() const noexcept {
  util::SimTime latest;
  for (const auto& device : devices_)
    latest = std::max(latest, device->now());
  return latest;
}

void Topology::advance(util::SimTime delta) {
  for (const auto& device : devices_) {
    if (device->lost()) continue;  // a lost device's clock stays frozen
    device->advance(delta);
  }
}

void Topology::reset() {
  for (const auto& device : devices_) device->reset();
  // Cold-start the interconnect too: stale link-free-at timestamps would
  // otherwise queue the next solve's transfers behind ghosts of the aborted
  // one, and its TransferStats would leak into fresh measurements.
  link_free_at_.assign(link_free_at_.size(), util::SimTime{});
  link_down_.assign(link_down_.size(), 0);
  transfer_stats_ = {};
}

void Topology::set_trace_emission(bool enabled) noexcept {
  trace_emission_ = enabled;
  for (const auto& device : devices_) device->set_trace_emission(enabled);
}

Device::Stats Topology::aggregate_stats() const {
  Device::Stats total;
  for (const auto& device : devices_) {
    const Device::Stats& s = device->stats();
    total.kernels += s.kernels;
    total.child_kernels += s.child_kernels;
    total.threads += s.threads;
    total.thread_ops += s.thread_ops;
    total.transactions += s.transactions;
    total.synchronizations += s.synchronizations;
  }
  return total;
}

}  // namespace pcmax::gpusim
