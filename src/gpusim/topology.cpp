#include "gpusim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpusim {

std::string_view topology_kind_name(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kFullMesh: return "fullmesh";
  }
  return "unknown";
}

std::optional<TopologyKind> parse_topology_kind(
    std::string_view name) noexcept {
  if (name == "ring") return TopologyKind::kRing;
  if (name == "fullmesh") return TopologyKind::kFullMesh;
  return std::nullopt;
}

void InterconnectSpec::validate() const {
  PCMAX_EXPECTS(link_latency >= util::SimTime{});
  PCMAX_EXPECTS(std::isfinite(link_bandwidth_gbps));
  PCMAX_EXPECTS(link_bandwidth_gbps > 0.0);
}

util::SimTime InterconnectSpec::serialization(std::uint64_t bytes) const {
  // 1 GB/s moves one byte per nanosecond.
  return util::SimTime::from_ns(static_cast<double>(bytes) /
                                link_bandwidth_gbps);
}

Topology::Topology(int device_count, const DeviceSpec& spec,
                   TopologyKind kind, InterconnectSpec link)
    : kind_(kind), link_(link) {
  PCMAX_EXPECTS(device_count >= 1);
  link_.validate();
  devices_.reserve(static_cast<std::size_t>(device_count));
  for (int i = 0; i < device_count; ++i)
    devices_.push_back(std::make_unique<Device>(spec, i));
  const std::size_t n = static_cast<std::size_t>(device_count);
  link_free_at_.assign(kind_ == TopologyKind::kRing ? 2 * n : n * n,
                       util::SimTime{});
}

Device& Topology::device(int i) {
  PCMAX_EXPECTS(i >= 0 && i < device_count());
  return *devices_[static_cast<std::size_t>(i)];
}

const Device& Topology::device(int i) const {
  PCMAX_EXPECTS(i >= 0 && i < device_count());
  return *devices_[static_cast<std::size_t>(i)];
}

int Topology::hop_count(int from, int to) const {
  PCMAX_EXPECTS(from >= 0 && from < device_count());
  PCMAX_EXPECTS(to >= 0 && to < device_count());
  if (from == to) return 0;
  if (kind_ == TopologyKind::kFullMesh) return 1;
  const int n = device_count();
  const int forward = (to - from + n) % n;
  return std::min(forward, n - forward);
}

std::size_t Topology::link_index(int from, int to) const {
  const std::size_t n = devices_.size();
  if (kind_ == TopologyKind::kFullMesh)
    return static_cast<std::size_t>(from) * n + static_cast<std::size_t>(to);
  // Ring: +1-direction links first (index = source), then -1-direction.
  if (to == (from + 1) % static_cast<int>(n))
    return static_cast<std::size_t>(from);
  PCMAX_EXPECTS(to == (from - 1 + static_cast<int>(n)) %
                          static_cast<int>(n));
  return n + static_cast<std::size_t>(from);
}

std::vector<int> Topology::path(int from, int to) const {
  std::vector<int> route{from};
  if (kind_ == TopologyKind::kFullMesh) {
    route.push_back(to);
    return route;
  }
  const int n = device_count();
  const int forward = (to - from + n) % n;
  // Shorter direction wins; an exact tie (even N, antipodal pair) takes the
  // +1 direction so routing stays deterministic.
  const int step = forward <= n - forward ? 1 : -1;
  for (int at = from; at != to;) {
    at = (at + step + n) % n;
    route.push_back(at);
  }
  return route;
}

util::SimTime Topology::transfer(int from, int to, std::uint64_t bytes) {
  PCMAX_EXPECTS(from >= 0 && from < device_count());
  PCMAX_EXPECTS(to >= 0 && to < device_count());
  PCMAX_EXPECTS(from != to);
  const std::vector<int> route = path(from, to);
  const util::SimTime serialize = link_.serialization(bytes);
  util::SimTime at = devices_[static_cast<std::size_t>(from)]->now();
  for (std::size_t hop = 0; hop + 1 < route.size(); ++hop) {
    const std::size_t link = link_index(route[hop], route[hop + 1]);
    const util::SimTime depart = std::max(at, link_free_at_[link]);
    const util::SimTime arrive = depart + link_.link_latency + serialize;
    link_free_at_[link] = arrive;
    transfer_stats_.busy += arrive - depart;
    ++transfer_stats_.hops;
    if (trace_emission_) {
      if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr) {
        const std::string name = "xfer d" + std::to_string(route[hop]) +
                                 "->d" + std::to_string(route[hop + 1]);
        tr->complete(name, obs::kInterconnectPidBase +
                               static_cast<std::int32_t>(link),
                     obs::kParentTid, depart.ps(), (arrive - depart).ps(),
                     {obs::arg("bytes", static_cast<std::int64_t>(bytes)),
                      obs::arg("dst", to)});
      }
    }
    at = arrive;
  }
  ++transfer_stats_.transfers;
  transfer_stats_.bytes += bytes;
  if (trace_emission_) {
    obs::count("interconnect.transfers");
    obs::count("interconnect.bytes", bytes);
  }
  return at;
}

util::SimTime Topology::barrier() {
  util::SimTime latest;
  for (const auto& device : devices_)
    latest = std::max(latest, device->synchronize());
  for (const auto& device : devices_)
    device->advance(latest - device->now());
  return latest;
}

util::SimTime Topology::now() const noexcept {
  util::SimTime latest;
  for (const auto& device : devices_)
    latest = std::max(latest, device->now());
  return latest;
}

void Topology::advance(util::SimTime delta) {
  for (const auto& device : devices_) device->advance(delta);
}

void Topology::reset() {
  for (const auto& device : devices_) device->reset();
}

void Topology::set_trace_emission(bool enabled) noexcept {
  trace_emission_ = enabled;
  for (const auto& device : devices_) device->set_trace_emission(enabled);
}

Device::Stats Topology::aggregate_stats() const {
  Device::Stats total;
  for (const auto& device : devices_) {
    const Device::Stats& s = device->stats();
    total.kernels += s.kernels;
    total.child_kernels += s.child_kernels;
    total.threads += s.threads;
    total.thread_ops += s.thread_ops;
    total.transactions += s.transactions;
    total.synchronizations += s.synchronizations;
  }
  return total;
}

}  // namespace pcmax::gpusim
