// Host-side execution of an executable kernel: runs every thread's functor,
// collects traces, and reduces them to a WorkEstimate with warp-coalesced
// transaction counts. Execution is warp-by-warp so peak trace memory is one
// warp, not one grid.
#pragma once

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel.hpp"

namespace pcmax::gpusim {

/// Runs `fn` for every thread of `config` and returns the measured work.
/// Thread functors must be pure with respect to simulator state: they may
/// mutate user data but must not launch kernels (use the Device API for
/// dynamic parallelism).
[[nodiscard]] WorkEstimate execute_kernel(const LaunchConfig& config,
                                          const KernelFn& fn,
                                          const DeviceSpec& spec);

}  // namespace pcmax::gpusim
