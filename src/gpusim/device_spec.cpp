#include "gpusim/device_spec.hpp"

#include "util/contracts.hpp"

namespace pcmax::gpusim {

void DeviceSpec::validate() const {
  PCMAX_EXPECTS(sm_count >= 1);
  PCMAX_EXPECTS(cores_per_sm >= 1);
  PCMAX_EXPECTS(warp_size >= 1);
  PCMAX_EXPECTS(max_warps_per_sm >= 1);
  PCMAX_EXPECTS(clock_ghz > 0.0);
  PCMAX_EXPECTS(max_streams >= 1);
  PCMAX_EXPECTS(global_memory_bytes > 0);
  PCMAX_EXPECTS(memory_segment_bytes >= 1);
  PCMAX_EXPECTS(memory_latency >= util::SimTime{});
  PCMAX_EXPECTS(mem_bandwidth_gbps > 0.0);
  PCMAX_EXPECTS(warp_mlp >= 1);
  PCMAX_EXPECTS(dp_launch_lanes >= 1);
  PCMAX_EXPECTS(host_launch_overhead >= util::SimTime{});
  PCMAX_EXPECTS(child_launch_overhead >= util::SimTime{});
  PCMAX_EXPECTS(sync_overhead >= util::SimTime{});
}

DeviceSpec DeviceSpec::k40() {
  DeviceSpec spec;
  spec.name = "tesla-k40";
  return spec;
}

DeviceSpec DeviceSpec::k20() {
  DeviceSpec spec;
  spec.name = "tesla-k20";
  spec.sm_count = 13;
  spec.clock_ghz = 0.706;
  spec.global_memory_bytes = 5ull << 30;
  spec.mem_bandwidth_gbps = 208.0;
  return spec;
}

DeviceSpec DeviceSpec::modern() {
  DeviceSpec spec;
  spec.name = "modern-hbm";
  spec.sm_count = 80;
  spec.cores_per_sm = 64;
  spec.max_warps_per_sm = 48;
  spec.clock_ghz = 1.4;
  spec.global_memory_bytes = 40ull << 30;
  spec.mem_bandwidth_gbps = 900.0;
  spec.memory_latency = util::SimTime::nanoseconds(250);
  spec.warp_mlp = 4;
  spec.host_launch_overhead = util::SimTime::microseconds(5);
  // Post-Kepler device-side launches are an order of magnitude cheaper.
  spec.child_launch_overhead = util::SimTime::microseconds(40);
  spec.dp_launch_lanes = 16;
  spec.max_streams = 128;
  return spec;
}

}  // namespace pcmax::gpusim
