#include "gpusim/device.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pcmax::gpusim {

Device::Device(DeviceSpec spec)
    : spec_(std::move(spec)), scheduler_(spec_.sm_count) {
  spec_.validate();
}

Device::Buffer& Device::Buffer::operator=(Buffer&& o) noexcept {
  if (this != &o) {
    release();
    device_ = o.device_;
    bytes_ = o.bytes_;
    o.device_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

void Device::Buffer::release() noexcept {
  if (device_ != nullptr) {
    device_->memory_in_use_ -= bytes_;
    device_ = nullptr;
    bytes_ = 0;
  }
}

Device::Buffer Device::allocate(std::uint64_t bytes) {
  if (memory_in_use_ + bytes > spec_.global_memory_bytes)
    throw OutOfMemory("device allocation of " + std::to_string(bytes) +
                      " bytes exceeds " +
                      std::to_string(spec_.global_memory_bytes -
                                     memory_in_use_) +
                      " bytes free");
  memory_in_use_ += bytes;
  peak_memory_ = std::max(peak_memory_, memory_in_use_);
  return Buffer(this, bytes);
}

void Device::enqueue(int stream, std::string name, const WorkEstimate& work,
                     util::SimTime launch_latency, bool is_child) {
  PCMAX_EXPECTS(stream >= 0 && stream < spec_.max_streams);
  FluidTask task =
      make_fluid_task(spec_, work, stream, is_child, pending_.size());
  task.latency = launch_latency;
  KernelRecord record;
  record.name = std::move(name);
  record.stream = stream;
  record.work = work;
  pending_.push_back(std::move(record));
  scheduler_.submit(task);

  ++stats_.kernels;
  if (is_child) ++stats_.child_kernels;
  stats_.child_kernels += work.child_launches;
  stats_.threads += work.threads;
  stats_.thread_ops += work.thread_ops;
  stats_.transactions += work.transactions;
}

void Device::launch(int stream, std::string name, const LaunchConfig& config,
                    const KernelFn& fn) {
  const WorkEstimate work = execute_kernel(config, fn, spec_);
  enqueue(stream, std::move(name), work, spec_.host_launch_overhead,
          /*is_child=*/false);
}

void Device::launch_estimated(int stream, std::string name,
                              const WorkEstimate& work, bool is_child) {
  enqueue(stream, std::move(name), work,
          is_child ? spec_.child_launch_overhead : spec_.host_launch_overhead,
          is_child);
}

void Device::launch_accounted(int stream, std::string name,
                              const WorkEstimate& work) {
  enqueue(stream, std::move(name), work, util::SimTime{},
          /*is_child=*/true);
}

void Device::advance(util::SimTime delta) {
  PCMAX_EXPECTS(delta >= util::SimTime{});
  PCMAX_EXPECTS(pending_.empty());
  now_ += delta;
}

util::SimTime Device::synchronize() {
  ++stats_.synchronizations;
  if (!pending_.empty()) {
    scheduler_.clear_history();
    now_ = scheduler_.run(now_);
    for (const auto& c : scheduler_.completed()) {
      KernelRecord& record = pending_[c.task.tag];
      record.start = c.start;
      record.finish = c.finish;
    }
    log_.insert(log_.end(), std::make_move_iterator(pending_.begin()),
                std::make_move_iterator(pending_.end()));
    pending_.clear();
  }
  now_ += spec_.sync_overhead;
  return now_;
}

}  // namespace pcmax::gpusim
