#include "gpusim/device.hpp"

#include <algorithm>
#include <unordered_map>

#include "faultsim/injector.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpusim {

Device::Device(DeviceSpec spec, int ordinal)
    : spec_(std::move(spec)), ordinal_(ordinal), scheduler_(spec_.sm_count) {
  PCMAX_EXPECTS(ordinal >= 0);
  spec_.validate();
}

Device::Buffer& Device::Buffer::operator=(Buffer&& o) noexcept {
  if (this != &o) {
    release();
    device_ = o.device_;
    bytes_ = o.bytes_;
    epoch_ = o.epoch_;
    o.device_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

void Device::Buffer::release() noexcept {
  if (device_ != nullptr) {
    // A buffer allocated before a reset() is stale: its bytes were already
    // reclaimed wholesale, so releasing it must not touch the accounting.
    if (epoch_ == device_->epoch_) device_->memory_in_use_ -= bytes_;
    device_ = nullptr;
    bytes_ = 0;
  }
}

Device::Buffer Device::allocate(std::uint64_t bytes) {
  throw_if_lost("allocate");
  if (faultsim::fault_at(faultsim::Site::kDeviceAlloc).has_value())
    throw OutOfMemory("injected fault: device allocation of " +
                      std::to_string(bytes) + " bytes failed");
  if (memory_in_use_ + bytes > spec_.global_memory_bytes)
    throw OutOfMemory("device allocation of " + std::to_string(bytes) +
                      " bytes exceeds " +
                      std::to_string(spec_.global_memory_bytes -
                                     memory_in_use_) +
                      " bytes free");
  memory_in_use_ += bytes;
  peak_memory_ = std::max(peak_memory_, memory_in_use_);
  return Buffer(this, bytes, epoch_);
}

void Device::throw_if_lost(const char* op) const {
  if (lost_)
    throw DeviceLost("device " + std::to_string(ordinal_) + " is lost (" +
                     op + ")");
}

void Device::enqueue(int stream, std::string name, const WorkEstimate& work,
                     util::SimTime launch_latency, bool is_child) {
  PCMAX_EXPECTS(stream >= 0 && stream < spec_.max_streams);
  throw_if_lost("launch");
  // Fires before any state mutates, so a failed launch leaves the queue
  // exactly as it was (a caller may synchronize() the survivors).
  if (faultsim::fault_at(faultsim::Site::kKernelLaunch).has_value())
    throw LaunchFailure("injected fault: launch of kernel '" + name +
                        "' on stream " + std::to_string(stream) + " failed");
  FluidTask task =
      make_fluid_task(spec_, work, stream, is_child, pending_.size());
  task.latency = launch_latency;
  KernelRecord record;
  record.name = std::move(name);
  record.stream = stream;
  record.is_child = is_child;
  record.work = work;
  pending_.push_back(std::move(record));
  scheduler_.submit(task);

  ++stats_.kernels;
  if (is_child) ++stats_.child_kernels;
  stats_.child_kernels += work.child_launches;
  stats_.threads += work.threads;
  stats_.thread_ops += work.thread_ops;
  stats_.transactions += work.transactions;
}

void Device::launch(int stream, std::string name, const LaunchConfig& config,
                    const KernelFn& fn) {
  const WorkEstimate work = execute_kernel(config, fn, spec_);
  enqueue(stream, std::move(name), work, spec_.host_launch_overhead,
          /*is_child=*/false);
}

void Device::launch_estimated(int stream, std::string name,
                              const WorkEstimate& work, bool is_child) {
  enqueue(stream, std::move(name), work,
          is_child ? spec_.child_launch_overhead : spec_.host_launch_overhead,
          is_child);
}

void Device::launch_accounted(int stream, std::string name,
                              const WorkEstimate& work) {
  enqueue(stream, std::move(name), work, util::SimTime{},
          /*is_child=*/true);
}

void Device::advance(util::SimTime delta) {
  PCMAX_EXPECTS(delta >= util::SimTime{});
  PCMAX_EXPECTS(pending_.empty());
  now_ += delta;
}

void Device::reset() {
  pending_.clear();
  scheduler_ = FluidScheduler(spec_.sm_count);
  memory_in_use_ = 0;
  lost_ = false;
  ++epoch_;
}

util::SimTime Device::synchronize() {
  throw_if_lost("synchronize");
  ++stats_.synchronizations;
  if (faultsim::fault_at(faultsim::Site::kDeviceLost).has_value()) {
    // The device falls off the bus: pending (unretired) work is gone and
    // every further operation rethrows until reset(). The clock freezes at
    // the moment of loss.
    pending_.clear();
    scheduler_ = FluidScheduler(spec_.sm_count);
    lost_ = true;
    throw DeviceLost("injected fault: device " + std::to_string(ordinal_) +
                     " lost");
  }
  if (const auto fault = faultsim::fault_at(faultsim::Site::kStreamSync)) {
    // The stream sits idle for the injected stall before any queued work
    // retires. A stall at or past the watchdog means the stream is hung:
    // the clock advances only to the watchdog (where the driver gives up)
    // and pending work is lost until reset().
    const auto stall = util::SimTime::milliseconds(fault->stall_ms);
    if (stall >= spec_.stall_watchdog) {
      now_ += spec_.stall_watchdog;
      throw StreamStalled("injected fault: stream stalled " +
                          stall.to_string() + ", watchdog " +
                          spec_.stall_watchdog.to_string());
    }
    now_ += stall;
  }
  if (!pending_.empty()) {
    scheduler_.clear_history();
    now_ = scheduler_.run(now_);
    for (const auto& c : scheduler_.completed()) {
      KernelRecord& record = pending_[c.task.tag];
      record.start = c.start;
      record.finish = c.finish;
    }
    if (trace_emission_ && obs::trace() != nullptr) emit_trace_spans();
    log_.insert(log_.end(), std::make_move_iterator(pending_.begin()),
                std::make_move_iterator(pending_.end()));
    pending_.clear();
  }
  now_ += spec_.sync_overhead;
  return now_;
}

// Maps the just-timed launch batch onto Chrome-trace tracks: one pid per
// stream, kernel "family" spans on tid 1 and Dynamic Parallelism children on
// tid 2. As in real CUDA DP, a parent grid completes only after its child
// grids retire, so the family span covers [parent.start, last family
// member's finish]; the fluid scheduler serializes a stream FIFO, so family
// spans on one stream never overlap. A child with no preceding parent in
// the batch (no caller does this today) degrades to its own family.
void Device::emit_trace_spans() const {
  obs::TraceRecorder* const tr = obs::trace();
  PCMAX_EXPECTS(tr != nullptr);
  struct Family {
    const KernelRecord* parent;
    util::SimTime end;
    std::vector<const KernelRecord*> children;
  };
  std::vector<Family> families;
  std::unordered_map<int, std::size_t> open;  // stream -> family index
  for (const KernelRecord& record : pending_) {
    const auto it = record.is_child ? open.find(record.stream) : open.end();
    if (it == open.end()) {
      open[record.stream] = families.size();
      families.push_back(Family{&record, record.finish, {}});
    } else {
      Family& family = families[it->second];
      family.children.push_back(&record);
      family.end = std::max(family.end, record.finish);
    }
  }
  for (const Family& family : families) {
    const KernelRecord& p = *family.parent;
    const std::int32_t pid =
        obs::kStreamPidBase + ordinal_ * obs::kDevicePidStride + p.stream;
    tr->complete(
        p.name, pid, obs::kParentTid, p.start.ps(),
        (family.end - p.start).ps(),
        {obs::arg("threads", static_cast<std::int64_t>(p.work.threads)),
         obs::arg("txn", static_cast<std::int64_t>(p.work.transactions))});
    for (const KernelRecord* child : family.children)
      tr->complete(
          child->name, pid, obs::kChildTid, child->start.ps(),
          (child->finish - child->start).ps(),
          {obs::arg("threads", static_cast<std::int64_t>(child->work.threads)),
           obs::arg("txn",
                    static_cast<std::int64_t>(child->work.transactions))});
  }
}

}  // namespace pcmax::gpusim
