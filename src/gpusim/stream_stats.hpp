// Post-hoc stream utilization analysis over a device's kernel log: per
// stream, how many kernels ran, how long the stream was busy, and its
// utilization across the device's active span. Used by examples and the
// stream-count ablation to show where Hyper-Q concurrency saturates.
#pragma once

#include <vector>

#include "gpusim/device.hpp"

namespace pcmax::gpusim {

struct StreamSummary {
  int stream = 0;
  std::uint64_t kernels = 0;
  /// Total busy time: kernels on one stream never overlap (FIFO), so this
  /// is the sum of kernel durations.
  util::SimTime busy;
  /// First start to last finish on this stream.
  util::SimTime span;
};

struct DeviceTimeline {
  std::vector<StreamSummary> streams;
  /// First start to last finish across all streams.
  util::SimTime total_span;
  /// Sum of busy times over streams divided by the total span — the
  /// average number of concurrently busy streams.
  [[nodiscard]] double concurrency() const noexcept;
};

/// Summarizes a device's kernel log. Call after synchronize() (pending
/// kernels have no timing yet).
[[nodiscard]] DeviceTimeline summarize_streams(const Device& device);

}  // namespace pcmax::gpusim
