// Deterministic event-driven "fluid" scheduler modelling how concurrent
// kernels share a GPU's SMs.
//
// Each task belongs to a stream; streams are FIFO queues whose head tasks are
// concurrently active — the Hyper-Q behaviour the paper's quarter-split and
// 4-stream block dispatch rely on. An active task first pays a serial launch
// latency, then consumes `work` SM-picoseconds at a rate equal to the number
// of SMs allocated to it, at most `width_sms`. The device's SMs are
// water-filled over the active tasks one SM at a time in stream order, so
// allocation (and therefore the whole simulation) is deterministic in
// integers — no floating point, bit-identical everywhere.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/sim_time.hpp"

namespace pcmax::gpusim {

struct FluidTask {
  /// Stream the task is serialized on.
  int stream = 0;
  /// Serial latency before work starts (kernel launch overhead).
  util::SimTime latency;
  /// Work in SM-picoseconds: time-to-completion on one SM.
  util::SimTime work;
  /// Maximum SMs the task can use concurrently (>= 1 when work > 0).
  int width_sms = 1;
  /// Opaque caller tag, reported back in the completion record.
  std::uint64_t tag = 0;
};

struct FluidCompletion {
  FluidTask task;
  util::SimTime start;   ///< became head of its stream
  util::SimTime finish;  ///< work drained
};

class FluidScheduler {
 public:
  /// `capacity_sms` is the device's SM count.
  explicit FluidScheduler(int capacity_sms);

  /// Appends a task to its stream's queue. Stream ids must be >= 0.
  void submit(const FluidTask& task);

  /// Simulates until every queue drains. Tasks submitted before this call
  /// all become eligible at `start_at`. Returns the completion time of the
  /// last task (== start_at when nothing was queued). Completion records
  /// are appended to completed().
  util::SimTime run(util::SimTime start_at);

  [[nodiscard]] std::span<const FluidCompletion> completed() const noexcept {
    return completions_;
  }
  void clear_history() { completions_.clear(); }

  [[nodiscard]] int capacity_sms() const noexcept { return capacity_; }

 private:
  int capacity_;
  std::vector<std::vector<FluidTask>> queues_;  // per stream, FIFO
  std::vector<FluidCompletion> completions_;
};

}  // namespace pcmax::gpusim
