#include "gpusim/stream_stats.hpp"

#include <algorithm>
#include <limits>
#include <map>

namespace pcmax::gpusim {

double DeviceTimeline::concurrency() const noexcept {
  if (total_span <= util::SimTime{}) return 0.0;
  double busy_ns = 0.0;
  for (const auto& s : streams) busy_ns += s.busy.ns();
  return busy_ns / total_span.ns();
}

DeviceTimeline summarize_streams(const Device& device) {
  struct Acc {
    std::uint64_t kernels = 0;
    util::SimTime busy;
    util::SimTime first = util::SimTime::picoseconds(
        std::numeric_limits<std::int64_t>::max());
    util::SimTime last;
  };
  std::map<int, Acc> by_stream;
  util::SimTime global_first = util::SimTime::picoseconds(
      std::numeric_limits<std::int64_t>::max());
  util::SimTime global_last;

  for (const auto& rec : device.log()) {
    Acc& acc = by_stream[rec.stream];
    ++acc.kernels;
    acc.busy += rec.finish - rec.start;
    acc.first = std::min(acc.first, rec.start);
    acc.last = std::max(acc.last, rec.finish);
    global_first = std::min(global_first, rec.start);
    global_last = std::max(global_last, rec.finish);
  }

  DeviceTimeline timeline;
  for (const auto& [stream, acc] : by_stream) {
    StreamSummary summary;
    summary.stream = stream;
    summary.kernels = acc.kernels;
    summary.busy = acc.busy;
    summary.span = acc.last - acc.first;
    timeline.streams.push_back(summary);
  }
  timeline.total_span =
      timeline.streams.empty() ? util::SimTime{} : global_last - global_first;
  return timeline;
}

}  // namespace pcmax::gpusim
