// Warp-level memory-coalescing analysis.
//
// A warp issues loads/stores in lockstep: the i-th access of every thread in
// the warp forms one memory instruction. The memory controller services the
// instruction with one transaction per distinct aligned segment (128 bytes on
// Kepler) touched by the warp. Fully coalesced unit-stride accesses cost one
// transaction per instruction; worst-case scattered ("strided") accesses cost
// one per thread — the effect Section III.B of the paper describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pcmax::gpusim {

/// Access trace of one thread: byte addresses in issue order.
using ThreadTrace = std::vector<std::uint64_t>;

/// Number of memory transactions a warp needs to service the step-aligned
/// traces of its threads. Threads whose trace is shorter than a step simply
/// sit out that instruction (divergence). `segment_bytes` must be positive.
[[nodiscard]] std::uint64_t warp_transactions(
    std::span<const ThreadTrace> threads, int segment_bytes);

/// Convenience: total transactions of a full grid of thread traces grouped
/// into warps of `warp_size` consecutive threads.
[[nodiscard]] std::uint64_t grid_transactions(
    std::span<const ThreadTrace> threads, int warp_size, int segment_bytes);

}  // namespace pcmax::gpusim
