#include "gpusim/coalescing.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pcmax::gpusim {

std::uint64_t warp_transactions(std::span<const ThreadTrace> threads,
                                int segment_bytes) {
  PCMAX_EXPECTS(segment_bytes >= 1);
  std::size_t max_len = 0;
  for (const auto& t : threads) max_len = std::max(max_len, t.size());

  const auto seg = static_cast<std::uint64_t>(segment_bytes);
  std::uint64_t transactions = 0;
  std::vector<std::uint64_t> segments;
  segments.reserve(threads.size());
  for (std::size_t step = 0; step < max_len; ++step) {
    segments.clear();
    for (const auto& t : threads)
      if (step < t.size()) segments.push_back(t[step] / seg);
    std::sort(segments.begin(), segments.end());
    segments.erase(std::unique(segments.begin(), segments.end()),
                   segments.end());
    transactions += segments.size();
  }
  return transactions;
}

std::uint64_t grid_transactions(std::span<const ThreadTrace> threads,
                                int warp_size, int segment_bytes) {
  PCMAX_EXPECTS(warp_size >= 1);
  std::uint64_t total = 0;
  for (std::size_t base = 0; base < threads.size();
       base += static_cast<std::size_t>(warp_size)) {
    const std::size_t n = std::min(static_cast<std::size_t>(warp_size),
                                   threads.size() - base);
    total += warp_transactions(threads.subspan(base, n), segment_bytes);
  }
  return total;
}

}  // namespace pcmax::gpusim
