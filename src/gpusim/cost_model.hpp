// Maps a kernel's structural work (WorkEstimate) to fluid-scheduler task
// parameters. The model is a roofline over three resources:
//
//   compute:  thread_ops spread over min(threads, width * cores_per_sm)
//             lanes at one op per cycle;
//   latency:  transactions divided by the memory parallelism — resident
//             warps (capped by occupancy) times the per-warp outstanding
//             request count;
//   bandwidth: transactions * segment_bytes at the device's DRAM bandwidth.
//
// The kernel's exclusive duration is the max of the three, plus serialized
// child-launch overhead amortized over the launch queues. Its fluid `work`
// is that duration times its width so sharing degrades it linearly.
#pragma once

#include "gpusim/device_spec.hpp"
#include "gpusim/fluid.hpp"
#include "gpusim/kernel.hpp"

namespace pcmax::gpusim {

struct KernelCost {
  /// SMs the kernel can occupy (its fluid width).
  int width_sms = 1;
  /// Exclusive execution time at full width, excluding launch overhead.
  util::SimTime exclusive;
  /// Fluid work: exclusive * width.
  util::SimTime work;
};

/// `is_child` selects the (cheaper) device-side launch overhead for
/// dynamically launched kernels.
[[nodiscard]] KernelCost estimate_cost(const DeviceSpec& spec,
                                       const WorkEstimate& work);

/// Packages the cost as a fluid task on `stream` with the right launch
/// latency.
[[nodiscard]] FluidTask make_fluid_task(const DeviceSpec& spec,
                                        const WorkEstimate& work, int stream,
                                        bool is_child, std::uint64_t tag);

}  // namespace pcmax::gpusim
