// The simulated GPU device: stream queues, kernel launches (executable or
// analytic), Hyper-Q concurrency via the fluid scheduler, global-memory
// accounting, and a per-kernel timing log.
//
// Execution semantics: kernel functors run eagerly on the host at launch()
// so data is immediately visible (the simulator computes real results);
// *timing* is resolved lazily at synchronize(), which replays all launches
// through the fluid scheduler and advances the device clock. As on a real
// GPU, callers are responsible for ordering dependent kernels onto one
// stream or separating them by synchronize().
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/execute.hpp"
#include "gpusim/fluid.hpp"
#include "gpusim/kernel.hpp"

namespace pcmax::gpusim {

/// Thrown when an allocation would exceed the device's global memory.
class OutOfMemory : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a kernel launch fails (only via injected faults today; a
/// real driver surfaces the same class of transient launch errors).
class LaunchFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when synchronize() observes a stream stalled past the device's
/// stall watchdog. The device keeps its clock but loses pending work;
/// call reset() before reusing it.
class StreamStalled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a device is permanently lost mid-solve (injected `device-lost`
/// fault, or a `link-down` fault leaving it unreachable). Unlike the
/// transient failures above, the loss is sticky: every further allocate /
/// launch / synchronize on the device rethrows until reset() revives it.
/// Maps to StatusCode::kDeviceLost at the resilient boundary.
class DeviceLost : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Device {
 public:
  /// `ordinal` is the device's index within a multi-device Topology; it
  /// offsets the trace track (pid) of the device's kernel spans so every
  /// device gets its own rows. Standalone devices keep ordinal 0.
  explicit Device(DeviceSpec spec, int ordinal = 0);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int ordinal() const noexcept { return ordinal_; }

  // --- Memory -----------------------------------------------------------

  /// RAII handle to a device allocation; releasing it returns the bytes.
  class Buffer {
   public:
    Buffer() noexcept = default;
    Buffer(Buffer&& o) noexcept
        : device_(o.device_), bytes_(o.bytes_), epoch_(o.epoch_) {
      o.device_ = nullptr;
      o.bytes_ = 0;
    }
    Buffer& operator=(Buffer&& o) noexcept;
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { release(); }

    [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
    void release() noexcept;

   private:
    friend class Device;
    Buffer(Device* device, std::uint64_t bytes, std::uint64_t epoch) noexcept
        : device_(device), bytes_(bytes), epoch_(epoch) {}
    Device* device_ = nullptr;
    std::uint64_t bytes_ = 0;
    std::uint64_t epoch_ = 0;  ///< allocation epoch; stale after reset()
  };

  /// Reserves `bytes` of global memory; throws OutOfMemory when the device
  /// capacity would be exceeded.
  [[nodiscard]] Buffer allocate(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t memory_in_use() const noexcept {
    return memory_in_use_;
  }
  [[nodiscard]] std::uint64_t peak_memory() const noexcept {
    return peak_memory_;
  }

  // --- Kernels ----------------------------------------------------------

  /// Launches an executable kernel on `stream`: runs every thread functor
  /// now, records measured work, and schedules its timing at the next
  /// synchronize().
  void launch(int stream, std::string name, const LaunchConfig& config,
              const KernelFn& fn);

  /// Launches an analytic kernel whose structural work the caller computed.
  /// `is_child` marks a Dynamic Parallelism launch.
  void launch_estimated(int stream, std::string name,
                        const WorkEstimate& work, bool is_child = false);

  /// Launches an analytic kernel whose launch cost was already charged
  /// elsewhere (e.g. in the parent kernel's child_launches): the fluid task
  /// carries no launch latency of its own, only its work.
  void launch_accounted(int stream, std::string name,
                        const WorkEstimate& work);

  /// Drains all pending launches through the fluid scheduler, advances the
  /// device clock past the last completion plus the synchronization
  /// overhead, and returns the new clock.
  util::SimTime synchronize();

  /// Current device clock (simulated).
  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  /// Advances the clock by externally-accounted time (e.g. work simulated
  /// on scratch devices that represents concurrent activity on this one).
  /// Requires no pending launches. `delta` must be non-negative.
  void advance(util::SimTime delta);

  /// Models cudaDeviceReset after a fault: drops pending (unretired)
  /// launches and their scheduler state and zeroes the memory accounting so
  /// Buffers orphaned by an unwound solve stop counting against capacity.
  /// Live Buffers become stale handles — their release() is a no-op against
  /// the fresh accounting. The clock, stats, and kernel log survive. A lost
  /// device comes back healthy (the node rejoined).
  void reset();

  /// True once the device was lost mid-solve; sticky until reset().
  [[nodiscard]] bool lost() const noexcept { return lost_; }

  /// Marks the device lost without going through an injected fault (used by
  /// the topology when a link-down leaves the device unreachable).
  void mark_lost() noexcept { lost_ = true; }

  // --- Introspection ----------------------------------------------------

  struct KernelRecord {
    std::string name;
    int stream = 0;
    bool is_child = false;  // Dynamic Parallelism launch
    WorkEstimate work;
    util::SimTime start;
    util::SimTime finish;
  };

  struct Stats {
    std::uint64_t kernels = 0;
    std::uint64_t child_kernels = 0;
    std::uint64_t threads = 0;
    std::uint64_t thread_ops = 0;
    std::uint64_t transactions = 0;
    std::uint64_t synchronizations = 0;
  };

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::span<const KernelRecord> log() const noexcept {
    return log_;
  }
  /// Drops the kernel log (it can grow large in long simulations).
  void clear_log() { log_.clear(); }

  /// When false, this device never emits obs trace spans even while a
  /// trace recorder is installed. Scratch devices that model concurrent
  /// activity (Hyper-Q probe overlap) disable emission so their private
  /// clocks do not pollute the primary device's timeline.
  void set_trace_emission(bool enabled) noexcept { trace_emission_ = enabled; }
  [[nodiscard]] bool trace_emission() const noexcept {
    return trace_emission_;
  }

 private:
  void throw_if_lost(const char* op) const;
  void enqueue(int stream, std::string name, const WorkEstimate& work,
               util::SimTime launch_latency, bool is_child);
  void emit_trace_spans() const;

  DeviceSpec spec_;
  int ordinal_ = 0;
  util::SimTime now_;
  FluidScheduler scheduler_;
  std::vector<KernelRecord> pending_;
  std::vector<KernelRecord> log_;
  Stats stats_;
  std::uint64_t memory_in_use_ = 0;
  std::uint64_t peak_memory_ = 0;
  std::uint64_t epoch_ = 0;  ///< bumped by reset(); invalidates old Buffers
  bool lost_ = false;
  bool trace_emission_ = true;
};

}  // namespace pcmax::gpusim
