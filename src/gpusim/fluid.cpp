#include "gpusim/fluid.hpp"

#include <algorithm>
#include <limits>

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpusim {

namespace {

/// Live state of the head task of one stream.
struct ActiveTask {
  std::size_t stream;
  FluidTask task;
  util::SimTime start;
  std::int64_t latency_left_ps;
  std::int64_t work_left_ps;  // SM-picoseconds
  int rate_sms = 0;           // current allocation
};

}  // namespace

FluidScheduler::FluidScheduler(int capacity_sms) : capacity_(capacity_sms) {
  PCMAX_EXPECTS(capacity_sms >= 1);
}

void FluidScheduler::submit(const FluidTask& task) {
  PCMAX_EXPECTS(task.stream >= 0);
  PCMAX_EXPECTS(task.latency >= util::SimTime{});
  PCMAX_EXPECTS(task.work >= util::SimTime{});
  PCMAX_EXPECTS(task.work == util::SimTime{} || task.width_sms >= 1);
  const auto s = static_cast<std::size_t>(task.stream);
  if (s >= queues_.size()) queues_.resize(s + 1);
  queues_[s].push_back(task);
}

util::SimTime FluidScheduler::run(util::SimTime start_at) {
  // Per-stream cursor into the FIFO.
  std::vector<std::size_t> next(queues_.size(), 0);
  std::vector<ActiveTask> active;  // at most one per stream, sorted by stream

  auto activate_heads = [&](util::SimTime now) {
    for (std::size_t s = 0; s < queues_.size(); ++s) {
      const bool has_active =
          std::any_of(active.begin(), active.end(),
                      [&](const ActiveTask& a) { return a.stream == s; });
      if (has_active || next[s] >= queues_[s].size()) continue;
      const FluidTask& t = queues_[s][next[s]++];
      active.push_back(ActiveTask{s, t, now, t.latency.ps(), t.work.ps(), 0});
    }
    std::sort(active.begin(), active.end(),
              [](const ActiveTask& a, const ActiveTask& b) {
                return a.stream < b.stream;
              });
  };

  util::SimTime now = start_at;
  util::SimTime last_finish = start_at;
  activate_heads(now);

  while (!active.empty()) {
    // Water-fill SMs one at a time, in stream order, over tasks whose
    // latency has elapsed and that still want more.
    for (auto& a : active) a.rate_sms = 0;
    int remaining = capacity_;
    bool progress = true;
    while (remaining > 0 && progress) {
      progress = false;
      for (auto& a : active) {
        if (remaining == 0) break;
        if (a.latency_left_ps > 0 || a.work_left_ps == 0) continue;
        if (a.rate_sms >= a.task.width_sms) continue;
        ++a.rate_sms;
        --remaining;
        progress = true;
      }
    }

    // Next event: a latency phase ends or an allocated task drains.
    std::int64_t dt = std::numeric_limits<std::int64_t>::max();
    for (const auto& a : active) {
      if (a.latency_left_ps > 0) {
        dt = std::min(dt, a.latency_left_ps);
      } else if (a.work_left_ps > 0 && a.rate_sms > 0) {
        dt = std::min<std::int64_t>(
            dt, static_cast<std::int64_t>(util::ceil_div(
                    static_cast<std::uint64_t>(a.work_left_ps),
                    static_cast<std::uint64_t>(a.rate_sms))));
      } else if (a.work_left_ps == 0 && a.latency_left_ps == 0) {
        dt = 0;  // completes immediately (zero-work task)
      }
    }
    PCMAX_ENSURES(dt != std::numeric_limits<std::int64_t>::max());

    now += util::SimTime::picoseconds(dt);
    bool completed_any = false;
    for (auto& a : active) {
      if (a.latency_left_ps > 0) {
        a.latency_left_ps = std::max<std::int64_t>(0, a.latency_left_ps - dt);
      } else if (a.rate_sms > 0) {
        a.work_left_ps =
            std::max<std::int64_t>(0, a.work_left_ps - a.rate_sms * dt);
      }
      if (a.latency_left_ps == 0 && a.work_left_ps == 0) completed_any = true;
    }

    if (completed_any) {
      std::vector<ActiveTask> still_active;
      still_active.reserve(active.size());
      for (auto& a : active) {
        if (a.latency_left_ps == 0 && a.work_left_ps == 0) {
          completions_.push_back(FluidCompletion{a.task, a.start, now});
          last_finish = std::max(last_finish, now);
        } else {
          still_active.push_back(a);
        }
      }
      active = std::move(still_active);
      activate_heads(now);
    }
  }

  queues_.clear();
  return last_finish;
}

}  // namespace pcmax::gpusim
