#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpusim {

KernelCost estimate_cost(const DeviceSpec& spec, const WorkEstimate& work) {
  spec.validate();
  KernelCost cost;
  if (work.threads == 0 && work.child_launches == 0) {
    cost.width_sms = 1;
    return cost;
  }

  const std::uint64_t warps = std::max<std::uint64_t>(
      1, util::ceil_div(work.threads,
                        static_cast<std::uint64_t>(spec.warp_size)));
  cost.width_sms = static_cast<int>(std::min<std::uint64_t>(
      warps, static_cast<std::uint64_t>(spec.sm_count)));

  const double width = cost.width_sms;

  // Compute roofline: one op per lane per cycle.
  const double lanes =
      std::min(static_cast<double>(std::max<std::uint64_t>(1, work.threads)),
               width * spec.cores_per_sm);
  const double compute_ns =
      static_cast<double>(work.thread_ops) * spec.cycle_time().ns() / lanes;

  // Latency roofline: transactions hidden across resident warps, each warp
  // keeping warp_mlp requests outstanding.
  const double resident_warps = std::min(
      static_cast<double>(warps),
      width * spec.max_warps_per_sm);
  const double latency_ns = static_cast<double>(work.transactions) *
                            spec.memory_latency.ns() /
                            (resident_warps * spec.warp_mlp);

  // Bandwidth roofline: each transaction moves one segment.
  const double bytes = static_cast<double>(work.transactions) *
                       spec.memory_segment_bytes;
  const double bandwidth_ns = bytes / spec.mem_bandwidth_gbps;  // GB/s == B/ns

  // Dynamic-parallelism launches drain through the device's pending-launch
  // buffer at a fixed rate of dp_launch_lanes concurrent queues, regardless
  // of how many parent warps issue them.
  const double child_ns = static_cast<double>(work.child_launches) *
                          spec.child_launch_overhead.ns() /
                          spec.dp_launch_lanes;

  const double exclusive_ns =
      std::max({compute_ns, latency_ns, bandwidth_ns}) + child_ns;
  cost.exclusive = util::SimTime::from_ns(exclusive_ns);
  cost.work = util::SimTime::from_ns(exclusive_ns * width);
  return cost;
}

FluidTask make_fluid_task(const DeviceSpec& spec, const WorkEstimate& work,
                          int stream, bool is_child, std::uint64_t tag) {
  const KernelCost cost = estimate_cost(spec, work);
  FluidTask task;
  task.stream = stream;
  task.latency =
      is_child ? spec.child_launch_overhead : spec.host_launch_overhead;
  task.work = cost.work;
  task.width_sms = cost.width_sms;
  task.tag = tag;
  return task;
}

}  // namespace pcmax::gpusim
