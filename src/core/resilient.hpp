// The resilient solve driver: wraps the PTAS behind a policy layer that
// production callers can trust under faults. One call to solve_resilient
// walks an ordered chain of engines (simulated-GPU PTAS, CPU DP PTAS
// variants, LPT) and guarantees a terminal outcome: either a validated
// schedule with an explicit quality bound, or a clean typed Status — never a
// crash, a hang, or a silently wrong answer.
//
// Policy, in order of application per engine:
//   1. Memory pre-flight: estimate the DP-table bytes the engine needs at
//      the current k and, when over ResilientOptions::mem_budget_bytes,
//      degrade epsilon (halve k — coarser rounding, smaller table) until it
//      fits; an engine that cannot fit even at k=1 is skipped.
//   2. Deadlines: a per-solve deadline bounds the whole call, a per-probe
//      deadline bounds each DP evaluation (enforced between and after
//      probes by DeadlineSolver). When the solve deadline passes, the
//      driver returns kDeadlineExceeded together with a best-effort LPT
//      schedule — promptly, and never a partial or corrupt result.
//   3. Retry with backoff: transient failures (injected or organic device
//      OOM, launch failure, stream stall, detected corruption, host OOM)
//      are retried on the same engine up to max_transient_retries times
//      after engine recovery (device reset) and exponential backoff —
//      charged in simulated time for device-backed engines.
//   4. Fallback: an engine that exhausts retries or fails fatally hands
//      over to the next engine in the chain; degradation is recorded in
//      the result and every fault/retry/degrade/fallback emits obs
//      instants and counters.
//
// Every returned schedule passes an integrity gate (validate_schedule, an
// independent makespan recomputation, and the PTAS certificate bound
// achieved * k <= (k+1) * T*), so injected DP-cell corruption surfaces as a
// typed kDataCorruption retry instead of a wrong answer.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/certificate.hpp"
#include "core/instance.hpp"
#include "core/status.hpp"

namespace pcmax {

class ProbeCacheBase;  // core/probe_cache.hpp

/// A wall-clock deadline. Default-constructed deadlines are unlimited.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// Deadline `ms` milliseconds from now; ms <= 0 means unlimited.
  [[nodiscard]] static Deadline after_ms(std::int64_t ms);

  [[nodiscard]] bool unlimited() const noexcept { return unlimited_; }
  [[nodiscard]] bool expired() const noexcept;

  /// Whole milliseconds left (0 when expired); INT64_MAX when unlimited.
  [[nodiscard]] std::int64_t remaining_ms() const noexcept;

  /// Throws DeadlineExceeded mentioning `what` when the deadline passed.
  void check(const char* what) const;

 private:
  Clock::time_point at_{};
  bool unlimited_ = true;
};

struct ResilientOptions {
  double epsilon = 0.3;  ///< requested accuracy; may be degraded (see below)
  /// Whole-solve deadline in wall milliseconds; 0 = unlimited.
  std::int64_t deadline_ms = 0;
  /// Per-DP-probe deadline in wall milliseconds; 0 = unlimited.
  std::int64_t probe_deadline_ms = 0;
  /// DP-table memory budget in bytes; 0 = unlimited. Engines whose
  /// pre-flight estimate exceeds it degrade epsilon or are skipped.
  std::uint64_t mem_budget_bytes = 0;
  /// Retries of one engine after a transient failure (so an engine runs at
  /// most 1 + max_transient_retries times).
  int max_transient_retries = 2;
  /// Base backoff charged before retry r as backoff_ms << r; device-backed
  /// engines advance their simulated clock by it.
  std::int64_t backoff_ms = 10;
  int num_threads = 0;  ///< forwarded to DP solvers
  /// Optional probe-level DP solve cache shared across solves. The PTAS
  /// engines memoize rounded-problem OPTs in it; a ShardedProbeCache here
  /// is what the serve daemon shares across worker threads. Null = each
  /// attempt solves all its probes for real.
  ProbeCacheBase* probe_cache = nullptr;
};

/// One engine attempt's outcome as the driver records it.
struct AttemptRecord {
  std::string engine;
  std::int64_t k = 0;  ///< rounding parameter used; 0 for LPT
  int retry = 0;       ///< 0 for the first try of this engine at this k
  Status status;       ///< kOk, or why the attempt failed
  /// Tier of the bound this attempt certified (kNone for failed attempts).
  CertificateTier certificate_tier = CertificateTier::kNone;
};

struct ResilientResult {
  /// kOk, or the terminal failure (kDeadlineExceeded still carries a
  /// best-effort schedule; see degraded/engine to tell how it was built).
  Status status;
  Schedule schedule;
  std::int64_t achieved_makespan = 0;
  std::string engine;   ///< engine that produced the schedule
  std::int64_t k = 0;   ///< final rounding parameter (0 = LPT, no rounding)
  /// Quality bound as an exact rational: makespan <= bound_num/bound_den *
  /// OPT. (k+1)/k for a PTAS engine at k; for LPT the best of the a-priori
  /// (4m-1)/(3m) and the a-posteriori critical-machine bound.
  std::int64_t bound_num = 0;
  std::int64_t bound_den = 1;
  /// How bound_num/bound_den was established (see core/certificate.hpp).
  CertificateTier certificate_tier = CertificateTier::kNone;
  /// True when the result is weaker than requested: epsilon was coarsened,
  /// a fallback engine produced the schedule, or the deadline forced a
  /// best-effort answer.
  bool degraded = false;
  std::vector<AttemptRecord> attempts;  ///< every attempt, in order

  [[nodiscard]] bool ok() const noexcept { return status.is_ok(); }
};

/// What one engine attempt must deliver. best_target is the PTAS T* (0 for
/// engines without a target search); the driver's integrity gate uses it.
struct EngineOutcome {
  Schedule schedule;
  std::int64_t achieved_makespan = 0;
  std::int64_t best_target = 0;
};

/// Context the driver hands each attempt.
struct EngineContext {
  Deadline deadline;                    ///< whole-solve deadline
  std::int64_t probe_deadline_ms = 0;   ///< per-probe budget (0 = unlimited)
  int num_threads = 0;
  ProbeCacheBase* probe_cache = nullptr;  ///< shared probe memo (may be null)
};

/// One engine of the fallback chain. `run` throws on failure (the driver
/// classifies the exception); the optional hooks model recovery and
/// sim-time backoff for device-backed engines.
struct SolveEngine {
  std::string name;
  /// False for engines that ignore the rounding parameter (LPT).
  bool uses_k = true;
  /// Quality bound at (machines, k) as a rational {num, den}.
  std::function<std::pair<std::int64_t, std::int64_t>(std::int64_t m,
                                                      std::int64_t k)>
      bound;
  /// Estimated peak DP-table bytes at k; null or 0 = negligible.
  std::function<std::uint64_t(const Instance&, std::int64_t k)> mem_estimate;
  std::function<EngineOutcome(const Instance&, std::int64_t k,
                              const EngineContext&)>
      run;
  /// Recover engine state after a transient failure (e.g. device reset).
  std::function<void()> recover;
  /// Charge a backoff of `ms` to the engine's clock (e.g. simulated time).
  std::function<void(std::int64_t ms)> backoff;
  /// Optional a-posteriori certificate: inspect the outcome's schedule and
  /// return the best provable bound with its tier. When null, the driver
  /// stamps `bound` with CertificateTier::kAPriori.
  std::function<TieredBound(const Instance&, const EngineOutcome&)> certify;
};

/// Largest epsilon for which k_for_epsilon returns exactly k. The naive
/// 1.0/k is not safe under double rounding (ceil(1/fl(1.0/3)) == 4); engine
/// adapters use this to drive epsilon-parameterized solvers at an exact k.
[[nodiscard]] double epsilon_for_k(std::int64_t k);

/// LPT in core (mirrors baselines::lpt, which core cannot link): descending
/// stable sort + greedy placement. Bound (4m-1)/(3m), memory O(n).
[[nodiscard]] EngineOutcome lpt_outcome(const Instance& instance);

/// The terminal LPT engine: no rounding, no DP table, never degraded
/// further.
[[nodiscard]] SolveEngine make_lpt_engine();

/// The CPU PTAS engines, strongest first: level-bucket (OpenMP), then the
/// single-threaded reference solver. Both bound (k+1)/k.
[[nodiscard]] std::vector<SolveEngine> make_cpu_engines();

/// CPU engines + LPT — the default chain when no device is available.
/// Device-backed callers prepend gpu::make_gpu_engine (gpu/resilient_gpu.hpp).
[[nodiscard]] std::vector<SolveEngine> make_default_chain();

/// Maps an in-flight exception (call inside a catch block) to a Status:
/// gpusim OutOfMemory/LaunchFailure/StreamStalled, std::bad_alloc,
/// StatusError, and contract violations on a pre-validated instance (data
/// corruption) each get their code; anything else is kInternal.
[[nodiscard]] Status classify_current_exception();

/// Resilient solve over an explicit engine chain. Never throws.
[[nodiscard]] ResilientResult solve_resilient(
    const Instance& instance, std::span<const SolveEngine> chain,
    const ResilientOptions& options = {});

/// Convenience: solve_resilient over make_default_chain().
[[nodiscard]] ResilientResult solve_resilient(
    const Instance& instance, const ResilientOptions& options = {});

}  // namespace pcmax
