// Hochbaum-Shmoys job classification and rounding for a target makespan T
// (Algorithm 1, lines 7-8), in exact integer arithmetic.
//
// With k = ceil(1/epsilon), a job is *long* iff t_j > T/k (tested as
// t_j * k > T) and is rounded down to the nearest multiple of T/k^2; its
// class index is c = floor(t_j * k^2 / T), which lies in [k, k^2] whenever
// t_j <= T. Working in class units makes every later test exact: a machine
// configuration s is feasible iff sum_i s_i * class_i <= k^2, with no
// floating point and no floor(T/k^2) == 0 corner case (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "dp/problem.hpp"

namespace pcmax {

struct RoundedInstance {
  std::int64_t target = 0;  ///< T
  std::int64_t k = 0;       ///< ceil(1/epsilon)

  /// False when some job exceeds T outright (T infeasible); the class data
  /// below is empty in that case.
  bool feasible = true;

  /// Distinct non-zero long-job classes, ascending; values in [k, k^2].
  std::vector<std::int64_t> class_index;
  /// counts[i]: number of long jobs in class class_index[i].
  std::vector<std::int64_t> counts;
  /// jobs_per_class[i]: original job ids in class class_index[i].
  std::vector<std::vector<std::size_t>> jobs_per_class;
  /// Job ids with t_j * k <= T (placed greedily after the DP).
  std::vector<std::size_t> short_jobs;

  [[nodiscard]] std::size_t nonzero_dims() const noexcept {
    return class_index.size();
  }
  [[nodiscard]] std::int64_t long_jobs() const noexcept;
  /// DP-table size prod(counts_i + 1); 1 when there are no long jobs.
  [[nodiscard]] std::uint64_t table_size() const;
};

/// Classifies and rounds `instance` for target `T`. Requires T >= 1, k >= 1.
[[nodiscard]] RoundedInstance round_instance(const Instance& instance,
                                             std::int64_t target,
                                             std::int64_t k);

/// The higher-dimensional DP problem for the rounded instance: weights are
/// the class indices, capacity is k^2. Requires a feasible rounding with at
/// least one long job.
[[nodiscard]] dp::DpProblem to_dp_problem(const RoundedInstance& rounded);

/// Smallest k = ceil(1/epsilon) for a relative error bound epsilon in (0,1].
[[nodiscard]] std::int64_t k_for_epsilon(double epsilon);

}  // namespace pcmax
