// Makespan bounds used to seed the bisection search (Algorithm 1, lines 2-3).
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace pcmax {

/// LB = max(ceil(sum t_j / m), max t_j): no schedule can beat either the
/// average machine load or the longest job.
[[nodiscard]] std::int64_t makespan_lower_bound(const Instance& instance);

/// UB = ceil(sum t_j / m) + max t_j: list scheduling never exceeds this.
[[nodiscard]] std::int64_t makespan_upper_bound(const Instance& instance);

}  // namespace pcmax
