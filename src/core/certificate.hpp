// Approximation certificates: an independently checkable statement about a
// schedule's quality. The certificate compares the schedule's makespan to
// the instance lower bound LB = max(ceil(sum/m), max t); because
// LB <= OPT, `ratio_vs_lower_bound` upper-bounds the true approximation
// ratio. check_guarantee() verifies the (1 + 1/k) PTAS bound in exact
// integer arithmetic against a target T* that the caller proved feasible.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace pcmax {

struct Certificate {
  std::int64_t makespan = 0;
  std::int64_t lower_bound = 0;
  /// makespan / lower_bound >= makespan / OPT.
  double ratio_vs_lower_bound = 1.0;
};

/// Validates the schedule and builds its certificate.
[[nodiscard]] Certificate certify(const Instance& instance,
                                  const Schedule& schedule);

/// True iff makespan <= (1 + 1/k) * target, in exact integers: the bound
/// the PTAS guarantees when `target` is a feasible T* <= OPT.
[[nodiscard]] bool within_ptas_guarantee(std::int64_t makespan,
                                         std::int64_t target, std::int64_t k);

}  // namespace pcmax
