// Approximation certificates: an independently checkable statement about a
// schedule's quality. The certificate compares the schedule's makespan to
// the instance lower bound LB = max(ceil(sum/m), max t); because
// LB <= OPT, `ratio_vs_lower_bound` upper-bounds the true approximation
// ratio. check_guarantee() verifies the (1 + 1/k) PTAS bound in exact
// integer arithmetic against a target T* that the caller proved feasible.
//
// lpt_certificate() grades an LPT schedule by how its bound was obtained:
// the a-priori Graham ratio (4m-1)/(3m) holds for any LPT run, but reading
// the schedule back gives the a-posteriori critical-machine form — with c
// jobs on the machine that defines the makespan, LPT <= ((c+1)m-1)/(cm) *
// OPT, which is strictly tighter than a-priori whenever c >= 4 (m >= 2) and
// proves optimality outright when c == 1. The resilient driver stamps
// degraded results with the best tier it can prove.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/instance.hpp"

namespace pcmax {

struct Certificate {
  std::int64_t makespan = 0;
  std::int64_t lower_bound = 0;
  /// makespan / lower_bound >= makespan / OPT.
  double ratio_vs_lower_bound = 1.0;
};

/// Validates the schedule and builds its certificate.
[[nodiscard]] Certificate certify(const Instance& instance,
                                  const Schedule& schedule);

/// True iff makespan <= (1 + 1/k) * target, in exact integers: the bound
/// the PTAS guarantees when `target` is a feasible T* <= OPT.
[[nodiscard]] bool within_ptas_guarantee(std::int64_t makespan,
                                         std::int64_t target, std::int64_t k);

/// How a result's quality bound was established, weakest to strongest.
enum class CertificateTier : std::uint8_t {
  kNone,         ///< no bound claimed
  kAPriori,      ///< worst-case engine guarantee ((k+1)/k or (4m-1)/(3m))
  kAPosteriori,  ///< read back from the schedule; tighter than a-priori
  kOptimal,      ///< the schedule is provably optimal
};

[[nodiscard]] std::string_view certificate_tier_name(
    CertificateTier tier) noexcept;

/// An engine-quality bound as an exact rational with its provenance tier:
/// makespan <= bound_num / bound_den * OPT.
struct TieredBound {
  std::int64_t bound_num = 0;
  std::int64_t bound_den = 1;
  CertificateTier tier = CertificateTier::kNone;
  /// Jobs on the critical machine (a-posteriori evidence; 0 when unused).
  std::int64_t critical_jobs = 0;
};

/// The best bound provable for an LPT schedule, read a-posteriori from the
/// schedule itself: with c jobs on the critical machine the bound is
/// min((4m-1)/(3m), ((c+1)m-1)/(cm)) — the critical-machine form wins for
/// c >= 4 (kAPosteriori), c == 1 certifies optimality (1/1, kOptimal), and
/// otherwise the a-priori Graham ratio stands (kAPriori). `schedule` must
/// be a valid LPT schedule of `instance` (the critical-machine argument is
/// only sound for LPT orderings).
[[nodiscard]] TieredBound lpt_certificate(const Instance& instance,
                                          const Schedule& schedule);

}  // namespace pcmax
