#include "core/certificate.hpp"

#include "core/bounds.hpp"
#include "util/contracts.hpp"

namespace pcmax {

Certificate certify(const Instance& instance, const Schedule& schedule) {
  Certificate cert;
  cert.makespan = makespan(instance, schedule);  // validates
  cert.lower_bound = makespan_lower_bound(instance);
  cert.ratio_vs_lower_bound = static_cast<double>(cert.makespan) /
                              static_cast<double>(cert.lower_bound);
  return cert;
}

bool within_ptas_guarantee(std::int64_t achieved, std::int64_t target,
                           std::int64_t k) {
  PCMAX_EXPECTS(achieved >= 0);
  PCMAX_EXPECTS(target >= 1);
  PCMAX_EXPECTS(k >= 1);
  // achieved <= target * (k + 1) / k  <=>  achieved * k <= target * (k + 1).
  return achieved * k <= target * (k + 1);
}

}  // namespace pcmax
