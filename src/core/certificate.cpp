#include "core/certificate.hpp"

#include <algorithm>
#include <vector>

#include "core/bounds.hpp"
#include "util/contracts.hpp"

namespace pcmax {

Certificate certify(const Instance& instance, const Schedule& schedule) {
  Certificate cert;
  cert.makespan = makespan(instance, schedule);  // validates
  cert.lower_bound = makespan_lower_bound(instance);
  cert.ratio_vs_lower_bound = static_cast<double>(cert.makespan) /
                              static_cast<double>(cert.lower_bound);
  return cert;
}

bool within_ptas_guarantee(std::int64_t achieved, std::int64_t target,
                           std::int64_t k) {
  PCMAX_EXPECTS(achieved >= 0);
  PCMAX_EXPECTS(target >= 1);
  PCMAX_EXPECTS(k >= 1);
  // achieved <= target * (k + 1) / k  <=>  achieved * k <= target * (k + 1).
  return achieved * k <= target * (k + 1);
}

std::string_view certificate_tier_name(CertificateTier tier) noexcept {
  switch (tier) {
    case CertificateTier::kNone: return "none";
    case CertificateTier::kAPriori: return "a-priori";
    case CertificateTier::kAPosteriori: return "a-posteriori";
    case CertificateTier::kOptimal: return "optimal";
  }
  return "unknown";
}

TieredBound lpt_certificate(const Instance& instance,
                            const Schedule& schedule) {
  const std::vector<std::int64_t> loads = machine_loads(instance, schedule);
  PCMAX_EXPECTS(!loads.empty());
  const auto critical = static_cast<std::size_t>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
  std::int64_t c = 0;
  for (const auto m : schedule.assignment)
    if (static_cast<std::size_t>(m) == critical) ++c;
  const std::int64_t m = instance.machines;

  TieredBound bound;
  bound.critical_jobs = c;
  if (c <= 1) {
    // Zero or one job defines the makespan: OPT >= max_j t_j >= makespan.
    bound.bound_num = 1;
    bound.bound_den = 1;
    bound.tier = CertificateTier::kOptimal;
    return bound;
  }
  // A-posteriori critical-machine form vs the a-priori Graham ratio,
  // compared as exact rationals (128-bit intermediates: both cross-products
  // are O(m^2 c), which can overflow 64 bits for adversarial m).
  const std::int64_t post_num = (c + 1) * m - 1;
  const std::int64_t post_den = c * m;
  const std::int64_t prior_num = 4 * m - 1;
  const std::int64_t prior_den = 3 * m;
  const auto tighter = static_cast<__int128>(post_num) * prior_den <
                       static_cast<__int128>(prior_num) * post_den;
  if (tighter) {
    bound.bound_num = post_num;
    bound.bound_den = post_den;
    bound.tier = CertificateTier::kAPosteriori;
  } else {
    bound.bound_num = prior_num;
    bound.bound_den = prior_den;
    bound.tier = CertificateTier::kAPriori;
  }
  return bound;
}

}  // namespace pcmax
