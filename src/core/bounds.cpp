#include "core/bounds.hpp"

#include <algorithm>

#include "util/checked_math.hpp"

namespace pcmax {

std::int64_t makespan_lower_bound(const Instance& instance) {
  instance.validate();
  const auto avg = static_cast<std::int64_t>(
      util::ceil_div(static_cast<std::uint64_t>(instance.total_time()),
                     static_cast<std::uint64_t>(instance.machines)));
  return std::max(avg, instance.max_time());
}

std::int64_t makespan_upper_bound(const Instance& instance) {
  instance.validate();
  const auto avg = static_cast<std::int64_t>(
      util::ceil_div(static_cast<std::uint64_t>(instance.total_time()),
                     static_cast<std::uint64_t>(instance.machines)));
  return avg + instance.max_time();
}

}  // namespace pcmax
