#include "core/search.hpp"

#include <optional>

#include "core/probe_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace pcmax {

namespace {

/// One target's verdict: from the bounds when they decide it (counted as a
/// skip, no oracle traffic), from `ask` otherwise (recorded into the
/// bounds). `ask` must invoke the oracle and do the round accounting.
template <typename Ask>
bool resolve_target(std::int64_t target, MonotoneBounds* bounds,
                    SearchResult& result, Ask&& ask) {
  if (bounds != nullptr) {
    if (const std::optional<bool> known = bounds->decide(target)) {
      ++result.bound_skips;
      obs::count("search.bound_skips");
      if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
        tr->instant("search/bound-skip", {obs::arg("target", target),
                                          obs::arg("feasible", *known)});
      return *known;
    }
  }
  const bool verdict = ask(target);
  if (bounds != nullptr) bounds->note(target, verdict);
  if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
    tr->instant("search/probe",
                {obs::arg("target", target), obs::arg("feasible", verdict)});
  return verdict;
}

}  // namespace

SearchResult bisection_search(std::int64_t lb, std::int64_t ub,
                              const FeasibilityOracle& oracle,
                              MonotoneBounds* bounds) {
  PCMAX_EXPECTS(lb <= ub);
  PCMAX_EXPECTS(static_cast<bool>(oracle));
  SearchResult result;
  while (lb < ub) {
    const obs::ScopedSpan round("search/round",
                                {obs::arg("lb", lb), obs::arg("ub", ub)});
    const std::int64_t t = lb + (ub - lb) / 2;
    const bool verdict =
        resolve_target(t, bounds, result, [&](std::int64_t target) {
          result.probes.push_back(target);
          ++result.iterations;
          obs::count("search.rounds");
          obs::count("search.probes");
          return oracle(target);
        });
    if (verdict)
      ub = t;
    else
      lb = t + 1;
  }
  result.best_target = lb;
  return result;
}

SearchResult quarter_split_search_batch(std::int64_t lb, std::int64_t ub,
                                        const BatchFeasibilityOracle& oracle,
                                        int segments,
                                        MonotoneBounds* bounds) {
  PCMAX_EXPECTS(lb <= ub);
  PCMAX_EXPECTS(segments >= 2);
  PCMAX_EXPECTS(static_cast<bool>(oracle));

  SearchResult result;
  std::vector<std::int64_t> targets, asked;
  std::vector<std::size_t> pending;  // indices into targets sent to oracle
  std::vector<bool> feasible;
  while (lb < ub) {
    const obs::ScopedSpan round("search/round",
                                {obs::arg("lb", lb), obs::arg("ub", ub)});
    // Segment boundaries b_p = lb + (ub-lb)*p/segments, probe midpoints.
    targets.clear();
    for (int p = 0; p < segments; ++p) {
      const std::int64_t b0 = lb + (ub - lb) * p / segments;
      const std::int64_t b1 = lb + (ub - lb) * (p + 1) / segments;
      const std::int64_t t = b0 + (b1 - b0) / 2;
      if (targets.empty() || targets.back() != t) targets.push_back(t);
    }

    // Targets the bounds already decide never reach the oracle; a round
    // whose targets are all decided issues no batch and counts no
    // iteration.
    asked.clear();
    pending.clear();
    feasible.assign(targets.size(), false);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      std::optional<bool> known;
      if (bounds != nullptr) known = bounds->decide(targets[i]);
      if (known.has_value()) {
        feasible[i] = *known;
        ++result.bound_skips;
        obs::count("search.bound_skips");
        if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
          tr->instant("search/bound-skip", {obs::arg("target", targets[i]),
                                            obs::arg("feasible", *known)});
      } else {
        pending.push_back(i);
        asked.push_back(targets[i]);
      }
    }
    if (!asked.empty()) {
      // One round: all probes issued together (concurrent GPU streams).
      ++result.iterations;
      obs::count("search.rounds");
      obs::count("search.probes", asked.size());
      result.probes.insert(result.probes.end(), asked.begin(), asked.end());
      const std::vector<bool> verdicts = oracle(asked);
      PCMAX_ENSURES(verdicts.size() == asked.size());
      obs::TraceRecorder* const tr = obs::trace();
      for (std::size_t j = 0; j < asked.size(); ++j) {
        feasible[pending[j]] = verdicts[j];
        if (bounds != nullptr) bounds->note(asked[j], verdicts[j]);
        if (tr != nullptr)
          tr->instant("search/probe", {obs::arg("target", asked[j]),
                                       obs::arg("feasible", verdicts[j])});
      }
    }

    // A feasible probe below an infeasible one contradicts oracle
    // monotonicity (a buggy engine); Algorithm 3's interval logic would
    // then converge on an arbitrary boundary. Narrow to the subinterval
    // bracketing the first feasible verdict — consistent with what the
    // oracle actually answered — and finish with plain bisection through
    // single-target batches, which terminates unconditionally.
    bool violated = false;
    for (std::size_t i = 0; i + 1 < feasible.size(); ++i)
      if (feasible[i] && !feasible[i + 1]) violated = true;
    if (violated) {
      ++result.monotonicity_violations;
      obs::count("search.monotonicity_violations");
      if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
        tr->instant("search/monotonicity-violation",
                    {obs::arg("lb", lb), obs::arg("ub", ub)});
      std::size_t first_feasible = 0;
      while (!feasible[first_feasible]) ++first_feasible;
      ub = targets[first_feasible];
      if (first_feasible > 0) lb = targets[first_feasible - 1] + 1;
      while (lb < ub) {
        const obs::ScopedSpan fallback(
            "search/round", {obs::arg("lb", lb), obs::arg("ub", ub)});
        const std::int64_t t = lb + (ub - lb) / 2;
        const bool verdict =
            resolve_target(t, bounds, result, [&](std::int64_t target) {
              ++result.iterations;
              obs::count("search.rounds");
              obs::count("search.probes");
              result.probes.push_back(target);
              const std::int64_t one[1] = {target};
              const std::vector<bool> v =
                  oracle(std::span<const std::int64_t>(one, 1));
              PCMAX_ENSURES(v.size() == 1);
              return v.front();
            });
        if (verdict)
          ub = t;
        else
          lb = t + 1;
      }
      break;
    }

    if (feasible.front()) {
      ub = targets.front();
    } else if (!feasible.back()) {
      lb = targets.back() + 1;
    } else {
      for (std::size_t i = 0; i + 1 < targets.size(); ++i) {
        if (!feasible[i] && feasible[i + 1]) {
          lb = targets[i] + 1;
          ub = targets[i + 1];
          break;
        }
      }
    }
  }
  result.best_target = lb;
  return result;
}

SearchResult quarter_split_search(std::int64_t lb, std::int64_t ub,
                                  const FeasibilityOracle& oracle,
                                  int segments, MonotoneBounds* bounds) {
  PCMAX_EXPECTS(static_cast<bool>(oracle));
  return quarter_split_search_batch(
      lb, ub,
      [&](std::span<const std::int64_t> targets) {
        std::vector<bool> feasible;
        feasible.reserve(targets.size());
        for (const auto t : targets) feasible.push_back(oracle(t));
        return feasible;
      },
      segments, bounds);
}

}  // namespace pcmax
