#include "core/search.hpp"

#include "util/contracts.hpp"

namespace pcmax {

SearchResult bisection_search(std::int64_t lb, std::int64_t ub,
                              const FeasibilityOracle& oracle) {
  PCMAX_EXPECTS(lb <= ub);
  PCMAX_EXPECTS(static_cast<bool>(oracle));
  SearchResult result;
  while (lb < ub) {
    const std::int64_t t = lb + (ub - lb) / 2;
    result.probes.push_back(t);
    ++result.iterations;
    if (oracle(t))
      ub = t;
    else
      lb = t + 1;
  }
  result.best_target = lb;
  return result;
}

SearchResult quarter_split_search_batch(std::int64_t lb, std::int64_t ub,
                                        const BatchFeasibilityOracle& oracle,
                                        int segments) {
  PCMAX_EXPECTS(lb <= ub);
  PCMAX_EXPECTS(segments >= 2);
  PCMAX_EXPECTS(static_cast<bool>(oracle));

  SearchResult result;
  std::vector<std::int64_t> targets;
  while (lb < ub) {
    // Segment boundaries b_p = lb + (ub-lb)*p/segments, probe midpoints.
    targets.clear();
    for (int p = 0; p < segments; ++p) {
      const std::int64_t b0 = lb + (ub - lb) * p / segments;
      const std::int64_t b1 = lb + (ub - lb) * (p + 1) / segments;
      const std::int64_t t = b0 + (b1 - b0) / 2;
      if (targets.empty() || targets.back() != t) targets.push_back(t);
    }
    // One round: all probes issued together (concurrent streams on the GPU).
    ++result.iterations;
    result.probes.insert(result.probes.end(), targets.begin(), targets.end());
    const std::vector<bool> feasible = oracle(targets);
    PCMAX_ENSURES(feasible.size() == targets.size());

    if (feasible.front()) {
      ub = targets.front();
    } else if (!feasible.back()) {
      lb = targets.back() + 1;
    } else {
      for (std::size_t i = 0; i + 1 < targets.size(); ++i) {
        if (!feasible[i] && feasible[i + 1]) {
          lb = targets[i] + 1;
          ub = targets[i + 1];
          break;
        }
      }
    }
  }
  result.best_target = lb;
  return result;
}

SearchResult quarter_split_search(std::int64_t lb, std::int64_t ub,
                                  const FeasibilityOracle& oracle,
                                  int segments) {
  PCMAX_EXPECTS(static_cast<bool>(oracle));
  return quarter_split_search_batch(
      lb, ub,
      [&](std::span<const std::int64_t> targets) {
        std::vector<bool> feasible;
        feasible.reserve(targets.size());
        for (const auto t : targets) feasible.push_back(oracle(t));
        return feasible;
      },
      segments);
}

}  // namespace pcmax
