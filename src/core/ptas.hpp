// The Hochbaum-Shmoys PTAS for P||Cmax (Algorithm 1), parameterized over the
// higher-dimensional DP solver so the OpenMP, blocked, and simulated-GPU
// engines are interchangeable, and over the target-search strategy
// (bisection, or Algorithm 3's quarter split).
//
// Guarantee: the returned schedule has makespan <= (1 + 1/k) * OPT with
// k = ceil(1/epsilon), i.e. <= (1 + epsilon) * OPT.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/probe_cache.hpp"
#include "dp/solver.hpp"

namespace pcmax {

enum class SearchStrategy {
  kBisection,     ///< Algorithm 1: halve [LB, UB] each round
  kQuarterSplit,  ///< Algorithm 3: four concurrent probes per round
};

/// One DP evaluation performed during the search (the unit Figures 3-4
/// measure).
struct DpInvocation {
  std::int64_t target = 0;        ///< T probed
  std::uint64_t table_size = 0;   ///< sigma = prod(n_i + 1)
  std::size_t nonzero_dims = 0;   ///< non-empty job classes
  std::int64_t long_jobs = 0;     ///< n'
  std::int32_t opt = 0;           ///< machines needed for the rounded longs
  /// True when the probe cache answered and no DP table was filled. The
  /// cell-evaluation metrics (sum of table_size over real solves) must
  /// exclude these entries.
  bool cached = false;
};

struct PtasOptions {
  double epsilon = 0.3;  ///< the paper's evaluation setting
  SearchStrategy strategy = SearchStrategy::kBisection;
  /// Probes per round for kQuarterSplit (Algorithm 3 uses 4).
  int segments = 4;
  int num_threads = 0;   ///< forwarded to the DP solver
  bool build_schedule = true;
  /// Probe-level DP solve cache: memoize the OPT of canonicalized rounded
  /// problems and answer bound-decided probes without solving. Off by
  /// default so EXPERIMENTS ablations compare like with like.
  bool use_probe_cache = false;
  /// Optional externally owned cache, shared across runs (and instances —
  /// keys are canonical). When null and use_probe_cache is set, the run
  /// uses a private cache. Ignored when use_probe_cache is false. A
  /// ShardedProbeCache here may be shared across threads (the serve
  /// daemon's cross-request cache); a plain ProbeCache must not be.
  ProbeCacheBase* probe_cache = nullptr;
};

struct PtasResult {
  /// Makespan of the returned schedule (0 when build_schedule is false).
  std::int64_t achieved_makespan = 0;
  /// T*: smallest feasible target found by the search.
  std::int64_t best_target = 0;
  Schedule schedule;
  /// Search rounds (Table VII's "#itr").
  std::size_t search_iterations = 0;
  /// Every DP evaluation, in probe order (reconstruction solve included).
  /// Cache-answered probes appear with DpInvocation::cached set.
  std::vector<DpInvocation> dp_calls;
  /// This run's probe-cache activity (all zero when the cache is off).
  ProbeCacheStats cache_stats;
};

[[nodiscard]] PtasResult solve_ptas(const Instance& instance,
                                    const dp::DpSolver& solver,
                                    const PtasOptions& options = {});

/// Builds the final schedule for an already-found feasible target T*
/// (Algorithm 1 lines 9-15's reconstruction half): solve the DP once more,
/// backtrack the long-job machine configurations, and place short jobs
/// greedily. Appends the reconstruction DP call to `dp_calls`. Exposed so
/// alternative search drivers (e.g. the concurrent-probe GPU PTAS) can
/// share it with solve_ptas.
struct ScheduleBuild {
  Schedule schedule;
  std::int64_t achieved_makespan = 0;
};
[[nodiscard]] ScheduleBuild build_schedule_at_target(
    const Instance& instance, const dp::DpSolver& solver, std::int64_t k,
    std::int64_t target, int num_threads,
    std::vector<DpInvocation>& dp_calls);

/// Greedy placement of short jobs: each job goes to the currently
/// least-loaded machine. Exposed for testing and reuse by baselines.
void place_on_least_loaded(const Instance& instance,
                           const std::vector<std::size_t>& job_ids,
                           Schedule& schedule,
                           std::vector<std::int64_t>& loads);

}  // namespace pcmax
