#include "core/probe_cache.hpp"

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace pcmax {

namespace {

void hash_combine(std::size_t& seed, std::uint64_t value) noexcept {
  // splitmix64-style mix; good avalanche for sequential integer payloads.
  value *= 0x9E3779B97F4A7C15ull;
  value ^= value >> 32;
  seed ^= value + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t ProbeKeyHash::operator()(const ProbeKey& key) const noexcept {
  std::size_t seed = key.counts.size();
  for (const auto c : key.counts)
    hash_combine(seed, static_cast<std::uint64_t>(c));
  for (const auto w : key.weights)
    hash_combine(seed, static_cast<std::uint64_t>(w));
  hash_combine(seed, static_cast<std::uint64_t>(key.capacity));
  return seed;
}

ProbeKey probe_key_for(const RoundedInstance& rounded) {
  PCMAX_EXPECTS(rounded.feasible);
  PCMAX_EXPECTS(!rounded.class_index.empty());
  ProbeKey key;
  key.counts = rounded.counts;
  key.weights = rounded.class_index;
  key.capacity = rounded.k * rounded.k;
  return key;
}

ProbeCache::ProbeCache(std::size_t max_entries) : max_entries_(max_entries) {
  PCMAX_EXPECTS(max_entries >= 1);
}

std::optional<std::int32_t> ProbeCache::lookup(const ProbeKey& key) {
  ++stats_.lookups;
  obs::count("probe_cache.lookups");
  const auto it = map_.find(key);
  if (it == map_.end()) {
    obs::count("probe_cache.misses");
    return std::nullopt;
  }
  ++stats_.hits;
  obs::count("probe_cache.hits");
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ProbeCache::insert(const ProbeKey& key, std::int32_t opt) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // The DP is deterministic, so a re-insert must agree.
    PCMAX_ENSURES(it->second->second == opt);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= max_entries_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    obs::count("probe_cache.evictions");
  }
  lru_.emplace_front(key, opt);
  map_.emplace(lru_.front().first, lru_.begin());
  ++stats_.insertions;
  obs::count("probe_cache.insertions");
}

void ProbeCache::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace pcmax
