#include "core/probe_cache.hpp"

#include <bit>
#include <string>
#include <utility>

#include "core/status.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace pcmax {

namespace {

void hash_combine(std::size_t& seed, std::uint64_t value) noexcept {
  // splitmix64-style mix; good avalanche for sequential integer payloads.
  value *= 0x9E3779B97F4A7C15ull;
  value ^= value >> 32;
  seed ^= value + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t ProbeKeyHash::operator()(const ProbeKey& key) const noexcept {
  std::size_t seed = key.counts.size();
  for (const auto c : key.counts)
    hash_combine(seed, static_cast<std::uint64_t>(c));
  for (const auto w : key.weights)
    hash_combine(seed, static_cast<std::uint64_t>(w));
  hash_combine(seed, static_cast<std::uint64_t>(key.capacity));
  return seed;
}

ProbeKey probe_key_for(const RoundedInstance& rounded) {
  PCMAX_EXPECTS(rounded.feasible);
  PCMAX_EXPECTS(!rounded.class_index.empty());
  ProbeKey key;
  key.counts = rounded.counts;
  key.weights = rounded.class_index;
  key.capacity = rounded.k * rounded.k;
  return key;
}

ProbeKey probe_key_for(const dp::DpProblem& problem) {
  PCMAX_EXPECTS(!problem.counts.empty());
  PCMAX_EXPECTS(problem.counts.size() == problem.weights.size());
  ProbeKey key;
  key.counts = problem.counts;
  key.weights = problem.weights;
  key.capacity = problem.capacity;
  return key;
}

ProbeCache::ProbeCache(std::size_t max_entries) : max_entries_(max_entries) {
  PCMAX_EXPECTS(max_entries >= 1);
}

std::optional<std::int32_t> ProbeCache::lookup(const ProbeKey& key) {
  ++stats_.lookups;
  obs::count("probe_cache.lookups");
  const auto it = map_.find(key);
  if (it == map_.end()) {
    obs::count("probe_cache.misses");
    return std::nullopt;
  }
  ++stats_.hits;
  obs::count("probe_cache.hits");
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ProbeCache::insert(const ProbeKey& key, std::int32_t opt) {
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // The DP is deterministic, so a re-insert must agree.
    PCMAX_ENSURES(it->second->second == opt);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= max_entries_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    obs::count("probe_cache.evictions");
  }
  lru_.emplace_front(key, opt);
  map_.emplace(lru_.front().first, lru_.begin());
  ++stats_.insertions;
  obs::count("probe_cache.insertions");
}

void ProbeCache::clear() {
  map_.clear();
  lru_.clear();
}

// --- ShardedProbeCache ----------------------------------------------------

thread_local std::uint64_t ShardedProbeCache::t_owner_tag = 0;

ShardedProbeCache::ShardedProbeCache(std::size_t max_entries,
                                     std::size_t shards) {
  PCMAX_EXPECTS(max_entries >= 1);
  PCMAX_EXPECTS(shards >= 1);
  shard_count_ = std::bit_ceil(shards);
  per_shard_capacity_ = std::max<std::size_t>(1, max_entries / shard_count_);
  // At most half-full so linear probing always reaches an empty slot.
  slot_count_ = std::bit_ceil(2 * per_shard_capacity_);
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

std::shared_ptr<const ShardedProbeCache::Table> ShardedProbeCache::rebuild(
    std::vector<std::shared_ptr<const Entry>> entries) const {
  auto table = std::make_shared<Table>();
  table->slots.assign(slot_count_, nullptr);
  table->mask = slot_count_ - 1;
  table->used = entries.size();
  for (auto& entry : entries) {
    std::size_t i = ProbeKeyHash{}(entry->key) & table->mask;
    while (table->slots[i] != nullptr) i = (i + 1) & table->mask;
    table->slots[i] = std::move(entry);
  }
  return table;
}

std::shared_ptr<const ShardedProbeCache::Table> ShardedProbeCache::snapshot(
    const Shard& shard) {
  const std::lock_guard<std::mutex> held(shard.latch);
  return shard.table;
}

void ShardedProbeCache::publish(Shard& shard,
                                std::shared_ptr<const Table> next) {
  // Swap under the latch, destroy the displaced snapshot after releasing
  // it: dropping the last reference frees entries, which must never run
  // inside the latch readers copy under.
  std::shared_ptr<const Table> retired;
  {
    const std::lock_guard<std::mutex> held(shard.latch);
    retired = std::exchange(shard.table, std::move(next));
  }
}

std::optional<std::int32_t> ShardedProbeCache::lookup(const ProbeKey& key) {
  const std::size_t hash = ProbeKeyHash{}(key);
  Shard& shard = shard_for(hash);
  shard.lookups.fetch_add(1, std::memory_order_relaxed);
  obs::count("probe_cache.lookups");
  if (const std::shared_ptr<const Table> table = snapshot(shard);
      table != nullptr) {
    for (std::size_t i = hash & table->mask;; i = (i + 1) & table->mask) {
      const std::shared_ptr<const Entry>& slot = table->slots[i];
      if (slot == nullptr) break;
      if (slot->key != key) continue;
      slot->last_used.store(
          shard.generation.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      obs::count("probe_cache.hits");
      if (t_owner_tag != 0 && slot->owner != 0 && slot->owner != t_owner_tag) {
        shard.cross_hits.fetch_add(1, std::memory_order_relaxed);
        obs::count("probe_cache.cross_hits");
      }
      return slot->opt;
    }
  }
  obs::count("probe_cache.misses");
  return std::nullopt;
}

void ShardedProbeCache::insert(const ProbeKey& key, std::int32_t opt) {
  const std::size_t hash = ProbeKeyHash{}(key);
  Shard& shard = shard_for(hash);
  const std::lock_guard<std::mutex> lock(shard.write_mutex);
  const std::shared_ptr<const Table> table = snapshot(shard);

  // Collect surviving entries; detect an existing entry for this key.
  std::vector<std::shared_ptr<const Entry>> survivors;
  survivors.reserve(per_shard_capacity_);
  const Entry* existing = nullptr;
  bool poisoned = false;
  if (table != nullptr) {
    for (const auto& slot : table->slots) {
      if (slot == nullptr) continue;
      if (slot->key == key) {
        existing = slot.get();
        if (slot->opt != opt) {
          poisoned = true;  // drop it: deterministic DPs never disagree
          continue;
        }
      }
      survivors.push_back(slot);
    }
  }
  if (poisoned) {
    shard.corruption_drops.fetch_add(1, std::memory_order_relaxed);
    obs::count("probe_cache.corruption_drops");
    publish(shard, rebuild(std::move(survivors)));
    throw StatusError(
        Status(StatusCode::kDataCorruption,
               "probe cache re-insert disagreement (resident " +
                   std::to_string(existing->opt) + " vs recomputed " +
                   std::to_string(opt) + "); poisoned entry dropped"));
  }
  if (existing != nullptr) {
    existing->last_used.store(
        shard.generation.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    return;
  }

  if (survivors.size() >= per_shard_capacity_) {
    std::size_t victim = 0;
    for (std::size_t i = 1; i < survivors.size(); ++i) {
      if (survivors[i]->last_used.load(std::memory_order_relaxed) <
          survivors[victim]->last_used.load(std::memory_order_relaxed))
        victim = i;
    }
    survivors.erase(survivors.begin() + static_cast<std::ptrdiff_t>(victim));
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    obs::count("probe_cache.evictions");
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->instant("probe-cache/evict",
                  {obs::arg("shard", static_cast<std::int64_t>(
                                         hash & (shard_count_ - 1)))});
  }

  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->opt = opt;
  entry->owner = t_owner_tag;
  entry->last_used.store(
      shard.generation.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  survivors.push_back(std::move(entry));
  publish(shard, rebuild(std::move(survivors)));
  shard.insertions.fetch_add(1, std::memory_order_relaxed);
  obs::count("probe_cache.insertions");
}

ProbeCacheStats ShardedProbeCache::stats() const {
  ProbeCacheStats stats;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    stats.lookups += shard.lookups.load(std::memory_order_relaxed);
    stats.hits += shard.hits.load(std::memory_order_relaxed);
    stats.cross_hits += shard.cross_hits.load(std::memory_order_relaxed);
    stats.insertions += shard.insertions.load(std::memory_order_relaxed);
    stats.evictions += shard.evictions.load(std::memory_order_relaxed);
  }
  return stats;
}

std::size_t ShardedProbeCache::shard_size(std::size_t shard) const {
  PCMAX_EXPECTS(shard < shard_count_);
  const std::shared_ptr<const Table> table = snapshot(shards_[shard]);
  return table != nullptr ? table->used : 0;
}

std::size_t ShardedProbeCache::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) total += shard_size(s);
  return total;
}

void ShardedProbeCache::clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::lock_guard<std::mutex> lock(shards_[s].write_mutex);
    publish(shards_[s], nullptr);
  }
}

std::uint64_t ShardedProbeCache::corruption_drops() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shard_count_; ++s)
    total += shards_[s].corruption_drops.load(std::memory_order_relaxed);
  return total;
}

}  // namespace pcmax
