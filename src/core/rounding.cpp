#include "core/rounding.hpp"

#include <cmath>
#include <map>
#include <numeric>

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax {

std::int64_t RoundedInstance::long_jobs() const noexcept {
  return std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
}

std::uint64_t RoundedInstance::table_size() const {
  std::uint64_t size = 1;
  for (const auto n : counts)
    size = util::checked_mul(size, static_cast<std::uint64_t>(n) + 1);
  return size;
}

RoundedInstance round_instance(const Instance& instance, std::int64_t target,
                               std::int64_t k) {
  instance.validate();
  PCMAX_EXPECTS(target >= 1);
  PCMAX_EXPECTS(k >= 1);

  RoundedInstance out;
  out.target = target;
  out.k = k;

  std::map<std::int64_t, std::vector<std::size_t>> classes;
  for (std::size_t j = 0; j < instance.times.size(); ++j) {
    const std::int64_t t = instance.times[j];
    if (t > target) {
      out.feasible = false;
      return out;
    }
    if (t * k <= target) {
      out.short_jobs.push_back(j);
      continue;
    }
    // Long job: class floor(t * k^2 / T) in [k, k^2].
    const std::int64_t c = (t * k * k) / target;
    PCMAX_ENSURES(c >= k && c <= k * k);
    classes[c].push_back(j);
  }

  out.class_index.reserve(classes.size());
  for (auto& [c, jobs] : classes) {
    out.class_index.push_back(c);
    out.counts.push_back(static_cast<std::int64_t>(jobs.size()));
    out.jobs_per_class.push_back(std::move(jobs));
  }
  return out;
}

dp::DpProblem to_dp_problem(const RoundedInstance& rounded) {
  PCMAX_EXPECTS(rounded.feasible);
  PCMAX_EXPECTS(!rounded.class_index.empty());
  dp::DpProblem problem;
  problem.counts = rounded.counts;
  problem.weights = rounded.class_index;
  problem.capacity = rounded.k * rounded.k;
  return problem;
}

std::int64_t k_for_epsilon(double epsilon) {
  PCMAX_EXPECTS(epsilon > 0.0 && epsilon <= 1.0);
  return static_cast<std::int64_t>(std::ceil(1.0 / epsilon));
}

}  // namespace pcmax
