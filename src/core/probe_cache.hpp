// Probe-level DP solve cache.
//
// Every feasibility probe of the PTAS search rounds the instance for a
// target T and solves the higher-dimensional DP. Distinct targets often
// round to the *same* problem — identical class counts, class indices, and
// capacity k^2 — because the class index floor(t_j * k^2 / T) is a step
// function of T. ProbeKey canonicalizes a rounded problem so such probes
// share one DP solve; ProbeCache is an LRU-bounded memo from key to the
// DP's OPT (machine count).
//
// Two cache implementations share the ProbeCacheBase interface:
//   - ProbeCache: the single-threaded exact-LRU memo (one search, one
//     thread — the PR 2 design, unchanged in behavior).
//   - ShardedProbeCache: the cross-request cache the serve daemon shares
//     between worker threads. The LRU is split into power-of-two shards by
//     ProbeKey hash; each shard publishes an immutable open-addressed
//     snapshot behind a per-shard pointer latch held only for the
//     shared_ptr copy — a lookup is one latched handle copy (a refcount
//     increment), a latch-free probe walk over the immutable snapshot, and
//     one relaxed recency stamp. Writers serialize on a separate per-shard
//     mutex, rebuild the snapshot copy-on-write (RCU-style), evict the
//     least-recently-stamped entry when the shard is full, and publish by
//     swapping the handle under the latch.
//
// MonotoneBounds exploits the other structural fact of the search: the
// feasibility oracle is monotone in T (false below the threshold T*, true
// at and above it), so once a verdict is known for some target, every
// target at or beyond it on the same side is decided without any solve.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/rounding.hpp"

namespace pcmax {

/// Canonical identity of a rounded DP problem: per-class long-job counts,
/// class indices (the DP weights), and the capacity k^2. Two targets with
/// equal keys have byte-identical DP problems and hence equal OPT.
struct ProbeKey {
  std::vector<std::int64_t> counts;
  std::vector<std::int64_t> weights;
  std::int64_t capacity = 0;

  bool operator==(const ProbeKey&) const = default;
};

struct ProbeKeyHash {
  [[nodiscard]] std::size_t operator()(const ProbeKey& key) const noexcept;
};

/// The canonical key of a feasible rounding. Requires rounded.feasible and
/// at least one long job (callers answer the empty rounding without a DP).
[[nodiscard]] ProbeKey probe_key_for(const RoundedInstance& rounded);

/// The canonical key of an explicit DP problem. The key *is* the problem
/// (counts, weights, capacity), so any two roundings — classic arithmetic
/// or EPTAS-sparsified — that build byte-identical problems share one cache
/// entry, and roundings that differ anywhere cannot collide. Every engine
/// must derive its key through this single constructor so the canonical-
/// ization stays in one place (tests/eptas/test_probe_soundness.cpp pins
/// the cross-engine soundness). Requires a non-empty problem.
[[nodiscard]] ProbeKey probe_key_for(const dp::DpProblem& problem);

struct ProbeCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Probes answered by MonotoneBounds before any rounding or solve.
  std::uint64_t bound_skips = 0;
  /// Hits on entries inserted under a different owner tag (another request
  /// of the serve daemon). Always 0 for the single-threaded ProbeCache.
  std::uint64_t cross_hits = 0;
};

/// Monotone feasibility bounds for one instance within one search: the
/// highest target observed infeasible and the lowest observed feasible.
/// Bounds are instance-specific — create one per search run; they must not
/// be shared across instances (unlike the caches, whose keys are canonical).
class MonotoneBounds {
 public:
  /// The verdict for `target` if the bounds already decide it, nullopt
  /// otherwise.
  [[nodiscard]] std::optional<bool> decide(std::int64_t target) const noexcept {
    if (target <= highest_infeasible_) return false;
    if (target >= lowest_feasible_) return true;
    return std::nullopt;
  }

  /// Records an oracle verdict. Verdicts must come from a monotone oracle;
  /// contradictory notes keep the bounds conservative (they never cross).
  void note(std::int64_t target, bool feasible) noexcept {
    if (feasible) {
      if (target < lowest_feasible_ && target > highest_infeasible_)
        lowest_feasible_ = target;
    } else {
      if (target > highest_infeasible_ && target < lowest_feasible_)
        highest_infeasible_ = target;
    }
  }

  [[nodiscard]] std::int64_t highest_infeasible() const noexcept {
    return highest_infeasible_;
  }
  [[nodiscard]] std::int64_t lowest_feasible() const noexcept {
    return lowest_feasible_;
  }

 private:
  std::int64_t highest_infeasible_ =
      std::numeric_limits<std::int64_t>::min();
  std::int64_t lowest_feasible_ = std::numeric_limits<std::int64_t>::max();
};

/// Memo from canonical rounded problems to their DP OPT. Keys are
/// self-contained, so one cache may be shared across targets, search
/// strategies, and even instances; it memoizes only the scalar OPT, never
/// the DP table, so reconstruction solves always run for real. Thread
/// safety is implementation-defined — see the concrete classes.
class ProbeCacheBase {
 public:
  virtual ~ProbeCacheBase() = default;

  /// The memoized OPT for `key`, refreshing its recency; nullopt on miss.
  [[nodiscard]] virtual std::optional<std::int32_t> lookup(
      const ProbeKey& key) = 0;

  /// Memoizes `opt` for `key` (no-op if present), evicting an entry when
  /// full.
  virtual void insert(const ProbeKey& key, std::int32_t opt) = 0;

  /// Cumulative counters; a consistent point-in-time snapshot for the
  /// single-threaded cache, a near-consistent aggregate for the sharded one.
  [[nodiscard]] virtual ProbeCacheStats stats() const = 0;

  static constexpr std::size_t kDefaultMaxEntries = 4096;
};

/// Exact-LRU bounded memo. Not thread-safe: one owner at a time (a solve, a
/// bench loop). The serve daemon uses ShardedProbeCache instead.
class ProbeCache final : public ProbeCacheBase {
 public:
  /// `max_entries` bounds resident entries; least-recently-used entries are
  /// evicted beyond it. Must be >= 1.
  explicit ProbeCache(std::size_t max_entries = kDefaultMaxEntries);

  [[nodiscard]] std::optional<std::int32_t> lookup(
      const ProbeKey& key) override;
  void insert(const ProbeKey& key, std::int32_t opt) override;
  [[nodiscard]] ProbeCacheStats stats() const override { return stats_; }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  /// Drops all entries; statistics are kept.
  void clear();

 private:
  using Entry = std::pair<ProbeKey, std::int32_t>;

  std::size_t max_entries_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<ProbeKey, std::list<Entry>::iterator, ProbeKeyHash>
      map_;
  ProbeCacheStats stats_;
};

/// The cross-request probe cache: sharded, safe for concurrent lookup and
/// insert from many serve workers.
///
/// Layout: `shards` (rounded up to a power of two) independent shards, each
/// owning max_entries/shards entries. A key's shard is chosen by its hash,
/// so shards never share keys and per-shard eviction needs no global
/// coordination.
///
/// Read path: one copy of the shard's immutable snapshot handle under a
/// per-shard pointer latch (held for exactly one shared_ptr refcount
/// increment), then an open-addressed probe walk over the snapshot with no
/// lock at all, and — on a hit — one relaxed store stamping the entry with
/// the shard's atomic recency generation. Readers never block behind a
/// rebuild and never see a half-built table: writers rebuild whole
/// snapshots copy-on-write outside the latch, swap the handle under it,
/// and shared_ptr reference counting retires old snapshots only after the
/// last concurrent reader drops them. (libstdc++'s
/// std::atomic<std::shared_ptr> has this exact structure internally, but
/// its reader path releases the embedded spin latch with a relaxed store —
/// GCC 12 — which is a genuine C++-memory-model race that TSan reports;
/// the explicit latch makes the ordering provable and sanitizer-clean.)
///
/// Write path: per-shard mutex; insert rebuilds the shard snapshot with the
/// new entry, evicting the least-recently-stamped entry when the shard is
/// full. The DP is deterministic, so a re-insert must agree with the
/// resident value; a disagreement means a result was corrupted in flight
/// (e.g. an injected DP-cell fault). The cache then *drops* the poisoned
/// entry and throws StatusError(kDataCorruption) so the resilient driver
/// retries against a clean cache instead of re-serving the bad OPT to every
/// other request (self-healing).
///
/// Owner tags: a worker brackets each request with OwnerTagScope(request
/// id); hits on entries inserted under a different tag count as cross_hits
/// — the cross-request sharing the serve daemon exists to create.
class ShardedProbeCache final : public ProbeCacheBase {
 public:
  static constexpr std::size_t kDefaultShards = 8;

  /// `max_entries` bounds total resident entries across all shards (each
  /// shard gets max(1, max_entries/shards)); `shards` is rounded up to a
  /// power of two. Both must be >= 1.
  explicit ShardedProbeCache(std::size_t max_entries = kDefaultMaxEntries,
                             std::size_t shards = kDefaultShards);

  [[nodiscard]] std::optional<std::int32_t> lookup(
      const ProbeKey& key) override;
  void insert(const ProbeKey& key, std::int32_t opt) override;
  [[nodiscard]] ProbeCacheStats stats() const override;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_count_;
  }
  [[nodiscard]] std::size_t max_entries_per_shard() const noexcept {
    return per_shard_capacity_;
  }
  /// Resident entries in one shard (<= max_entries_per_shard, always).
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;
  /// Total resident entries.
  [[nodiscard]] std::size_t size() const;

  /// Drops all entries; statistics are kept.
  void clear();

  /// Entries poisoned by a re-insert disagreement and dropped (see class
  /// comment). Not part of ProbeCacheStats: eviction counters reconcile
  /// capacity, this counter flags corruption.
  [[nodiscard]] std::uint64_t corruption_drops() const noexcept;

  /// RAII owner tag for the calling thread: entries inserted inside the
  /// scope carry `tag`, and hits on entries carrying a different tag count
  /// as cross_hits. Tag 0 means untagged (never counts as cross).
  class OwnerTagScope {
   public:
    explicit OwnerTagScope(std::uint64_t tag) noexcept
        : previous_(t_owner_tag) {
      t_owner_tag = tag;
    }
    OwnerTagScope(const OwnerTagScope&) = delete;
    OwnerTagScope& operator=(const OwnerTagScope&) = delete;
    ~OwnerTagScope() { t_owner_tag = previous_; }

   private:
    std::uint64_t previous_;
  };

 private:
  struct Entry {
    ProbeKey key;
    std::int32_t opt = 0;
    std::uint64_t owner = 0;
    /// Recency stamp from the shard's generation counter; relaxed stores
    /// from readers, read by the evicting writer. Approximate LRU: stamps
    /// racing an eviction scan may keep a slightly stale victim choice,
    /// never an unsafe one.
    mutable std::atomic<std::uint64_t> last_used{0};
  };

  /// Immutable open-addressed snapshot (linear probing, no tombstones —
  /// every rebuild starts clean). slots.size() is a power of two at least
  /// twice the shard capacity, so probe walks terminate at an empty slot.
  struct Table {
    std::vector<std::shared_ptr<const Entry>> slots;
    std::size_t mask = 0;
    std::size_t used = 0;
  };

  struct Shard {
    /// The published snapshot handle. Guarded by `latch`; both sides hold
    /// it only for the shared_ptr copy/swap, never across a walk or a
    /// rebuild.
    std::shared_ptr<const Table> table;
    mutable std::mutex latch;
    std::mutex write_mutex;
    std::atomic<std::uint64_t> generation{0};
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> cross_hits{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> corruption_drops{0};
  };

  [[nodiscard]] Shard& shard_for(std::size_t hash) const noexcept {
    return shards_[hash & (shard_count_ - 1)];
  }
  /// New snapshot holding `entries`; slot count fixed per shard.
  [[nodiscard]] std::shared_ptr<const Table> rebuild(
      std::vector<std::shared_ptr<const Entry>> entries) const;
  /// Copies the shard's snapshot handle under its latch.
  [[nodiscard]] static std::shared_ptr<const Table> snapshot(
      const Shard& shard);
  /// Swaps in `next` under the latch; the old snapshot is destroyed after
  /// the latch is released.
  static void publish(Shard& shard, std::shared_ptr<const Table> next);

  static thread_local std::uint64_t t_owner_tag;

  std::size_t shard_count_;
  std::size_t per_shard_capacity_;
  std::size_t slot_count_;  // per shard, power of two
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace pcmax
