// Probe-level DP solve cache.
//
// Every feasibility probe of the PTAS search rounds the instance for a
// target T and solves the higher-dimensional DP. Distinct targets often
// round to the *same* problem — identical class counts, class indices, and
// capacity k^2 — because the class index floor(t_j * k^2 / T) is a step
// function of T. ProbeKey canonicalizes a rounded problem so such probes
// share one DP solve; ProbeCache is an LRU-bounded memo from key to the
// DP's OPT (machine count).
//
// MonotoneBounds exploits the other structural fact of the search: the
// feasibility oracle is monotone in T (false below the threshold T*, true
// at and above it), so once a verdict is known for some target, every
// target at or beyond it on the same side is decided without any solve.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/rounding.hpp"

namespace pcmax {

/// Canonical identity of a rounded DP problem: per-class long-job counts,
/// class indices (the DP weights), and the capacity k^2. Two targets with
/// equal keys have byte-identical DP problems and hence equal OPT.
struct ProbeKey {
  std::vector<std::int64_t> counts;
  std::vector<std::int64_t> weights;
  std::int64_t capacity = 0;

  bool operator==(const ProbeKey&) const = default;
};

struct ProbeKeyHash {
  [[nodiscard]] std::size_t operator()(const ProbeKey& key) const noexcept;
};

/// The canonical key of a feasible rounding. Requires rounded.feasible and
/// at least one long job (callers answer the empty rounding without a DP).
[[nodiscard]] ProbeKey probe_key_for(const RoundedInstance& rounded);

struct ProbeCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Probes answered by MonotoneBounds before any rounding or solve.
  std::uint64_t bound_skips = 0;
};

/// Monotone feasibility bounds for one instance within one search: the
/// highest target observed infeasible and the lowest observed feasible.
/// Bounds are instance-specific — create one per search run; they must not
/// be shared across instances (unlike ProbeCache, whose keys are canonical).
class MonotoneBounds {
 public:
  /// The verdict for `target` if the bounds already decide it, nullopt
  /// otherwise.
  [[nodiscard]] std::optional<bool> decide(std::int64_t target) const noexcept {
    if (target <= highest_infeasible_) return false;
    if (target >= lowest_feasible_) return true;
    return std::nullopt;
  }

  /// Records an oracle verdict. Verdicts must come from a monotone oracle;
  /// contradictory notes keep the bounds conservative (they never cross).
  void note(std::int64_t target, bool feasible) noexcept {
    if (feasible) {
      if (target < lowest_feasible_ && target > highest_infeasible_)
        lowest_feasible_ = target;
    } else {
      if (target > highest_infeasible_ && target < lowest_feasible_)
        highest_infeasible_ = target;
    }
  }

  [[nodiscard]] std::int64_t highest_infeasible() const noexcept {
    return highest_infeasible_;
  }
  [[nodiscard]] std::int64_t lowest_feasible() const noexcept {
    return lowest_feasible_;
  }

 private:
  std::int64_t highest_infeasible_ =
      std::numeric_limits<std::int64_t>::min();
  std::int64_t lowest_feasible_ = std::numeric_limits<std::int64_t>::max();
};

/// LRU-bounded memo from canonical rounded problems to their DP OPT. Keys
/// are self-contained, so one cache may be shared across targets, search
/// strategies, and even instances (e.g. across the repeated PTAS runs of a
/// benchmark); it memoizes only the scalar OPT, never the DP table, so
/// reconstruction solves always run for real.
class ProbeCache {
 public:
  /// `max_entries` bounds resident entries; least-recently-used entries are
  /// evicted beyond it. Must be >= 1.
  explicit ProbeCache(std::size_t max_entries = kDefaultMaxEntries);

  /// The memoized OPT for `key`, refreshing its recency; nullopt on miss.
  [[nodiscard]] std::optional<std::int32_t> lookup(const ProbeKey& key);

  /// Memoizes `opt` for `key` (no-op if present), evicting the LRU entry
  /// when full.
  void insert(const ProbeKey& key, std::int32_t opt);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }
  [[nodiscard]] const ProbeCacheStats& stats() const noexcept {
    return stats_;
  }

  /// Drops all entries; statistics are kept.
  void clear();

  static constexpr std::size_t kDefaultMaxEntries = 4096;

 private:
  using Entry = std::pair<ProbeKey, std::int32_t>;

  std::size_t max_entries_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<ProbeKey, std::list<Entry>::iterator, ProbeKeyHash>
      map_;
  ProbeCacheStats stats_;
};

}  // namespace pcmax
