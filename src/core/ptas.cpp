#include "core/ptas.hpp"

#include <algorithm>
#include <queue>

#include "core/bounds.hpp"
#include "core/rounding.hpp"
#include "core/search.hpp"
#include "dp/reconstruct.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace pcmax {

namespace {

/// Runs the DP for one target (or answers it from `cache`) and records the
/// invocation.
std::int32_t evaluate_target(const RoundedInstance& rounded,
                             const dp::DpSolver& solver,
                             const PtasOptions& options,
                             ProbeCacheBase* cache,
                             std::vector<DpInvocation>& calls) {
  DpInvocation call;
  call.target = rounded.target;
  call.nonzero_dims = rounded.nonzero_dims();
  call.long_jobs = rounded.long_jobs();
  call.table_size = rounded.table_size();
  const obs::ScopedSpan span(
      "dp/invocation",
      {obs::arg("target", rounded.target),
       obs::arg("table", static_cast<std::int64_t>(call.table_size))});
  std::int32_t opt = 0;
  if (!rounded.class_index.empty()) {
    ProbeKey key;
    if (cache != nullptr) {
      key = probe_key_for(rounded);
      if (const auto hit = cache->lookup(key)) {
        opt = *hit;
        call.cached = true;
      }
    }
    if (!call.cached) {
      dp::SolveOptions solve_options;
      solve_options.num_threads = options.num_threads;
      opt = solver.solve(to_dp_problem(rounded), solve_options).opt;
      if (cache != nullptr) cache->insert(key, opt);
    }
  }
  call.opt = opt;
  obs::count("dp.invocations");
  obs::observe("dp.table_size", static_cast<std::int64_t>(call.table_size));
  if (call.cached) {
    obs::count("dp.cache_answered");
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->instant("dp/cache-hit", {obs::arg("target", rounded.target),
                                   obs::arg("opt", opt)});
  } else if (!rounded.class_index.empty()) {
    obs::count("dp.cells", call.table_size);
  }
  calls.push_back(call);
  return opt;
}

/// Per-run delta of a (possibly shared, already warm) cache's counters.
ProbeCacheStats stats_delta(const ProbeCacheStats& now,
                            const ProbeCacheStats& before) {
  ProbeCacheStats d;
  d.lookups = now.lookups - before.lookups;
  d.hits = now.hits - before.hits;
  d.insertions = now.insertions - before.insertions;
  d.evictions = now.evictions - before.evictions;
  return d;
}

}  // namespace

void place_on_least_loaded(const Instance& instance,
                           const std::vector<std::size_t>& job_ids,
                           Schedule& schedule,
                           std::vector<std::int64_t>& loads) {
  PCMAX_EXPECTS(loads.size() == static_cast<std::size_t>(instance.machines));
  PCMAX_EXPECTS(schedule.assignment.size() == instance.times.size());
  // Min-heap of (load, machine); machine id breaks ties for determinism.
  using Entry = std::pair<std::int64_t, std::int64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::int64_t m = 0; m < instance.machines; ++m)
    heap.emplace(loads[static_cast<std::size_t>(m)], m);
  for (const auto j : job_ids) {
    auto [load, m] = heap.top();
    heap.pop();
    schedule.assignment[j] = m;
    load += instance.times[j];
    loads[static_cast<std::size_t>(m)] = load;
    heap.emplace(load, m);
  }
}

PtasResult solve_ptas(const Instance& instance, const dp::DpSolver& solver,
                      const PtasOptions& options) {
  instance.validate();
  const std::int64_t k = k_for_epsilon(options.epsilon);
  const std::int64_t lb = makespan_lower_bound(instance);
  const std::int64_t ub = makespan_upper_bound(instance);
  const obs::ScopedSpan span(
      "ptas/solve",
      {obs::arg("k", k), obs::arg("machines", instance.machines)});

  PtasResult result;
  ProbeCache local_cache;
  ProbeCacheBase* cache = nullptr;
  if (options.use_probe_cache)
    cache = options.probe_cache != nullptr ? options.probe_cache
                                           : &local_cache;
  const ProbeCacheStats stats_before =
      cache != nullptr ? cache->stats() : ProbeCacheStats{};
  // Bounds are instance-specific, so they live for this run only even when
  // the (canonically keyed) cache is shared.
  MonotoneBounds bounds;
  MonotoneBounds* bounds_ptr = cache != nullptr ? &bounds : nullptr;

  const FeasibilityOracle oracle = [&](std::int64_t target) {
    const RoundedInstance rounded = round_instance(instance, target, k);
    if (!rounded.feasible) return false;
    const std::int32_t opt =
        evaluate_target(rounded, solver, options, cache, result.dp_calls);
    return opt <= instance.machines;
  };

  const SearchResult search =
      options.strategy == SearchStrategy::kQuarterSplit
          ? quarter_split_search(lb, ub, oracle, options.segments, bounds_ptr)
          : bisection_search(lb, ub, oracle, bounds_ptr);
  result.best_target = search.best_target;
  result.search_iterations = search.iterations;
  if (cache != nullptr) {
    result.cache_stats = stats_delta(cache->stats(), stats_before);
    result.cache_stats.bound_skips = search.bound_skips;
  }

  if (!options.build_schedule) return result;

  const ScheduleBuild build = build_schedule_at_target(
      instance, solver, k, result.best_target, options.num_threads,
      result.dp_calls);
  result.schedule = build.schedule;
  result.achieved_makespan = build.achieved_makespan;
  return result;
}

ScheduleBuild build_schedule_at_target(const Instance& instance,
                                       const dp::DpSolver& solver,
                                       std::int64_t k, std::int64_t target,
                                       int num_threads,
                                       std::vector<DpInvocation>& dp_calls) {
  instance.validate();
  // Reconstruction at T*: schedule the rounded long jobs via the DP
  // backtrack (Algorithm 1 line 10), then add short jobs greedily.
  const obs::ScopedSpan span("ptas/reconstruct", {obs::arg("target", target)});
  const RoundedInstance rounded = round_instance(instance, target, k);
  PCMAX_ENSURES(rounded.feasible);

  ScheduleBuild build;
  build.schedule.assignment.assign(instance.times.size(), 0);
  std::vector<std::int64_t> loads(
      static_cast<std::size_t>(instance.machines), 0);

  if (!rounded.class_index.empty()) {
    const dp::DpProblem problem = to_dp_problem(rounded);
    dp::SolveOptions solve_options;
    solve_options.num_threads = num_threads;
    const dp::DpResult dp_result = [&] {
      const obs::ScopedSpan dp_span(
          "dp/invocation",
          {obs::arg("target", rounded.target),
           obs::arg("table",
                    static_cast<std::int64_t>(rounded.table_size()))});
      return solver.solve(problem, solve_options);
    }();
    obs::count("dp.invocations");
    obs::count("dp.cells", rounded.table_size());
    obs::observe("dp.table_size",
                 static_cast<std::int64_t>(rounded.table_size()));
    dp_calls.push_back(DpInvocation{
        rounded.target, rounded.table_size(), rounded.nonzero_dims(),
        rounded.long_jobs(), dp_result.opt});
    PCMAX_ENSURES(dp_result.opt <= instance.machines);

    const auto machines = dp::reconstruct_machines(problem, dp_result);
    std::vector<std::size_t> cursor(rounded.class_index.size(), 0);
    for (std::size_t m = 0; m < machines.size(); ++m) {
      for (std::size_t d = 0; d < machines[m].size(); ++d) {
        for (std::int64_t c = 0; c < machines[m][d]; ++c) {
          const std::size_t job = rounded.jobs_per_class[d][cursor[d]++];
          build.schedule.assignment[job] = static_cast<std::int64_t>(m);
          loads[m] += instance.times[job];
        }
      }
    }
  }

  place_on_least_loaded(instance, rounded.short_jobs, build.schedule, loads);
  build.achieved_makespan = *std::max_element(loads.begin(), loads.end());
  validate_schedule(instance, build.schedule);
  return build;
}

}  // namespace pcmax
