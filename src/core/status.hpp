// Typed error taxonomy for solver paths. Production callers need to know
// *why* a solve failed — and in particular whether the failure is transient
// (a retry after backoff may succeed: a device allocation raced another
// tenant, a stream stalled, a DP cell was corrupted in flight) or fatal for
// the attempt (the input is malformed, a deadline passed, the table cannot
// fit the memory budget at this epsilon). The resilient driver
// (core/resilient.hpp) keys its retry/degrade/fallback policy entirely off
// this classification, so every failure an engine can produce must map to
// exactly one StatusCode.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace pcmax {

enum class StatusCode : std::uint8_t {
  kOk = 0,

  // --- Transient: retrying the same engine (after backoff) may succeed. ---
  kDeviceOutOfMemory,   ///< simulated device allocation failed
  kHostOutOfMemory,     ///< host allocation failed (std::bad_alloc)
  kKernelLaunchFailed,  ///< kernel launch rejected by the device
  kStreamStalled,       ///< stream exceeded the device's stall watchdog
  kDataCorruption,      ///< result failed an integrity check

  // --- Fatal for the attempt: degrade epsilon or fall back instead. ------
  kMemoryBudgetExceeded,  ///< pre-flight: table exceeds the memory budget
  kTableOverflow,         ///< table size overflows 64-bit arithmetic
  kDeadlineExceeded,      ///< per-solve or per-probe deadline passed
  kInvalidInput,          ///< malformed instance or options
  kUnavailable,           ///< engine declined to run (e.g. skipped by pre-flight)
  kDeviceLost,            ///< device (or its route) permanently lost mid-solve
  kInternal,              ///< unclassified failure — always a bug to chase
};

/// True when a retry of the same engine may succeed.
[[nodiscard]] bool is_transient(StatusCode code) noexcept;

/// Stable lower-kebab-case name ("device-oom", "deadline-exceeded", ...)
/// used in logs, metrics counter names, and fault-plan replay artifacts.
[[nodiscard]] std::string_view status_code_name(StatusCode code) noexcept;

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] bool transient() const noexcept { return is_transient(code_); }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "device-oom: device allocation of 96 bytes exceeds 0 bytes free".
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence. Deliberately minimal: the
/// repository's solver paths either produce a full result or a Status, and
/// the driver never needs monadic composition.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    // A Result built from a Status must carry an error; an OK status with
    // no value would make has_value()/status() contradict each other.
    if (status_.is_ok())
      status_ = Status(StatusCode::kInternal, "OK status without a value");
  }

  [[nodiscard]] bool has_value() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const Status& status() const noexcept { return status_; }
  [[nodiscard]] T& value() { return *value_; }
  [[nodiscard]] const T& value() const { return *value_; }
  [[nodiscard]] T& operator*() { return *value_; }
  [[nodiscard]] const T& operator*() const { return *value_; }
  [[nodiscard]] T* operator->() { return &*value_; }
  [[nodiscard]] const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Exception carrying a Status across layers that still unwind via throw
/// (the DP solvers, the simulated device). The resilient driver converts
/// every exception back to a Status at its boundary.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Thrown by deadline guards (core/resilient.hpp) when a per-solve or
/// per-probe deadline has passed.
class DeadlineExceeded : public StatusError {
 public:
  explicit DeadlineExceeded(std::string message)
      : StatusError(Status(StatusCode::kDeadlineExceeded, std::move(message))) {}
};

}  // namespace pcmax
