#include "core/instance.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"

namespace pcmax {

void Instance::validate() const {
  PCMAX_EXPECTS(machines >= 1);
  PCMAX_EXPECTS(!times.empty());
  for (const auto t : times) PCMAX_EXPECTS(t >= 1);
}

std::int64_t Instance::total_time() const noexcept {
  return std::accumulate(times.begin(), times.end(), std::int64_t{0});
}

std::int64_t Instance::max_time() const noexcept {
  return times.empty() ? 0 : *std::max_element(times.begin(), times.end());
}

std::vector<std::int64_t> machine_loads(const Instance& instance,
                                        const Schedule& schedule) {
  validate_schedule(instance, schedule);
  std::vector<std::int64_t> loads(static_cast<std::size_t>(instance.machines),
                                  0);
  for (std::size_t j = 0; j < instance.times.size(); ++j)
    loads[static_cast<std::size_t>(schedule.assignment[j])] +=
        instance.times[j];
  return loads;
}

std::int64_t makespan(const Instance& instance, const Schedule& schedule) {
  const auto loads = machine_loads(instance, schedule);
  return *std::max_element(loads.begin(), loads.end());
}

void validate_schedule(const Instance& instance, const Schedule& schedule) {
  instance.validate();
  PCMAX_EXPECTS(schedule.assignment.size() == instance.times.size());
  for (const auto m : schedule.assignment)
    PCMAX_EXPECTS(m >= 0 && m < instance.machines);
}

}  // namespace pcmax
