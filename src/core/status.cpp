#include "core/status.hpp"

namespace pcmax {

bool is_transient(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kDeviceOutOfMemory:
    case StatusCode::kHostOutOfMemory:
    case StatusCode::kKernelLaunchFailed:
    case StatusCode::kStreamStalled:
    case StatusCode::kDataCorruption:
      return true;
    case StatusCode::kOk:
    case StatusCode::kMemoryBudgetExceeded:
    case StatusCode::kTableOverflow:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kInvalidInput:
    case StatusCode::kUnavailable:
    case StatusCode::kDeviceLost:
    case StatusCode::kInternal:
      return false;
  }
  return false;
}

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kDeviceOutOfMemory: return "device-oom";
    case StatusCode::kHostOutOfMemory: return "host-oom";
    case StatusCode::kKernelLaunchFailed: return "kernel-launch-failed";
    case StatusCode::kStreamStalled: return "stream-stalled";
    case StatusCode::kDataCorruption: return "data-corruption";
    case StatusCode::kMemoryBudgetExceeded: return "memory-budget-exceeded";
    case StatusCode::kTableOverflow: return "table-overflow";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kInvalidInput: return "invalid-input";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeviceLost: return "device-lost";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pcmax
