#include "core/cpu_time_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace pcmax {

util::SimTime estimate_openmp_dp_time(const dp::DpProblem& problem,
                                      const dp::DpResult& result,
                                      const CpuModelParams& params) {
  problem.validate();
  PCMAX_EXPECTS(params.threads >= 1);
  const dp::MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(result.deps.size() == radix.size());

  const dp::LevelBuckets buckets(radix);
  const auto sigma = static_cast<double>(radix.size());
  const auto dims = static_cast<double>(radix.dims());

  // Barriers get more expensive with more participants (tree barrier).
  const double barrier_ns =
      params.barrier_us * 1e3 *
      (1.0 + std::log2(static_cast<double>(params.threads)));

  double total_ns = 0.0;
  for (std::int64_t level = 1; level < buckets.levels(); ++level) {
    const auto cells = buckets.cells_at(level);
    double cell_ns = 0.0;  // work parallelized across the level's cells
    for (const auto id : cells) {
      const double deps = result.deps[id];
      cell_ns += deps * dims * params.enum_ns;             // enumerate C_v
      cell_ns += deps * (sigma / 2.0) * params.search_ns;  // locate each dep
    }
    // The per-level table scan splits over all threads; the per-cell work
    // cannot use more threads than the level has cells.
    const double cell_threads = std::min<double>(
        params.threads, static_cast<double>(cells.size()));
    total_ns += sigma * params.scan_ns / params.threads +
                cell_ns / cell_threads + barrier_ns;
  }
  return util::SimTime::from_ns(total_ns);
}

}  // namespace pcmax
