// Deterministic time model of the paper's OpenMP implementation of
// Algorithm 2, used to report OMP16/OMP28 figures on hosts that do not have
// a dual Xeon E5-2697v3 (see DESIGN.md "Substitutions").
//
// The model replays the exact per-level work distribution of a real solve:
// per anti-diagonal level, every thread scans the whole table to find its
// level's cells (Algorithm 2 line 12), enumerates each cell's machine
// configurations, and — the dominant term — locates every dependent
// sub-configuration by searching the entire DP-table (Algorithm 2 lines
// 18-19, the behaviour Section III.E attributes to the OpenMP code). Level
// work is divided over the thread count; an OpenMP barrier separates levels.
#pragma once

#include "dp/solver.hpp"
#include "util/sim_time.hpp"

namespace pcmax {

struct CpuModelParams {
  int threads = 16;
  /// Cost per cell visited by the per-level table scan.
  double scan_ns = 0.5;
  /// Cost per dependency per dimension for configuration enumeration.
  double enum_ns = 1.0;
  /// Cost per table cell visited while locating one sub-configuration
  /// (vector compare with early exit). Calibrated against Table VII.
  double search_ns = 8.0;
  /// Per-level OpenMP barrier.
  double barrier_us = 5.0;
};

/// Estimated wall time of the OpenMP Algorithm 2 on `problem`, given a
/// solved result carrying per-cell dependency counts (DpResult::deps — run
/// the solver with SolveOptions::collect_deps).
[[nodiscard]] util::SimTime estimate_openmp_dp_time(
    const dp::DpProblem& problem, const dp::DpResult& result,
    const CpuModelParams& params = {});

}  // namespace pcmax
