// Target-makespan search strategies over a monotone feasibility oracle.
//
// The oracle maps a target T to "a schedule within T exists" (dual
// approximation): false below some threshold T*, true at and above it.
// BisectionSearch is Algorithm 1's halving loop; QuarterSplitSearch is
// Algorithm 3's four-segment split, which probes four targets per round
// (concurrently, on the GPU) and shrinks the interval by 4-8x per round.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace pcmax {

class MonotoneBounds;  // core/probe_cache.hpp

/// Returns true when a schedule with makespan <= T exists (monotone in T).
using FeasibilityOracle = std::function<bool(std::int64_t target)>;

struct SearchResult {
  /// Smallest target in [lb, ub] the oracle accepts.
  std::int64_t best_target = 0;
  /// Rounds executed. A quarter-split round issues several probes but counts
  /// once, matching how Table VII counts "#itr". Rounds answered entirely by
  /// MonotoneBounds are not counted: no probe was issued.
  std::size_t iterations = 0;
  /// Every target the oracle actually evaluated, in order (duplicates
  /// possible across rounds). Bound-decided targets are not listed.
  std::vector<std::int64_t> probes;
  /// Probes answered by the MonotoneBounds instead of the oracle.
  std::size_t bound_skips = 0;
  /// Rounds whose verdict vector contradicted monotonicity (a feasible
  /// probe below an infeasible one) — always 0 for a correct oracle. The
  /// search falls back to plain bisection on the bracketing subinterval, so
  /// it still terminates and best_target is consistent with the verdicts
  /// the oracle actually gave.
  std::size_t monotonicity_violations = 0;
};

/// Classic bisection: one probe per round, interval halves.
/// Requires lb <= ub and oracle(ub) == true (guaranteed by the PTAS upper
/// bound). Behaviour is undefined if the oracle is not monotone. When
/// `bounds` is given, probes it already decides skip the oracle and verdicts
/// are recorded into it.
[[nodiscard]] SearchResult bisection_search(std::int64_t lb, std::int64_t ub,
                                            const FeasibilityOracle& oracle,
                                            MonotoneBounds* bounds = nullptr);

/// Algorithm 3: the interval is split into `segments` equal parts; the
/// midpoints of all parts are probed in one round (on the GPU these run
/// concurrently in separate Hyper-Q streams). The next interval is the part
/// bracketing the feasibility threshold.
[[nodiscard]] SearchResult quarter_split_search(
    std::int64_t lb, std::int64_t ub, const FeasibilityOracle& oracle,
    int segments = 4, MonotoneBounds* bounds = nullptr);

/// Batch oracle: receives every target of one round together, so callers
/// that evaluate probes concurrently (Hyper-Q) can account a whole round at
/// once. Must return one verdict per target, in order.
using BatchFeasibilityOracle =
    std::function<std::vector<bool>(std::span<const std::int64_t> targets)>;

/// Quarter-split search over a batch oracle. Identical interval logic to
/// the single-probe overload; rounds and probes are counted the same way.
/// Bound-decided targets are removed from the batch before the oracle sees
/// it; a round whose targets are all decided issues no batch at all.
[[nodiscard]] SearchResult quarter_split_search_batch(
    std::int64_t lb, std::int64_t ub, const BatchFeasibilityOracle& oracle,
    int segments = 4, MonotoneBounds* bounds = nullptr);

}  // namespace pcmax
