#include "core/resilient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "core/bounds.hpp"
#include "core/ptas.hpp"
#include "core/rounding.hpp"
#include "gpusim/device.hpp"  // header-only exception types; no link dependency
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax {

Deadline Deadline::after_ms(std::int64_t ms) {
  Deadline d;
  if (ms > 0) {
    d.unlimited_ = false;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
  }
  return d;
}

bool Deadline::expired() const noexcept {
  return !unlimited_ && Clock::now() >= at_;
}

std::int64_t Deadline::remaining_ms() const noexcept {
  if (unlimited_) return std::numeric_limits<std::int64_t>::max();
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at_ - Clock::now())
                        .count();
  return std::max<std::int64_t>(left, 0);
}

void Deadline::check(const char* what) const {
  if (expired())
    throw DeadlineExceeded(std::string(what) + " deadline exceeded");
}

namespace {

/// DpSolver decorator enforcing the per-solve and per-probe deadlines at
/// probe granularity: a probe is never started past either deadline, and a
/// finished probe that blew its own budget fails the attempt instead of
/// letting the search keep burning time. (Probes are not aborted mid-table;
/// promptness is bounded by one DP fill.)
class DeadlineSolver final : public dp::DpSolver {
 public:
  DeadlineSolver(const dp::DpSolver& inner, Deadline overall,
                 std::int64_t probe_ms)
      : inner_(inner), overall_(overall), probe_ms_(probe_ms) {}

  using dp::DpSolver::solve;
  [[nodiscard]] dp::DpResult solve(
      const dp::DpProblem& problem,
      const dp::SolveOptions& options) const override {
    overall_.check("solve");
    const Deadline probe = Deadline::after_ms(probe_ms_);
    dp::DpResult result = inner_.solve(problem, options);
    probe.check("probe");
    overall_.check("solve");
    return result;
  }

  [[nodiscard]] std::string name() const override { return inner_.name(); }

 private:
  const dp::DpSolver& inner_;
  Deadline overall_;
  std::int64_t probe_ms_;
};

EngineOutcome run_cpu_ptas(const dp::DpSolver& solver,
                           const Instance& instance, std::int64_t k,
                           const EngineContext& ctx) {
  const DeadlineSolver guarded(solver, ctx.deadline, ctx.probe_deadline_ms);
  PtasOptions options;
  options.epsilon = epsilon_for_k(k);
  options.num_threads = ctx.num_threads;
  options.use_probe_cache = ctx.probe_cache != nullptr;
  options.probe_cache = ctx.probe_cache;
  PtasResult r = solve_ptas(instance, guarded, options);
  return EngineOutcome{std::move(r.schedule), r.achieved_makespan,
                       r.best_target};
}

/// Worst-case DP-table bytes over the search range [LB, UB]: T = LB keeps
/// the most jobs long (t*k > T is hardest at the smallest target), so its
/// rounding has the largest per-class counts. Throws util::overflow_error
/// when the size does not even fit 64 bits.
std::uint64_t cpu_table_bytes(const Instance& instance, std::int64_t k) {
  const RoundedInstance rounded =
      round_instance(instance, makespan_lower_bound(instance), k);
  return util::checked_mul(rounded.table_size(), sizeof(std::int32_t));
}

SolveEngine make_cpu_engine(std::string name,
                            std::shared_ptr<const dp::DpSolver> solver) {
  SolveEngine engine;
  engine.name = std::move(name);
  engine.uses_k = true;
  engine.bound = [](std::int64_t, std::int64_t k) {
    return std::pair<std::int64_t, std::int64_t>{k + 1, k};
  };
  engine.mem_estimate = [](const Instance& instance, std::int64_t k) {
    return cpu_table_bytes(instance, k);
  };
  engine.run = [solver = std::move(solver)](const Instance& instance,
                                            std::int64_t k,
                                            const EngineContext& ctx) {
    return run_cpu_ptas(*solver, instance, k, ctx);
  };
  return engine;
}

/// Post-attempt integrity gate. Catches injected (and organic) result
/// corruption: the schedule must validate, the reported makespan must match
/// an independent recomputation, and a PTAS outcome must satisfy its own
/// certificate — T* within the search range and makespan * k <= (k+1) * T*.
Status integrity_check(const Instance& instance, std::int64_t k,
                       std::int64_t lower_bound, const EngineOutcome& out) {
  try {
    validate_schedule(instance, out.schedule);
  } catch (const std::exception& e) {
    return Status(StatusCode::kDataCorruption,
                  std::string("schedule failed validation: ") + e.what());
  }
  const std::int64_t recomputed = makespan(instance, out.schedule);
  if (recomputed != out.achieved_makespan)
    return Status(StatusCode::kDataCorruption,
                  "reported makespan " + std::to_string(out.achieved_makespan) +
                      " != recomputed " + std::to_string(recomputed));
  if (out.best_target > 0 && k > 0) {
    if (out.best_target < lower_bound)
      return Status(StatusCode::kDataCorruption,
                    "best target " + std::to_string(out.best_target) +
                        " below lower bound " + std::to_string(lower_bound));
    if (recomputed * k > (k + 1) * out.best_target)
      return Status(StatusCode::kDataCorruption,
                    "makespan " + std::to_string(recomputed) +
                        " violates (k+1)/k certificate at T*=" +
                        std::to_string(out.best_target) +
                        ", k=" + std::to_string(k));
  }
  return Status::ok();
}

void count_status(const Status& status) {
  obs::count(std::string("resilient.status.") +
             std::string(status_code_name(status.code())));
}

void record_attempt(ResilientResult& result, const SolveEngine& engine,
                    std::int64_t k, int retry, Status status,
                    CertificateTier tier = CertificateTier::kNone) {
  count_status(status);
  result.attempts.push_back(
      AttemptRecord{engine.name, k, retry, std::move(status), tier});
}

}  // namespace

double epsilon_for_k(std::int64_t k) {
  // fl(1.0/k) can land below 1/k (k=3 does), making ceil(1/eps) == k+1;
  // nudge upward until the round trip is exact.
  double eps = 1.0 / static_cast<double>(k);
  while (k_for_epsilon(eps) > k) eps = std::nextafter(eps, 1.0);
  return eps;
}

EngineOutcome lpt_outcome(const Instance& instance) {
  std::vector<std::size_t> order(instance.times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instance.times[a] > instance.times[b];
                   });
  EngineOutcome out;
  out.schedule.assignment.assign(instance.times.size(), 0);
  std::vector<std::int64_t> loads(
      static_cast<std::size_t>(instance.machines), 0);
  place_on_least_loaded(instance, order, out.schedule, loads);
  out.achieved_makespan =
      loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
  return out;
}

SolveEngine make_lpt_engine() {
  SolveEngine engine;
  engine.name = "lpt";
  engine.uses_k = false;
  engine.bound = [](std::int64_t m, std::int64_t) {
    return std::pair<std::int64_t, std::int64_t>{4 * m - 1, 3 * m};
  };
  engine.run = [](const Instance& instance, std::int64_t,
                  const EngineContext&) { return lpt_outcome(instance); };
  // LPT results carry the a-posteriori critical-machine certificate: the
  // tightest bound this terminal engine can prove about the schedule it
  // actually built, not just Graham's worst case.
  engine.certify = [](const Instance& instance, const EngineOutcome& out) {
    return lpt_certificate(instance, out.schedule);
  };
  return engine;
}

std::vector<SolveEngine> make_cpu_engines() {
  std::vector<SolveEngine> engines;
  engines.push_back(make_cpu_engine(
      "ptas-level-bucket", std::make_shared<dp::LevelBucketSolver>()));
  engines.push_back(make_cpu_engine("ptas-reference",
                                    std::make_shared<dp::ReferenceSolver>()));
  return engines;
}

std::vector<SolveEngine> make_default_chain() {
  std::vector<SolveEngine> chain = make_cpu_engines();
  chain.push_back(make_lpt_engine());
  return chain;
}

Status classify_current_exception() {
  try {
    throw;
  } catch (const StatusError& e) {
    return e.status();
  } catch (const gpusim::OutOfMemory& e) {
    return Status(StatusCode::kDeviceOutOfMemory, e.what());
  } catch (const gpusim::LaunchFailure& e) {
    return Status(StatusCode::kKernelLaunchFailed, e.what());
  } catch (const gpusim::StreamStalled& e) {
    return Status(StatusCode::kStreamStalled, e.what());
  } catch (const gpusim::DeviceLost& e) {
    // A lost device is not transient: retrying the same engine would meet
    // the same dead hardware. Fatal => the driver falls back immediately.
    return Status(StatusCode::kDeviceLost, e.what());
  } catch (const util::overflow_error& e) {
    return Status(StatusCode::kTableOverflow, e.what());
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kHostOutOfMemory, "host allocation failed");
  } catch (const util::contract_violation& e) {
    // The driver validates the instance up front, so a contract violation
    // inside an attempt means solver state went bad mid-flight.
    return Status(StatusCode::kDataCorruption, e.what());
  } catch (const std::exception& e) {
    return Status(StatusCode::kInternal, e.what());
  } catch (...) {
    return Status(StatusCode::kInternal, "unknown exception");
  }
}

ResilientResult solve_resilient(const Instance& instance,
                                std::span<const SolveEngine> chain,
                                const ResilientOptions& options) {
  ResilientResult result;
  try {
    instance.validate();
    if (options.epsilon <= 0.0 || options.epsilon > 1.0)
      throw util::contract_violation("epsilon must be in (0, 1]");
  } catch (const std::exception& e) {
    result.status = Status(StatusCode::kInvalidInput, e.what());
    count_status(result.status);
    return result;
  }
  if (chain.empty()) {
    result.status = Status(StatusCode::kUnavailable, "empty engine chain");
    count_status(result.status);
    return result;
  }

  const obs::ScopedSpan span("resilient/solve");
  const Deadline deadline = Deadline::after_ms(options.deadline_ms);
  const std::int64_t k0 = k_for_epsilon(options.epsilon);
  const std::int64_t lower_bound = makespan_lower_bound(instance);
  EngineContext ctx{deadline, options.probe_deadline_ms, options.num_threads,
                    options.probe_cache};

  const auto deadline_best_effort = [&]() {
    // Terminal deadline path: a best-effort LPT schedule (cheap, faultless)
    // plus the typed status — never a partial or corrupt result. Even here
    // the bound is certified a-posteriori from the schedule.
    obs::count("resilient.deadline.best_effort");
    if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
      tr->instant("resilient/deadline");
    EngineOutcome out = lpt_outcome(instance);
    const TieredBound cert = lpt_certificate(instance, out.schedule);
    result.schedule = std::move(out.schedule);
    result.achieved_makespan = out.achieved_makespan;
    result.engine = "lpt";
    result.k = 0;
    result.bound_num = cert.bound_num;
    result.bound_den = cert.bound_den;
    result.certificate_tier = cert.tier;
    result.degraded = true;
    result.status = Status(StatusCode::kDeadlineExceeded,
                           "solve deadline exceeded; best-effort LPT result");
    count_status(result.status);
    return result;
  };

  Status last_failure;
  for (std::size_t e = 0; e < chain.size(); ++e) {
    const SolveEngine& engine = chain[e];
    if (e > 0) {
      obs::count("resilient.fallbacks");
      if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
        tr->instant("resilient/fallback",
                    {obs::arg("engine", static_cast<std::int64_t>(e))});
    }

    // Memory pre-flight: degrade epsilon (halve k — coarser rounding,
    // smaller table) until the engine's estimate fits the budget; skip the
    // engine when even k=1 does not fit. An estimate that overflows 64 bits
    // is over any budget by definition.
    std::int64_t k = engine.uses_k ? k0 : 0;
    if (engine.uses_k && options.mem_budget_bytes > 0 && engine.mem_estimate) {
      const auto estimate = [&](std::int64_t at_k) -> std::uint64_t {
        try {
          return engine.mem_estimate(instance, at_k);
        } catch (const util::overflow_error&) {
          return std::numeric_limits<std::uint64_t>::max();
        }
      };
      std::uint64_t bytes = estimate(k);
      while (bytes > options.mem_budget_bytes && k > 1) {
        const std::int64_t coarser = k / 2;
        obs::count("resilient.degrade.k");
        if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
          tr->instant("resilient/degrade",
                      {obs::arg("from_k", k), obs::arg("to_k", coarser)});
        k = coarser;
        bytes = estimate(k);
      }
      if (bytes > options.mem_budget_bytes) {
        record_attempt(result, engine, k, 0,
                       Status(StatusCode::kMemoryBudgetExceeded,
                              engine.name + " needs " + std::to_string(bytes) +
                                  " bytes at k=" + std::to_string(k) +
                                  ", budget " +
                                  std::to_string(options.mem_budget_bytes)));
        last_failure = result.attempts.back().status;
        continue;
      }
    }

    for (int retry = 0; retry <= options.max_transient_retries; ++retry) {
      if (deadline.expired()) return deadline_best_effort();
      obs::count("resilient.attempts");
      if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
        tr->instant("resilient/attempt",
                    {obs::arg("engine", static_cast<std::int64_t>(e)),
                     obs::arg("k", k)});
      Status status;
      try {
        EngineOutcome out = engine.run(instance, k, ctx);
        status = integrity_check(instance, k, lower_bound, out);
        if (status.is_ok()) {
          // Bound provenance: an engine with a certify hook proves the
          // tightest bound it can from the schedule itself; the rest carry
          // their a-priori worst-case guarantee.
          TieredBound cert;
          if (engine.certify) {
            cert = engine.certify(instance, out);
          } else {
            std::tie(cert.bound_num, cert.bound_den) =
                engine.bound(instance.machines, k);
            cert.tier = CertificateTier::kAPriori;
          }
          record_attempt(result, engine, k, retry, Status::ok(), cert.tier);
          result.schedule = std::move(out.schedule);
          result.achieved_makespan = out.achieved_makespan;
          result.engine = engine.name;
          result.k = k;
          result.bound_num = cert.bound_num;
          result.bound_den = cert.bound_den;
          result.certificate_tier = cert.tier;
          result.degraded = e > 0 || (engine.uses_k && k != k0);
          result.status = Status::ok();
          return result;
        }
      } catch (...) {
        status = classify_current_exception();
      }
      record_attempt(result, engine, k, retry, status);
      last_failure = status;

      if (status.code() == StatusCode::kDeadlineExceeded) {
        if (deadline.expired()) return deadline_best_effort();
        break;  // per-probe budget blown: this engine is too slow, fall back
      }
      if (!status.transient()) break;

      if (engine.recover) engine.recover();
      if (retry < options.max_transient_retries) {
        // Saturating exponential backoff: a caller-supplied retry cap >= 63
        // would make an unclamped shift undefined behavior. Clamped to the
        // whole-solve deadline — sleeping past it would turn a recoverable
        // blip into a guaranteed kDeadlineExceeded.
        const int shift = std::min(retry, 20);
        std::int64_t backoff =
            options.backoff_ms > (std::numeric_limits<std::int64_t>::max() >>
                                  shift)
                ? std::numeric_limits<std::int64_t>::max()
                : options.backoff_ms << shift;
        backoff = std::min(backoff, deadline.remaining_ms());
        obs::count("resilient.retries");
        if (obs::TraceRecorder* tr = obs::trace(); tr != nullptr)
          tr->instant("resilient/retry",
                      {obs::arg("retry", retry + 1),
                       obs::arg("backoff_ms", backoff)});
        if (engine.backoff) engine.backoff(backoff);
      }
    }
  }

  if (deadline.expired()) return deadline_best_effort();
  result.status = last_failure.is_ok()
                      ? Status(StatusCode::kUnavailable, "no engine succeeded")
                      : last_failure;
  return result;
}

ResilientResult solve_resilient(const Instance& instance,
                                const ResilientOptions& options) {
  const std::vector<SolveEngine> chain = make_default_chain();
  return solve_resilient(instance, chain, options);
}

}  // namespace pcmax
