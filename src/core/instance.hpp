// Problem and solution types for P||Cmax: n jobs with integer processing
// times scheduled on m identical machines, minimizing the maximum machine
// load (makespan).
#pragma once

#include <cstdint>
#include <vector>

namespace pcmax {

struct Instance {
  /// Number of identical machines, m >= 1.
  std::int64_t machines = 1;
  /// Processing times t_j >= 1 (positive integers, as the PTAS assumes).
  std::vector<std::int64_t> times;

  /// Throws util::contract_violation when the instance is malformed.
  void validate() const;

  [[nodiscard]] std::size_t jobs() const noexcept { return times.size(); }
  [[nodiscard]] std::int64_t total_time() const noexcept;
  [[nodiscard]] std::int64_t max_time() const noexcept;
};

struct Schedule {
  /// assignment[j] is the machine (in [0, m)) running job j.
  std::vector<std::int64_t> assignment;
};

/// Per-machine total load under `schedule`.
[[nodiscard]] std::vector<std::int64_t> machine_loads(
    const Instance& instance, const Schedule& schedule);

/// Maximum machine load.
[[nodiscard]] std::int64_t makespan(const Instance& instance,
                                    const Schedule& schedule);

/// Throws util::contract_violation unless `schedule` assigns every job of
/// `instance` to a valid machine.
void validate_schedule(const Instance& instance, const Schedule& schedule);

}  // namespace pcmax
