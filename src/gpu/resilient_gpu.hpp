// Adapter making the simulated-GPU PTAS a SolveEngine for the resilient
// driver (core/resilient.hpp). Lives in gpu/ because core cannot link the
// gpu or gpusim libraries; the driver only sees the type-erased engine.
#pragma once

#include "core/resilient.hpp"
#include "gpu/gpu_ptas.hpp"
#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"

namespace pcmax::gpu {

/// The GPU PTAS as the head of a fallback chain. The engine borrows
/// `device` (which must outlive it): recover() resets the device after a
/// transient fault (dropping pending launches and orphaned allocations, as
/// cudaDeviceReset would) and backoff() charges retry backoff to the
/// device's simulated clock. `base` supplies the non-resilience knobs
/// (partition dims, streams, probe overlap); its epsilon is overridden by
/// the driver's current k.
[[nodiscard]] SolveEngine make_gpu_engine(gpusim::Device& device,
                                          const GpuPtasOptions& base = {});

/// Multi-device variant: probes run sharded over `topology` and the memory
/// pre-flight becomes per-device — mem_estimate reports the largest single
/// device's share of the DP table (ceil(total / devices) plus that device's
/// configuration replica), so ResilientOptions::mem_budget_bytes bounds
/// each device, not the sum. Sharding therefore raises the largest table
/// that solves without k-halving by roughly the device count. Transient
/// per-level dependency mirrors are not estimated (they are bounded by the
/// reach box and evicted at every barrier). recover() resets every device.
[[nodiscard]] SolveEngine make_gpu_engine(gpusim::Topology& topology,
                                          const GpuPtasOptions& base = {});

/// GPU chain: GPU PTAS, then the CPU engines, then LPT.
[[nodiscard]] std::vector<SolveEngine> make_gpu_chain(
    gpusim::Device& device, const GpuPtasOptions& base = {});

/// GPU chain headed by the multi-device engine.
[[nodiscard]] std::vector<SolveEngine> make_gpu_chain(
    gpusim::Topology& topology, const GpuPtasOptions& base = {});

}  // namespace pcmax::gpu
