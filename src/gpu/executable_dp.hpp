// Executable realization of Algorithm 5 on the simulator's per-thread API.
//
// Unlike GpuDpSolver — which charges *analytic* WorkEstimates — this engine
// runs FindOPT / FindValidSub / SetOPT as real thread functors: every
// global-memory access is issued through ThreadCtx against a modeled
// address space (blocked DP-table, per-cell coordinate vectors, class
// weights), so the simulator measures actual warp-coalesced transaction
// counts. It is intentionally slow (host-side thread emulation) and meant
// for small tables: its purpose is to (a) compute the DP end to end through
// the kernel structure itself and (b) ground the analytic charge formulas
// of gpu/charge.hpp against measured traffic (see ExecutableReport).
#pragma once

#include <cstdint>

#include "dp/solver.hpp"
#include "gpusim/device.hpp"

namespace pcmax::gpu {

struct ExecutableReport {
  /// The solved DP (table in row-major order, like every other engine).
  dp::DpResult result;
  /// Work measured by executing the kernels with access tracing.
  gpusim::WorkEstimate measured_find_opt;
  gpusim::WorkEstimate measured_find_valid_sub;
  gpusim::WorkEstimate measured_set_opt;
  /// The analytic charges GpuDpSolver would have applied to the same run.
  gpusim::WorkEstimate analytic_find_opt;
  gpusim::WorkEstimate analytic_find_valid_sub;
  gpusim::WorkEstimate analytic_set_opt;
  /// Simulated device time of the executable run.
  util::SimTime device_time;
};

/// Runs the executable Algorithm-5 engine. Keep the table small (the host
/// emulates every thread); a guard rejects tables above 100k cells.
[[nodiscard]] ExecutableReport run_executable_dp(const dp::DpProblem& problem,
                                                 gpusim::Device& device,
                                                 std::size_t partition_dims,
                                                 int stream_count = 4);

}  // namespace pcmax::gpu
