#include "gpu/gpu_ptas.hpp"

#include <algorithm>

#include "core/bounds.hpp"
#include "core/probe_cache.hpp"
#include "core/rounding.hpp"
#include "core/search.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pcmax::gpu {

namespace {

void accumulate(gpusim::Device::Stats& into,
                const gpusim::Device::Stats& delta) {
  into.kernels += delta.kernels;
  into.child_kernels += delta.child_kernels;
  into.threads += delta.threads;
  into.thread_ops += delta.thread_ops;
  into.transactions += delta.transactions;
  into.synchronizations += delta.synchronizations;
}

GpuPtasResult solve_sequential(const Instance& instance,
                               gpusim::Device& device,
                               const GpuPtasOptions& options) {
  const GpuDpSolver solver(device, options.partition_dims,
                           options.streams_per_probe);
  PtasOptions ptas_options;
  ptas_options.epsilon = options.epsilon;
  ptas_options.strategy = SearchStrategy::kQuarterSplit;
  ptas_options.segments = options.segments;
  ptas_options.build_schedule = options.build_schedule;
  ptas_options.use_probe_cache = options.use_probe_cache;
  ptas_options.probe_cache = options.probe_cache;

  GpuPtasResult result;
  const util::SimTime start = device.now();
  const gpusim::Device::Stats before = device.stats();
  // Algorithm spans (ptas/solve, search/round, dp/invocation) opened below
  // are stamped with this device's clock so they nest around the kernel
  // timeline on the simulated-time track.
  const obs::SimClockGuard sim_clock([&device] { return device.now().ps(); });
  result.ptas = solve_ptas(instance, solver, ptas_options);
  result.device_time = device.now() - start;
  result.stats = device.stats();
  result.stats.kernels -= before.kernels;
  result.stats.child_kernels -= before.child_kernels;
  result.stats.threads -= before.threads;
  result.stats.thread_ops -= before.thread_ops;
  result.stats.transactions -= before.transactions;
  result.stats.synchronizations -= before.synchronizations;
  return result;
}

GpuPtasResult solve_hyperq(const Instance& instance, gpusim::Device& device,
                           const GpuPtasOptions& options) {
  instance.validate();
  const std::int64_t k = k_for_epsilon(options.epsilon);
  const std::int64_t lb = makespan_lower_bound(instance);
  const std::int64_t ub = makespan_upper_bound(instance);

  GpuPtasResult result;
  ProbeCache local_cache;
  ProbeCacheBase* cache = nullptr;
  if (options.use_probe_cache)
    cache = options.probe_cache != nullptr ? options.probe_cache
                                           : &local_cache;
  const ProbeCacheStats stats_before =
      cache != nullptr ? cache->stats() : ProbeCacheStats{};
  MonotoneBounds bounds;
  const util::SimTime start = device.now();
  const obs::SimClockGuard sim_clock([&device] { return device.now().ps(); });
  const obs::ScopedSpan span(
      "ptas/solve",
      {obs::arg("k", k), obs::arg("machines", instance.machines)});

  // Each round's probes run on scratch devices (their own Hyper-Q stream
  // groups); the round costs its slowest probe on the caller's device.
  // Cache-answered probes skip the scratch solve and charge no time.
  const BatchFeasibilityOracle oracle =
      [&](std::span<const std::int64_t> targets) {
        std::vector<bool> feasible;
        util::SimTime round_time;
        for (const auto target : targets) {
          const RoundedInstance rounded = round_instance(instance, target, k);
          if (!rounded.feasible) {
            feasible.push_back(false);
            continue;
          }
          std::int32_t opt = 0;
          bool cached = false;
          {
            const obs::ScopedSpan probe_span(
                "dp/invocation",
                {obs::arg("target", target),
                 obs::arg("table",
                          static_cast<std::int64_t>(rounded.table_size()))});
            if (!rounded.class_index.empty()) {
              ProbeKey key;
              if (cache != nullptr) {
                key = probe_key_for(rounded);
                if (const auto hit = cache->lookup(key)) {
                  opt = *hit;
                  cached = true;
                }
              }
              if (!cached) {
                gpusim::Device scratch(device.spec());
                // The scratch device models concurrent activity with its own
                // private clock; its spans would overlap the primary
                // timeline, so only its aggregate stats are kept.
                scratch.set_trace_emission(false);
                const GpuDpSolver solver(scratch, options.partition_dims,
                                         options.streams_per_probe);
                opt = solver.solve(to_dp_problem(rounded)).opt;
                round_time = std::max(round_time, solver.last_solve_time());
                accumulate(result.stats, scratch.stats());
                if (cache != nullptr) cache->insert(key, opt);
              }
            }
          }
          obs::count("dp.invocations");
          obs::observe("dp.table_size",
                       static_cast<std::int64_t>(rounded.table_size()));
          if (cached)
            obs::count("dp.cache_answered");
          else if (!rounded.class_index.empty())
            obs::count("dp.cells", rounded.table_size());
          result.ptas.dp_calls.push_back(DpInvocation{
              target, rounded.table_size(), rounded.nonzero_dims(),
              rounded.long_jobs(), opt, cached});
          feasible.push_back(opt <= instance.machines);
        }
        device.advance(round_time);
        return feasible;
      };

  const SearchResult search = quarter_split_search_batch(
      lb, ub, oracle, options.segments, cache != nullptr ? &bounds : nullptr);
  result.ptas.best_target = search.best_target;
  result.ptas.search_iterations = search.iterations;
  if (cache != nullptr) {
    const ProbeCacheStats& now = cache->stats();
    result.ptas.cache_stats.lookups = now.lookups - stats_before.lookups;
    result.ptas.cache_stats.hits = now.hits - stats_before.hits;
    result.ptas.cache_stats.insertions =
        now.insertions - stats_before.insertions;
    result.ptas.cache_stats.evictions =
        now.evictions - stats_before.evictions;
    result.ptas.cache_stats.bound_skips = search.bound_skips;
  }

  if (options.build_schedule) {
    // Reconstruction runs once, on the caller's device.
    const GpuDpSolver solver(device, options.partition_dims,
                             options.streams_per_probe);
    const gpusim::Device::Stats before = device.stats();
    const ScheduleBuild build = build_schedule_at_target(
        instance, solver, k, result.ptas.best_target, 0,
        result.ptas.dp_calls);
    result.ptas.schedule = build.schedule;
    result.ptas.achieved_makespan = build.achieved_makespan;
    gpusim::Device::Stats delta = device.stats();
    delta.kernels -= before.kernels;
    delta.child_kernels -= before.child_kernels;
    delta.threads -= before.threads;
    delta.thread_ops -= before.thread_ops;
    delta.transactions -= before.transactions;
    delta.synchronizations -= before.synchronizations;
    accumulate(result.stats, delta);
  }

  result.device_time = device.now() - start;
  return result;
}

}  // namespace

GpuPtasResult solve_gpu_ptas(const Instance& instance, gpusim::Device& device,
                             const GpuPtasOptions& options) {
  return options.probe_overlap == ProbeOverlap::kHyperQ
             ? solve_hyperq(instance, device, options)
             : solve_sequential(instance, device, options);
}

}  // namespace pcmax::gpu
