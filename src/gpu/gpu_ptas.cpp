#include "gpu/gpu_ptas.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "core/bounds.hpp"
#include "core/probe_cache.hpp"
#include "core/rounding.hpp"
#include "core/search.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pcmax::gpu {

namespace {

void accumulate(gpusim::Device::Stats& into,
                const gpusim::Device::Stats& delta) {
  into.kernels += delta.kernels;
  into.child_kernels += delta.child_kernels;
  into.threads += delta.threads;
  into.thread_ops += delta.thread_ops;
  into.transactions += delta.transactions;
  into.synchronizations += delta.synchronizations;
}

[[nodiscard]] gpusim::Device::Stats subtract(
    gpusim::Device::Stats after, const gpusim::Device::Stats& before) {
  after.kernels -= before.kernels;
  after.child_kernels -= before.child_kernels;
  after.threads -= before.threads;
  after.thread_ops -= before.thread_ops;
  after.transactions -= before.transactions;
  after.synchronizations -= before.synchronizations;
  return after;
}

/// The simulation the PTAS runs against: one device, or a multi-device
/// topology whose probes run sharded. Thin dispatch so both overloads of
/// solve_gpu_ptas share one implementation.
struct SimTarget {
  gpusim::Device* device = nullptr;
  gpusim::Topology* topology = nullptr;

  [[nodiscard]] util::SimTime now() const {
    return topology != nullptr ? topology->now() : device->now();
  }
  void advance(util::SimTime delta) const {
    if (topology != nullptr)
      topology->advance(delta);
    else
      device->advance(delta);
  }
  [[nodiscard]] gpusim::Device::Stats stats() const {
    return topology != nullptr ? topology->aggregate_stats()
                               : device->stats();
  }
  [[nodiscard]] gpusim::Device& primary() const {
    return topology != nullptr ? topology->device(0) : *device;
  }
  [[nodiscard]] GpuDpSolver solver(const GpuPtasOptions& options) const {
    return topology != nullptr
               ? GpuDpSolver(*topology, options.partition_dims,
                             options.streams_per_probe, StreamPolicy::kCyclic,
                             options.placement, options.recovery)
               : GpuDpSolver(*device, options.partition_dims,
                             options.streams_per_probe);
  }
};

GpuPtasResult solve_sequential(const Instance& instance,
                               const SimTarget& target,
                               const GpuPtasOptions& options) {
  const GpuDpSolver solver = target.solver(options);
  PtasOptions ptas_options;
  ptas_options.epsilon = options.epsilon;
  ptas_options.strategy = SearchStrategy::kQuarterSplit;
  ptas_options.segments = options.segments;
  ptas_options.build_schedule = options.build_schedule;
  ptas_options.use_probe_cache = options.use_probe_cache;
  ptas_options.probe_cache = options.probe_cache;

  GpuPtasResult result;
  const util::SimTime start = target.now();
  const gpusim::Device::Stats before = target.stats();
  // Algorithm spans (ptas/solve, search/round, dp/invocation) opened below
  // are stamped with this target's clock so they nest around the kernel
  // timeline on the simulated-time track.
  const obs::SimClockGuard sim_clock([&target] { return target.now().ps(); });
  result.ptas = solve_ptas(instance, solver, ptas_options);
  result.device_time = target.now() - start;
  result.stats = subtract(target.stats(), before);
  return result;
}

GpuPtasResult solve_hyperq(const Instance& instance, const SimTarget& target,
                           const GpuPtasOptions& options) {
  instance.validate();
  const std::int64_t k = k_for_epsilon(options.epsilon);
  const std::int64_t lb = makespan_lower_bound(instance);
  const std::int64_t ub = makespan_upper_bound(instance);

  GpuPtasResult result;
  ProbeCache local_cache;
  ProbeCacheBase* cache = nullptr;
  if (options.use_probe_cache)
    cache = options.probe_cache != nullptr ? options.probe_cache
                                           : &local_cache;
  const ProbeCacheStats stats_before =
      cache != nullptr ? cache->stats() : ProbeCacheStats{};
  MonotoneBounds bounds;
  const util::SimTime start = target.now();
  const obs::SimClockGuard sim_clock([&target] { return target.now().ps(); });
  const obs::ScopedSpan span(
      "ptas/solve",
      {obs::arg("k", k), obs::arg("machines", instance.machines)});

  // Each round's probes run on scratch devices (their own Hyper-Q stream
  // groups) — scratch topologies of the same shape under a multi-device
  // target; the round costs its slowest probe on the caller's clock.
  // Cache-answered probes skip the scratch solve and charge no time.
  const BatchFeasibilityOracle oracle =
      [&](std::span<const std::int64_t> targets) {
        std::vector<bool> feasible;
        util::SimTime round_time;
        for (const auto target_value : targets) {
          const RoundedInstance rounded =
              round_instance(instance, target_value, k);
          if (!rounded.feasible) {
            feasible.push_back(false);
            continue;
          }
          std::int32_t opt = 0;
          bool cached = false;
          {
            const obs::ScopedSpan probe_span(
                "dp/invocation",
                {obs::arg("target", target_value),
                 obs::arg("table",
                          static_cast<std::int64_t>(rounded.table_size()))});
            if (!rounded.class_index.empty()) {
              ProbeKey key;
              if (cache != nullptr) {
                key = probe_key_for(rounded);
                if (const auto hit = cache->lookup(key)) {
                  opt = *hit;
                  cached = true;
                }
              }
              if (!cached) {
                // The scratch simulation models concurrent activity with
                // its own private clock; its spans would overlap the
                // primary timeline, so only its aggregate stats are kept.
                if (target.topology != nullptr) {
                  gpusim::Topology scratch(target.topology->device_count(),
                                           target.primary().spec(),
                                           target.topology->kind(),
                                           target.topology->link_spec());
                  scratch.set_trace_emission(false);
                  const GpuDpSolver solver(
                      scratch, options.partition_dims,
                      options.streams_per_probe, StreamPolicy::kCyclic,
                      options.placement, options.recovery);
                  opt = solver.solve(to_dp_problem(rounded)).opt;
                  round_time = std::max(round_time, solver.last_solve_time());
                  accumulate(result.stats, scratch.aggregate_stats());
                } else {
                  gpusim::Device scratch(target.device->spec());
                  scratch.set_trace_emission(false);
                  const GpuDpSolver solver(scratch, options.partition_dims,
                                           options.streams_per_probe);
                  opt = solver.solve(to_dp_problem(rounded)).opt;
                  round_time = std::max(round_time, solver.last_solve_time());
                  accumulate(result.stats, scratch.stats());
                }
                if (cache != nullptr) cache->insert(key, opt);
              }
            }
          }
          obs::count("dp.invocations");
          obs::observe("dp.table_size",
                       static_cast<std::int64_t>(rounded.table_size()));
          if (cached)
            obs::count("dp.cache_answered");
          else if (!rounded.class_index.empty())
            obs::count("dp.cells", rounded.table_size());
          result.ptas.dp_calls.push_back(DpInvocation{
              target_value, rounded.table_size(), rounded.nonzero_dims(),
              rounded.long_jobs(), opt, cached});
          feasible.push_back(opt <= instance.machines);
        }
        target.advance(round_time);
        return feasible;
      };

  const SearchResult search = quarter_split_search_batch(
      lb, ub, oracle, options.segments, cache != nullptr ? &bounds : nullptr);
  result.ptas.best_target = search.best_target;
  result.ptas.search_iterations = search.iterations;
  if (cache != nullptr) {
    const ProbeCacheStats& now = cache->stats();
    result.ptas.cache_stats.lookups = now.lookups - stats_before.lookups;
    result.ptas.cache_stats.hits = now.hits - stats_before.hits;
    result.ptas.cache_stats.insertions =
        now.insertions - stats_before.insertions;
    result.ptas.cache_stats.evictions =
        now.evictions - stats_before.evictions;
    result.ptas.cache_stats.bound_skips = search.bound_skips;
  }

  if (options.build_schedule) {
    // Reconstruction runs once, on the caller's device(s).
    const GpuDpSolver solver = target.solver(options);
    const gpusim::Device::Stats before = target.stats();
    const ScheduleBuild build = build_schedule_at_target(
        instance, solver, k, result.ptas.best_target, 0,
        result.ptas.dp_calls);
    result.ptas.schedule = build.schedule;
    result.ptas.achieved_makespan = build.achieved_makespan;
    accumulate(result.stats, subtract(target.stats(), before));
  }

  result.device_time = target.now() - start;
  return result;
}

GpuPtasResult solve_target(const Instance& instance, const SimTarget& target,
                           const GpuPtasOptions& options) {
  return options.probe_overlap == ProbeOverlap::kHyperQ
             ? solve_hyperq(instance, target, options)
             : solve_sequential(instance, target, options);
}

}  // namespace

GpuPtasResult solve_gpu_ptas(const Instance& instance, gpusim::Device& device,
                             const GpuPtasOptions& options) {
  SimTarget target;
  target.device = &device;
  return solve_target(instance, target, options);
}

GpuPtasResult solve_gpu_ptas(const Instance& instance,
                             gpusim::Topology& topology,
                             const GpuPtasOptions& options) {
  SimTarget target;
  target.topology = &topology;
  return solve_target(instance, target, options);
}

}  // namespace pcmax::gpu
