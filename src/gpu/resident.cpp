#include "gpu/resident.hpp"

#include <algorithm>

#include "dp/config.hpp"
#include "partition/blocked_layout.hpp"
#include "partition/divisor.hpp"
#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpu {

std::vector<std::int64_t> dependency_reach(
    const dp::DpProblem& problem, const partition::BlockedLayout& layout) {
  const dp::MixedRadix radix = problem.radix();
  const dp::ConfigSet configs(problem.counts, problem.weights,
                              problem.capacity, radix);
  const auto& block_size = layout.block().extents();
  const std::size_t dims = radix.dims();
  std::vector<std::int64_t> reach(dims, 0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const auto s = configs.config(c);
    for (std::size_t i = 0; i < dims; ++i)
      reach[i] = std::max(
          reach[i], static_cast<std::int64_t>(util::ceil_div(
                        static_cast<std::uint64_t>(s[i]),
                        static_cast<std::uint64_t>(block_size[i]))));
  }
  return reach;
}

ResidentAnalysis analyze_block_residency(const dp::DpProblem& problem,
                                         std::size_t partition_dims) {
  problem.validate();
  const dp::MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(radix.dims() <= 64);

  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), partition_dims));
  const dp::LevelBuckets block_buckets(layout.grid());
  const std::size_t dims = radix.dims();

  ResidentAnalysis analysis;
  analysis.table_cells = radix.size();
  analysis.reach = dependency_reach(problem, layout);

  // For each block-level: mark the level's blocks and every block within
  // the per-dimension reach box below them.
  std::vector<char> needed(layout.block_count());
  std::vector<std::int64_t> g(dims), h(dims);
  for (std::int64_t lvl = 0; lvl < block_buckets.levels(); ++lvl) {
    std::fill(needed.begin(), needed.end(), 0);
    for (const auto block_id : block_buckets.cells_at(lvl)) {
      layout.grid().unflatten(block_id, g);
      // Enumerate the reach box below g: offsets in prod [0, reach_i].
      std::vector<std::int64_t> offset(dims, 0);
      bool done = false;
      while (!done) {
        bool in_range = true;
        for (std::size_t i = 0; i < dims; ++i) {
          h[i] = g[i] - offset[i];
          if (h[i] < 0) {
            in_range = false;
            break;
          }
        }
        if (in_range) needed[layout.grid().flatten(h)] = 1;
        done = true;
        for (std::size_t i = dims; i-- > 0;) {
          if (++offset[i] <= analysis.reach[i]) {
            done = false;
            break;
          }
          offset[i] = 0;
        }
      }
    }
    std::uint64_t blocks_needed = 0;
    for (const auto n : needed) blocks_needed += static_cast<std::uint64_t>(n);
    analysis.resident_cells_per_level.push_back(blocks_needed *
                                                layout.cells_per_block());
  }
  analysis.peak_resident_cells =
      *std::max_element(analysis.resident_cells_per_level.begin(),
                        analysis.resident_cells_per_level.end());
  return analysis;
}

}  // namespace pcmax::gpu
