#include "gpu/charge.hpp"

#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpu {

namespace {
constexpr std::uint64_t kSegmentBytes = 128;
constexpr std::uint64_t kWordBytes = 4;
constexpr std::uint64_t kVecBytes = 8;  // per-dimension int64 loads
}  // namespace

gpusim::WorkEstimate charge_find_opt(const LevelWork& level,
                                     const ChargeParams& params) {
  PCMAX_EXPECTS(params.dims >= 1);
  gpusim::WorkEstimate w;
  w.threads = level.cells;
  // Each thread reads its configuration vector (Algorithm 5 lines 14-16) and
  // computes the candidate count: ~4 ops per dimension.
  w.thread_ops = level.cells * 4 * params.dims;
  // Configuration vectors are stored contiguously in the blocked layout, so
  // the grid reads cells * dims words coalesced.
  w.transactions =
      util::ceil_div(level.cells * params.dims * kVecBytes, kSegmentBytes);
  // Two child kernels per thread (FindValidSub, SetOPT).
  w.child_launches = 2 * level.cells;
  return w;
}

gpusim::WorkEstimate charge_find_valid_sub(const LevelWork& level,
                                           const ChargeParams& params) {
  gpusim::WorkEstimate w;
  w.threads = level.candidates;
  // Validity test: weight accumulation over the dimensions.
  w.thread_ops = level.candidates * 2 * params.dims;
  // Each thread materializes its candidate vector from thread id (compute)
  // and reads the class weights: weights are tiny and cached; charge the
  // writes of valid candidates only.
  w.transactions =
      util::ceil_div(level.deps * params.dims * kVecBytes, kSegmentBytes);
  return w;
}

gpusim::WorkEstimate charge_set_opt(const LevelWork& level,
                                    const ChargeParams& params) {
  PCMAX_EXPECTS(params.search_cells >= 1);
  PCMAX_EXPECTS(params.scan_broadcast >= 1);
  gpusim::WorkEstimate w;
  w.threads = level.deps;
  // Algorithm 5 lines 25-28: each thread scans the search scope comparing
  // dims-long vectors; on average half the scope is visited.
  const std::uint64_t scanned = params.search_cells / 2 + 1;
  w.thread_ops = level.deps * scanned * params.dims;
  // The scan reads scanned * dims words per thread; warps scan overlapping
  // regions, discounted by scan_broadcast.
  w.transactions =
      util::ceil_div(level.deps * scanned * params.dims * kWordBytes,
                     kSegmentBytes * params.scan_broadcast);
  return w;
}

}  // namespace pcmax::gpu
