// Structural cost formulas for the three kernels of Algorithm 5, expressed
// as gpusim::WorkEstimate values. The quantities mirror the paper's own
// analysis (Section III.E):
//
//   FindOPT      one thread per configuration of an (in-block) anti-diagonal
//                level; reads the configuration vector and launches the two
//                child kernels per thread (Dynamic Parallelism).
//   FindValidSub one thread per sub-configuration *candidate*
//                (prod(v_i + 1), Algorithm 5 line 16), each testing validity
//                against the capacity.
//   SetOPT       one thread per *valid* sub-configuration, each locating its
//                OPT value by scanning the search scope — `search_cells`
//                cells: the enclosing block under the data-partitioning
//                scheme, the whole DP-table in the naive port. This scope
//                difference is the core of the paper's claim.
//
// Transactions model coalescing structurally: per-cell vectors are read
// contiguously (coalesced), table scans by the threads of one warp overlap
// heavily (broadcast-discounted).
#pragma once

#include <cstdint>

#include "gpusim/kernel.hpp"

namespace pcmax::gpu {

/// Aggregated work of one anti-diagonal level.
struct LevelWork {
  std::uint64_t cells = 0;       ///< configurations at this level
  std::uint64_t candidates = 0;  ///< sum of prod(v_i + 1) over cells
  std::uint64_t deps = 0;        ///< sum of |C_v| over cells
};

struct ChargeParams {
  /// Dimensions of the DP-table (k^2 at most; non-zero classes).
  std::uint64_t dims = 1;
  /// Cells scanned per SetOPT thread to locate one sub-configuration:
  /// cells-per-block when partitioned, the full table size when not.
  std::uint64_t search_cells = 1;
  /// Warp-overlap discount for table scans. Threads of a warp scan the same
  /// block region but enter and exit at different points (early-exit vector
  /// compare), so only a small overlap credit applies.
  std::uint64_t scan_broadcast = 1;
};

[[nodiscard]] gpusim::WorkEstimate charge_find_opt(const LevelWork& level,
                                                   const ChargeParams& params);
[[nodiscard]] gpusim::WorkEstimate charge_find_valid_sub(
    const LevelWork& level, const ChargeParams& params);
[[nodiscard]] gpusim::WorkEstimate charge_set_opt(const LevelWork& level,
                                                  const ChargeParams& params);

}  // namespace pcmax::gpu
