#include "gpu/gpu_dp_solver.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "gpu/charge.hpp"
#include "gpu/resident.hpp"
#include "util/checked_math.hpp"
#include "obs/trace.hpp"
#include "partition/block_solver.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpu {

namespace {

constexpr std::uint64_t kNaiveSegmentBytes = 128;
constexpr std::uint64_t kNaiveDivergence = 8;

LevelWork aggregate(std::span<const partition::BlockObserver::CellStat> cells) {
  LevelWork work;
  work.cells = cells.size();
  for (const auto& c : cells) {
    work.candidates += c.candidates;
    work.deps += c.deps;
  }
  return work;
}

/// Drives the device while the BlockedSolver walks the block wavefront.
class ChargingObserver final : public partition::BlockObserver {
 public:
  ChargingObserver(gpusim::Device& device, int stream_count,
                   StreamPolicy stream_policy)
      : device_(device),
        stream_count_(stream_count),
        stream_policy_(stream_policy) {}

  void on_solve_begin(const partition::BlockedLayout& layout,
                      std::uint64_t config_count) override {
    params_.dims = layout.table_radix().dims();
    params_.search_cells = layout.cells_per_block();
    // Persistent allocations for the whole solve: the blocked DP-table and
    // the configuration set (Algorithm 4 line 11).
    table_ = device_.allocate(
        util::checked_mul(layout.table_radix().size(), 4));
    configs_ = device_.allocate(
        util::checked_mul(util::checked_mul(config_count, params_.dims), 8));
    peak_ = device_.memory_in_use();
    first_level_ = true;
  }

  void on_block_level(std::int64_t /*level*/,
                      std::span<const std::uint64_t> blocks) override {
    // Wavefront barrier between block-levels (Algorithm 4 lines 29-31).
    if (!first_level_) device_.synchronize();
    first_level_ = false;
    // Distribute the level's blocks over the streams: cyclic (Algorithm 4
    // line 31) or contiguous chunks (ablation).
    stream_of_.clear();
    const auto streams = static_cast<std::size_t>(stream_count_);
    const std::size_t chunk =
        (blocks.size() + streams - 1) / std::max<std::size_t>(1, streams);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const std::size_t stream = stream_policy_ == StreamPolicy::kCyclic
                                     ? i % streams
                                     : i / std::max<std::size_t>(1, chunk);
      stream_of_[blocks[i]] = static_cast<int>(stream);
    }
  }

  void on_in_block_level(std::uint64_t block_id, std::int64_t /*in_level*/,
                         std::span<const CellStat> cells) override {
    const LevelWork work = aggregate(cells);
    if (work.cells == 0) return;
    const int stream = stream_of_.at(block_id);
    // Per-level candidate scratch (freed when the level's kernels retire;
    // the data-partitioning scheme sizes it by the block, not the table).
    [[maybe_unused]] const auto scratch =
        device_.allocate(util::checked_mul(work.candidates, 4));
    peak_ = std::max(peak_, device_.memory_in_use());
    device_.launch_estimated(stream, "FindOPT",
                             charge_find_opt(work, params_));
    if (work.candidates > 0)
      device_.launch_accounted(stream, "FindValidSub",
                               charge_find_valid_sub(work, params_));
    if (work.deps > 0)
      device_.launch_accounted(stream, "SetOPT",
                               charge_set_opt(work, params_));
  }

  void on_solve_end() override {
    device_.synchronize();
    table_.release();
    configs_.release();
  }

  [[nodiscard]] std::uint64_t peak_memory() const noexcept { return peak_; }

 private:
  gpusim::Device& device_;
  int stream_count_;
  StreamPolicy stream_policy_;
  ChargeParams params_;
  std::unordered_map<std::uint64_t, int> stream_of_;
  gpusim::Device::Buffer table_;
  gpusim::Device::Buffer configs_;
  std::uint64_t peak_ = 0;
  bool first_level_ = true;
};

/// Drives a multi-device Topology while the BlockedSolver walks the block
/// wavefront: each block's kernels run on the device its placement chose,
/// and before a block-level starts, every dependency block a device needs
/// but does not own is charged as an interconnect transfer (plus a mirror
/// allocation that lives for the level — the exact working set
/// resident.hpp computes). Real values still come from the BlockedSolver,
/// so results are bit-identical to the single-device path by construction.
class ShardedChargingObserver final : public partition::BlockObserver {
 public:
  ShardedChargingObserver(gpusim::Topology& topology,
                          const placement::PlacementStrategy& strategy,
                          const dp::DpProblem& problem, int stream_count,
                          StreamPolicy stream_policy)
      : topology_(topology),
        strategy_(strategy),
        problem_(problem),
        stream_count_(stream_count),
        stream_policy_(stream_policy) {}

  void on_solve_begin(const partition::BlockedLayout& layout,
                      std::uint64_t config_count) override {
    layout_ = &layout;
    params_.dims = layout.table_radix().dims();
    params_.search_cells = layout.cells_per_block();
    block_bytes_ = util::checked_mul(layout.cells_per_block(), 4);
    reach_ = dependency_reach(problem_, layout);
    const int n = topology_.device_count();
    plan_ = strategy_.place(layout, n, reach_);
    PCMAX_EXPECTS(plan_.size() == layout.block_count());

    // Per-device persistent allocations: the device's table shard plus a
    // replica of the configuration set (every device probes configurations
    // against its own blocks, as each real GPU would hold its own copy).
    std::vector<std::uint64_t> blocks_on(static_cast<std::size_t>(n), 0);
    for (const int d : plan_) ++blocks_on[static_cast<std::size_t>(d)];
    shards_.clear();
    configs_.clear();
    peaks_.assign(static_cast<std::size_t>(n), 0);
    for (int d = 0; d < n; ++d) {
      gpusim::Device& dev = topology_.device(d);
      shards_.push_back(dev.allocate(util::checked_mul(
          blocks_on[static_cast<std::size_t>(d)], block_bytes_)));
      configs_.push_back(dev.allocate(
          util::checked_mul(util::checked_mul(config_count, params_.dims), 8)));
      peaks_[static_cast<std::size_t>(d)] = dev.memory_in_use();
    }
    first_level_ = true;
  }

  void on_block_level(std::int64_t /*level*/,
                      std::span<const std::uint64_t> blocks) override {
    const int n = topology_.device_count();
    // Wavefront barrier across all devices between block-levels; the
    // previous level's dependency mirrors are evicted once it retires.
    if (!first_level_) topology_.barrier();
    first_level_ = false;
    mirrors_.clear();
    mirrored_.clear();

    // Per-device stream assignment: each device distributes ITS blocks of
    // the level over its streams, cyclic (Algorithm 4 line 31) or chunked.
    stream_of_.clear();
    std::vector<std::size_t> on_device(static_cast<std::size_t>(n), 0);
    for (const std::uint64_t b : blocks)
      ++on_device[static_cast<std::size_t>(plan_[b])];
    const auto streams = static_cast<std::size_t>(stream_count_);
    std::vector<std::size_t> index(static_cast<std::size_t>(n), 0);
    for (const std::uint64_t b : blocks) {
      const auto d = static_cast<std::size_t>(plan_[b]);
      const std::size_t i = index[d]++;
      const std::size_t chunk =
          (on_device[d] + streams - 1) / std::max<std::size_t>(1, streams);
      const std::size_t stream = stream_policy_ == StreamPolicy::kCyclic
                                     ? i % streams
                                     : i / std::max<std::size_t>(1, chunk);
      stream_of_[b] = static_cast<int>(stream);
    }

    // Cross-device dependency transfers: for every block of the level,
    // each reach-box predecessor owned by another device is shipped to the
    // block's device (once per level per destination) before the level's
    // kernels may start. The destination waits for its latest arrival.
    const dp::MixedRadix& grid = layout_->grid();
    std::vector<util::SimTime> arrival(static_cast<std::size_t>(n));
    std::vector<std::int64_t> g(grid.dims());
    for (const std::uint64_t b : blocks) {
      const int dst = plan_[b];
      grid.unflatten(b, g);
      placement::for_each_reach_predecessor(
          grid, g, reach_, [&](std::uint64_t pred) {
            const int src = plan_[pred];
            if (src == dst) return;
            const std::uint64_t key =
                static_cast<std::uint64_t>(dst) * layout_->block_count() +
                pred;
            if (!mirrored_.insert(key).second) return;
            const auto dd = static_cast<std::size_t>(dst);
            arrival[dd] = std::max(
                arrival[dd], topology_.transfer(src, dst, block_bytes_));
            mirrors_.push_back(topology_.device(dst).allocate(block_bytes_));
            peaks_[dd] = std::max(peaks_[dd],
                                  topology_.device(dst).memory_in_use());
          });
    }
    for (int d = 0; d < n; ++d) {
      gpusim::Device& dev = topology_.device(d);
      const auto dd = static_cast<std::size_t>(d);
      if (arrival[dd] > dev.now()) dev.advance(arrival[dd] - dev.now());
    }
  }

  void on_in_block_level(std::uint64_t block_id, std::int64_t /*in_level*/,
                         std::span<const CellStat> cells) override {
    const LevelWork work = aggregate(cells);
    if (work.cells == 0) return;
    const auto d = static_cast<std::size_t>(plan_[block_id]);
    gpusim::Device& dev = topology_.device(static_cast<int>(d));
    const int stream = stream_of_.at(block_id);
    [[maybe_unused]] const auto scratch =
        dev.allocate(util::checked_mul(work.candidates, 4));
    peaks_[d] = std::max(peaks_[d], dev.memory_in_use());
    dev.launch_estimated(stream, "FindOPT", charge_find_opt(work, params_));
    if (work.candidates > 0)
      dev.launch_accounted(stream, "FindValidSub",
                           charge_find_valid_sub(work, params_));
    if (work.deps > 0)
      dev.launch_accounted(stream, "SetOPT", charge_set_opt(work, params_));
  }

  void on_solve_end() override {
    topology_.barrier();
    mirrors_.clear();
    shards_.clear();
    configs_.clear();
  }

  [[nodiscard]] std::uint64_t peak_memory() const noexcept {
    return peaks_.empty() ? 0
                          : *std::max_element(peaks_.begin(), peaks_.end());
  }
  [[nodiscard]] const std::vector<std::uint64_t>& device_peaks()
      const noexcept {
    return peaks_;
  }

 private:
  gpusim::Topology& topology_;
  const placement::PlacementStrategy& strategy_;
  const dp::DpProblem& problem_;
  int stream_count_;
  StreamPolicy stream_policy_;
  ChargeParams params_;
  const partition::BlockedLayout* layout_ = nullptr;
  std::uint64_t block_bytes_ = 0;
  std::vector<std::int64_t> reach_;
  std::vector<int> plan_;
  std::unordered_map<std::uint64_t, int> stream_of_;
  std::vector<gpusim::Device::Buffer> shards_;
  std::vector<gpusim::Device::Buffer> configs_;
  std::vector<gpusim::Device::Buffer> mirrors_;
  std::unordered_set<std::uint64_t> mirrored_;  // (dst, pred) this level
  std::vector<std::uint64_t> peaks_;
  bool first_level_ = true;
};

}  // namespace

GpuDpSolver::GpuDpSolver(gpusim::Device& device, std::size_t partition_dims,
                         int stream_count, StreamPolicy stream_policy)
    : device_(&device),
      partition_dims_(partition_dims),
      stream_count_(stream_count),
      stream_policy_(stream_policy) {
  PCMAX_EXPECTS(stream_count >= 1);
  PCMAX_EXPECTS(stream_count <= device.spec().max_streams);
}

GpuDpSolver::GpuDpSolver(gpusim::Topology& topology,
                         std::size_t partition_dims, int stream_count,
                         StreamPolicy stream_policy,
                         placement::PlacementKind placement)
    : device_(&topology.device(0)),
      topology_(&topology),
      partition_dims_(partition_dims),
      stream_count_(stream_count),
      stream_policy_(stream_policy),
      placement_(placement) {
  PCMAX_EXPECTS(stream_count >= 1);
  PCMAX_EXPECTS(stream_count <= device_->spec().max_streams);
}

std::string GpuDpSolver::name() const {
  return "gpu-dim" + std::to_string(partition_dims_);
}

dp::DpResult GpuDpSolver::solve(const dp::DpProblem& problem,
                                const dp::SolveOptions& options) const {
  // A one-device topology short-circuits onto the exact single-device path
  // (device_ already points at its device 0), so devices=1 costs nothing
  // over the pre-topology solver.
  if (topology_ != nullptr && topology_->device_count() > 1)
    return solve_sharded(problem, options);
  // Stamp spans opened during this solve with the device clock so they land
  // on the simulated-time track, bracketing the kernels they launched.
  // Scratch devices (trace_emission off) stay off every track: their
  // private clocks would interleave non-monotonically with the primary
  // device's timeline.
  const util::SimTime start = device_->now();
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_->trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([this] { return device_->now().ps(); });
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size())),
        obs::arg("streams", stream_count_)};
    span.emplace("gpu/dp-solve", args);
  }
  ChargingObserver observer(*device_, stream_count_, stream_policy_);
  const partition::BlockedSolver solver(partition_dims_, &observer);
  dp::DpResult result = solver.solve(problem, options);
  last_solve_time_ = device_->now() - start;
  last_peak_memory_ = observer.peak_memory();
  last_device_peaks_.assign(1, last_peak_memory_);
  return result;
}

dp::DpResult GpuDpSolver::solve_sharded(
    const dp::DpProblem& problem, const dp::SolveOptions& options) const {
  gpusim::Topology& topology = *topology_;
  const util::SimTime start = topology.now();
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_->trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([&topology] { return topology.now().ps(); });
    // Trace events carry at most two args; "devices" is the one the
    // single-device span does not have, "streams" the one it sacrifices.
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size())),
        obs::arg("devices", topology.device_count())};
    span.emplace("gpu/dp-solve", args);
  }
  const std::unique_ptr<placement::PlacementStrategy> strategy =
      placement::make_placement(placement_);
  ShardedChargingObserver observer(topology, *strategy, problem,
                                   stream_count_, stream_policy_);
  const partition::BlockedSolver solver(partition_dims_, &observer);
  dp::DpResult result = solver.solve(problem, options);
  last_solve_time_ = topology.now() - start;
  last_device_peaks_ = observer.device_peaks();
  last_peak_memory_ = observer.peak_memory();
  return result;
}

NaiveGpuDpSolver::NaiveGpuDpSolver(gpusim::Device& device)
    : device_(device) {}

dp::DpResult NaiveGpuDpSolver::solve(const dp::DpProblem& problem,
                                     const dp::SolveOptions& options) const {
  const util::SimTime start = device_.now();
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_.trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([this] { return device_.now().ps(); });
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size()))};
    span.emplace("gpu/naive-solve", args);
  }

  // Real values from the bucketed solver, with per-cell dependency counts.
  dp::SolveOptions with_deps = options;
  with_deps.collect_deps = true;
  dp::DpResult result = dp::LevelBucketSolver().solve(problem, with_deps);

  const dp::MixedRadix radix = problem.radix();
  const dp::LevelBuckets buckets(radix);

  ChargeParams params;
  params.dims = radix.dims();
  params.search_cells = radix.size();  // SetOPT scans the whole table

  const auto table = device_.allocate(util::checked_mul(radix.size(), 4));
  const auto configs = device_.allocate(
      util::checked_mul(util::checked_mul(result.config_count, params.dims), 8));

  std::vector<std::int64_t> coords(radix.dims());
  for (std::int64_t level = 1; level < buckets.levels(); ++level) {
    LevelWork work;
    for (const auto id : buckets.cells_at(level)) {
      radix.unflatten(id, coords);
      std::uint64_t candidates = 1;
      for (const auto c : coords)
        candidates *= static_cast<std::uint64_t>(c) + 1;
      ++work.cells;
      work.candidates += candidates;
      work.deps += result.deps[id];
    }
    if (work.cells == 0) continue;
    // Table-scope candidate scratch: the memory behaviour the paper calls
    // out — this is what exhausts the 12 GB device on larger instances.
    [[maybe_unused]] const auto scratch =
        device_.allocate(util::checked_mul(work.candidates, 4));
    // The direct port runs ONE kernel per level with one thread per
    // configuration; each thread serially enumerates its candidates and
    // serially searches the whole table for every dependency (the OpenMP
    // inner loops verbatim). No dynamic parallelism, no blocking.
    gpusim::WorkEstimate w;
    w.threads = work.cells;
    w.thread_ops = work.candidates * 2 * params.dims +
                   work.deps * (params.search_cells / 2) * params.dims;
    // Scattered per-thread scans. Threads enter the early-exit compare loop
    // in lockstep but diverge almost immediately, so the warp re-fetches
    // most segments instead of broadcasting them (kNaiveDivergence-fold).
    w.transactions = work.deps * (params.search_cells / 2) * params.dims * 4 *
                     kNaiveDivergence / kNaiveSegmentBytes;
    device_.launch_estimated(0, "NaiveLevel", w);
    // One-level parallelism only: a device barrier after every level.
    device_.synchronize();
  }

  if (!options.collect_deps) result.deps.clear();
  last_solve_time_ = device_.now() - start;
  return result;
}

}  // namespace pcmax::gpu
