#include "gpu/gpu_dp_solver.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "gpu/charge.hpp"
#include "util/checked_math.hpp"
#include "obs/trace.hpp"
#include "partition/block_solver.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpu {

namespace {

constexpr std::uint64_t kNaiveSegmentBytes = 128;
constexpr std::uint64_t kNaiveDivergence = 8;

LevelWork aggregate(std::span<const partition::BlockObserver::CellStat> cells) {
  LevelWork work;
  work.cells = cells.size();
  for (const auto& c : cells) {
    work.candidates += c.candidates;
    work.deps += c.deps;
  }
  return work;
}

/// Drives the device while the BlockedSolver walks the block wavefront.
class ChargingObserver final : public partition::BlockObserver {
 public:
  ChargingObserver(gpusim::Device& device, int stream_count,
                   StreamPolicy stream_policy)
      : device_(device),
        stream_count_(stream_count),
        stream_policy_(stream_policy) {}

  void on_solve_begin(const partition::BlockedLayout& layout,
                      std::uint64_t config_count) override {
    params_.dims = layout.table_radix().dims();
    params_.search_cells = layout.cells_per_block();
    // Persistent allocations for the whole solve: the blocked DP-table and
    // the configuration set (Algorithm 4 line 11).
    table_ = device_.allocate(
        util::checked_mul(layout.table_radix().size(), 4));
    configs_ = device_.allocate(
        util::checked_mul(util::checked_mul(config_count, params_.dims), 8));
    peak_ = device_.memory_in_use();
    first_level_ = true;
  }

  void on_block_level(std::int64_t /*level*/,
                      std::span<const std::uint64_t> blocks) override {
    // Wavefront barrier between block-levels (Algorithm 4 lines 29-31).
    if (!first_level_) device_.synchronize();
    first_level_ = false;
    // Distribute the level's blocks over the streams: cyclic (Algorithm 4
    // line 31) or contiguous chunks (ablation).
    stream_of_.clear();
    const auto streams = static_cast<std::size_t>(stream_count_);
    const std::size_t chunk =
        (blocks.size() + streams - 1) / std::max<std::size_t>(1, streams);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const std::size_t stream = stream_policy_ == StreamPolicy::kCyclic
                                     ? i % streams
                                     : i / std::max<std::size_t>(1, chunk);
      stream_of_[blocks[i]] = static_cast<int>(stream);
    }
  }

  void on_in_block_level(std::uint64_t block_id, std::int64_t /*in_level*/,
                         std::span<const CellStat> cells) override {
    const LevelWork work = aggregate(cells);
    if (work.cells == 0) return;
    const int stream = stream_of_.at(block_id);
    // Per-level candidate scratch (freed when the level's kernels retire;
    // the data-partitioning scheme sizes it by the block, not the table).
    [[maybe_unused]] const auto scratch =
        device_.allocate(util::checked_mul(work.candidates, 4));
    peak_ = std::max(peak_, device_.memory_in_use());
    device_.launch_estimated(stream, "FindOPT",
                             charge_find_opt(work, params_));
    if (work.candidates > 0)
      device_.launch_accounted(stream, "FindValidSub",
                               charge_find_valid_sub(work, params_));
    if (work.deps > 0)
      device_.launch_accounted(stream, "SetOPT",
                               charge_set_opt(work, params_));
  }

  void on_solve_end() override {
    device_.synchronize();
    table_.release();
    configs_.release();
  }

  [[nodiscard]] std::uint64_t peak_memory() const noexcept { return peak_; }

 private:
  gpusim::Device& device_;
  int stream_count_;
  StreamPolicy stream_policy_;
  ChargeParams params_;
  std::unordered_map<std::uint64_t, int> stream_of_;
  gpusim::Device::Buffer table_;
  gpusim::Device::Buffer configs_;
  std::uint64_t peak_ = 0;
  bool first_level_ = true;
};

}  // namespace

GpuDpSolver::GpuDpSolver(gpusim::Device& device, std::size_t partition_dims,
                         int stream_count, StreamPolicy stream_policy)
    : device_(device),
      partition_dims_(partition_dims),
      stream_count_(stream_count),
      stream_policy_(stream_policy) {
  PCMAX_EXPECTS(stream_count >= 1);
  PCMAX_EXPECTS(stream_count <= device.spec().max_streams);
}

std::string GpuDpSolver::name() const {
  return "gpu-dim" + std::to_string(partition_dims_);
}

dp::DpResult GpuDpSolver::solve(const dp::DpProblem& problem,
                                const dp::SolveOptions& options) const {
  const util::SimTime start = device_.now();
  // Stamp spans opened during this solve with the device clock so they land
  // on the simulated-time track, bracketing the kernels they launched.
  // Scratch devices (trace_emission off) stay off every track: their
  // private clocks would interleave non-monotonically with the primary
  // device's timeline.
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_.trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([this] { return device_.now().ps(); });
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size())),
        obs::arg("streams", stream_count_)};
    span.emplace("gpu/dp-solve", args);
  }
  ChargingObserver observer(device_, stream_count_, stream_policy_);
  const partition::BlockedSolver solver(partition_dims_, &observer);
  dp::DpResult result = solver.solve(problem, options);
  last_solve_time_ = device_.now() - start;
  last_peak_memory_ = observer.peak_memory();
  return result;
}

NaiveGpuDpSolver::NaiveGpuDpSolver(gpusim::Device& device)
    : device_(device) {}

dp::DpResult NaiveGpuDpSolver::solve(const dp::DpProblem& problem,
                                     const dp::SolveOptions& options) const {
  const util::SimTime start = device_.now();
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_.trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([this] { return device_.now().ps(); });
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size()))};
    span.emplace("gpu/naive-solve", args);
  }

  // Real values from the bucketed solver, with per-cell dependency counts.
  dp::SolveOptions with_deps = options;
  with_deps.collect_deps = true;
  dp::DpResult result = dp::LevelBucketSolver().solve(problem, with_deps);

  const dp::MixedRadix radix = problem.radix();
  const dp::LevelBuckets buckets(radix);

  ChargeParams params;
  params.dims = radix.dims();
  params.search_cells = radix.size();  // SetOPT scans the whole table

  const auto table = device_.allocate(util::checked_mul(radix.size(), 4));
  const auto configs = device_.allocate(
      util::checked_mul(util::checked_mul(result.config_count, params.dims), 8));

  std::vector<std::int64_t> coords(radix.dims());
  for (std::int64_t level = 1; level < buckets.levels(); ++level) {
    LevelWork work;
    for (const auto id : buckets.cells_at(level)) {
      radix.unflatten(id, coords);
      std::uint64_t candidates = 1;
      for (const auto c : coords)
        candidates *= static_cast<std::uint64_t>(c) + 1;
      ++work.cells;
      work.candidates += candidates;
      work.deps += result.deps[id];
    }
    if (work.cells == 0) continue;
    // Table-scope candidate scratch: the memory behaviour the paper calls
    // out — this is what exhausts the 12 GB device on larger instances.
    [[maybe_unused]] const auto scratch =
        device_.allocate(util::checked_mul(work.candidates, 4));
    // The direct port runs ONE kernel per level with one thread per
    // configuration; each thread serially enumerates its candidates and
    // serially searches the whole table for every dependency (the OpenMP
    // inner loops verbatim). No dynamic parallelism, no blocking.
    gpusim::WorkEstimate w;
    w.threads = work.cells;
    w.thread_ops = work.candidates * 2 * params.dims +
                   work.deps * (params.search_cells / 2) * params.dims;
    // Scattered per-thread scans. Threads enter the early-exit compare loop
    // in lockstep but diverge almost immediately, so the warp re-fetches
    // most segments instead of broadcasting them (kNaiveDivergence-fold).
    w.transactions = work.deps * (params.search_cells / 2) * params.dims * 4 *
                     kNaiveDivergence / kNaiveSegmentBytes;
    device_.launch_estimated(0, "NaiveLevel", w);
    // One-level parallelism only: a device barrier after every level.
    device_.synchronize();
  }

  if (!options.collect_deps) result.deps.clear();
  last_solve_time_ = device_.now() - start;
  return result;
}

}  // namespace pcmax::gpu
