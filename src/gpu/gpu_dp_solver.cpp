#include "gpu/gpu_dp_solver.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "core/status.hpp"
#include "gpu/charge.hpp"
#include "gpu/resident.hpp"
#include "util/checked_math.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/block_solver.hpp"
#include "recover/recovery.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpu {

namespace {

constexpr std::uint64_t kNaiveSegmentBytes = 128;
constexpr std::uint64_t kNaiveDivergence = 8;

LevelWork aggregate(std::span<const partition::BlockObserver::CellStat> cells) {
  LevelWork work;
  work.cells = cells.size();
  for (const auto& c : cells) {
    work.candidates += c.candidates;
    work.deps += c.deps;
  }
  return work;
}

/// Drives the device while the BlockedSolver walks the block wavefront.
class ChargingObserver final : public partition::BlockObserver {
 public:
  ChargingObserver(gpusim::Device& device, int stream_count,
                   StreamPolicy stream_policy)
      : device_(device),
        stream_count_(stream_count),
        stream_policy_(stream_policy) {}

  void on_solve_begin(const partition::BlockedLayout& layout,
                      std::uint64_t config_count) override {
    params_.dims = layout.table_radix().dims();
    params_.search_cells = layout.cells_per_block();
    // Persistent allocations for the whole solve: the blocked DP-table and
    // the configuration set (Algorithm 4 line 11).
    table_ = device_.allocate(
        util::checked_mul(layout.table_radix().size(), 4));
    configs_ = device_.allocate(
        util::checked_mul(util::checked_mul(config_count, params_.dims), 8));
    peak_ = device_.memory_in_use();
    first_level_ = true;
  }

  void on_block_level(std::int64_t /*level*/,
                      std::span<const std::uint64_t> blocks) override {
    // Wavefront barrier between block-levels (Algorithm 4 lines 29-31).
    if (!first_level_) device_.synchronize();
    first_level_ = false;
    // Distribute the level's blocks over the streams: cyclic (Algorithm 4
    // line 31) or contiguous chunks (ablation).
    stream_of_.clear();
    const auto streams = static_cast<std::size_t>(stream_count_);
    const std::size_t chunk =
        (blocks.size() + streams - 1) / std::max<std::size_t>(1, streams);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const std::size_t stream = stream_policy_ == StreamPolicy::kCyclic
                                     ? i % streams
                                     : i / std::max<std::size_t>(1, chunk);
      stream_of_[blocks[i]] = static_cast<int>(stream);
    }
  }

  void on_in_block_level(std::uint64_t block_id, std::int64_t /*in_level*/,
                         std::span<const CellStat> cells) override {
    const LevelWork work = aggregate(cells);
    if (work.cells == 0) return;
    const int stream = stream_of_.at(block_id);
    // Per-level candidate scratch (freed when the level's kernels retire;
    // the data-partitioning scheme sizes it by the block, not the table).
    [[maybe_unused]] const auto scratch =
        device_.allocate(util::checked_mul(work.candidates, 4));
    peak_ = std::max(peak_, device_.memory_in_use());
    device_.launch_estimated(stream, "FindOPT",
                             charge_find_opt(work, params_));
    if (work.candidates > 0)
      device_.launch_accounted(stream, "FindValidSub",
                               charge_find_valid_sub(work, params_));
    if (work.deps > 0)
      device_.launch_accounted(stream, "SetOPT",
                               charge_set_opt(work, params_));
  }

  void on_solve_end() override {
    device_.synchronize();
    table_.release();
    configs_.release();
  }

  [[nodiscard]] std::uint64_t peak_memory() const noexcept { return peak_; }

 private:
  gpusim::Device& device_;
  int stream_count_;
  StreamPolicy stream_policy_;
  ChargeParams params_;
  std::unordered_map<std::uint64_t, int> stream_of_;
  gpusim::Device::Buffer table_;
  gpusim::Device::Buffer configs_;
  std::uint64_t peak_ = 0;
  bool first_level_ = true;
};

/// Drives a multi-device Topology while the BlockedSolver walks the block
/// wavefront: each block's kernels run on the device its placement chose,
/// and before a block-level starts, every dependency block a device needs
/// but does not own is charged as an interconnect transfer (plus a mirror
/// allocation that lives for the level — the exact working set
/// resident.hpp computes). Real values still come from the BlockedSolver,
/// so results are bit-identical to the single-device path by construction.
///
/// With recovery enabled (RecoveryOptions::checkpoint_every > 0) the
/// observer also journals a recover::CheckpointLog: every
/// `checkpoint_every` barriers it ships the blocks computed since the
/// previous checkpoint to each owner's buddy device (charged transfers +
/// mirror allocations that persist while the block stays in the frontier
/// window) and records a WavefrontCheckpoint. When a device is lost at a
/// barrier or during a transfer, the level prologue re-places the lost
/// blocks over the survivors, restores frontier blocks from buddy mirrors,
/// re-charges post-checkpoint work, and resumes — results stay
/// bit-identical because the values were host-side all along; only the
/// charged time reflects the recovery.
class ShardedChargingObserver final : public partition::BlockObserver {
 public:
  ShardedChargingObserver(gpusim::Topology& topology,
                          const placement::PlacementStrategy& strategy,
                          const dp::DpProblem& problem, int stream_count,
                          StreamPolicy stream_policy,
                          recover::RecoveryOptions recovery = {})
      : topology_(topology),
        strategy_(strategy),
        problem_(problem),
        stream_count_(stream_count),
        stream_policy_(stream_policy),
        recovery_(recovery) {}

  void on_solve_begin(const partition::BlockedLayout& layout,
                      std::uint64_t config_count) override {
    layout_ = &layout;
    params_.dims = layout.table_radix().dims();
    params_.search_cells = layout.cells_per_block();
    block_bytes_ = util::checked_mul(layout.cells_per_block(), 4);
    reach_ = dependency_reach(problem_, layout);
    const int n = topology_.device_count();
    emit_ = topology_.device(0).trace_emission();
    excluded_.assign(static_cast<std::size_t>(n), 0);
    log_.clear();
    ckpt_mirrors_.clear();
    reshard_.clear();
    // Devices lost in an earlier solve stay lost until Topology::reset();
    // with recovery enabled this solve places around them from the start
    // (or refuses, typed, when too few survive).
    if (recovery_.enabled()) {
      for (int d = 0; d < n; ++d)
        if (topology_.device_lost(d))
          excluded_[static_cast<std::size_t>(d)] = 1;
      if (topology_.alive_count() < std::max(recovery_.min_devices, 1))
        throw StatusError(Status(
            StatusCode::kDeviceLost,
            "unrecoverable: " + std::to_string(topology_.alive_count()) +
                "/" + std::to_string(n) +
                " devices alive at solve start, min_devices=" +
                std::to_string(std::max(recovery_.min_devices, 1))));
    }
    plan_ = strategy_.place(layout, n, reach_, excluded_);
    PCMAX_EXPECTS(plan_.size() == layout.block_count());

    // Per-device persistent allocations: the device's table shard plus a
    // replica of the configuration set (every device probes configurations
    // against its own blocks, as each real GPU would hold its own copy).
    std::vector<std::uint64_t> blocks_on(static_cast<std::size_t>(n), 0);
    for (const int d : plan_) ++blocks_on[static_cast<std::size_t>(d)];
    shards_.clear();
    configs_.clear();
    peaks_.assign(static_cast<std::size_t>(n), 0);
    for (int d = 0; d < n; ++d) {
      if (excluded_[static_cast<std::size_t>(d)] != 0) {
        shards_.emplace_back();
        configs_.emplace_back();
        continue;
      }
      gpusim::Device& dev = topology_.device(d);
      shards_.push_back(dev.allocate(util::checked_mul(
          blocks_on[static_cast<std::size_t>(d)], block_bytes_)));
      configs_.push_back(dev.allocate(
          util::checked_mul(util::checked_mul(config_count, params_.dims), 8)));
      peaks_[static_cast<std::size_t>(d)] = dev.memory_in_use();
    }
    first_level_ = true;
  }

  void on_block_level(std::int64_t level,
                      std::span<const std::uint64_t> blocks) override {
    int losses = 0;
    for (;;) {
      try {
        level_prologue(level, blocks);
        break;
      } catch (const gpusim::DeviceLost&) {
        // A device died at the barrier, or a link failure left one
        // unreachable mid-transfer. Without checkpoints there is nothing to
        // resume from: rethrow and let the resilient chain degrade.
        if (!recovery_.enabled() || ++losses > topology_.device_count())
          throw;
        recover_or_throw(level);
      }
    }
    first_level_ = false;
    if (recovery_.enabled()) log_.begin_level(level);
  }

  void on_in_block_level(std::uint64_t block_id, std::int64_t /*in_level*/,
                         std::span<const CellStat> cells) override {
    const LevelWork work = aggregate(cells);
    if (work.cells == 0) return;
    const auto d = static_cast<std::size_t>(plan_[block_id]);
    gpusim::Device& dev = topology_.device(static_cast<int>(d));
    const int stream = stream_of_.at(block_id);
    [[maybe_unused]] const auto scratch =
        dev.allocate(util::checked_mul(work.candidates, 4));
    peaks_[d] = std::max(peaks_[d], dev.memory_in_use());
    dev.launch_estimated(stream, "FindOPT", charge_find_opt(work, params_));
    if (work.candidates > 0)
      dev.launch_accounted(stream, "FindValidSub",
                           charge_find_valid_sub(work, params_));
    if (work.deps > 0)
      dev.launch_accounted(stream, "SetOPT", charge_set_opt(work, params_));
    if (recovery_.enabled())
      log_.record(recover::BlockWork{block_id, work.cells, work.candidates,
                                     work.deps});
  }

  void on_solve_end() override {
    // Losses at the final barrier cost nothing: every value is already
    // final and host-side, so with recovery enabled the survivors simply
    // barrier again without the fallen device.
    for (int attempt = 0;; ++attempt) {
      try {
        topology_.barrier();
        break;
      } catch (const gpusim::DeviceLost&) {
        if (!recovery_.enabled() || attempt >= topology_.device_count()) {
          release_all();
          throw;
        }
        if (emit_) obs::count("recover.device_lost");
      }
    }
    release_all();
  }

  [[nodiscard]] std::uint64_t peak_memory() const noexcept {
    return peaks_.empty() ? 0
                          : *std::max_element(peaks_.begin(), peaks_.end());
  }
  [[nodiscard]] const std::vector<std::uint64_t>& device_peaks()
      const noexcept {
    return peaks_;
  }

 private:
  void release_all() {
    mirrors_.clear();
    ckpt_mirrors_.clear();
    reshard_.clear();
    shards_.clear();
    configs_.clear();
  }

  /// Everything that happens between two block-levels: the wavefront
  /// barrier, a checkpoint when one is due, stream assignment, and the
  /// cross-device dependency transfer scan. Throws gpusim::DeviceLost when
  /// a device falls over anywhere inside; the caller recovers and retries
  /// (re-running the prologue re-charges barrier/transfer costs — that IS
  /// the recovery cost).
  void level_prologue(std::int64_t level,
                      std::span<const std::uint64_t> blocks) {
    const int n = topology_.device_count();
    // Wavefront barrier across all devices between block-levels; the
    // previous level's dependency mirrors are evicted once it retires.
    if (!first_level_) topology_.barrier();
    if (recovery_.enabled() && !first_level_ &&
        log_.levels_since_checkpoint() >= recovery_.checkpoint_every)
      take_checkpoint(level);
    mirrors_.clear();
    mirrored_.clear();

    // Per-device stream assignment: each device distributes ITS blocks of
    // the level over its streams, cyclic (Algorithm 4 line 31) or chunked.
    stream_of_.clear();
    std::vector<std::size_t> on_device(static_cast<std::size_t>(n), 0);
    for (const std::uint64_t b : blocks)
      ++on_device[static_cast<std::size_t>(plan_[b])];
    const auto streams = static_cast<std::size_t>(stream_count_);
    std::vector<std::size_t> index(static_cast<std::size_t>(n), 0);
    for (const std::uint64_t b : blocks) {
      const auto d = static_cast<std::size_t>(plan_[b]);
      const std::size_t i = index[d]++;
      const std::size_t chunk =
          (on_device[d] + streams - 1) / std::max<std::size_t>(1, streams);
      const std::size_t stream = stream_policy_ == StreamPolicy::kCyclic
                                     ? i % streams
                                     : i / std::max<std::size_t>(1, chunk);
      stream_of_[b] = static_cast<int>(stream);
    }

    // Cross-device dependency transfers: for every block of the level,
    // each reach-box predecessor owned by another device is shipped to the
    // block's device (once per level per destination) before the level's
    // kernels may start. The destination waits for its latest arrival.
    const dp::MixedRadix& grid = layout_->grid();
    std::vector<util::SimTime> arrival(static_cast<std::size_t>(n));
    std::vector<std::int64_t> g(grid.dims());
    for (const std::uint64_t b : blocks) {
      const int dst = plan_[b];
      grid.unflatten(b, g);
      placement::for_each_reach_predecessor(
          grid, g, reach_, [&](std::uint64_t pred) {
            const int src = plan_[pred];
            if (src == dst) return;
            const std::uint64_t key =
                static_cast<std::uint64_t>(dst) * layout_->block_count() +
                pred;
            if (!mirrored_.insert(key).second) return;
            const auto dd = static_cast<std::size_t>(dst);
            arrival[dd] = std::max(
                arrival[dd], topology_.transfer(src, dst, block_bytes_));
            mirrors_.push_back(topology_.device(dst).allocate(block_bytes_));
            peaks_[dd] = std::max(peaks_[dd],
                                  topology_.device(dst).memory_in_use());
          });
    }
    for (int d = 0; d < n; ++d) {
      if (topology_.device_lost(d)) continue;
      gpusim::Device& dev = topology_.device(d);
      const auto dd = static_cast<std::size_t>(d);
      if (arrival[dd] > dev.now()) dev.advance(arrival[dd] - dev.now());
    }
  }

  /// Block-level (anti-diagonal) of a block id in the block grid.
  [[nodiscard]] std::int64_t block_level(std::uint64_t block_id) const {
    std::vector<std::int64_t> g(layout_->grid().dims());
    layout_->grid().unflatten(block_id, g);
    std::int64_t lvl = 0;
    for (const std::int64_t c : g) lvl += c;
    return lvl;
  }

  /// Ships every block computed since the previous checkpoint to its
  /// owner's buddy (charged transfers + mirror allocations held while the
  /// block stays in the frontier window) and records the checkpoint. The
  /// shipping overlaps compute — only link occupancy is charged, device
  /// clocks do not wait on it — so the overhead is a sliver of contention.
  void take_checkpoint(std::int64_t level) {
    std::optional<obs::ScopedSpan> span;
    if (emit_ && obs::trace() != nullptr) {
      const auto args = {obs::arg("level", level)};
      span.emplace("recover/checkpoint", args);
    }

    // Mirrors of blocks that fell out of the frontier window can never be
    // restored from again; release their accounting.
    std::int64_t window = 0;
    for (const std::int64_t r : reach_) window += r;
    window = std::max<std::int64_t>(window, 1);
    std::erase_if(ckpt_mirrors_, [&](const HeldMirror& held) {
      return held.level < level - window;
    });

    const std::vector<int> buddies = recover::assign_buddies(excluded_);
    std::vector<std::uint64_t> mirrored;
    for (const auto& lr : log_.replay())
      for (const auto& bw : lr.blocks) mirrored.push_back(bw.block_id);
    std::sort(mirrored.begin(), mirrored.end());
    for (const std::uint64_t b : mirrored) {
      const int owner = plan_[b];
      const int buddy = buddies[static_cast<std::size_t>(owner)];
      if (buddy < 0) continue;  // lone survivor: nowhere to mirror
      topology_.transfer(owner, buddy, block_bytes_);
      ckpt_mirrors_.push_back(HeldMirror{
          block_level(b), topology_.device(buddy).allocate(block_bytes_)});
      const auto bd = static_cast<std::size_t>(buddy);
      peaks_[bd] =
          std::max(peaks_[bd], topology_.device(buddy).memory_in_use());
    }

    recover::WavefrontCheckpoint ckpt;
    ckpt.level = level;
    ckpt.shard_manifest = plan_;
    ckpt.mirror_of = buddies;
    const std::vector<std::uint64_t> frontier =
        recover::compute_frontier(*layout_, level, reach_);
    ckpt.frontier_digest = recover::frontier_digest(level, frontier, plan_);
    log_.install(std::move(ckpt), mirrored);
    if (emit_) obs::count("recover.checkpoints");
  }

  /// Reacts to a device loss: re-places the lost blocks over the
  /// survivors, restores frontier blocks from their buddy mirrors (charged
  /// transfers), and re-charges post-checkpoint work on the new owners.
  /// Throws a typed StatusError(kDeviceLost) when recovery is impossible
  /// (below min_devices, or the mirrors died with their holder) so the
  /// resilient chain degrades instead.
  void recover_or_throw(std::int64_t level) {
    const int n = topology_.device_count();
    int newly = 0;
    for (int d = 0; d < n; ++d) {
      const auto dd = static_cast<std::size_t>(d);
      if (excluded_[dd] == 0 && topology_.device_lost(d)) {
        excluded_[dd] = 1;
        ++newly;
      }
    }
    if (emit_ && newly > 0)
      obs::count("recover.device_lost", static_cast<std::uint64_t>(newly));

    std::optional<obs::ScopedSpan> span;
    if (emit_ && obs::trace() != nullptr) {
      const auto args = {obs::arg("level", level),
                         obs::arg("alive", topology_.alive_count())};
      span.emplace("recover/replacement", args);
    }

    // Merged replacement placement: survivors keep their blocks in place,
    // lost-device blocks re-home onto survivors per the strategy. (An
    // all-lost topology cannot even re-place; refuse first.)
    recover::RecoveryPlan rplan;
    if (topology_.alive_count() < std::max(recovery_.min_devices, 1)) {
      rplan.refusal = recover::RecoveryRefusal::kBelowMinDevices;
    } else {
      const std::vector<int> fresh =
          strategy_.place(*layout_, n, reach_, excluded_);
      std::vector<int> merged = plan_;
      for (std::size_t b = 0; b < merged.size(); ++b)
        if (excluded_[static_cast<std::size_t>(merged[b])] != 0)
          merged[b] = fresh[b];
      const std::vector<std::uint64_t> frontier =
          recover::compute_frontier(*layout_, level, reach_);
      rplan = recover::plan_recovery(log_, plan_, merged, excluded_,
                                     frontier, recovery_);
      if (rplan.recoverable()) execute_recovery(rplan, merged);
    }
    if (!rplan.recoverable()) {
      if (emit_) obs::count("recover.unrecoverable");
      throw StatusError(
          Status(StatusCode::kDeviceLost,
                 "unrecoverable device loss at block-level " +
                     std::to_string(level) + ": " +
                     std::string(recover::recovery_refusal_name(
                         rplan.refusal)) +
                     " (" + std::to_string(topology_.alive_count()) + "/" +
                     std::to_string(n) + " devices alive)"));
    }
  }

  void execute_recovery(const recover::RecoveryPlan& rplan,
                        std::vector<int>& merged) {
    {
      std::optional<obs::ScopedSpan> span;
      if (emit_ && obs::trace() != nullptr) {
        const auto args = {
            obs::arg("restores",
                     static_cast<std::int64_t>(rplan.restores.size())),
            obs::arg("replays",
                     static_cast<std::int64_t>(rplan.replays.size()))};
        span.emplace("recover/restore", args);
      }
      // Re-materialize mirrored frontier blocks on their new owners.
      for (const recover::RestoreStep& rs : rplan.restores) {
        if (rs.mirror_device != rs.new_owner)
          topology_.transfer(rs.mirror_device, rs.new_owner, block_bytes_);
        reshard_.push_back(
            topology_.device(rs.new_owner).allocate(block_bytes_));
        const auto od = static_cast<std::size_t>(rs.new_owner);
        peaks_[od] = std::max(
            peaks_[od], topology_.device(rs.new_owner).memory_in_use());
      }
      // Re-execute post-checkpoint work that died with its device: same
      // kernels, new owner, stream 0 (the next barrier times them).
      std::unordered_set<std::int64_t> levels_replayed;
      for (const recover::ReplayStep& rs : rplan.replays) {
        LevelWork work;
        work.cells = rs.work.cells;
        work.candidates = rs.work.candidates;
        work.deps = rs.work.deps;
        gpusim::Device& dev = topology_.device(rs.new_owner);
        reshard_.push_back(dev.allocate(block_bytes_));
        dev.launch_estimated(0, "FindOPT", charge_find_opt(work, params_));
        if (work.candidates > 0)
          dev.launch_accounted(0, "FindValidSub",
                               charge_find_valid_sub(work, params_));
        if (work.deps > 0)
          dev.launch_accounted(0, "SetOPT", charge_set_opt(work, params_));
        const auto od = static_cast<std::size_t>(rs.new_owner);
        peaks_[od] = std::max(peaks_[od], dev.memory_in_use());
        levels_replayed.insert(rs.level);
      }
      if (emit_) {
        obs::count("recover.replacements");
        obs::count("recover.restored_blocks", rplan.restores.size());
        obs::count("recover.replayed_levels", levels_replayed.size());
      }
    }
    plan_ = std::move(merged);
  }

  gpusim::Topology& topology_;
  const placement::PlacementStrategy& strategy_;
  const dp::DpProblem& problem_;
  int stream_count_;
  StreamPolicy stream_policy_;
  recover::RecoveryOptions recovery_;
  ChargeParams params_;
  const partition::BlockedLayout* layout_ = nullptr;
  std::uint64_t block_bytes_ = 0;
  std::vector<std::int64_t> reach_;
  std::vector<int> plan_;
  std::unordered_map<std::uint64_t, int> stream_of_;
  std::vector<gpusim::Device::Buffer> shards_;
  std::vector<gpusim::Device::Buffer> configs_;
  std::vector<gpusim::Device::Buffer> mirrors_;
  std::unordered_set<std::uint64_t> mirrored_;  // (dst, pred) this level
  std::vector<std::uint64_t> peaks_;
  /// Checkpoint mirror accounting, held until the block leaves the
  /// frontier window.
  struct HeldMirror {
    std::int64_t level;
    gpusim::Device::Buffer buffer;
  };
  std::vector<HeldMirror> ckpt_mirrors_;
  /// Shard space re-allocated on gaining devices during recovery.
  std::vector<gpusim::Device::Buffer> reshard_;
  recover::CheckpointLog log_;
  std::vector<std::uint8_t> excluded_;
  bool emit_ = true;
  bool first_level_ = true;
};

}  // namespace

GpuDpSolver::GpuDpSolver(gpusim::Device& device, std::size_t partition_dims,
                         int stream_count, StreamPolicy stream_policy)
    : device_(&device),
      partition_dims_(partition_dims),
      stream_count_(stream_count),
      stream_policy_(stream_policy) {
  PCMAX_EXPECTS(stream_count >= 1);
  PCMAX_EXPECTS(stream_count <= device.spec().max_streams);
}

GpuDpSolver::GpuDpSolver(gpusim::Topology& topology,
                         std::size_t partition_dims, int stream_count,
                         StreamPolicy stream_policy,
                         placement::PlacementKind placement,
                         recover::RecoveryOptions recovery)
    : device_(&topology.device(0)),
      topology_(&topology),
      partition_dims_(partition_dims),
      stream_count_(stream_count),
      stream_policy_(stream_policy),
      placement_(placement),
      recovery_(recovery) {
  PCMAX_EXPECTS(stream_count >= 1);
  PCMAX_EXPECTS(stream_count <= device_->spec().max_streams);
  PCMAX_EXPECTS(recovery.checkpoint_every >= 0);
  PCMAX_EXPECTS(recovery.min_devices >= 0);
}

std::string GpuDpSolver::name() const {
  return "gpu-dim" + std::to_string(partition_dims_);
}

dp::DpResult GpuDpSolver::solve(const dp::DpProblem& problem,
                                const dp::SolveOptions& options) const {
  // A one-device topology short-circuits onto the exact single-device path
  // (device_ already points at its device 0), so devices=1 costs nothing
  // over the pre-topology solver.
  if (topology_ != nullptr && topology_->device_count() > 1)
    return solve_sharded(problem, options);
  // Stamp spans opened during this solve with the device clock so they land
  // on the simulated-time track, bracketing the kernels they launched.
  // Scratch devices (trace_emission off) stay off every track: their
  // private clocks would interleave non-monotonically with the primary
  // device's timeline.
  const util::SimTime start = device_->now();
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_->trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([this] { return device_->now().ps(); });
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size())),
        obs::arg("streams", stream_count_)};
    span.emplace("gpu/dp-solve", args);
  }
  ChargingObserver observer(*device_, stream_count_, stream_policy_);
  const partition::BlockedSolver solver(partition_dims_, &observer);
  dp::DpResult result = solver.solve(problem, options);
  last_solve_time_ = device_->now() - start;
  last_peak_memory_ = observer.peak_memory();
  last_device_peaks_.assign(1, last_peak_memory_);
  return result;
}

dp::DpResult GpuDpSolver::solve_sharded(
    const dp::DpProblem& problem, const dp::SolveOptions& options) const {
  gpusim::Topology& topology = *topology_;
  const util::SimTime start = topology.now();
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_->trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([&topology] { return topology.now().ps(); });
    // Trace events carry at most two args; "devices" is the one the
    // single-device span does not have, "streams" the one it sacrifices.
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size())),
        obs::arg("devices", topology.device_count())};
    span.emplace("gpu/dp-solve", args);
  }
  const std::unique_ptr<placement::PlacementStrategy> strategy =
      placement::make_placement(placement_);
  ShardedChargingObserver observer(topology, *strategy, problem,
                                   stream_count_, stream_policy_, recovery_);
  const partition::BlockedSolver solver(partition_dims_, &observer);
  dp::DpResult result = solver.solve(problem, options);
  last_solve_time_ = topology.now() - start;
  last_device_peaks_ = observer.device_peaks();
  last_peak_memory_ = observer.peak_memory();
  return result;
}

NaiveGpuDpSolver::NaiveGpuDpSolver(gpusim::Device& device)
    : device_(device) {}

dp::DpResult NaiveGpuDpSolver::solve(const dp::DpProblem& problem,
                                     const dp::SolveOptions& options) const {
  const util::SimTime start = device_.now();
  std::optional<obs::SimClockGuard> sim_clock;
  std::optional<obs::ScopedSpan> span;
  if (device_.trace_emission() && obs::trace() != nullptr) {
    sim_clock.emplace([this] { return device_.now().ps(); });
    const auto args = {
        obs::arg("table", static_cast<std::int64_t>(problem.radix().size()))};
    span.emplace("gpu/naive-solve", args);
  }

  // Real values from the bucketed solver, with per-cell dependency counts.
  dp::SolveOptions with_deps = options;
  with_deps.collect_deps = true;
  dp::DpResult result = dp::LevelBucketSolver().solve(problem, with_deps);

  const dp::MixedRadix radix = problem.radix();
  const dp::LevelBuckets buckets(radix);

  ChargeParams params;
  params.dims = radix.dims();
  params.search_cells = radix.size();  // SetOPT scans the whole table

  const auto table = device_.allocate(util::checked_mul(radix.size(), 4));
  const auto configs = device_.allocate(
      util::checked_mul(util::checked_mul(result.config_count, params.dims), 8));

  std::vector<std::int64_t> coords(radix.dims());
  for (std::int64_t level = 1; level < buckets.levels(); ++level) {
    LevelWork work;
    for (const auto id : buckets.cells_at(level)) {
      radix.unflatten(id, coords);
      std::uint64_t candidates = 1;
      for (const auto c : coords)
        candidates *= static_cast<std::uint64_t>(c) + 1;
      ++work.cells;
      work.candidates += candidates;
      work.deps += result.deps[id];
    }
    if (work.cells == 0) continue;
    // Table-scope candidate scratch: the memory behaviour the paper calls
    // out — this is what exhausts the 12 GB device on larger instances.
    [[maybe_unused]] const auto scratch =
        device_.allocate(util::checked_mul(work.candidates, 4));
    // The direct port runs ONE kernel per level with one thread per
    // configuration; each thread serially enumerates its candidates and
    // serially searches the whole table for every dependency (the OpenMP
    // inner loops verbatim). No dynamic parallelism, no blocking.
    gpusim::WorkEstimate w;
    w.threads = work.cells;
    w.thread_ops = work.candidates * 2 * params.dims +
                   work.deps * (params.search_cells / 2) * params.dims;
    // Scattered per-thread scans. Threads enter the early-exit compare loop
    // in lockstep but diverge almost immediately, so the warp re-fetches
    // most segments instead of broadcasting them (kNaiveDivergence-fold).
    w.transactions = work.deps * (params.search_cells / 2) * params.dims * 4 *
                     kNaiveDivergence / kNaiveSegmentBytes;
    device_.launch_estimated(0, "NaiveLevel", w);
    // One-level parallelism only: a device barrier after every level.
    device_.synchronize();
  }

  if (!options.collect_deps) result.deps.clear();
  last_solve_time_ = device_.now() - start;
  return result;
}

}  // namespace pcmax::gpu
