// The GPU implementation of the higher-dimensional DP (Algorithms 4 and 5),
// executed on the simulated device.
//
// The real table values are computed by the partition::BlockedSolver (bit
// identical to every CPU solver); a BlockObserver hooks its block-wavefront
// traversal and drives the gpusim::Device: per in-block anti-diagonal level
// of each block it launches the FindOPT parent kernel plus the FindValidSub /
// SetOPT child kernels, each charged per the structural formulas of
// gpu/charge.hpp. Blocks of one block-level are distributed cyclically over
// `stream_count` Hyper-Q streams (Algorithm 4 line 31); a device
// synchronization separates block-levels (the wavefront barrier).
//
// Device memory is accounted for the lifetime of a solve: the blocked
// DP-table plus per-block candidate scratch sized by the deepest in-flight
// blocks — the memory saving the data-partitioning scheme exists for.
#pragma once

#include "dp/solver.hpp"
#include "gpusim/device.hpp"

namespace pcmax::gpu {

/// How blocks of one block-level are assigned to streams.
enum class StreamPolicy {
  /// Algorithm 4 line 31: block i of the level goes to stream i mod S.
  kCyclic,
  /// Contiguous chunks of the level's blocks per stream. Included as an
  /// ablation: it serializes neighbouring (similarly-sized) blocks on one
  /// stream and balances worse than the paper's cyclic distribution.
  kChunked,
};

class GpuDpSolver final : public dp::DpSolver {
 public:
  /// `device` must outlive the solver. `partition_dims` selects GPU-DIMx.
  GpuDpSolver(gpusim::Device& device, std::size_t partition_dims,
              int stream_count = 4,
              StreamPolicy stream_policy = StreamPolicy::kCyclic);

  using DpSolver::solve;
  [[nodiscard]] dp::DpResult solve(
      const dp::DpProblem& problem,
      const dp::SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t partition_dims() const noexcept {
    return partition_dims_;
  }
  /// Simulated time the most recent solve() spent on the device.
  [[nodiscard]] util::SimTime last_solve_time() const noexcept {
    return last_solve_time_;
  }
  /// Peak device memory of the most recent solve().
  [[nodiscard]] std::uint64_t last_peak_memory() const noexcept {
    return last_peak_memory_;
  }

 private:
  gpusim::Device& device_;
  std::size_t partition_dims_;
  int stream_count_;
  StreamPolicy stream_policy_;
  mutable util::SimTime last_solve_time_;
  mutable std::uint64_t last_peak_memory_ = 0;
};

/// The strawman direct port of the OpenMP implementation (Section III): one
/// kernel per anti-diagonal level of the *unpartitioned* table, SetOPT
/// searching the entire DP-table, a single stream, and candidate scratch
/// sized at table scope. Exists to reproduce the paper's "about a hundred
/// times slower than OpenMP" observation.
class NaiveGpuDpSolver final : public dp::DpSolver {
 public:
  explicit NaiveGpuDpSolver(gpusim::Device& device);

  using DpSolver::solve;
  [[nodiscard]] dp::DpResult solve(
      const dp::DpProblem& problem,
      const dp::SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override { return "gpu-naive"; }

  [[nodiscard]] util::SimTime last_solve_time() const noexcept {
    return last_solve_time_;
  }

 private:
  gpusim::Device& device_;
  mutable util::SimTime last_solve_time_;
};

}  // namespace pcmax::gpu
