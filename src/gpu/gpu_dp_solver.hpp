// The GPU implementation of the higher-dimensional DP (Algorithms 4 and 5),
// executed on the simulated device.
//
// The real table values are computed by the partition::BlockedSolver (bit
// identical to every CPU solver); a BlockObserver hooks its block-wavefront
// traversal and drives the gpusim::Device: per in-block anti-diagonal level
// of each block it launches the FindOPT parent kernel plus the FindValidSub /
// SetOPT child kernels, each charged per the structural formulas of
// gpu/charge.hpp. Blocks of one block-level are distributed cyclically over
// `stream_count` Hyper-Q streams (Algorithm 4 line 31); a device
// synchronization separates block-levels (the wavefront barrier).
//
// Device memory is accounted for the lifetime of a solve: the blocked
// DP-table plus per-block candidate scratch sized by the deepest in-flight
// blocks — the memory saving the data-partitioning scheme exists for.
#pragma once

#include <span>
#include <vector>

#include "dp/solver.hpp"
#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"
#include "placement/strategy.hpp"
#include "recover/recovery.hpp"

namespace pcmax::gpu {

/// How blocks of one block-level are assigned to streams.
enum class StreamPolicy {
  /// Algorithm 4 line 31: block i of the level goes to stream i mod S.
  kCyclic,
  /// Contiguous chunks of the level's blocks per stream. Included as an
  /// ablation: it serializes neighbouring (similarly-sized) blocks on one
  /// stream and balances worse than the paper's cyclic distribution.
  kChunked,
};

class GpuDpSolver final : public dp::DpSolver {
 public:
  /// `device` must outlive the solver. `partition_dims` selects GPU-DIMx.
  GpuDpSolver(gpusim::Device& device, std::size_t partition_dims,
              int stream_count = 4,
              StreamPolicy stream_policy = StreamPolicy::kCyclic);

  /// Multi-device variant: blocks are mapped onto `topology`'s devices by
  /// `placement`, each block's kernels run on its placed device, and
  /// cross-device dependent-sub-configuration reads are charged as
  /// interconnect transfers before each block-level barrier. Results are
  /// bit-identical to the single-device solver — only the charged time and
  /// per-device memory differ. A one-device topology takes the exact
  /// single-device path on device 0 (no placement, no transfer scans).
  ///
  /// `recovery` (off by default) enables checkpointed device-loss recovery:
  /// every `checkpoint_every` wavefront barriers the solve mirrors freshly
  /// computed blocks onto buddy devices, and a device lost mid-solve is
  /// survived by re-placing its blocks over the survivors, restoring the
  /// frontier from mirrors, and re-charging post-checkpoint work — the
  /// result stays bit-identical to a fault-free run. When recovery is
  /// impossible (alive devices < min_devices, or the mirrors died too) the
  /// solve throws a typed StatusError(kDeviceLost).
  GpuDpSolver(gpusim::Topology& topology, std::size_t partition_dims,
              int stream_count = 4,
              StreamPolicy stream_policy = StreamPolicy::kCyclic,
              placement::PlacementKind placement =
                  placement::PlacementKind::kLevelContiguous,
              recover::RecoveryOptions recovery = {});

  using DpSolver::solve;
  [[nodiscard]] dp::DpResult solve(
      const dp::DpProblem& problem,
      const dp::SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t partition_dims() const noexcept {
    return partition_dims_;
  }
  /// Simulated time the most recent solve() spent on the device(s).
  [[nodiscard]] util::SimTime last_solve_time() const noexcept {
    return last_solve_time_;
  }
  /// Peak device memory of the most recent solve(); under a multi-device
  /// topology, the maximum over the per-device peaks.
  [[nodiscard]] std::uint64_t last_peak_memory() const noexcept {
    return last_peak_memory_;
  }
  /// Per-device peak memory of the most recent solve(); one entry (the
  /// device's peak) in single-device mode.
  [[nodiscard]] std::span<const std::uint64_t> last_device_peaks()
      const noexcept {
    return last_device_peaks_;
  }

 private:
  [[nodiscard]] dp::DpResult solve_sharded(
      const dp::DpProblem& problem, const dp::SolveOptions& options) const;

  gpusim::Device* device_;               // single-device path target
  gpusim::Topology* topology_ = nullptr; // null outside topology mode
  std::size_t partition_dims_;
  int stream_count_;
  StreamPolicy stream_policy_;
  placement::PlacementKind placement_ =
      placement::PlacementKind::kLevelContiguous;
  recover::RecoveryOptions recovery_;
  mutable util::SimTime last_solve_time_;
  mutable std::uint64_t last_peak_memory_ = 0;
  mutable std::vector<std::uint64_t> last_device_peaks_;
};

/// The strawman direct port of the OpenMP implementation (Section III): one
/// kernel per anti-diagonal level of the *unpartitioned* table, SetOPT
/// searching the entire DP-table, a single stream, and candidate scratch
/// sized at table scope. Exists to reproduce the paper's "about a hundred
/// times slower than OpenMP" observation.
class NaiveGpuDpSolver final : public dp::DpSolver {
 public:
  explicit NaiveGpuDpSolver(gpusim::Device& device);

  using DpSolver::solve;
  [[nodiscard]] dp::DpResult solve(
      const dp::DpProblem& problem,
      const dp::SolveOptions& options) const override;
  [[nodiscard]] std::string name() const override { return "gpu-naive"; }

  [[nodiscard]] util::SimTime last_solve_time() const noexcept {
    return last_solve_time_;
  }

 private:
  gpusim::Device& device_;
  mutable util::SimTime last_solve_time_;
};

}  // namespace pcmax::gpu
