// The full GPU PTAS of Algorithm 3: quarter-split target search whose DP
// probes run on the simulated device through GpuDpSolver. The four probes of
// a round are issued as four independent DP solves; each solve internally
// fans its block-levels over four Hyper-Q streams, matching the paper's
// sixteen-stream configuration.
#pragma once

#include "core/ptas.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"

namespace pcmax::gpu {

/// How the four probes of a quarter-split round share the device.
enum class ProbeOverlap {
  /// Probes run back to back on the device (conservative: a round costs
  /// the sum of its probe times — full contention).
  kSequential,
  /// Probes run fully concurrently via Hyper-Q (optimistic: a round costs
  /// its slowest probe — the paper's "four processes run concurrently on
  /// the same GPU" reading). Probes are simulated on scratch devices and
  /// the round maximum is charged to the caller's device clock.
  kHyperQ,
};

struct GpuPtasOptions {
  double epsilon = 0.3;
  /// Number of dimensions the data-partitioning scheme divides (GPU-DIMx).
  std::size_t partition_dims = 6;
  /// Streams per DP probe (Algorithm 4 line 31 uses 4).
  int streams_per_probe = 4;
  /// Segments per quarter-split round (Algorithm 3 uses 4).
  int segments = 4;
  ProbeOverlap probe_overlap = ProbeOverlap::kSequential;
  /// Block-to-device placement when solving on a multi-device Topology;
  /// ignored on a single device.
  placement::PlacementKind placement =
      placement::PlacementKind::kLevelContiguous;
  bool build_schedule = true;
  /// Probe-level DP solve cache (core/probe_cache.hpp). Cache-answered
  /// probes skip their scratch-device solve entirely, so they cost no
  /// simulated device time.
  bool use_probe_cache = false;
  /// Optional externally owned cache shared across runs; a private one is
  /// used when null and use_probe_cache is set.
  ProbeCacheBase* probe_cache = nullptr;
  /// Checkpointed device-loss recovery for sharded probes (see
  /// GpuDpSolver's topology constructor); off by default, ignored on a
  /// single device.
  recover::RecoveryOptions recovery;
};

struct GpuPtasResult {
  PtasResult ptas;
  /// Simulated device time consumed by all DP probes.
  util::SimTime device_time;
  /// Device counters accumulated over the run (summed over all devices of
  /// a topology).
  gpusim::Device::Stats stats;
};

[[nodiscard]] GpuPtasResult solve_gpu_ptas(const Instance& instance,
                                           gpusim::Device& device,
                                           const GpuPtasOptions& options = {});

/// Multi-device variant: every DP probe runs sharded over `topology`'s
/// devices (see GpuDpSolver's topology mode). Hyper-Q probe overlap uses
/// scratch topologies of the same shape per probe and charges the round
/// maximum to every device. A one-device topology behaves exactly like the
/// single-device overload on its device 0.
[[nodiscard]] GpuPtasResult solve_gpu_ptas(const Instance& instance,
                                           gpusim::Topology& topology,
                                           const GpuPtasOptions& options = {});

}  // namespace pcmax::gpu
