#include "gpu/executable_dp.hpp"

#include <algorithm>
#include <vector>

#include "dp/config.hpp"
#include "faultsim/injector.hpp"
#include "gpu/charge.hpp"
#include "partition/blocked_layout.hpp"
#include "partition/divisor.hpp"
#include "util/checked_math.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpu {

namespace {

// Modeled device address space (byte addresses; regions far apart so
// coalescing analysis never aliases them).
constexpr std::uint64_t kTableBase = 1ull << 30;    // int32 per cell
constexpr std::uint64_t kCoordsBase = 2ull << 30;   // int64 x dims per cell
constexpr std::uint64_t kWeightsBase = 3ull << 30;  // int64 per class
constexpr std::uint64_t kScratchBase = 4ull << 30;  // valid-candidate slots

gpusim::LaunchConfig grid_for(std::uint64_t threads) {
  constexpr std::uint32_t kBlock = 256;
  const auto blocks = static_cast<std::uint32_t>(
      util::ceil_div(threads, std::uint64_t{kBlock}));
  return gpusim::LaunchConfig{std::max<std::uint32_t>(1, blocks),
                              std::min<std::uint32_t>(
                                  kBlock, static_cast<std::uint32_t>(
                                              std::max<std::uint64_t>(
                                                  1, threads)))};
}

}  // namespace

ExecutableReport run_executable_dp(const dp::DpProblem& problem,
                                   gpusim::Device& device,
                                   std::size_t partition_dims,
                                   int stream_count) {
  problem.validate();
  PCMAX_EXPECTS(stream_count >= 1);
  const dp::MixedRadix radix = problem.radix();
  PCMAX_EXPECTS(radix.size() <= 100'000);
  PCMAX_EXPECTS(radix.dims() <= 64);
  const std::size_t dims = radix.dims();

  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), partition_dims));
  const dp::ConfigSet configs(problem.counts, problem.weights,
                              problem.capacity, radix);
  const dp::LevelBuckets block_buckets(layout.grid());
  const dp::LevelBuckets in_block_buckets(layout.block());

  // Host-resident "device memory": table (blocked order) and coordinates.
  std::vector<std::int32_t> blocked(radix.size(), dp::kInfeasible);
  blocked[0] = 0;
  std::vector<std::int64_t> coords_of(radix.size() * dims);
  {
    std::vector<std::int64_t> c(dims);
    for (std::uint64_t id = 0; id < radix.size(); ++id) {
      radix.unflatten(id, c);
      const std::uint64_t b = layout.blocked_offset(c);
      std::copy(c.begin(), c.end(), coords_of.begin() +
                                        static_cast<std::ptrdiff_t>(b * dims));
    }
  }
  const dp::MixedRadix& grid = layout.grid();
  const dp::MixedRadix& block = layout.block();
  const auto& block_size = block.extents();

  ExecutableReport report;
  LevelWork totals;  // for the analytic comparison
  ChargeParams params;
  params.dims = dims;
  params.search_cells = layout.cells_per_block();
  const util::SimTime start = device.now();

  std::vector<std::int64_t> bcoords(dims), lcoords(dims), cell(dims);
  std::vector<std::int64_t> sub(dims);

  for (std::int64_t blk_lvl = 0; blk_lvl < block_buckets.levels();
       ++blk_lvl) {
    if (blk_lvl > 0) device.synchronize();
    const auto blocks = block_buckets.cells_at(blk_lvl);
    for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
      const std::uint64_t block_id = blocks[bi];
      const int stream =
          static_cast<int>(bi % static_cast<std::size_t>(stream_count));
      grid.unflatten(block_id, bcoords);
      const std::uint64_t base = block_id * layout.cells_per_block();

      for (std::int64_t lvl = 0; lvl < in_block_buckets.levels(); ++lvl) {
        const auto locals = in_block_buckets.cells_at(lvl);
        if (locals.empty()) continue;

        // --- FindOPT: one thread per configuration of this level. -------
        device.launch(
            stream, "FindOPT-x", grid_for(locals.size()),
            [&](gpusim::ThreadCtx& ctx) {
              if (ctx.global_id() >= locals.size()) return;
              const std::uint64_t b = base + locals[ctx.global_id()];
              for (std::size_t j = 0; j < dims; ++j)
                ctx.load(kCoordsBase + (b * dims + j) * 8);
              ctx.ops(4 * dims);
            });

        // --- Per configuration: the two child kernels. -------------------
        for (const auto local_id : locals) {
          const std::uint64_t b = base + local_id;
          if (b == 0) {  // origin is pinned
            totals.cells += 1;
            totals.candidates += 1;
            continue;
          }
          block.unflatten(local_id, lcoords);
          for (std::size_t j = 0; j < dims; ++j)
            cell[j] = bcoords[j] * block_size[j] + lcoords[j];

          const std::uint64_t candidates = dp::candidate_count(cell);
          const dp::MixedRadix cand_radix([&] {
            std::vector<std::int64_t> e(dims);
            for (std::size_t j = 0; j < dims; ++j) e[j] = cell[j] + 1;
            return e;
          }());

          // FindValidSub: one thread per candidate s <= v; validity test
          // against the capacity; valid candidates written to scratch.
          std::vector<std::uint64_t> valid;  // candidate indices
          device.launch(
              stream, "FindValidSub-x", grid_for(candidates),
              [&](gpusim::ThreadCtx& ctx) {
                const std::uint64_t tid = ctx.global_id();
                if (tid >= candidates) return;
                std::int64_t s[64];
                cand_radix.unflatten(tid, std::span<std::int64_t>(s, dims));
                ctx.ops(2 * dims);
                std::int64_t weight = 0, jobs = 0;
                for (std::size_t j = 0; j < dims; ++j) {
                  ctx.load(kWeightsBase + j * 8);
                  weight += s[j] * problem.weights[j];
                  jobs += s[j];
                }
                if (jobs > 0 && weight <= problem.capacity) {
                  ctx.store(kScratchBase + tid * 8);
                  valid.push_back(tid);
                }
              });

          // SetOPT: one thread per valid sub-configuration; locates the
          // sub-configuration's cell by scanning its block's coordinate
          // vectors (Algorithm 5 lines 25-28), then min-reduces.
          std::int32_t best = dp::kInfeasible;
          if (!valid.empty()) {
            device.launch(
                stream, "SetOPT-x", grid_for(valid.size()),
                [&](gpusim::ThreadCtx& ctx) {
                  const std::uint64_t tid = ctx.global_id();
                  if (tid >= valid.size()) return;
                  std::int64_t s[64];
                  cand_radix.unflatten(valid[tid],
                                       std::span<std::int64_t>(s, dims));
                  std::int64_t u[64];
                  for (std::size_t j = 0; j < dims; ++j)
                    u[j] = cell[j] - s[j];
                  const std::uint64_t target = layout.blocked_offset(
                      std::span<const std::int64_t>(u, dims));
                  // Scan the target's block up to the match.
                  const std::uint64_t scan_base =
                      (target / layout.cells_per_block()) *
                      layout.cells_per_block();
                  for (std::uint64_t probe = scan_base;; ++probe) {
                    bool match = true;
                    for (std::size_t j = 0; j < dims; ++j) {
                      ctx.load(kCoordsBase + (probe * dims + j) * 8);
                      ctx.ops(1);
                      if (coords_of[probe * dims + j] != u[j]) {
                        match = false;
                        break;
                      }
                    }
                    if (match) break;
                  }
                  ctx.load(kTableBase + target * 4);
                  const std::int32_t val = blocked[target];
                  ctx.ops(1);
                  ctx.store(kTableBase + b * 4);  // atomicMin
                  if (val < best) best = val;
                });
          }
          // Cross-check the simulated SetOPT reduction against the shared
          // SoA fits kernel every other engine routes through: both must
          // reach the same minimum over the cell's dependencies.
          std::int32_t kernel_best = dp::kInfeasible;
          std::int64_t cell_level = 0;
          for (std::size_t j = 0; j < dims; ++j) cell_level += cell[j];
          configs.for_each_fitting(cell, cell_level, [&](std::size_t ci) {
            const auto s = configs.config(ci);
            for (std::size_t j = 0; j < dims; ++j) sub[j] = cell[j] - s[j];
            const std::int32_t val = blocked[layout.blocked_offset(sub)];
            if (val < kernel_best) kernel_best = val;
            return true;
          });
          PCMAX_ENSURES(kernel_best == best);
          blocked[b] = best == dp::kInfeasible ? dp::kInfeasible : best + 1;

          totals.cells += 1;
          totals.candidates += candidates;
          totals.deps += valid.size();
        }
      }
    }
  }
  device.synchronize();
  report.device_time = device.now() - start;

  // Collect measured work from the device log by kernel name.
  gpusim::WorkEstimate measured_fo, measured_fvs, measured_so;
  for (const auto& rec : device.log()) {
    if (rec.name == "FindOPT-x") measured_fo += rec.work;
    if (rec.name == "FindValidSub-x") measured_fvs += rec.work;
    if (rec.name == "SetOPT-x") measured_so += rec.work;
  }
  measured_fo.child_launches = 2 * totals.cells;
  report.measured_find_opt = measured_fo;
  report.measured_find_valid_sub = measured_fvs;
  report.measured_set_opt = measured_so;
  report.analytic_find_opt = charge_find_opt(totals, params);
  report.analytic_find_valid_sub = charge_find_valid_sub(totals, params);
  report.analytic_set_opt = charge_set_opt(totals, params);

  // Convert the blocked table to row-major.
  report.result.table.assign(radix.size(), dp::kInfeasible);
  std::vector<std::int64_t> c(dims);
  for (std::uint64_t id = 0; id < radix.size(); ++id) {
    radix.unflatten(id, c);
    report.result.table[id] = blocked[layout.blocked_offset(c)];
  }
  report.result.opt = report.result.table.back();
  faultsim::maybe_corrupt_table(report.result.table, report.result.opt);
  report.result.config_count = configs.size();
  return report;
}

}  // namespace pcmax::gpu
