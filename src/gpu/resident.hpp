// Block-residency analysis — the paper's Section V future-work idea: "if
// the blocks that include the required subproblems can be located, only the
// values of the subproblems in these blocks are needed on the GPU".
//
// A cell in block g depends only on cells in blocks g' with
// g_i - reach_i <= g'_i <= g_i, where reach_i = max over configurations s
// of ceil(s_i / block_size_i). While the wavefront processes block-level L,
// only the blocks of level L plus their reachable predecessors must be
// device-resident; everything older can be evicted to the host. This module
// computes that working set exactly, per block-level, so the saving the
// paper conjectures can be quantified (see bench_ablation_partition).
#pragma once

#include <cstdint>
#include <vector>

#include "dp/problem.hpp"
#include "partition/blocked_layout.hpp"

namespace pcmax::gpu {

/// Per-dimension dependency reach in blocks for `layout` of `problem`:
/// reach_i = max over configurations s of ceil(s_i / block_size_i). A cell
/// in block g depends only on cells in blocks g - offset with
/// 0 <= offset_i <= reach_i. The sharded wavefront and the placement
/// strategies both consume this (see placement::for_each_reach_predecessor).
[[nodiscard]] std::vector<std::int64_t> dependency_reach(
    const dp::DpProblem& problem, const partition::BlockedLayout& layout);

struct ResidentAnalysis {
  /// Per-dimension dependency reach in blocks.
  std::vector<std::int64_t> reach;
  /// Cells that must be device-resident while each block-level executes.
  std::vector<std::uint64_t> resident_cells_per_level;
  /// max of resident_cells_per_level.
  std::uint64_t peak_resident_cells = 0;
  /// Full table size, for comparison.
  std::uint64_t table_cells = 0;

  [[nodiscard]] double saving_factor() const noexcept {
    return peak_resident_cells == 0
               ? 1.0
               : static_cast<double>(table_cells) /
                     static_cast<double>(peak_resident_cells);
  }
};

/// Analyzes the blocked layout chosen by `partition_dims` for `problem`.
[[nodiscard]] ResidentAnalysis analyze_block_residency(
    const dp::DpProblem& problem, std::size_t partition_dims);

}  // namespace pcmax::gpu
