#include "gpu/resilient_gpu.hpp"

#include <utility>

#include "core/bounds.hpp"
#include "core/rounding.hpp"
#include "eptas/eptas.hpp"
#include "util/checked_math.hpp"

namespace pcmax::gpu {

SolveEngine make_gpu_engine(gpusim::Device& device,
                            const GpuPtasOptions& base) {
  SolveEngine engine;
  engine.name = "gpu-ptas";
  engine.uses_k = true;
  engine.bound = [](std::int64_t, std::int64_t k) {
    return std::pair<std::int64_t, std::int64_t>{k + 1, k};
  };
  // Worst case over the search range (T = LB keeps the most jobs long):
  // the executable DP keeps the int32 table and per-cell int64 coordinates
  // resident in device memory.
  engine.mem_estimate = [](const Instance& instance, std::int64_t k) {
    const RoundedInstance rounded =
        round_instance(instance, makespan_lower_bound(instance), k);
    const std::uint64_t per_cell =
        sizeof(std::int32_t) +
        util::checked_mul(rounded.nonzero_dims(), sizeof(std::int64_t));
    return util::checked_mul(rounded.table_size(), per_cell);
  };
  engine.run = [&device, base](const Instance& instance, std::int64_t k,
                               const EngineContext& ctx) {
    // Probe-level wall deadlines cannot preempt a simulated solve, so the
    // whole-solve deadline is enforced at the attempt boundary; the stream
    // stall watchdog bounds simulated hangs inside.
    ctx.deadline.check("solve");
    GpuPtasOptions options = base;
    options.epsilon = epsilon_for_k(k);
    if (ctx.probe_cache != nullptr) {
      options.use_probe_cache = true;
      options.probe_cache = ctx.probe_cache;
    }
    GpuPtasResult r = solve_gpu_ptas(instance, device, options);
    ctx.deadline.check("solve");
    return EngineOutcome{std::move(r.ptas.schedule),
                         r.ptas.achieved_makespan, r.ptas.best_target};
  };
  engine.recover = [&device]() { device.reset(); };
  engine.backoff = [&device](std::int64_t ms) {
    device.advance(util::SimTime::milliseconds(ms));
  };
  return engine;
}

SolveEngine make_gpu_engine(gpusim::Topology& topology,
                            const GpuPtasOptions& base) {
  SolveEngine engine;
  engine.name = "gpu-ptas";
  engine.uses_k = true;
  engine.bound = [](std::int64_t, std::int64_t k) {
    return std::pair<std::int64_t, std::int64_t>{k + 1, k};
  };
  // Per-device worst case: the table shards evenly to within one block
  // under every placement's cap, so the largest device holds at most
  // ceil(table bytes / devices) of table plus its own replica of the
  // configuration set (per-cell coordinates, like the single-device
  // estimate). The resilient pre-flight compares this — the budget bounds
  // each device of the topology, not their sum.
  const auto devices = static_cast<std::uint64_t>(topology.device_count());
  engine.mem_estimate = [devices](const Instance& instance, std::int64_t k) {
    const RoundedInstance rounded =
        round_instance(instance, makespan_lower_bound(instance), k);
    const std::uint64_t table_share =
        util::ceil_div(util::checked_mul(rounded.table_size(),
                                         std::uint64_t{sizeof(std::int32_t)}),
                       devices);
    const std::uint64_t config_share = util::ceil_div(
        util::checked_mul(rounded.table_size(),
                          util::checked_mul(rounded.nonzero_dims(),
                                            sizeof(std::int64_t))),
        devices);
    return util::checked_add(table_share, config_share);
  };
  engine.run = [&topology, base](const Instance& instance, std::int64_t k,
                                 const EngineContext& ctx) {
    ctx.deadline.check("solve");
    GpuPtasOptions options = base;
    options.epsilon = epsilon_for_k(k);
    if (ctx.probe_cache != nullptr) {
      options.use_probe_cache = true;
      options.probe_cache = ctx.probe_cache;
    }
    GpuPtasResult r = solve_gpu_ptas(instance, topology, options);
    ctx.deadline.check("solve");
    return EngineOutcome{std::move(r.ptas.schedule),
                         r.ptas.achieved_makespan, r.ptas.best_target};
  };
  engine.recover = [&topology]() { topology.reset(); };
  engine.backoff = [&topology](std::int64_t ms) {
    topology.advance(util::SimTime::milliseconds(ms));
  };
  return engine;
}

// The sparsified EPTAS engine is the strongest CPU fallback: same (k+1)/k
// bound as the classic CPU engines but with structurally smaller DP tables,
// so it sits right behind the GPU engine — a device loss degrades to the
// cheapest CPU path first, and the classic engines remain as diversity
// behind it (a sparsification bug must not take the whole CPU tier down).
std::vector<SolveEngine> make_gpu_chain(gpusim::Device& device,
                                        const GpuPtasOptions& base) {
  std::vector<SolveEngine> chain;
  chain.push_back(make_gpu_engine(device, base));
  chain.push_back(eptas::make_eptas_engine());
  for (SolveEngine& engine : make_cpu_engines())
    chain.push_back(std::move(engine));
  chain.push_back(make_lpt_engine());
  return chain;
}

std::vector<SolveEngine> make_gpu_chain(gpusim::Topology& topology,
                                        const GpuPtasOptions& base) {
  std::vector<SolveEngine> chain;
  chain.push_back(make_gpu_engine(topology, base));
  chain.push_back(eptas::make_eptas_engine());
  for (SolveEngine& engine : make_cpu_engines())
    chain.push_back(std::move(engine));
  chain.push_back(make_lpt_engine());
  return chain;
}

}  // namespace pcmax::gpu
