// Recovery policy for device loss mid-solve: given the checkpoint journal,
// the current block placement, and which devices are gone, decide whether
// the wavefront can continue — and if so, exactly which blocks must be
// re-materialized from mirrors and which must be re-executed from the
// replay log. Pure decisions over plain data; the gpu layer executes the
// plan by charging the actual transfers and kernels.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "recover/checkpoint.hpp"

namespace pcmax::recover {

struct RecoveryOptions {
  /// Recovery is refused once fewer than this many devices survive (the
  /// resilient chain then degrades instead). Clamped to >= 1.
  int min_devices = 1;
  /// Barriers between checkpoints; 0 disables checkpointing (and with it,
  /// in-solve recovery — a loss then degrades through the resilient chain).
  std::int64_t checkpoint_every = 0;

  [[nodiscard]] bool enabled() const noexcept { return checkpoint_every > 0; }
};

/// Why recovery was refused; kNone means the RecoveryPlan is actionable.
enum class RecoveryRefusal : std::uint8_t {
  kNone = 0,
  kBelowMinDevices,  ///< fewer survivors than RecoveryOptions::min_devices
  kMirrorLost,       ///< a lost device's mirror copy is also on a lost device
};

[[nodiscard]] std::string_view recovery_refusal_name(
    RecoveryRefusal refusal) noexcept;

/// One block to re-materialize: charge a transfer of the block's bytes from
/// `mirror_device` to `new_owner` (no transfer when they coincide).
struct RestoreStep {
  std::uint64_t block_id = 0;
  int mirror_device = -1;
  int new_owner = -1;
};

/// One block to re-execute on its new owner (its post-checkpoint values
/// died with the lost device and were never mirrored).
struct ReplayStep {
  std::int64_t level = 0;
  BlockWork work;
  int new_owner = -1;
};

struct RecoveryPlan {
  RecoveryRefusal refusal = RecoveryRefusal::kNone;
  std::vector<RestoreStep> restores;
  std::vector<ReplayStep> replays;

  [[nodiscard]] bool recoverable() const noexcept {
    return refusal == RecoveryRefusal::kNone;
  }
};

/// Plans the recovery after `excluded` devices were lost. `old_plan` is the
/// placement in force when the loss struck, `new_plan` the merged
/// replacement placement (survivor-owned blocks unchanged, lost-device
/// blocks re-homed onto survivors), `frontier` the block slice successor
/// levels can still read (compute_frontier at the interrupted level).
///
/// A frontier block owned by a lost device must be restored from its
/// mirror (refusing with kMirrorLost when that mirror is gone too); blocks
/// in the replay log owned by a lost device must be re-executed. Everything
/// else survives in place.
[[nodiscard]] RecoveryPlan plan_recovery(const CheckpointLog& log,
                                         std::span<const int> old_plan,
                                         std::span<const int> new_plan,
                                         std::span<const std::uint8_t> excluded,
                                         std::span<const std::uint64_t> frontier,
                                         const RecoveryOptions& options);

}  // namespace pcmax::recover
