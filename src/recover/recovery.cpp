#include "recover/recovery.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.hpp"

namespace pcmax::recover {

std::string_view recovery_refusal_name(RecoveryRefusal refusal) noexcept {
  switch (refusal) {
    case RecoveryRefusal::kNone: return "none";
    case RecoveryRefusal::kBelowMinDevices: return "below-min-devices";
    case RecoveryRefusal::kMirrorLost: return "mirror-lost";
  }
  return "unknown";
}

RecoveryPlan plan_recovery(const CheckpointLog& log,
                           std::span<const int> old_plan,
                           std::span<const int> new_plan,
                           std::span<const std::uint8_t> excluded,
                           std::span<const std::uint64_t> frontier,
                           const RecoveryOptions& options) {
  PCMAX_EXPECTS(old_plan.size() == new_plan.size());
  RecoveryPlan plan;

  int alive = 0;
  for (const std::uint8_t gone : excluded) alive += gone == 0 ? 1 : 0;
  if (alive < std::max(options.min_devices, 1)) {
    plan.refusal = RecoveryRefusal::kBelowMinDevices;
    return plan;
  }

  const auto lost = [&](int device) {
    return device < 0 ||
           excluded[static_cast<std::size_t>(device)] != 0;
  };

  // Work recorded since the last checkpoint died with its device and was
  // never mirrored: re-execute it on the new owners. One block is computed
  // at exactly one block-level, so the replay set and the restore set below
  // never double-charge a block.
  std::unordered_set<std::uint64_t> replayed;
  for (const CheckpointLog::LevelReplay& level : log.replay()) {
    for (const BlockWork& work : level.blocks) {
      const int owner = old_plan[static_cast<std::size_t>(work.block_id)];
      if (!lost(owner)) continue;
      plan.replays.push_back(ReplayStep{
          level.level, work,
          new_plan[static_cast<std::size_t>(work.block_id)]});
      replayed.insert(work.block_id);
    }
  }

  // Frontier blocks owned by a lost device and older than the replay window
  // must come back from their checkpoint mirrors.
  for (const std::uint64_t block : frontier) {
    const int owner = old_plan[static_cast<std::size_t>(block)];
    if (!lost(owner)) continue;
    if (replayed.contains(block)) continue;
    const int mirror = log.mirror_site(block);
    if (lost(mirror)) {
      // The mirror is gone too (or never existed): the value is
      // unrecoverable and the solve must degrade.
      plan.refusal = RecoveryRefusal::kMirrorLost;
      plan.restores.clear();
      plan.replays.clear();
      return plan;
    }
    plan.restores.push_back(RestoreStep{
        block, mirror, new_plan[static_cast<std::size_t>(block)]});
  }

  return plan;
}

}  // namespace pcmax::recover
