// Wavefront checkpoints for the sharded DP solve. At a block-level barrier
// every value already computed is final, so a checkpoint is cheap: record
// the per-device shard manifest plus a digest of the frontier (the block
// slice successor levels can still read), and ship the blocks computed
// since the previous checkpoint to each owner's buddy device. Should a
// device be lost later, its frontier lives on in buddy mirrors and only the
// levels after the last checkpoint need re-execution — the replay log below
// records exactly that work.
//
// Everything here is pure bookkeeping: no simulated device is touched. The
// gpu layer (GpuDpSolver's sharded observer) charges the actual mirror
// transfers/allocations and feeds this log; src/recover stays independently
// unit-testable.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "partition/blocked_layout.hpp"

namespace pcmax::recover {

/// Aggregated kernel work one block contributed at one in-block level: what
/// a replacement device must re-charge when the block's owner is lost
/// before the next checkpoint mirrored the block.
struct BlockWork {
  std::uint64_t block_id = 0;
  std::uint64_t cells = 0;       ///< DP cells finalized (SetOPT threads)
  std::uint64_t candidates = 0;  ///< candidate evaluations (FindOPT work)
  std::uint64_t deps = 0;        ///< dependent sub-config reads (FindValidSub)
};

/// Snapshot taken at one wavefront barrier.
struct WavefrontCheckpoint {
  std::int64_t level = -1;          ///< block-level whose barrier took it
  std::vector<int> shard_manifest;  ///< block -> owning device at that time
  std::vector<int> mirror_of;       ///< device -> buddy holding its mirrors
  std::uint64_t frontier_digest = 0;

  [[nodiscard]] bool valid() const noexcept { return level >= 0; }
};

/// FNV-1a over (level, frontier block ids, their owners): a cheap integrity
/// stamp recorded with every checkpoint and replayed in traces, so two runs
/// that disagree on the frontier are distinguishable at a glance.
[[nodiscard]] std::uint64_t frontier_digest(
    std::int64_t level, std::span<const std::uint64_t> frontier,
    std::span<const int> manifest) noexcept;

/// Blocks whose values successor levels can still read when the wavefront
/// stands at block-level `level`: every block with block-level in
/// [level - window, level - 1], where window = max(1, sum of per-dimension
/// reach). Conservative (a superset of what is strictly live) and cheap.
[[nodiscard]] std::vector<std::uint64_t> compute_frontier(
    const partition::BlockedLayout& layout, std::int64_t level,
    std::span<const std::int64_t> reach);

/// Buddy assignment over the alive devices: each device mirrors onto the
/// next alive ordinal, cyclically. Excluded devices get (and are) no buddy;
/// a lone survivor gets -1 (nothing to mirror to).
[[nodiscard]] std::vector<int> assign_buddies(
    std::span<const std::uint8_t> excluded);

/// The running recovery journal of one sharded solve: the latest
/// checkpoint, where each mirrored block's copy lives, and the per-level
/// replay log of work done since that checkpoint.
class CheckpointLog {
 public:
  struct LevelReplay {
    std::int64_t level = 0;
    std::vector<BlockWork> blocks;
  };

  /// Opens the replay record for `level`; subsequent record() calls attach
  /// to it.
  void begin_level(std::int64_t level);

  /// Accumulates kernel work for a block at the current level (one block
  /// may be recorded once per in-block level; entries merge by block id).
  void record(const BlockWork& work);

  /// Installs a new checkpoint: `mirrored` lists the blocks whose copies
  /// were just shipped (all replay-log blocks), each now living on
  /// `ckpt.mirror_of[owner]`. The replay log resets — everything up to the
  /// checkpoint is covered by mirrors. Mirrors whose block-level fell out
  /// of the frontier window are NOT dropped here; they simply stop
  /// mattering (restores only ever touch current-frontier blocks).
  void install(WavefrontCheckpoint ckpt, std::span<const std::uint64_t> mirrored);

  [[nodiscard]] bool has_checkpoint() const noexcept { return last_.valid(); }
  [[nodiscard]] const WavefrontCheckpoint& last() const noexcept {
    return last_;
  }

  /// Device holding the checkpointed copy of `block`, or -1 when the block
  /// was never mirrored (it is younger than the last checkpoint and lives
  /// only in the replay log).
  [[nodiscard]] int mirror_site(std::uint64_t block) const noexcept;

  [[nodiscard]] std::span<const LevelReplay> replay() const noexcept {
    return replay_;
  }
  [[nodiscard]] std::int64_t levels_since_checkpoint() const noexcept {
    return static_cast<std::int64_t>(replay_.size());
  }

  void clear();

 private:
  WavefrontCheckpoint last_{};
  std::vector<LevelReplay> replay_;
  std::unordered_map<std::uint64_t, int> mirror_site_;
};

}  // namespace pcmax::recover
