#include "recover/checkpoint.hpp"

#include <algorithm>

#include "dp/mixed_radix.hpp"
#include "util/contracts.hpp"

namespace pcmax::recover {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffULL;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t frontier_digest(std::int64_t level,
                              std::span<const std::uint64_t> frontier,
                              std::span<const int> manifest) noexcept {
  std::uint64_t hash = kFnvOffset;
  fnv_mix(hash, static_cast<std::uint64_t>(level));
  for (const std::uint64_t block : frontier) {
    fnv_mix(hash, block);
    fnv_mix(hash, static_cast<std::uint64_t>(
                      manifest[static_cast<std::size_t>(block)]));
  }
  return hash;
}

std::vector<std::uint64_t> compute_frontier(
    const partition::BlockedLayout& layout, std::int64_t level,
    std::span<const std::int64_t> reach) {
  std::int64_t window = 0;
  for (const std::int64_t r : reach) window += r;
  window = std::max<std::int64_t>(window, 1);
  const dp::LevelBuckets buckets(layout.grid());
  std::vector<std::uint64_t> frontier;
  const std::int64_t lo = std::max<std::int64_t>(level - window, 0);
  const std::int64_t hi = std::min(level, buckets.levels());
  for (std::int64_t lvl = lo; lvl < hi; ++lvl) {
    const auto ids = buckets.cells_at(lvl);
    frontier.insert(frontier.end(), ids.begin(), ids.end());
  }
  return frontier;
}

std::vector<int> assign_buddies(std::span<const std::uint8_t> excluded) {
  const int n = static_cast<int>(excluded.size());
  std::vector<int> buddies(excluded.size(), -1);
  for (int d = 0; d < n; ++d) {
    if (excluded[static_cast<std::size_t>(d)] != 0) continue;
    for (int step = 1; step < n; ++step) {
      const int cand = (d + step) % n;
      if (excluded[static_cast<std::size_t>(cand)] == 0) {
        buddies[static_cast<std::size_t>(d)] = cand;
        break;
      }
    }
  }
  return buddies;
}

void CheckpointLog::begin_level(std::int64_t level) {
  if (!replay_.empty() && replay_.back().level == level) return;
  replay_.push_back(LevelReplay{level, {}});
}

void CheckpointLog::record(const BlockWork& work) {
  PCMAX_EXPECTS(!replay_.empty());
  auto& blocks = replay_.back().blocks;
  // In-block levels of one block arrive consecutively; merge by block id so
  // the log stays one entry per (level, block).
  for (auto it = blocks.rbegin(); it != blocks.rend(); ++it) {
    if (it->block_id == work.block_id) {
      it->cells += work.cells;
      it->candidates += work.candidates;
      it->deps += work.deps;
      return;
    }
  }
  blocks.push_back(work);
}

void CheckpointLog::install(WavefrontCheckpoint ckpt,
                            std::span<const std::uint64_t> mirrored) {
  for (const std::uint64_t block : mirrored) {
    const int owner = ckpt.shard_manifest[static_cast<std::size_t>(block)];
    const int buddy = ckpt.mirror_of[static_cast<std::size_t>(owner)];
    if (buddy >= 0) mirror_site_[block] = buddy;
  }
  last_ = std::move(ckpt);
  replay_.clear();
}

int CheckpointLog::mirror_site(std::uint64_t block) const noexcept {
  const auto it = mirror_site_.find(block);
  return it == mirror_site_.end() ? -1 : it->second;
}

void CheckpointLog::clear() {
  last_ = {};
  replay_.clear();
  mirror_site_.clear();
}

}  // namespace pcmax::recover
