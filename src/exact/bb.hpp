// Depth-first branch-and-bound for exact P||Cmax, engineered along the
// lines of Akram-Maas-Sanders ("Engineering Optimal Parallel Task
// Scheduling"): jobs sorted descending, LPT-seeded incumbent, per-node
// water-filling completion bound, and two dominance rules —
//
//   * machine-load symmetry: among machines with equal load only the first
//     is tried (assignments are canonical up to machine permutation), and
//   * identical-job symmetry: a job equal to its predecessor never goes to
//     a machine before the predecessor's (swapping the two jobs maps any
//     such schedule to one the search already covers).
//
// Budget exhaustion is not an error: the result carries the LPT-seeded
// incumbent (a valid schedule, never worse than LPT) plus the proven root
// lower bound, with status kDeadlineExceeded — so the engine composes with
// the resilient driver's typed-degradation contract instead of returning
// nothing the way baselines::solve_exact does.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/status.hpp"

namespace pcmax::exact {

struct BbOptions {
  /// Maximum search nodes before giving up with kDeadlineExceeded; 0 means
  /// unbounded. The default proves optimality for seeded n=100, m=10
  /// instances (pinned by tests/exact/test_bb.cpp).
  std::uint64_t node_budget = 20'000'000;
  /// Wall-clock deadline in milliseconds; 0 means none. Checked every few
  /// thousand nodes, so expiry is detected within a small overshoot.
  std::int64_t deadline_ms = 0;
  /// Dominance-rule toggles, exposed so tests can verify each rule changes
  /// only the node count, never the optimum.
  bool symmetry_identical_jobs = true;
  bool symmetry_machine_loads = true;
  /// Per-node water-filling bound (exact/bounds.hpp); togglable for the
  /// same reason.
  bool use_completion_bound = true;
};

struct BbStats {
  std::uint64_t nodes = 0;
  std::uint64_t bound_prunes = 0;
  std::uint64_t symmetry_skips = 0;
  std::uint64_t incumbent_updates = 0;
  std::int64_t root_lower_bound = 0;
  std::int64_t root_upper_bound = 0;  // LPT makespan
};

struct BbResult {
  /// kOk when `makespan` is proven optimal; kDeadlineExceeded when the
  /// node/time budget ran out first.
  Status status;
  /// Best makespan found. Always achieved by `schedule`; never worse than
  /// LPT (the incumbent starts there), so the engine inherits LPT's
  /// a-priori (4m-1)/(3m) guarantee even on budget exhaustion.
  std::int64_t makespan = 0;
  /// Proven lower bound on OPT: equals `makespan` iff status is ok,
  /// otherwise the strongest root bound.
  std::int64_t lower_bound = 0;
  Schedule schedule;
  BbStats stats;

  [[nodiscard]] bool optimal() const noexcept { return status.is_ok(); }
};

/// Solve `instance` exactly (subject to the budget). Never throws on budget
/// exhaustion; throws util::contract_violation on invalid instances like
/// every other solver entry point.
[[nodiscard]] BbResult solve_bb(const Instance& instance,
                                const BbOptions& options = {});

}  // namespace pcmax::exact
