#include "exact/bounds.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/heuristics.hpp"
#include "core/bounds.hpp"
#include "util/contracts.hpp"

namespace pcmax::exact {

namespace {

/// ceil(a * b / c) in 128-bit intermediates: the a-posteriori bounds
/// multiply a makespan by c*m, which can exceed 64 bits on instances with
/// huge processing times; a silently wrapped lower bound would make the
/// search "prove" wrong optima.
std::int64_t ceil_mul_div(std::int64_t a, std::int64_t b, std::int64_t c) {
  PCMAX_EXPECTS(a >= 0 && b >= 0 && c > 0);
  const auto num = static_cast<unsigned __int128>(a) *
                   static_cast<unsigned __int128>(b);
  const auto den = static_cast<unsigned __int128>(c);
  return static_cast<std::int64_t>((num + den - 1) / den);
}

}  // namespace

std::int64_t RootBounds::lower() const noexcept {
  return std::max({trivial, pairing, lpt_ratio, lpt_aposteriori});
}

std::int64_t pairing_bound(const std::vector<std::int64_t>& sorted_desc,
                           std::int64_t machines) {
  PCMAX_EXPECTS(machines >= 1);
  const auto n = static_cast<std::int64_t>(sorted_desc.size());
  if (n <= machines) return 0;
  const auto m = static_cast<std::size_t>(machines);
  // Two of the m+1 largest jobs share a machine; the cheapest pairing is
  // the two smallest of them.
  std::int64_t bound = sorted_desc[m - 1] + sorted_desc[m];
  // Of the h*m+1 largest jobs, some machine receives h+1; each of those
  // jobs is at least the (h*m+1)-th largest.
  for (std::int64_t h = 1; h * machines < n; ++h)
    bound = std::max(
        bound, (h + 1) * sorted_desc[static_cast<std::size_t>(h * machines)]);
  return bound;
}

std::int64_t lpt_aposteriori_bound(std::int64_t lpt_makespan,
                                   std::int64_t critical_jobs,
                                   std::int64_t machines) {
  PCMAX_EXPECTS(lpt_makespan >= 0 && critical_jobs >= 1 && machines >= 1);
  // One job defines the makespan: OPT >= max_j t_j >= that job == LPT.
  if (critical_jobs == 1) return lpt_makespan;
  // LPT <= ((c+1)/c - 1/(c*m)) * OPT  (Graham's a-posteriori form, with c
  // jobs on the critical machine), so OPT >= LPT * c*m / ((c+1)*m - 1).
  return ceil_mul_div(lpt_makespan, critical_jobs * machines,
                      (critical_jobs + 1) * machines - 1);
}

std::int64_t completion_lower_bound(const std::vector<std::int64_t>& loads,
                                    std::int64_t remaining) {
  std::vector<std::int64_t> sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  return completion_lower_bound_sorted(sorted, remaining);
}

std::int64_t completion_lower_bound_sorted(
    const std::vector<std::int64_t>& sorted, std::int64_t remaining) {
  PCMAX_EXPECTS(!sorted.empty() && remaining >= 0);
  const std::int64_t max_load = sorted.back();
  if (remaining == 0) return max_load;

  // Water-fill: find the segment [l[k-1], l[k]) whose slope-k fill absorbs
  // `remaining`, then take the integer ceiling of the level. f(L) =
  // sum max(0, L - l_i) is continuous and increasing, so exactly one
  // segment (or the open tail above l[m-1]) contains the solution.
  std::int64_t prefix = 0;
  const auto m = sorted.size();
  for (std::size_t k = 1; k <= m; ++k) {
    prefix += sorted[k - 1];
    const auto level = static_cast<std::int64_t>(
        (static_cast<unsigned __int128>(remaining) +
         static_cast<unsigned __int128>(prefix) +
         static_cast<unsigned __int128>(k) - 1) /
        k);
    if (level < sorted[k - 1]) continue;  // level below this segment
    if (k < m && level > sorted[k]) continue;  // next machine joins first
    return std::max(max_load, level);
  }
  // Unreachable: k == m always accepts (no upper segment limit).
  return max_load;
}

RootBounds compute_root_bounds(const Instance& instance) {
  instance.validate();
  RootBounds bounds;
  bounds.trivial = makespan_lower_bound(instance);

  std::vector<std::int64_t> sorted = instance.times;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  bounds.pairing = pairing_bound(sorted, instance.machines);

  bounds.lpt_schedule = baselines::lpt(instance);
  const auto loads = machine_loads(instance, bounds.lpt_schedule);
  const auto critical = static_cast<std::size_t>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
  bounds.lpt_makespan = loads[critical];
  std::int64_t critical_jobs = 0;
  for (const auto m : bounds.lpt_schedule.assignment)
    if (static_cast<std::size_t>(m) == critical) ++critical_jobs;

  // OPT >= ceil(3m * LPT / (4m - 1)): Graham's LPT ratio read backwards.
  bounds.lpt_ratio = ceil_mul_div(bounds.lpt_makespan, 3 * instance.machines,
                                  4 * instance.machines - 1);
  bounds.lpt_aposteriori = lpt_aposteriori_bound(
      bounds.lpt_makespan, critical_jobs, instance.machines);
  return bounds;
}

}  // namespace pcmax::exact
