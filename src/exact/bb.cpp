#include "exact/bb.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "exact/bounds.hpp"
#include "faultsim/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pcmax::exact {

namespace {

using Clock = std::chrono::steady_clock;

// Deadline polls happen once per this many nodes so the hot loop does not
// read the clock; at ~100ns/node the overshoot stays well under a
// millisecond.
constexpr std::uint64_t kDeadlineStride = 8192;

struct Dfs {
  const std::vector<std::int64_t>& times;   // sorted descending
  const std::vector<std::int64_t>& suffix;  // suffix[j] = sum times[j..n)
  const BbOptions& options;
  std::int64_t root_lower;
  bool has_deadline;
  Clock::time_point deadline;

  std::vector<std::int64_t> loads;
  std::vector<std::int64_t> assignment;  // position -> machine
  std::vector<std::int64_t> best_assignment;
  std::vector<std::int64_t> scratch;  // loads copy for the water-fill bound
  std::int64_t best;
  BbStats stats;
  bool aborted = false;

  [[nodiscard]] bool out_of_budget() {
    ++stats.nodes;
    if (options.node_budget != 0 && stats.nodes > options.node_budget)
      return true;
    if (has_deadline && stats.nodes % kDeadlineStride == 0 &&
        Clock::now() >= deadline)
      return true;
    return false;
  }

  void run(std::size_t j, std::int64_t current) {
    if (aborted) return;
    if (out_of_budget()) {
      aborted = true;
      return;
    }
    if (current >= best) {
      ++stats.bound_prunes;
      return;
    }
    if (j == times.size()) {
      best = current;
      best_assignment = assignment;
      ++stats.incumbent_updates;
      if (auto* t = obs::trace(); t != nullptr)
        t->instant("exact/incumbent", {obs::arg("makespan", best)});
      return;
    }
    if (options.use_completion_bound) {
      scratch.assign(loads.begin(), loads.end());
      std::sort(scratch.begin(), scratch.end());
      if (completion_lower_bound_sorted(scratch, suffix[j]) >= best) {
        ++stats.bound_prunes;
        return;
      }
    }
    // Identical-job rule: if this job equals its predecessor, machines
    // before the predecessor's need not be tried — swapping the two equal
    // jobs maps any such completion to one with the predecessor on the
    // earlier machine, which a sibling branch already covers.
    std::size_t start = 0;
    if (options.symmetry_identical_jobs && j > 0 && times[j] == times[j - 1])
      start = static_cast<std::size_t>(assignment[j - 1]);
    stats.symmetry_skips += start;
    std::int64_t prev_load = -1;
    for (std::size_t m = start; m < loads.size(); ++m) {
      if (options.symmetry_machine_loads && loads[m] == prev_load) {
        // Equal-load machines are interchangeable; only the first is tried.
        ++stats.symmetry_skips;
        continue;
      }
      prev_load = loads[m];
      const std::int64_t child = loads[m] + times[j];
      if (child >= best) {
        ++stats.bound_prunes;
        continue;
      }
      loads[m] += times[j];
      assignment[j] = static_cast<std::int64_t>(m);
      run(j + 1, std::max(current, child));
      loads[m] -= times[j];
      if (aborted || best == root_lower) return;  // proven optimal already
    }
  }
};

void flush_metrics(const BbStats& stats, bool proven) {
  obs::count("exact.solves");
  obs::count("exact.nodes", stats.nodes);
  obs::count("exact.bound_prunes", stats.bound_prunes);
  obs::count("exact.symmetry_skips", stats.symmetry_skips);
  obs::count("exact.incumbent_updates", stats.incumbent_updates);
  obs::count(proven ? "exact.proven" : "exact.budget_exhausted");
  obs::observe("exact.nodes_per_solve",
               static_cast<std::int64_t>(stats.nodes));
}

}  // namespace

BbResult solve_bb(const Instance& instance, const BbOptions& options) {
  instance.validate();
  obs::ScopedSpan span("exact/solve",
                       {obs::arg("jobs", instance.jobs()),
                        obs::arg("machines", instance.machines)});

  RootBounds root;
  {
    obs::ScopedSpan bounds_span("exact/bounds");
    root = compute_root_bounds(instance);
  }

  BbResult result;
  result.makespan = root.lpt_makespan;
  result.schedule = root.lpt_schedule;
  result.stats.root_lower_bound = root.lower();
  result.stats.root_upper_bound = root.lpt_makespan;

  if (root.lpt_makespan == root.lower()) {
    // LPT matches a proven lower bound: optimal with zero search nodes.
    result.status = Status::ok();
    result.lower_bound = result.makespan;
    flush_metrics(result.stats, /*proven=*/true);
    return result;
  }

  const auto n = instance.times.size();
  // More machines than jobs never helps an optimal schedule; shrinking the
  // machine loop also keeps the equal-load skip from re-scanning empties.
  const auto m_eff = static_cast<std::size_t>(
      std::min<std::int64_t>(instance.machines, instance.jobs()));
  faultsim::check_host_alloc((4 * n + 2 * m_eff) * sizeof(std::int64_t));

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return instance.times[a] > instance.times[b];
                   });
  std::vector<std::int64_t> sorted_times(n);
  for (std::size_t i = 0; i < n; ++i)
    sorted_times[i] = instance.times[order[i]];
  std::vector<std::int64_t> suffix(n + 1, 0);
  for (std::size_t i = n; i-- > 0;)
    suffix[i] = suffix[i + 1] + sorted_times[i];

  Dfs dfs{sorted_times,
          suffix,
          options,
          root.lower(),
          options.deadline_ms > 0,
          Clock::now() + std::chrono::milliseconds(options.deadline_ms),
          std::vector<std::int64_t>(m_eff, 0),
          std::vector<std::int64_t>(n, 0),
          {},
          std::vector<std::int64_t>(),
          root.lpt_makespan,
          {},
          false};
  {
    obs::ScopedSpan search_span("exact/search");
    dfs.run(0, 0);
  }

  result.stats.nodes = dfs.stats.nodes;
  result.stats.bound_prunes = dfs.stats.bound_prunes;
  result.stats.symmetry_skips = dfs.stats.symmetry_skips;
  result.stats.incumbent_updates = dfs.stats.incumbent_updates;
  result.makespan = dfs.best;
  if (!dfs.best_assignment.empty()) {
    result.schedule.assignment.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i)
      result.schedule.assignment[order[i]] = dfs.best_assignment[i];
  }  // else: the LPT seed was never improved; keep its schedule.
  validate_schedule(instance, result.schedule);

  if (dfs.aborted) {
    result.status = Status(
        StatusCode::kDeadlineExceeded,
        "exact-bb: search budget exhausted after " +
            std::to_string(dfs.stats.nodes) + " nodes; returning incumbent " +
            std::to_string(dfs.best) + " with proven lower bound " +
            std::to_string(root.lower()));
    result.lower_bound = root.lower();
  } else {
    result.status = Status::ok();
    result.lower_bound = dfs.best;
  }
  flush_metrics(result.stats, result.status.is_ok());
  return result;
}

}  // namespace pcmax::exact
