// Lower bounds for exact P||Cmax search. The branch-and-bound engine
// (exact/bb.hpp) prunes exactly as hard as these bounds are tight, so they
// are kept separate and individually testable: every function here returns
// a value that is provably <= OPT (tests/exact/test_bounds.cpp checks each
// one against brute force on the enumerable range).
//
// Root bounds (computed once per solve):
//   - trivial:          max(max_j t_j, ceil(sum_j t_j / m))
//   - pairing:          bin-packing pigeonhole family — of the h*m+1 largest
//                       jobs some machine receives h+1, and of the m+1
//                       largest some machine receives the two smallest
//   - lpt_ratio:        OPT >= ceil(3m * LPT / (4m - 1)), the a-priori
//                       Graham bound read backwards (Della Croce &
//                       Scatamacchia 2018 build their improved LPT variants
//                       on exactly this kind of per-instance certificate)
//   - lpt_aposteriori:  the critical-machine refinement: if the machine
//                       defining the LPT makespan runs c jobs, then
//                       LPT <= ((c+1)/c - 1/(c*m)) * OPT, i.e.
//                       OPT >= ceil(LPT * c * m / ((c+1) * m - 1)); with
//                       c == 1 the LPT makespan is a single job and LPT is
//                       optimal outright
//
// Node bound (computed per search node):
//   - completion_lower_bound: water-filling relaxation — pour the remaining
//     processing time fractionally over the current loads; no integral
//     completion can beat the resulting level.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace pcmax::exact {

struct RootBounds {
  std::int64_t trivial = 0;
  std::int64_t pairing = 0;
  std::int64_t lpt_ratio = 0;
  std::int64_t lpt_aposteriori = 0;
  /// LPT makespan: the upper bound / incumbent seed.
  std::int64_t lpt_makespan = 0;
  Schedule lpt_schedule;

  /// Strongest proven lower bound.
  [[nodiscard]] std::int64_t lower() const noexcept;
};

/// All root bounds for one instance (runs LPT once).
[[nodiscard]] RootBounds compute_root_bounds(const Instance& instance);

/// Pigeonhole family over `sorted_desc` (processing times in descending
/// order): max over h >= 1 with h*m < n of (h+1) * t[h*m], and t[m-1] + t[m]
/// when n > m. Returns 0 when n <= m (no machine is forced to double up).
[[nodiscard]] std::int64_t pairing_bound(
    const std::vector<std::int64_t>& sorted_desc, std::int64_t machines);

/// Critical-machine a-posteriori LPT bound: `critical_jobs` is the number of
/// jobs on the machine that defines the LPT makespan. Requires
/// critical_jobs >= 1; returns `lpt_makespan` itself when critical_jobs == 1
/// (LPT is provably optimal in that case).
[[nodiscard]] std::int64_t lpt_aposteriori_bound(std::int64_t lpt_makespan,
                                                 std::int64_t critical_jobs,
                                                 std::int64_t machines);

/// Water-filling completion bound: the smallest integer level L >= max(loads)
/// such that sum_i max(0, L - loads[i]) >= remaining. Any schedule that
/// extends `loads` by `remaining` total processing time has makespan >= the
/// returned value. `loads` must be non-empty; `remaining` >= 0.
[[nodiscard]] std::int64_t completion_lower_bound(
    const std::vector<std::int64_t>& loads, std::int64_t remaining);

/// As completion_lower_bound, but `sorted_loads` must already be ascending.
/// The search hot path copies loads into a reusable scratch buffer, sorts,
/// and calls this to avoid a per-node allocation.
[[nodiscard]] std::int64_t completion_lower_bound_sorted(
    const std::vector<std::int64_t>& sorted_loads, std::int64_t remaining);

}  // namespace pcmax::exact
