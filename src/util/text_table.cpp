#include "util/text_table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/contracts.hpp"

namespace pcmax::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PCMAX_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  PCMAX_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::cell(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string TextTable::cell(std::uint64_t v) { return std::to_string(v); }
std::string TextTable::cell(std::int64_t v) { return std::to_string(v); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size())
        out += std::string(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
    return out;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string format_vector(const std::vector<std::int64_t>& v) {
  std::string out = "(";
  for (std::size_t i = 0; i < v.size(); ++i) {
    out += std::to_string(v[i]);
    if (i + 1 < v.size()) out += ", ";
  }
  out += ")";
  return out;
}

}  // namespace pcmax::util
