// Overflow-checked arithmetic for table-size computations. Higher-dimensional
// DP table sizes are products of many per-dimension extents and silently
// wrapping would corrupt every downstream index computation.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace pcmax::util {

/// Thrown when a checked operation would overflow its result type.
class overflow_error : public std::overflow_error {
 public:
  using std::overflow_error::overflow_error;
};

/// Returns a*b, throwing overflow_error on wrap.
[[nodiscard]] inline std::uint64_t checked_mul(std::uint64_t a,
                                               std::uint64_t b) {
  std::uint64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r))
    throw overflow_error("checked_mul: 64-bit overflow");
  return r;
}

/// Returns a+b, throwing overflow_error on wrap.
[[nodiscard]] inline std::uint64_t checked_add(std::uint64_t a,
                                               std::uint64_t b) {
  std::uint64_t r = 0;
  if (__builtin_add_overflow(a, b, &r))
    throw overflow_error("checked_add: 64-bit overflow");
  return r;
}

/// Ceiling division for non-negative integers; b must be positive.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return a == 0 ? 0 : 1 + (a - 1) / b;
}

/// Largest integer whose square does not exceed n.
[[nodiscard]] constexpr std::uint64_t isqrt(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Newton iteration from an initial guess >= sqrt(n); all intermediate
  // values stay well below 2^64 because x >= sqrt(n) implies n/x <= sqrt(n).
  std::uint64_t x = n / 2 + 1;
  std::uint64_t y = (x + n / x) / 2;
  while (y < x) {
    x = y;
    y = (x + n / x) / 2;
  }
  // Division-based overshoot guard (x*x could overflow for huge n).
  while (x > n / x) --x;
  return x;
}

}  // namespace pcmax::util
