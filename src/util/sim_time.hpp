// Deterministic simulated time. All simulator cost accounting uses integer
// picoseconds so results are bit-identical across hosts and compilers;
// floating point appears only at the formatting boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace pcmax::util {

/// A span of simulated time, stored as integer picoseconds.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  [[nodiscard]] static constexpr SimTime picoseconds(std::int64_t ps) noexcept {
    return SimTime{ps};
  }
  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t ns) noexcept {
    return SimTime{ns * 1'000};
  }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t us) noexcept {
    return SimTime{us * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t ms) noexcept {
    return SimTime{ms * 1'000'000'000};
  }
  /// Rounds to the nearest picosecond; convenient for cost-model parameters
  /// expressed as fractional nanoseconds.
  [[nodiscard]] static SimTime from_ns(double ns) noexcept;

  [[nodiscard]] constexpr std::int64_t ps() const noexcept { return ps_; }
  [[nodiscard]] constexpr double ns() const noexcept {
    return static_cast<double>(ps_) / 1e3;
  }
  [[nodiscard]] constexpr double us() const noexcept {
    return static_cast<double>(ps_) / 1e6;
  }
  [[nodiscard]] constexpr double ms() const noexcept {
    return static_cast<double>(ps_) / 1e9;
  }

  constexpr SimTime& operator+=(SimTime o) noexcept {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) noexcept {
    ps_ -= o.ps_;
    return *this;
  }
  [[nodiscard]] friend constexpr SimTime operator+(SimTime a,
                                                   SimTime b) noexcept {
    return SimTime{a.ps_ + b.ps_};
  }
  [[nodiscard]] friend constexpr SimTime operator-(SimTime a,
                                                   SimTime b) noexcept {
    return SimTime{a.ps_ - b.ps_};
  }
  [[nodiscard]] friend constexpr SimTime operator*(SimTime a,
                                                   std::int64_t n) noexcept {
    return SimTime{a.ps_ * n};
  }
  [[nodiscard]] friend constexpr SimTime operator*(std::int64_t n,
                                                   SimTime a) noexcept {
    return a * n;
  }
  [[nodiscard]] friend constexpr SimTime operator/(SimTime a,
                                                   std::int64_t n) noexcept {
    return SimTime{a.ps_ / n};
  }
  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  /// "123.456 ms" style human-readable rendering with adaptive unit.
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t ps) noexcept : ps_(ps) {}
  std::int64_t ps_ = 0;
};

}  // namespace pcmax::util
