#include "util/sim_time.hpp"

#include <cmath>
#include <cstdio>

namespace pcmax::util {

SimTime SimTime::from_ns(double ns) noexcept {
  return SimTime{static_cast<std::int64_t>(std::llround(ns * 1e3))};
}

std::string SimTime::to_string() const {
  char buf[48];
  const double abs_ps = std::abs(static_cast<double>(ps_));
  if (abs_ps >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ms());
  } else if (abs_ps >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", us());
  } else {
    std::snprintf(buf, sizeof buf, "%.3f ns", this->ns());
  }
  return buf;
}

}  // namespace pcmax::util
