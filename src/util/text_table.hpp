// Column-aligned plain-text tables for the benchmark harnesses, so every
// bench binary prints rows in the same style the paper's tables use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcmax::util {

/// Accumulates rows of strings and renders them with aligned columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells via std::to_string-like rules.
  [[nodiscard]] static std::string cell(const std::string& s) { return s; }
  [[nodiscard]] static std::string cell(const char* s) { return s; }
  [[nodiscard]] static std::string cell(double v);
  [[nodiscard]] static std::string cell(std::uint64_t v);
  [[nodiscard]] static std::string cell(std::int64_t v);
  [[nodiscard]] static std::string cell(int v) {
    return cell(static_cast<std::int64_t>(v));
  }

  /// Renders the full table, header underlined with dashes.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an integer vector as "(a, b, c)" — the notation Tables I-VI use.
[[nodiscard]] std::string format_vector(const std::vector<std::int64_t>& v);

}  // namespace pcmax::util
