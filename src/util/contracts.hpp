// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 Expects / I.8 Ensures). Violations throw, so tests can assert on them;
// they are never compiled out because every check here guards a user-facing
// precondition, not a hot inner loop.
#pragma once

#include <stdexcept>
#include <string>

namespace pcmax::util {

/// Thrown when a public-API precondition is violated.
class contract_violation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line) {
  throw contract_violation(std::string(kind) + " failed: " + cond + " at " +
                           file + ":" + std::to_string(line));
}

}  // namespace pcmax::util

#define PCMAX_EXPECTS(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pcmax::util::contract_fail("Expects", #cond, __FILE__, __LINE__);   \
  } while (false)

#define PCMAX_ENSURES(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pcmax::util::contract_fail("Ensures", #cond, __FILE__, __LINE__);   \
  } while (false)
