// Seeded deterministic RNG used by workload generators. A thin wrapper around
// std::mt19937_64 so every generator in the repo draws from the same,
// reproducible source and call sites cannot forget to seed.
#pragma once

#include <cstdint>
#include <random>

#include "util/contracts.hpp"

namespace pcmax::util {

/// Deterministic pseudo-random source; identical seeds give identical streams
/// on every platform (mt19937_64 semantics are fixed by the standard).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive on both ends.
  [[nodiscard]] std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    PCMAX_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Normal draw clamped to [lo, hi].
  [[nodiscard]] std::int64_t clamped_normal(double mean, double stddev,
                                            std::int64_t lo, std::int64_t hi) {
    PCMAX_EXPECTS(lo <= hi);
    const double x = std::normal_distribution<double>(mean, stddev)(engine_);
    auto v = static_cast<std::int64_t>(x);
    if (v < lo) v = lo;
    if (v > hi) v = hi;
    return v;
  }

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pcmax::util
