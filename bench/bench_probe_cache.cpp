// Probe-cache ablation: the PTAS target search solved with the probe-level
// DP cache off vs on, over a perf-trajectory-style repeated workload (each
// instance solved `kReps` times, as a tuning loop or benchmark harness
// would). Reports DP cell evaluations (sum of table sizes over real
// solves), cache hits, and monotone-bound skips per strategy; `--json
// <path>` emits the machine-readable records scripts/perf_trajectory.py
// folds into BENCH_*.json.
//
// Cached and uncached runs must return identical makespans — the bench
// throws otherwise.
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/probe_cache.hpp"
#include "core/ptas.hpp"
#include "util/text_table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace pcmax;

constexpr int kReps = 3;

struct Case {
  std::string name;
  Instance instance;
};

struct Run {
  std::uint64_t ns = 0;
  std::uint64_t cells = 0;
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
  std::uint64_t bound_skips = 0;
  std::uint64_t first_run_cells = 0;
  std::size_t iterations = 0;
  std::int64_t makespan = 0;
};

Run run_reps(const Case& c, SearchStrategy strategy, bool use_cache) {
  const dp::LevelBucketSolver solver;
  PtasOptions options;
  options.strategy = strategy;
  options.use_probe_cache = use_cache;
  ProbeCache shared;
  if (use_cache) options.probe_cache = &shared;

  Run run;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kReps; ++rep) {
    const PtasResult result = solve_ptas(c.instance, solver, options);
    const std::uint64_t cells = pcmax::bench::cells_evaluated(result);
    if (rep == 0) run.first_run_cells = cells;
    run.cells += cells;
    run.probes += result.dp_calls.size();
    run.hits += result.cache_stats.hits;
    run.bound_skips += result.cache_stats.bound_skips;
    run.iterations += result.search_iterations;
    if (rep == 0)
      run.makespan = result.achieved_makespan;
    else if (run.makespan != result.achieved_makespan)
      throw std::runtime_error(c.name + ": makespan changed across reps");
  }
  run.ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      pcmax::bench::json_path_from_args(argc, argv);

  const std::vector<Case> cases{
      {"uniform-60x8", workload::uniform_instance(60, 8, 1, 1000, 1)},
      {"uniform-100x12", workload::uniform_instance(100, 12, 1, 5000, 2)},
      {"uniform-40x16", workload::uniform_instance(40, 16, 1, 1000, 3)},
      {"bimodal-80x10",
       workload::bimodal_instance(80, 10, 1, 50, 400, 900, 0.3, 4)},
  };
  const std::vector<std::pair<std::string, SearchStrategy>> strategies{
      {"bisect", SearchStrategy::kBisection},
      {"quarter", SearchStrategy::kQuarterSplit},
  };

  std::printf("== bench_probe_cache: PTAS probe cache off vs on "
              "(%d reps per case, shared cache) ==\n\n",
              kReps);
  pcmax::util::TextTable table({"case", "strategy", "cells off", "cells on",
                                "drop", "run1 on", "hits", "bound skips",
                                "itr off", "itr on"});
  std::vector<pcmax::bench::JsonRecord> records;
  for (const Case& c : cases) {
    for (const auto& [strat_name, strategy] : strategies) {
      const Run off = run_reps(c, strategy, false);
      const Run on = run_reps(c, strategy, true);
      if (off.makespan != on.makespan)
        throw std::runtime_error(c.name + ": cache changed the makespan");
      const double drop =
          on.cells == 0 ? 0.0 : static_cast<double>(off.cells) /
                                    static_cast<double>(on.cells);
      char drop_buf[32];
      std::snprintf(drop_buf, sizeof drop_buf, "%.2fx", drop);
      table.add_row({c.name, strat_name, std::to_string(off.cells),
                     std::to_string(on.cells), drop_buf,
                     std::to_string(on.first_run_cells),
                     std::to_string(on.hits), std::to_string(on.bound_skips),
                     std::to_string(off.iterations),
                     std::to_string(on.iterations)});
      records.push_back({c.name + "/" + strat_name + "/cache-off", off.ns,
                         off.cells, off.probes, 0});
      records.push_back({c.name + "/" + strat_name + "/cache-on", on.ns,
                         on.cells, on.probes, on.hits});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("cells = DP cells evaluated (sum of table sizes over real "
              "solves, reconstruction included);\n"
              "run1 on = cells of the first cached rep (intra-run hits "
              "only); drop = cells off / cells on.\n");

  if (!json_path.empty()) {
    pcmax::bench::write_json(json_path, records);
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}
