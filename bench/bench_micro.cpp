// Google-benchmark micro-benchmarks for the core building blocks: these
// measure *real* wall time of the library on the host (unlike the paper
// reproduction benches, which report simulated device times).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/probe_cache.hpp"
#include "core/ptas.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "dp/frontier_solver.hpp"
#include "eptas/eptas.hpp"
#include "dp/reconstruct.hpp"
#include "faultsim/injector.hpp"
#include "dp/solver.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "gpusim/coalescing.hpp"
#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"
#include "knapsack/solver.hpp"
#include "gpusim/fluid.hpp"
#include "partition/block_solver.hpp"
#include "partition/blocked_layout.hpp"
#include "partition/divisor.hpp"
#include "workload/generators.hpp"
#include "workload/shapes.hpp"

namespace {

using namespace pcmax;

void BM_MixedRadixRoundTrip(benchmark::State& state) {
  const dp::MixedRadix radix({6, 4, 6, 6, 4});
  std::vector<std::int64_t> coords(radix.dims());
  std::uint64_t id = 0;
  for (auto _ : state) {
    radix.unflatten(id, coords);
    benchmark::DoNotOptimize(radix.flatten(coords));
    id = (id + 1) % radix.size();
  }
}
BENCHMARK(BM_MixedRadixRoundTrip);

void BM_LevelBuckets(benchmark::State& state) {
  const dp::MixedRadix radix({6, 4, 6, 6, 4, 4, 3});
  for (auto _ : state) {
    const dp::LevelBuckets buckets(radix);
    benchmark::DoNotOptimize(buckets.levels());
  }
}
BENCHMARK(BM_LevelBuckets);

void BM_ConfigEnumeration(benchmark::State& state) {
  const auto problem = workload::dp_problem_for_extents(
      {4, 4, 6, 6, 2, 3, 3, 2});  // Table IV shape
  const dp::MixedRadix radix = problem.radix();
  for (auto _ : state) {
    const dp::ConfigSet configs(problem.counts, problem.weights,
                                problem.capacity, radix);
    benchmark::DoNotOptimize(configs.size());
  }
}
BENCHMARK(BM_ConfigEnumeration);

void BM_DpSolve(benchmark::State& state) {
  const auto& shapes = workload::fig3_group('a');
  const auto& shape = shapes[static_cast<std::size_t>(state.range(0))];
  const auto problem = workload::dp_problem_for_extents(shape.extents);
  const dp::LevelBucketSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem).opt);
  }
  state.SetLabel("sigma=" + std::to_string(shape.table_size));
}
BENCHMARK(BM_DpSolve)->Arg(0)->Arg(4)->Arg(6);

void BM_BlockedSolve(benchmark::State& state) {
  const auto problem =
      workload::dp_problem_for_extents({6, 4, 6, 6, 4});  // Table I
  const partition::BlockedSolver solver(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem).opt);
  }
}
BENCHMARK(BM_BlockedSolve)->Arg(3)->Arg(5);

void BM_Reconstruct(benchmark::State& state) {
  const auto problem = workload::dp_problem_for_extents({6, 4, 6, 6, 4});
  const auto result = dp::ReferenceSolver().solve(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::reconstruct_machines(problem, result));
  }
}
BENCHMARK(BM_Reconstruct);

void BM_BlockedLayoutRemap(benchmark::State& state) {
  const dp::MixedRadix radix({6, 4, 6, 6, 4});
  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), 5));
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.to_blocked(id));
    id = (id + 1) % radix.size();
  }
}
BENCHMARK(BM_BlockedLayoutRemap);

void BM_WarpCoalescing(benchmark::State& state) {
  std::vector<gpusim::ThreadTrace> traces(32);
  for (int t = 0; t < 32; ++t)
    for (int s = 0; s < 8; ++s)
      traces[static_cast<std::size_t>(t)].push_back(
          static_cast<std::uint64_t>(t) * 4 +
          static_cast<std::uint64_t>(s) * 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpusim::warp_transactions(traces, 128));
  }
}
BENCHMARK(BM_WarpCoalescing);

void BM_FluidScheduler(benchmark::State& state) {
  for (auto _ : state) {
    gpusim::FluidScheduler sched(15);
    for (int i = 0; i < 256; ++i) {
      gpusim::FluidTask task;
      task.stream = i % 4;
      task.latency = util::SimTime::microseconds(6);
      task.work = util::SimTime::microseconds(50 + i % 7);
      task.width_sms = 1 + i % 5;
      sched.submit(task);
    }
    benchmark::DoNotOptimize(sched.run(util::SimTime{}));
  }
}
BENCHMARK(BM_FluidScheduler);

// Real wall-clock comparison of the paper-faithful Algorithm-2 level scan
// against the bucketed solver, on the host running this bench: the scan
// re-walks all sigma cells once per anti-diagonal level, so its measured
// penalty grows with the level count — the inefficiency Section III.E
// attributes to the OpenMP implementation, observable without simulation.
void BM_Alg2LevelScan(benchmark::State& state) {
  const auto& shape = workload::fig3_group(
      'a')[static_cast<std::size_t>(state.range(0))];
  const auto problem = workload::dp_problem_for_extents(shape.extents);
  const dp::LevelScanSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem).opt);
  }
  state.SetLabel("sigma=" + std::to_string(shape.table_size));
}
BENCHMARK(BM_Alg2LevelScan)->Arg(0)->Arg(4)->Arg(6);

void BM_FrontierSolve(benchmark::State& state) {
  const auto problem = workload::dp_problem_for_extents({6, 4, 6, 6, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::solve_frontier(problem).opt);
  }
}
BENCHMARK(BM_FrontierSolve);

// devices=1 must short-circuit to the plain single-device wavefront: the
// topology-backed solver with one device and the direct Device solver run
// the identical code path after dispatch, so these two must match within
// noise (the acceptance bar for the multi-device layer's zero-overhead
// claim — see docs/SHARDING.md).
void BM_GpuDpSolveDirectDevice(benchmark::State& state) {
  const auto problem = workload::dp_problem_for_extents({6, 4, 6, 6, 4});
  gpusim::Device device(gpusim::DeviceSpec::k40());
  const gpu::GpuDpSolver solver(device, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem).opt);
    device.clear_log();
  }
}
BENCHMARK(BM_GpuDpSolveDirectDevice);

void BM_GpuDpSolveTopologyOneDevice(benchmark::State& state) {
  const auto problem = workload::dp_problem_for_extents({6, 4, 6, 6, 4});
  gpusim::Topology topology(1, gpusim::DeviceSpec::k40());
  const gpu::GpuDpSolver solver(topology, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem).opt);
    topology.device(0).clear_log();
  }
}
BENCHMARK(BM_GpuDpSolveTopologyOneDevice);

void BM_KnapsackBlocked(benchmark::State& state) {
  knapsack::KnapsackProblem p;
  p.budgets = {12, 12, 12};
  p.items = {{10, {3, 1, 2}}, {7, {2, 2, 1}}, {4, {1, 0, 2}},
             {3, {0, 1, 1}}, {6, {2, 1, 0}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack::solve_blocked(p, 3).best);
  }
}
BENCHMARK(BM_KnapsackBlocked);

void BM_ReorganizeLayout(benchmark::State& state) {
  const dp::MixedRadix radix({6, 4, 6, 6, 4});
  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), 5));
  std::vector<std::int32_t> table(radix.size(), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layout.reorganize(std::span<const std::int32_t>(table)));
  }
}
BENCHMARK(BM_ReorganizeLayout);

// Observability overhead at the instrumentation sites themselves: one RAII
// span (two trace events) plus one counter bump per iteration. The disabled
// variant is the cost every solver path pays when no ObsSession is active —
// a relaxed atomic load and a branch — and must stay in the low
// single-digit nanoseconds.
void BM_ObsSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    const obs::ScopedSpan span("bench/span", {obs::arg("i", 1)});
    obs::count("bench.counter");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

// Fault-hook overhead with no injector installed: the cost every
// instrumented site (device allocate/launch/synchronize, DP-table
// allocation and finalization) pays in production — one relaxed atomic
// load and a predictable branch, same discipline as the obs hooks above.
void BM_FaultHookDisabled(benchmark::State& state) {
  for (auto _ : state) {
    auto fault = faultsim::fault_at(faultsim::Site::kDeviceAlloc);
    benchmark::DoNotOptimize(fault);
  }
}
BENCHMARK(BM_FaultHookDisabled);

// Enabled variant with a non-matching nth rule: the per-hit cost when an
// injector is active but the site does not fire (atomic ordinal bump plus
// one rule scan).
void BM_FaultHookEnabled(benchmark::State& state) {
  faultsim::FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back(faultsim::FaultRule{
      faultsim::Site::kDeviceAlloc, /*nth=*/std::uint64_t{1} << 62,
      /*permille=*/0, /*stall_ms=*/0});
  const faultsim::ScopedFaultInjector scoped(plan);
  for (auto _ : state) {
    auto fault = faultsim::fault_at(faultsim::Site::kDeviceAlloc);
    benchmark::DoNotOptimize(fault);
  }
}
BENCHMARK(BM_FaultHookEnabled);

// Enabled variant: capped iteration count because every span appends two
// events to the recorder arena, which grows for the session's lifetime.
void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::ObsSession session;
  for (auto _ : state) {
    const obs::ScopedSpan span("bench/span", {obs::arg("i", 1)});
    obs::count("bench.counter");
    benchmark::DoNotOptimize(&span);
  }
  state.SetLabel("events=" + std::to_string(session.trace().size()));
}
BENCHMARK(BM_ObsSpanEnabled)->Iterations(100000);

// Pinned perf-smoke workload for `--json <path>`: one fixed instance
// solved twice per strategy against a shared probe cache (the canonical
// repeated-probe pattern). The second rep must hit the cache, so CI can
// fail the build when the hit rate degenerates to zero.
std::vector<bench::JsonRecord> run_json_workload() {
  const Instance instance = workload::uniform_instance(64, 8, 1, 1000, 42);
  const dp::LevelBucketSolver solver;
  std::vector<bench::JsonRecord> records;
  for (const auto& [name, strategy] :
       {std::pair<const char*, SearchStrategy>{"bisect",
                                               SearchStrategy::kBisection},
        std::pair<const char*, SearchStrategy>{
            "quarter", SearchStrategy::kQuarterSplit}}) {
    ProbeCache shared;
    PtasOptions options;
    options.strategy = strategy;
    options.use_probe_cache = true;
    options.probe_cache = &shared;
    for (int rep = 1; rep <= 2; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const PtasResult result = solve_ptas(instance, solver, options);
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      records.push_back({std::string("ptas-cache-repeat/") + name + "/rep" +
                             std::to_string(rep),
                         ns, bench::cells_evaluated(result),
                         result.dp_calls.size(),
                         result.cache_stats.hits +
                             result.cache_stats.bound_skips});
    }
  }
  // Same repeated-probe pattern through the sparsified EPTAS engine: its
  // probe keys are built from the sparsified DP problems, so the second rep
  // hitting the shared cache proves the sparsified keys are stable — the
  // hit-rate gate covers both roundings.
  {
    ProbeCache shared;
    PtasOptions options;
    options.epsilon = 0.25;
    options.use_probe_cache = true;
    options.probe_cache = &shared;
    for (int rep = 1; rep <= 2; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const PtasResult result = eptas::solve_eptas(instance, solver, options);
      const auto ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      records.push_back({"eptas-cache-repeat/bisect/rep" + std::to_string(rep),
                         ns, bench::cells_evaluated(result),
                         result.dp_calls.size(),
                         result.cache_stats.hits +
                             result.cache_stats.bound_skips});
    }
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      pcmax::bench::json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    // In --json mode the workload can also be recorded: --trace-out and
    // --metrics-out capture the same observability artifacts as pcmax_cli
    // (see docs/OBSERVABILITY.md), covering exactly the pinned workload.
    const std::string trace_path =
        pcmax::bench::flag_value_from_args(argc, argv, "--trace-out");
    const std::string metrics_path =
        pcmax::bench::flag_value_from_args(argc, argv, "--metrics-out");
    std::vector<pcmax::bench::JsonRecord> records;
    if (trace_path.empty() && metrics_path.empty()) {
      records = run_json_workload();
    } else {
      pcmax::obs::ObsSession session;
      records = run_json_workload();
      if (!trace_path.empty()) {
        pcmax::obs::write_file(
            trace_path, pcmax::obs::chrome_trace_json(session.trace()));
        std::printf("trace: %zu events -> %s\n", session.trace().size(),
                    trace_path.c_str());
      }
      if (!metrics_path.empty()) {
        pcmax::obs::write_file(
            metrics_path, pcmax::obs::metrics_json(session.metrics()));
        std::printf("metrics -> %s\n", metrics_path.c_str());
      }
    }
    pcmax::bench::write_json(json_path, records);
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
