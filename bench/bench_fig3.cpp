// Reproduces Fig. 3 of the paper: average DP running time vs DP-table size
// for the OpenMP implementation (16 and 28 threads, modeled) and the GPU
// implementation partitioned along 3..9 dimensions (simulated K40).
//
//   fig 3(a): table sizes    100 ..  10'000  — OpenMP wins, GPU launch-bound
//   fig 3(b): table sizes 20'000 .. 100'000  — crossover near ~30'000
//   fig 3(c): table sizes 110'000.. 500'000  — GPU wins by an order or more
//
// Usage: bench_fig3 [--group a|b|c] [--csv FILE]
//        (default: all three groups; --csv appends machine-readable rows
//         "group,size,dims,engine,ms" for scripts/plot_fig3.py)
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "util/text_table.hpp"

namespace {

void run_group(char group, std::ofstream* csv) {
  using pcmax::bench::fmt_ms;
  const std::vector<std::size_t> gpu_dims{3, 4, 5, 6, 7, 8, 9};

  std::printf("Fig. 3(%c): average running time (ms, simulated) vs "
              "DP-table size\n",
              group);
  pcmax::util::TextTable table(
      {"table size", "dims", "OMP16", "OMP28", "GPU-DIM3", "GPU-DIM4",
       "GPU-DIM5", "GPU-DIM6", "GPU-DIM7", "GPU-DIM8", "GPU-DIM9"});
  for (const auto& shape : pcmax::workload::fig3_group(group)) {
    const auto t = pcmax::bench::time_shape(shape, gpu_dims);
    std::vector<std::string> row{
        std::to_string(shape.table_size),
        std::to_string(shape.extents.size()),
        fmt_ms(t.omp16_ms),
        fmt_ms(t.omp28_ms)};
    for (const auto dims : gpu_dims) row.push_back(fmt_ms(t.gpu_ms.at(dims)));
    table.add_row(std::move(row));
    if (csv != nullptr) {
      *csv << group << ',' << shape.table_size << ','
           << shape.extents.size() << ",OMP16," << t.omp16_ms << '\n'
           << group << ',' << shape.table_size << ','
           << shape.extents.size() << ",OMP28," << t.omp28_ms << '\n';
      for (const auto dims : gpu_dims)
        *csv << group << ',' << shape.table_size << ','
             << shape.extents.size() << ",GPU-DIM" << dims << ','
             << t.gpu_ms.at(dims) << '\n';
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string groups = "abc";
  std::ofstream csv;
  for (int i = 1; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--group") == 0)
      groups = argv[++i];
    else if (i + 1 < argc && std::strcmp(argv[i], "--csv") == 0) {
      csv.open(argv[++i]);
      csv << "group,size,dims,engine,ms\n";
    }
  }
  std::printf("== bench_fig3: DP runtime vs table size "
              "(paper Fig. 3; simulated times, real computations) ==\n\n");
  for (const char g : groups)
    if (g == 'a' || g == 'b' || g == 'c')
      run_group(g, csv.is_open() ? &csv : nullptr);
  return 0;
}
