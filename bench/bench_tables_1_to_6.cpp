// Reproduces Tables I-VI of the paper: for each published DP-table shape,
// the block dimensional sizes produced by the divisor computation
// (Algorithm 4, lines 4-10) when partitioning along 3 dimensions and along
// the best-performing dimension count. The divisor rule is deterministic,
// so these rows match the published tables exactly (up to the tie-break
// note recorded in EXPERIMENTS.md).
#include <cstdio>

#include "bench_common.hpp"
#include "partition/divisor.hpp"
#include "util/text_table.hpp"

namespace {

struct PaperTable {
  const char* name;
  std::uint64_t size;
  std::size_t best_dims;  // the paper's best column (GPU-DIMx)
};

}  // namespace

int main() {
  using pcmax::partition::block_sizes;
  using pcmax::partition::compute_divisor;
  using pcmax::util::format_vector;

  const std::vector<PaperTable> tables{
      {"Table I", 3456, 5},   {"Table II", 8640, 5},
      {"Table III", 12960, 5}, {"Table IV", 20736, 6},
      {"Table V", 362880, 7},  {"Table VI", 403200, 7},
  };

  std::printf("== bench_tables_1_to_6: block dimensional sizes "
              "(paper Tables I-VI) ==\n\n");
  for (const auto& t : tables) {
    std::printf("%s: DP-table size = %llu\n", t.name,
                static_cast<unsigned long long>(t.size));
    pcmax::util::TextTable out(
        {"#dim", "dimension size", "GPU-DIM3",
         "GPU-DIM" + std::to_string(t.best_dims)});
    for (const auto& shape : pcmax::workload::paper_shapes_for_size(t.size)) {
      const auto div3 = compute_divisor(shape.extents, 3);
      const auto divb = compute_divisor(shape.extents, t.best_dims);
      out.add_row({std::to_string(shape.extents.size()),
                   format_vector(shape.extents),
                   format_vector(block_sizes(shape.extents, div3)),
                   format_vector(block_sizes(shape.extents, divb))});
    }
    std::printf("%s\n", out.to_string().c_str());
  }
  return 0;
}
