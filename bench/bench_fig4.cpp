// Reproduces Fig. 4 of the paper: GPU running time vs the number of
// partitioned dimensions (3..9), for the six published DP-table sizes, with
// one line per #non-zero-dimension variant (the dimension vectors of
// Tables I-VI). The expected shape: the best time lands at 5..7 partitioned
// dimensions, and variants with fewer non-zero dimensions run slower than
// variants of the same size with more dimensions.
#include <cstdio>

#include "bench_common.hpp"
#include "util/text_table.hpp"

int main() {
  using pcmax::bench::fmt_ms;
  const std::vector<std::size_t> gpu_dims{3, 4, 5, 6, 7, 8, 9};
  const std::vector<std::uint64_t> sizes{3456,  8640,   12960,
                                         20736, 362880, 403200};

  std::printf("== bench_fig4: GPU time vs #partitioned dimensions "
              "(paper Fig. 4; simulated) ==\n\n");
  for (const auto size : sizes) {
    std::printf("DP-table size = %llu\n",
                static_cast<unsigned long long>(size));
    pcmax::util::TextTable table(
        {"#dim", "DIM3", "DIM4", "DIM5", "DIM6", "DIM7", "DIM8", "DIM9",
         "best"});
    for (const auto& shape : pcmax::workload::paper_shapes_for_size(size)) {
      const auto t = pcmax::bench::time_shape(shape, gpu_dims);
      std::vector<std::string> row{std::to_string(shape.extents.size())};
      std::size_t best_dims = 3;
      double best = t.gpu_ms.at(3);
      for (const auto dims : gpu_dims) {
        const double ms = t.gpu_ms.at(dims);
        row.push_back(fmt_ms(ms));
        if (ms < best) {
          best = ms;
          best_dims = dims;
        }
      }
      row.push_back("DIM" + std::to_string(best_dims));
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  return 0;
}
