// Pruning ablation for the exact branch-and-bound engine: node counts and
// real wall time per instance family, with each dominance rule and the
// per-node completion bound toggled off one at a time. Not a paper
// experiment — it quantifies how much each rule buys, and documents which
// families the default node budget proves (the fuzzer's exact mode and the
// ground-truth tests lean on exactly that envelope).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "exact/bb.hpp"
#include "util/text_table.hpp"
#include "workload/generators.hpp"

namespace {

struct Family {
  std::string name;
  pcmax::Instance instance;
};

struct Variant {
  std::string name;
  pcmax::exact::BbOptions options;
};

std::string run_cell(const pcmax::Instance& instance,
                     const pcmax::exact::BbOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = pcmax::exact::solve_bb(instance, options);
  const auto ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%llu nodes / %.1f ms%s",
                static_cast<unsigned long long>(result.stats.nodes), ms,
                result.optimal() ? "" : " (unproven)");
  return buffer;
}

}  // namespace

int main() {
  using namespace pcmax;

  std::printf("== bench_exact: branch-and-bound pruning ablation "
              "(real wall time) ==\n\n");

  std::vector<Family> families;
  families.push_back({"uniform n=40 m=4",
                      workload::uniform_instance(40, 4, 1, 100, 7)});
  families.push_back({"uniform n=60 m=6",
                      workload::uniform_instance(60, 6, 1, 1000, 11)});
  families.push_back(
      {"bimodal n=50 m=5",
       workload::bimodal_instance(50, 5, 1, 100, 900, 1000, 0.2, 3)});
  {
    Instance identical{6, {}};
    identical.times.assign(48, 317);
    families.push_back({"identical n=48 m=6", std::move(identical)});
  }
  {
    // Two dominant jobs over a sea of small ones: the a-posteriori bound
    // usually closes this family at the root.
    Instance dominant{4, {9000, 8500}};
    for (int j = 0; j < 30; ++j) dominant.times.push_back(40 + j);
    families.push_back({"dominant n=32 m=4", std::move(dominant)});
  }

  // A modest shared budget keeps the harness quick; families the budget
  // cannot prove print "(unproven)" with the full node count.
  exact::BbOptions base;
  base.node_budget = 2'000'000;
  std::vector<Variant> variants;
  variants.push_back({"full", base});
  {
    exact::BbOptions o = base;
    o.symmetry_identical_jobs = false;
    variants.push_back({"-job-sym", o});
  }
  {
    exact::BbOptions o = base;
    o.symmetry_machine_loads = false;
    variants.push_back({"-load-sym", o});
  }
  {
    exact::BbOptions o = base;
    o.use_completion_bound = false;
    variants.push_back({"-completion", o});
  }

  std::vector<std::string> header{"family"};
  for (const auto& v : variants) header.push_back(v.name);
  util::TextTable table(header);
  for (const auto& family : families) {
    std::vector<std::string> row{family.name};
    for (const auto& variant : variants)
      row.push_back(run_cell(family.instance, variant.options));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Every variant proves the same optimum (tests/exact pins "
              "this); the table shows what each rule costs to skip.\n");
  return 0;
}
