// Extension bench (the paper's Section V future work): the data-partitioning
// scheme applied to higher-dimensional knapsack DP tables. For a range of
// budget shapes we report the simulated GPU time per partition setting and
// verify every engine agrees; since knapsack lookups are direct-indexed
// (no search function), the partitioning's benefit here is stream
// concurrency and layout locality — visibly smaller than for the PTAS DP.
#include <cstdio>

#include "knapsack/solver.hpp"
#include "util/rng.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace pcmax;

  std::printf("== bench_knapsack: data partitioning on higher-dimensional "
              "knapsack (Section V future work; simulated) ==\n\n");

  struct ShapeCase {
    const char* label;
    std::vector<std::int64_t> budgets;
  };
  const std::vector<ShapeCase> shapes{
      {"3-D 21x21x21", {20, 20, 20}},
      {"4-D 11^4", {10, 10, 10, 10}},
      {"5-D 7^5", {6, 6, 6, 6, 6}},
      {"6-D 5^6", {4, 4, 4, 4, 4, 4}},
  };

  util::TextTable table({"budgets", "cells", "items", "DIM1", "DIM3",
                         "DIM6", "best value"});
  for (const auto& shape : shapes) {
    knapsack::KnapsackProblem p;
    p.budgets = shape.budgets;
    util::Rng rng(2026);
    for (int i = 0; i < 12; ++i) {
      knapsack::Item item;
      item.value = rng.uniform(1, 40);
      std::int64_t total = 0;
      for (std::size_t d = 0; d < p.budgets.size(); ++d) {
        item.weights.push_back(rng.uniform(0, 4));
        total += item.weights.back();
      }
      if (total == 0) item.weights[0] = 1;
      p.items.push_back(std::move(item));
    }

    const auto reference = knapsack::solve_reference(p);
    std::vector<std::string> row{shape.label,
                                 std::to_string(p.table_size()),
                                 std::to_string(p.items.size())};
    for (const std::size_t dims : {std::size_t{1}, std::size_t{3},
                                   std::size_t{6}}) {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const auto r = knapsack::solve_gpu(p, device, dims);
      if (r.table != reference.table)
        throw std::runtime_error("knapsack engines diverged");
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f ms", device.now().ms());
      row.push_back(buf);
    }
    row.push_back(std::to_string(reference.best));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "finding: without a search function to confine, finer partitioning\n"
      "only multiplies kernel launches — the unpartitioned run wins. The\n"
      "scheme's benefit is tied to the search-scope reduction it enables\n"
      "(cf. EXPERIMENTS.md, knapsack section).\n");
  return 0;
}
