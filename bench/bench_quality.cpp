// Scheduling-quality comparison (not a paper figure, but the reason the
// PTAS exists): achieved makespan of the PTAS at several epsilon values vs
// LPT, list scheduling, MULTIFIT, and the exact optimum, on small uniform
// instances where the exact solver finishes.
#include <cstdio>

#include "baselines/exact.hpp"
#include "baselines/heuristics.hpp"
#include "core/ptas.hpp"
#include "util/text_table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace pcmax;

  std::printf("== bench_quality: makespan quality vs baselines "
              "(real computations) ==\n\n");

  const dp::LevelBucketSolver solver;
  constexpr int kTrials = 25;

  util::TextTable table({"algorithm", "avg ratio", "max ratio",
                         "optimal found"});
  struct Row {
    const char* name;
    double sum_ratio = 0;
    double max_ratio = 0;
    int optimal = 0;
  };
  Row rows[] = {{"list"}, {"LPT"}, {"MULTIFIT"}, {"PTAS eps=0.5"},
                {"PTAS eps=0.3"}, {"PTAS eps=0.1"}};

  for (int trial = 0; trial < kTrials; ++trial) {
    const auto inst = workload::uniform_instance(
        10, 3, 1, 60, 1000 + static_cast<std::uint64_t>(trial));
    const auto exact = baselines::solve_exact(inst);
    if (!exact.has_value()) continue;
    const double opt = static_cast<double>(exact->makespan);

    const auto record = [&](Row& row, std::int64_t ms) {
      const double ratio = static_cast<double>(ms) / opt;
      row.sum_ratio += ratio;
      row.max_ratio = std::max(row.max_ratio, ratio);
      if (ms == exact->makespan) ++row.optimal;
    };

    record(rows[0], makespan(inst, baselines::list_scheduling(inst)));
    record(rows[1], makespan(inst, baselines::lpt(inst)));
    record(rows[2], makespan(inst, baselines::multifit(inst)));
    int i = 3;
    for (const double eps : {0.5, 0.3, 0.1}) {
      PtasOptions options;
      options.epsilon = eps;
      record(rows[i++], solve_ptas(inst, solver, options).achieved_makespan);
    }
  }

  for (const auto& row : rows) {
    char avg[32], mx[32];
    std::snprintf(avg, sizeof avg, "%.4f", row.sum_ratio / kTrials);
    std::snprintf(mx, sizeof mx, "%.4f", row.max_ratio);
    table.add_row({row.name, avg, mx,
                   std::to_string(row.optimal) + "/" +
                       std::to_string(kTrials)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
