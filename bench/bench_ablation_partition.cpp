// Ablations for the design choices Section III.C/E calls out:
//
//   1. Stream count: blocks of a block-level are distributed over 1..16
//      Hyper-Q streams; the paper reports that 4 streams per data set give
//      the best performance for the majority of instances.
//   2. Memory footprint: peak device memory of the partitioned
//      implementation vs the naive table-scope implementation.
#include <cstdio>

#include "bench_common.hpp"
#include "gpu/resident.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace pcmax;
  using bench::fmt_ms;

  std::printf("== bench_ablation_partition: stream count and memory "
              "(Section III.C/E; simulated) ==\n\n");

  // --- Stream-count ablation -------------------------------------------
  std::printf("GPU-DIM6 time vs streams per solve:\n");
  util::TextTable streams_table(
      {"table size", "1 stream", "2 streams", "4 streams", "8 streams",
       "16 streams"});
  for (const auto size : {std::uint64_t{20736}, std::uint64_t{362880}}) {
    const auto shape = workload::paper_shapes_for_size(size).front();
    const auto problem = workload::dp_problem_for_extents(shape.extents);
    std::vector<std::string> row{std::to_string(size)};
    for (const int streams : {1, 2, 4, 8, 16}) {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const gpu::GpuDpSolver solver(device, 6, streams);
      (void)solver.solve(problem);
      row.push_back(fmt_ms(solver.last_solve_time().ms()));
    }
    streams_table.add_row(std::move(row));
  }
  std::printf("%s\n", streams_table.to_string().c_str());

  // --- Memory-footprint ablation ----------------------------------------
  std::printf("Peak device memory, partitioned vs naive scratch:\n");
  util::TextTable mem_table(
      {"table size", "GPU-DIM6 peak", "naive peak", "reduction"});
  for (const auto size :
       {std::uint64_t{8640}, std::uint64_t{20736}, std::uint64_t{403200}}) {
    const auto shape = workload::paper_shapes_for_size(size).front();
    const auto problem = workload::dp_problem_for_extents(shape.extents);

    gpusim::Device d1(gpusim::DeviceSpec::k40());
    const gpu::GpuDpSolver partitioned(d1, 6);
    (void)partitioned.solve(problem);
    const double part_mb =
        static_cast<double>(partitioned.last_peak_memory()) / (1 << 20);

    std::string naive_str = "OOM (> 12 GB)";
    std::string ratio = "-";
    gpusim::Device d2(gpusim::DeviceSpec::k40());
    try {
      const gpu::NaiveGpuDpSolver naive(d2);
      (void)naive.solve(problem);
      const double naive_mb =
          static_cast<double>(d2.peak_memory()) / (1 << 20);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f MB", naive_mb);
      naive_str = buf;
      std::snprintf(buf, sizeof buf, "%.1fx", naive_mb / part_mb);
      ratio = buf;
    } catch (const gpusim::OutOfMemory&) {
    }

    char part_buf[32];
    std::snprintf(part_buf, sizeof part_buf, "%.2f MB", part_mb);
    mem_table.add_row(
        {std::to_string(size), part_buf, naive_str, ratio});
  }
  std::printf("%s\n", mem_table.to_string().c_str());

  // --- Stream-assignment policy ablation ---------------------------------
  std::printf("Cyclic (Algorithm 4) vs chunked block-to-stream assignment, "
              "GPU-DIM6, 4 streams:\n");
  util::TextTable policy_table({"table size", "cyclic", "chunked"});
  for (const auto size : {std::uint64_t{20736}, std::uint64_t{362880}}) {
    const auto shape = workload::paper_shapes_for_size(size).front();
    const auto problem = workload::dp_problem_for_extents(shape.extents);
    std::vector<std::string> row{std::to_string(size)};
    for (const auto policy :
         {gpu::StreamPolicy::kCyclic, gpu::StreamPolicy::kChunked}) {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const gpu::GpuDpSolver solver(device, 6, 4, policy);
      (void)solver.solve(problem);
      row.push_back(fmt_ms(solver.last_solve_time().ms()));
    }
    policy_table.add_row(std::move(row));
  }
  std::printf("%s\n", policy_table.to_string().c_str());

  // --- Block-residency analysis (the paper's Section V future work) ------
  std::printf("Device-resident working set if evicted blocks move to the "
              "host (Section V future work):\n");
  util::TextTable res_table({"table size", "partition", "peak resident",
                             "full table", "saving"});
  for (const auto size :
       {std::uint64_t{20736}, std::uint64_t{362880}, std::uint64_t{403200}}) {
    const auto shape = workload::paper_shapes_for_size(size).front();
    const auto problem = workload::dp_problem_for_extents(shape.extents);
    for (const std::size_t dims : {std::size_t{3}, std::size_t{6}}) {
      const auto a = gpu::analyze_block_residency(problem, dims);
      char saving[32];
      std::snprintf(saving, sizeof saving, "%.2fx", a.saving_factor());
      res_table.add_row({std::to_string(size), "DIM" + std::to_string(dims),
                         std::to_string(a.peak_resident_cells) + " cells",
                         std::to_string(a.table_cells) + " cells", saving});
    }
  }
  std::printf("%s\n", res_table.to_string().c_str());
  std::printf("note: the saving is largest for coarse partitions; fine\n"
              "blocks keep most of the table in the dependency reach box.\n");
  return 0;
}
