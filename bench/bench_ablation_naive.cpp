// Ablation for Section III's claim that "a direct GPU translation of the
// OpenMP implementation is about a hundred times slower than the OpenMP
// implementation". For a range of table sizes we compare:
//
//   OMP16        modeled OpenMP runtime (the paper's baseline)
//   GPU-naive    the direct port: one-level parallelism, whole-table
//                sub-configuration search, table-scope scratch memory
//   GPU-DIM6     the paper's data-partitioning implementation
//
// The naive port also demonstrates the memory claim: its table-scope
// candidate scratch exhausts the simulated 12 GB device on larger tables
// (reported as OOM).
#include <cstdio>

#include "bench_common.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace pcmax;
  using bench::fmt_ms;

  std::printf("== bench_ablation_naive: direct GPU port vs partitioned "
              "(Section III claim; simulated) ==\n\n");
  util::TextTable table({"table size", "OMP16", "GPU-naive", "GPU-DIM6",
                         "naive/OMP16", "naive peak mem"});

  std::vector<workload::TableShape> shapes;
  for (const auto& s : workload::fig3_group('a')) {
    if (s.table_size == 500 || s.table_size == 3456 || s.table_size == 8640)
      shapes.push_back(s);
  }
  for (const auto& s : workload::fig3_group('b'))
    if (s.table_size == 20736 || s.table_size == 100000) shapes.push_back(s);
  for (const auto& s : workload::fig3_group('c'))
    if (s.table_size == 403200) shapes.push_back(s);

  for (const auto& shape : shapes) {
    const auto problem = workload::dp_problem_for_extents(shape.extents);
    const auto t = bench::time_shape(shape, {6});

    std::string naive_ms = "OOM";
    std::string naive_ratio = "-";
    std::string naive_mem = "> 12 GB";
    gpusim::Device device(gpusim::DeviceSpec::k40());
    try {
      const gpu::NaiveGpuDpSolver naive(device);
      (void)naive.solve(problem);
      naive_ms = fmt_ms(naive.last_solve_time().ms());
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.1fx",
                    naive.last_solve_time().ms() / t.omp16_ms);
      naive_ratio = ratio;
      char mem[32];
      std::snprintf(mem, sizeof mem, "%.1f MB",
                    static_cast<double>(device.peak_memory()) / (1 << 20));
      naive_mem = mem;
    } catch (const gpusim::OutOfMemory&) {
      // The table-scope scratch exceeded the 12 GB device.
    }

    table.add_row({std::to_string(shape.table_size), fmt_ms(t.omp16_ms),
                   naive_ms, fmt_ms(t.gpu_ms.at(6)), naive_ratio, naive_mem});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
