// Reproduces Table VII of the paper: number of search iterations and total
// runtime for the GPU quarter-split PTAS vs the OpenMP bisection PTAS, on
// scheduling instances whose DP-tables land near the published sizes
// {12960, 20736, 27360, 30240, 403200}.
//
// The paper notes that constructing an instance with an exact table size is
// not possible a priori; like the authors, we search a family of uniform
// random instances for ones whose DP-table size (at the initial lower
// bound) falls near each target. The search is deterministic.
//
// Expected shape: the quarter split roughly halves the iteration count, and
// the GPU runtime advantage grows with the table size — reaching an order
// of magnitude or more on the largest row (the paper reports 300 s vs
// 9654 s at size 403200).
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "core/bounds.hpp"
#include "core/cpu_time_model.hpp"
#include "core/rounding.hpp"
#include "gpu/gpu_ptas.hpp"
#include "util/checked_math.hpp"
#include "util/text_table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace pcmax;

/// DpSolver that solves with the bucketed engine and accumulates the
/// modeled OpenMP runtime of every call.
class ModeledOmpSolver final : public dp::DpSolver {
 public:
  explicit ModeledOmpSolver(int threads) : threads_(threads) {}

  using DpSolver::solve;
  dp::DpResult solve(const dp::DpProblem& problem,
                     const dp::SolveOptions& options) const override {
    dp::SolveOptions with_deps = options;
    with_deps.collect_deps = true;
    dp::DpResult result = dp::LevelBucketSolver().solve(problem, with_deps);
    CpuModelParams params;
    params.threads = threads_;
    total_ms_ += estimate_openmp_dp_time(problem, result, params).ms();
    if (!options.collect_deps) result.deps.clear();
    return result;
  }
  std::string name() const override { return "omp-modeled"; }

  [[nodiscard]] double total_ms() const noexcept { return total_ms_; }

 private:
  int threads_;
  mutable double total_ms_ = 0.0;
};

/// Deterministically scans a family of uniform instances for one whose
/// DP-table size at T = LB lands within [0.7, 1.4] of `target`.
std::optional<Instance> find_instance(std::uint64_t target) {
  std::optional<Instance> best;
  double best_error = 0.45;  // relative log-distance tolerance
  for (std::size_t n = 12; n <= 72; n += 2) {
    // Large tables need many populated classes, which requires the target
    // makespan to sit close to the longest job: include machine counts up
    // to about half the job count.
    const auto m_hi = std::min<std::int64_t>(36, static_cast<std::int64_t>(n));
    for (std::int64_t m = 3; m <= m_hi; ++m) {
      for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        const auto inst =
            workload::uniform_instance(n, m, 20, 200, seed * 7919 + n);
        const auto lb = makespan_lower_bound(inst);
        const auto rounded = round_instance(inst, lb, 4);
        if (!rounded.feasible) continue;
        std::uint64_t size = 0;
        try {
          size = rounded.table_size();
        } catch (const util::overflow_error&) {
          continue;
        }
        if (size < 2) continue;
        const double err =
            std::abs(std::log(static_cast<double>(size) /
                              static_cast<double>(target)));
        if (err < best_error) {
          best_error = err;
          best = inst;
        }
      }
    }
  }
  return best;
}

}  // namespace

int main() {
  std::printf("== bench_table7: quarter split vs bisection "
              "(paper Table VII; simulated times, real searches) ==\n\n");
  const std::vector<std::uint64_t> targets{12960, 20736, 27360, 30240,
                                           403200};
  util::TextTable table({"table size", "#itr GPU", "runtime GPU (ms)",
                         "GPU overlapped (ms)", "#itr OpenMP",
                         "runtime OpenMP (ms)"});
  for (const auto target : targets) {
    const auto inst = find_instance(target);
    if (!inst.has_value()) {
      table.add_row({std::to_string(target), "-", "no instance found", "-",
                     "-", "-"});
      continue;
    }

    // Largest DP-table actually touched, for the row label.
    std::uint64_t max_table = 0;

    // GPU: Algorithm 3 quarter split on the simulated K40.
    gpusim::Device device(gpusim::DeviceSpec::k40());
    gpu::GpuPtasOptions gpu_options;
    gpu_options.partition_dims = 6;
    gpu_options.build_schedule = false;
    const auto gpu = gpu::solve_gpu_ptas(*inst, device, gpu_options);
    for (const auto& call : gpu.ptas.dp_calls)
      max_table = std::max(max_table, call.table_size);

    // GPU with the optimistic Hyper-Q reading: a round of concurrent
    // probes costs its slowest probe.
    gpusim::Device device2(gpusim::DeviceSpec::k40());
    gpu::GpuPtasOptions overlap = gpu_options;
    overlap.probe_overlap = gpu::ProbeOverlap::kHyperQ;
    const auto gpu_overlap = gpu::solve_gpu_ptas(*inst, device2, overlap);

    // OpenMP: Algorithm 1 bisection with the modeled 16-thread runtime.
    const ModeledOmpSolver omp_solver(16);
    PtasOptions omp_options;
    omp_options.build_schedule = false;
    const auto omp = solve_ptas(*inst, omp_solver, omp_options);

    if (gpu.ptas.best_target != omp.best_target)
      throw std::runtime_error("strategies disagree on T*");

    table.add_row({std::to_string(max_table),
                   std::to_string(gpu.ptas.search_iterations),
                   util::TextTable::cell(gpu.device_time.ms()),
                   util::TextTable::cell(gpu_overlap.device_time.ms()),
                   std::to_string(omp.search_iterations),
                   util::TextTable::cell(omp_solver.total_ms())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("note: row label is the largest DP-table size the search "
              "touched; targets follow the paper's rows.\n");
  return 0;
}
