// Multi-device sharding scaling bench: the reference large DP table
// (403200 cells, Table VI shape) solved on 1/2/4/8 simulated devices under
// both interconnect topologies. Reports charged simulated time (kernel
// costs plus modeled cross-device transfers), transfer volume, and the
// per-device peak memory — the numbers behind docs/SHARDING.md and the
// EXPERIMENTS.md scaling table. Every run's table is verified bit-identical
// against the bucketed CPU solver; a mismatch is a hard failure.
//
// Flags:
//   --size N       table size to look up in the paper shapes (default 403200)
//   --placement P  round-robin | level-contiguous | memory-balanced
//   --json PATH    append machine-readable records (BENCH_shard.json);
//                  `ns` holds *simulated* nanoseconds, `probes` the
//                  modeled transfer count.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dp/solver.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "gpusim/topology.hpp"
#include "placement/strategy.hpp"
#include "recover/recovery.hpp"
#include "util/text_table.hpp"

int main(int argc, char** argv) {
  using namespace pcmax;

  std::uint64_t size = 403200;
  if (const std::string s = bench::flag_value_from_args(argc, argv, "--size");
      !s.empty())
    size = std::stoull(s);
  placement::PlacementKind placement =
      placement::PlacementKind::kLevelContiguous;
  if (const std::string p =
          bench::flag_value_from_args(argc, argv, "--placement");
      !p.empty()) {
    const auto parsed = placement::parse_placement_kind(p);
    if (!parsed) {
      std::fprintf(stderr, "bench_shard: unknown --placement: %s\n",
                   p.c_str());
      return 2;
    }
    placement = *parsed;
  }
  const std::string json_path = bench::json_path_from_args(argc, argv);

  const auto shapes = workload::paper_shapes_for_size(size);
  if (shapes.empty()) {
    std::fprintf(stderr, "bench_shard: no paper shape of size %llu\n",
                 static_cast<unsigned long long>(size));
    return 2;
  }
  const auto& shape = shapes.front();
  const auto problem = workload::dp_problem_for_extents(shape.extents);
  const dp::DpResult reference = dp::LevelBucketSolver().solve(problem);
  const gpusim::DeviceSpec spec = gpusim::DeviceSpec::k40();

  std::printf("== bench_shard: multi-device wavefront scaling "
              "(simulated; shape %s, placement %s) ==\n\n",
              shape.label.c_str(),
              std::string(placement::placement_kind_name(placement)).c_str());

  std::vector<bench::JsonRecord> records;
  util::TextTable table({"devices", "topology", "sim time", "speedup",
                         "transfers", "moved MB", "peak/device MB",
                         "max cells @ 1-dev budget"});
  double base_ms = 0.0;
  double d4_ms[2] = {0.0, 0.0};  // 4-device baseline per topology kind
  bool ok = true;
  for (const auto kind :
       {gpusim::TopologyKind::kRing, gpusim::TopologyKind::kFullMesh}) {
    const std::string kind_name(gpusim::topology_kind_name(kind));
    for (const int devices : {1, 2, 4, 8}) {
      gpusim::Topology topology(devices, spec, kind);
      const gpu::GpuDpSolver solver(topology, 6, 4,
                                    gpu::StreamPolicy::kCyclic, placement);
      const dp::DpResult result = solver.solve(problem);
      if (result.opt != reference.opt || result.table != reference.table) {
        std::fprintf(stderr,
                     "bench_shard: MISMATCH at devices=%d topology=%s\n",
                     devices, kind_name.c_str());
        ok = false;
        continue;
      }
      const double ms = solver.last_solve_time().ms();
      if (devices == 1 && kind == gpusim::TopologyKind::kRing) base_ms = ms;
      if (devices == 4)
        d4_ms[kind == gpusim::TopologyKind::kFullMesh ? 1 : 0] = ms;
      const gpusim::Topology::TransferStats xfer = topology.transfer_stats();
      std::uint64_t peak = 0;
      for (const std::uint64_t p : solver.last_device_peaks())
        peak = std::max(peak, p);
      // Largest table the resilient pre-flight admits without k-halving:
      // its per-device estimate (table share + per-cell coordinate share,
      // both over N) shrinks ~1/N, so capacity under one device budget
      // grows ~N (the "largest table vs device count" row of
      // EXPERIMENTS.md). The simulated peak above stays flatter because
      // each device also holds a full configuration-set replica.
      const std::uint64_t preflight_per_cell =
          4 + 8 * shape.extents.size();
      const std::uint64_t max_cells =
          static_cast<std::uint64_t>(devices) *
          (spec.global_memory_bytes / preflight_per_cell);

      char speedup[32];
      std::snprintf(speedup, sizeof speedup, "%.2fx",
                    ms > 0.0 ? base_ms / ms : 0.0);
      table.add_row({std::to_string(devices), kind_name, bench::fmt_ms(ms),
                     speedup, std::to_string(xfer.transfers),
                     std::to_string(xfer.bytes >> 20),
                     std::to_string(peak >> 20), std::to_string(max_cells)});

      bench::JsonRecord record;
      record.name = "shard/d" + std::to_string(devices) + "/" + kind_name;
      record.ns =
          static_cast<std::uint64_t>(solver.last_solve_time().ps()) / 1000;
      record.cells = shape.table_size;
      record.probes = xfer.transfers;
      records.push_back(std::move(record));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("sim time is the topology's charged clock: kernels + modeled "
              "transfers;\nspeedup is vs the 1-device run.\n");

  // Checkpoint overhead: the same 4-device solves with wavefront recovery
  // checkpointing every barrier. Mirror transfers ride the interconnect in
  // the background (they never stall the wavefront), so the only charged
  // cost is link contention — the CI perf-smoke gate holds this under 2%.
  std::printf("\n-- checkpoint overhead (4 devices, --checkpoint-every 1) "
              "--\n");
  util::TextTable ckpt_table(
      {"topology", "sim time", "overhead", "transfers"});
  for (const auto kind :
       {gpusim::TopologyKind::kRing, gpusim::TopologyKind::kFullMesh}) {
    const std::string kind_name(gpusim::topology_kind_name(kind));
    recover::RecoveryOptions recovery;
    recovery.checkpoint_every = 1;
    gpusim::Topology topology(4, spec, kind);
    const gpu::GpuDpSolver solver(topology, 6, 4, gpu::StreamPolicy::kCyclic,
                                  placement, recovery);
    const dp::DpResult result = solver.solve(problem);
    if (result.opt != reference.opt || result.table != reference.table) {
      std::fprintf(stderr, "bench_shard: CHECKPOINT MISMATCH topology=%s\n",
                   kind_name.c_str());
      ok = false;
      continue;
    }
    const double ms = solver.last_solve_time().ms();
    const double base =
        d4_ms[kind == gpusim::TopologyKind::kFullMesh ? 1 : 0];
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%+.2f%%",
                  base > 0.0 ? (ms / base - 1.0) * 100.0 : 0.0);
    ckpt_table.add_row({kind_name, bench::fmt_ms(ms), overhead,
                        std::to_string(topology.transfer_stats().transfers)});

    bench::JsonRecord record;
    record.name = "shard/d4/" + kind_name + "-ckpt";
    record.ns =
        static_cast<std::uint64_t>(solver.last_solve_time().ps()) / 1000;
    record.cells = shape.table_size;
    record.probes = topology.transfer_stats().transfers;
    records.push_back(std::move(record));
  }
  std::printf("%s\n", ckpt_table.to_string().c_str());

  if (!json_path.empty()) bench::write_json(json_path, records);
  return ok ? 0 : 1;
}
