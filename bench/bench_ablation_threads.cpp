// Thread-scaling ablation: the modeled OpenMP implementation at 1..28
// threads. This reproduces the spirit of the predecessor paper's
// ("A Parallel Approximation Algorithm for Scheduling Parallel Identical
// Machines", Ghalami & Grosu, IPDPSW 2017) sequential-vs-OpenMP comparison
// that Section IV says was already established: level-synchronous DP
// scales with threads until per-level work runs out and barrier overhead
// flattens the curve on small tables.
#include <cstdio>

#include "bench_common.hpp"
#include "core/cpu_time_model.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace pcmax;
  using bench::fmt_ms;

  std::printf("== bench_ablation_threads: OpenMP scaling (modeled) ==\n\n");
  const std::vector<int> thread_counts{1, 2, 4, 8, 16, 28};

  util::TextTable table({"table size", "1", "2", "4", "8", "16", "28",
                         "speedup@28"});
  for (const auto size : {std::uint64_t{3456}, std::uint64_t{20736},
                          std::uint64_t{362880}}) {
    const auto shape = workload::paper_shapes_for_size(size).front();
    const auto problem = workload::dp_problem_for_extents(shape.extents);
    dp::SolveOptions options;
    options.collect_deps = true;
    const auto result = dp::LevelBucketSolver().solve(problem, options);

    std::vector<std::string> row{std::to_string(size)};
    double t1 = 0.0, t28 = 0.0;
    for (const int threads : thread_counts) {
      CpuModelParams params;
      params.threads = threads;
      const double ms = estimate_openmp_dp_time(problem, result, params).ms();
      if (threads == 1) t1 = ms;
      if (threads == 28) t28 = ms;
      row.push_back(fmt_ms(ms));
    }
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx", t1 / t28);
    row.push_back(speedup);
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
