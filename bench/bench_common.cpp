#include "bench_common.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pcmax::bench {

ShapeTiming time_shape(const workload::TableShape& shape,
                       const std::vector<std::size_t>& gpu_dims) {
  ShapeTiming timing;
  timing.shape = shape;

  const dp::DpProblem problem =
      workload::dp_problem_for_extents(shape.extents);

  dp::SolveOptions options;
  options.collect_deps = true;
  const dp::DpResult reference =
      dp::LevelBucketSolver().solve(problem, options);

  CpuModelParams m16;
  m16.threads = 16;
  CpuModelParams m28;
  m28.threads = 28;
  timing.omp16_ms = estimate_openmp_dp_time(problem, reference, m16).ms();
  timing.omp28_ms = estimate_openmp_dp_time(problem, reference, m28).ms();

  for (const auto dims : gpu_dims) {
    gpusim::Device device(gpusim::DeviceSpec::k40());
    const gpu::GpuDpSolver solver(device, dims);
    const dp::DpResult result = solver.solve(problem);
    if (result.table != reference.table)
      throw std::runtime_error("GPU engine diverged on " + shape.label);
    timing.gpu_ms[dims] = solver.last_solve_time().ms();
  }
  return timing;
}

std::string fmt_ms(double ms) {
  char buf[32];
  if (ms >= 1000.0)
    std::snprintf(buf, sizeof buf, "%.0f", ms);
  else if (ms >= 10.0)
    std::snprintf(buf, sizeof buf, "%.1f", ms);
  else
    std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

namespace {

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void write_json(const std::string& path,
                const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out << "  {\"name\": \"" << escape_json(r.name) << "\", \"ns\": " << r.ns
        << ", \"cells\": " << r.cells << ", \"probes\": " << r.probes
        << ", \"cache_hits\": " << r.cache_hits << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  if (!out) throw std::runtime_error("failed writing " + path);
}

std::string flag_value_from_args(int argc, const char* const* argv,
                                 std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == flag) {
      if (i + 1 >= argc)
        throw std::runtime_error(std::string(flag) + " requires a value");
      return argv[i + 1];
    }
    if (a.size() > flag.size() + 1 && a.substr(0, flag.size()) == flag &&
        a[flag.size()] == '=')
      return std::string(a.substr(flag.size() + 1));
  }
  return "";
}

std::string json_path_from_args(int argc, const char* const* argv) {
  return flag_value_from_args(argc, argv, "--json");
}

std::uint64_t cells_evaluated(const PtasResult& result) {
  std::uint64_t cells = 0;
  for (const DpInvocation& call : result.dp_calls)
    // Probes without long jobs answer without a DP (nonzero_dims == 0);
    // their nominal table_size of 1 is not an evaluated cell.
    if (!call.cached && call.nonzero_dims > 0) cells += call.table_size;
  return cells;
}

}  // namespace pcmax::bench
