#include "bench_common.hpp"

#include <cstdio>
#include <stdexcept>

namespace pcmax::bench {

ShapeTiming time_shape(const workload::TableShape& shape,
                       const std::vector<std::size_t>& gpu_dims) {
  ShapeTiming timing;
  timing.shape = shape;

  const dp::DpProblem problem =
      workload::dp_problem_for_extents(shape.extents);

  dp::SolveOptions options;
  options.collect_deps = true;
  const dp::DpResult reference =
      dp::LevelBucketSolver().solve(problem, options);

  CpuModelParams m16;
  m16.threads = 16;
  CpuModelParams m28;
  m28.threads = 28;
  timing.omp16_ms = estimate_openmp_dp_time(problem, reference, m16).ms();
  timing.omp28_ms = estimate_openmp_dp_time(problem, reference, m28).ms();

  for (const auto dims : gpu_dims) {
    gpusim::Device device(gpusim::DeviceSpec::k40());
    const gpu::GpuDpSolver solver(device, dims);
    const dp::DpResult result = solver.solve(problem);
    if (result.table != reference.table)
      throw std::runtime_error("GPU engine diverged on " + shape.label);
    timing.gpu_ms[dims] = solver.last_solve_time().ms();
  }
  return timing;
}

std::string fmt_ms(double ms) {
  char buf[32];
  if (ms >= 1000.0)
    std::snprintf(buf, sizeof buf, "%.0f", ms);
  else if (ms >= 10.0)
    std::snprintf(buf, sizeof buf, "%.1f", ms);
  else
    std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

}  // namespace pcmax::bench
