// Shared helpers for the paper-reproduction benchmark binaries.
//
// All reported times are *simulated*: OMP16/OMP28 from the calibrated CPU
// model of the paper's OpenMP implementation, GPU-DIMx from the simulated
// K40 device (see DESIGN.md, "Substitutions"). The computations behind them
// are real — every DP table is actually solved and verified.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/cpu_time_model.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "workload/shapes.hpp"

namespace pcmax::bench {

struct ShapeTiming {
  workload::TableShape shape;
  double omp16_ms = 0.0;
  double omp28_ms = 0.0;
  /// Simulated GPU time per partition-dimension setting.
  std::map<std::size_t, double> gpu_ms;
};

/// Solves the shape's DP problem once per engine and returns modeled times.
/// Every engine's table is checked against the bucketed solver; mismatches
/// throw.
[[nodiscard]] ShapeTiming time_shape(const workload::TableShape& shape,
                                     const std::vector<std::size_t>& gpu_dims);

/// Formats milliseconds with adaptive precision for table cells.
[[nodiscard]] std::string fmt_ms(double ms);

}  // namespace pcmax::bench
