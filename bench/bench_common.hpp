// Shared helpers for the paper-reproduction benchmark binaries.
//
// All reported times are *simulated*: OMP16/OMP28 from the calibrated CPU
// model of the paper's OpenMP implementation, GPU-DIMx from the simulated
// K40 device (see DESIGN.md, "Substitutions"). The computations behind them
// are real — every DP table is actually solved and verified.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/cpu_time_model.hpp"
#include "core/ptas.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "workload/shapes.hpp"

namespace pcmax::bench {

struct ShapeTiming {
  workload::TableShape shape;
  double omp16_ms = 0.0;
  double omp28_ms = 0.0;
  /// Simulated GPU time per partition-dimension setting.
  std::map<std::size_t, double> gpu_ms;
};

/// Solves the shape's DP problem once per engine and returns modeled times.
/// Every engine's table is checked against the bucketed solver; mismatches
/// throw.
[[nodiscard]] ShapeTiming time_shape(const workload::TableShape& shape,
                                     const std::vector<std::size_t>& gpu_dims);

/// Formats milliseconds with adaptive precision for table cells.
[[nodiscard]] std::string fmt_ms(double ms);

/// One benchmark case of the machine-readable perf trajectory (--json).
/// scripts/perf_trajectory.py folds these into BENCH_*.json histories.
struct JsonRecord {
  std::string name;
  /// Real host wall time of the case, nanoseconds.
  std::uint64_t ns = 0;
  /// DP cells actually evaluated: sum of table sizes over real (non-cached)
  /// solves.
  std::uint64_t cells = 0;
  /// DP invocations recorded (feasibility probes plus reconstruction),
  /// cache-answered ones included.
  std::uint64_t probes = 0;
  /// Probe-cache hits; 0 whenever the cache is off.
  std::uint64_t cache_hits = 0;
};

/// Writes `records` to `path` as a JSON array of objects. Throws on I/O
/// failure.
void write_json(const std::string& path,
                const std::vector<JsonRecord>& records);

/// The value of `flag` in argv (either `--flag VALUE` or `--flag=VALUE`),
/// or "" when absent. Throws when the flag is present without a value.
[[nodiscard]] std::string flag_value_from_args(int argc,
                                               const char* const* argv,
                                               std::string_view flag);

/// The value following a `--json` flag in argv, or "" when absent.
/// Throws when the flag is present without a value.
[[nodiscard]] std::string json_path_from_args(int argc,
                                              const char* const* argv);

/// Cells actually evaluated during a PTAS run: sum of table_size over the
/// run's non-cached DP invocations (the unit the probe-cache ablation
/// reports).
[[nodiscard]] std::uint64_t cells_evaluated(const PtasResult& result);

}  // namespace pcmax::bench
