// Device-sweep ablation: the same partitioned DP on three simulated GPUs
// (Tesla K20, Tesla K40, and a generic modern HBM part). Not a paper
// experiment — it shows how the cost model responds to hardware knobs: the
// modern part's cheap device-side launches collapse the launch-bound small
// sizes and its bandwidth lifts the large ones, moving the paper's
// OpenMP crossover far to the left.
#include <cstdio>

#include "bench_common.hpp"
#include "util/text_table.hpp"

int main() {
  using namespace pcmax;
  using bench::fmt_ms;

  std::printf("== bench_ablation_device: GPU generations "
              "(model sensitivity; simulated) ==\n\n");
  const std::vector<gpusim::DeviceSpec> specs{
      gpusim::DeviceSpec::k20(), gpusim::DeviceSpec::k40(),
      gpusim::DeviceSpec::modern()};

  util::TextTable table({"table size", "OMP16", "tesla-k20", "tesla-k40",
                         "modern-hbm"});
  for (const auto size : {std::uint64_t{3456}, std::uint64_t{20736},
                          std::uint64_t{403200}}) {
    const auto shape = workload::paper_shapes_for_size(size).front();
    const auto problem = workload::dp_problem_for_extents(shape.extents);
    const auto t = bench::time_shape(shape, {});
    std::vector<std::string> row{std::to_string(size), fmt_ms(t.omp16_ms)};
    for (const auto& spec : specs) {
      gpusim::Device device(spec);
      const gpu::GpuDpSolver solver(device, 6);
      (void)solver.solve(problem);
      row.push_back(fmt_ms(solver.last_solve_time().ms()));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
