// Sparsification ablation: the classic Hochbaum-Shmoys rounding (one class
// per multiple of T/k^2, up to k^2 - k + 1 DP dimensions) against the
// geometric-grid EPTAS rounding (O(k log k) dimensions, eptas/sparsify.hpp)
// at *equal epsilon*, over shapes whose long-job spread populates many
// classes. Both engines run the same bisection search on the same
// level-bucket solver with the probe cache off, so the cells column is a
// pure rounding ablation: sum of DP table sizes over real solves.
//
// The table also reports the class-count reduction (rounded dims at the
// instance lower bound) and the peak DP-table bytes each engine would
// allocate there — the O(1/eps^2) -> O(1/eps log 1/eps) claim, measured.
//
// `--json <path>` emits perf-trajectory records; CI's perf-smoke job gates
// sparse cells * 2 <= classic cells on every "large-*" pair (a sparsified
// engine that stops shrinking tables is a silent perf regression, results
// stay correct either way). The bench itself throws if the sparsified
// search lands on a worse target than the classic one or its certificate
// fails — equal-guarantee is the precondition of comparing costs.
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/ptas.hpp"
#include "core/rounding.hpp"
#include "eptas/eptas.hpp"
#include "eptas/sparsify.hpp"
#include "util/text_table.hpp"
#include "workload/generators.hpp"

namespace {

using namespace pcmax;

struct Case {
  std::string name;
  Instance instance;
  std::int64_t k;
};

struct Run {
  std::uint64_t ns = 0;
  std::uint64_t cells = 0;
  std::uint64_t probes = 0;
  std::int64_t best_target = 0;
  std::int64_t makespan = 0;
};

template <typename SolveFn>
Run timed_run(const Case& c, SolveFn&& solve) {
  const dp::LevelBucketSolver solver;
  PtasOptions options;
  options.epsilon = epsilon_for_k(c.k);
  options.strategy = SearchStrategy::kBisection;
  options.use_probe_cache = false;
  Run run;
  const auto start = std::chrono::steady_clock::now();
  const PtasResult result = solve(c.instance, solver, options);
  run.ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  run.cells = pcmax::bench::cells_evaluated(result);
  run.probes = result.dp_calls.size();
  run.best_target = result.best_target;
  run.makespan = result.achieved_makespan;
  if (result.achieved_makespan * c.k > (c.k + 1) * result.best_target)
    throw std::runtime_error(c.name + ": certificate failed");
  return run;
}

std::string fmt_ratio(std::uint64_t num, std::uint64_t den) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fx",
                den == 0 ? 0.0
                         : static_cast<double>(num) / static_cast<double>(den));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      pcmax::bench::json_path_from_args(argc, argv);

  // Long-job-heavy shapes: m close to n/2 keeps the lower bound near twice
  // the mean time, so jobs spread over most of the class range [k, k^2]
  // instead of collapsing into the top few classes. The "large-*" cases are
  // the gated ones — big enough that the class range is densely populated
  // and sparsification has something to merge.
  const std::vector<Case> cases{
      {"uniform-24x12/k4", workload::uniform_instance(24, 12, 100, 1000, 11),
       4},
      {"large-uniform-32x16/k4",
       workload::uniform_instance(32, 16, 100, 1000, 13), 4},
      {"large-uniform-20x10/k8",
       workload::uniform_instance(20, 10, 100, 1000, 12), 8},
      {"large-bimodal-22x11/k8",
       workload::bimodal_instance(22, 11, 100, 350, 600, 1000, 0.5, 15), 8},
  };

  std::printf("== bench_eptas: classic vs sparsified rounding at equal "
              "epsilon (bisection, cache off) ==\n\n");
  pcmax::util::TextTable table(
      {"case", "classic cells", "sparse cells", "drop", "dims c/s",
       "bytes c/s @LB", "target c/s", "probes"});
  std::vector<pcmax::bench::JsonRecord> records;
  for (const Case& c : cases) {
    const Run classic = timed_run(
        c, [](const Instance& i, const dp::DpSolver& s,
              const PtasOptions& o) { return solve_ptas(i, s, o); });
    const Run sparse = timed_run(
        c, [](const Instance& i, const dp::DpSolver& s,
              const PtasOptions& o) { return eptas::solve_eptas(i, s, o); });
    // The sparsified oracle accepts every target the classic one accepts
    // (sparsify.hpp, "differential invariant"), so its bisection can only
    // stop at the same or a smaller target.
    if (sparse.best_target > classic.best_target)
      throw std::runtime_error(c.name + ": sparsified target " +
                               std::to_string(sparse.best_target) +
                               " worse than classic " +
                               std::to_string(classic.best_target));
    if (sparse.cells >= classic.cells)
      throw std::runtime_error(c.name +
                               ": sparsified rounding evaluated no fewer "
                               "cells than the classic rounding");
    const std::int64_t lb = makespan_lower_bound(c.instance);
    const auto rounded = round_instance(c.instance, lb, c.k);
    const std::uint64_t classic_bytes =
        rounded.table_size() * sizeof(std::int32_t);
    const std::uint64_t sparse_bytes =
        eptas::eptas_table_bytes(c.instance, c.k);
    table.add_row(
        {c.name, std::to_string(classic.cells), std::to_string(sparse.cells),
         fmt_ratio(classic.cells, sparse.cells),
         std::to_string(rounded.nonzero_dims()) + "/" +
             std::to_string(
                 eptas::sparsify_instance(c.instance, lb, c.k).nonzero_dims()),
         std::to_string(classic_bytes) + "/" + std::to_string(sparse_bytes),
         std::to_string(classic.best_target) + "/" +
             std::to_string(sparse.best_target),
         std::to_string(classic.probes) + "/" +
             std::to_string(sparse.probes)});
    records.push_back({"eptas-ablation/" + c.name + "/classic", classic.ns,
                       classic.cells, classic.probes, 0});
    records.push_back({"eptas-ablation/" + c.name + "/sparse", sparse.ns,
                       sparse.cells, sparse.probes, 0});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "cells = DP cells evaluated over the whole search (cache off);\n"
      "dims/bytes @LB = rounded class count and DP-table bytes at the "
      "instance lower bound (the search's worst case);\n"
      "targets may differ: the sparsified oracle dominates the classic one, "
      "so its target is never worse.\n");

  if (!json_path.empty()) {
    pcmax::bench::write_json(json_path, records);
    std::printf("wrote %zu records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}
