#!/usr/bin/env python3
"""Plot the Fig. 3 reproduction from bench_fig3's CSV output.

Usage:
    build/bench/bench_fig3 --csv fig3.csv
    python3 scripts/plot_fig3.py fig3.csv [out-prefix]

Produces one log-log PNG per size group (a, b, c), one line per engine —
the same presentation the paper's Fig. 3 uses. Requires matplotlib.
"""
import csv
import sys
from collections import defaultdict


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    prefix = sys.argv[2] if len(sys.argv) > 2 else "fig3"

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not installed; install it or plot the CSV "
              "with your tool of choice")
        return 1

    # group -> engine -> [(size, ms)]
    data = defaultdict(lambda: defaultdict(list))
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            data[row["group"]][row["engine"]].append(
                (int(row["size"]), float(row["ms"])))

    for group, engines in sorted(data.items()):
        fig, ax = plt.subplots(figsize=(7, 4.5))
        for engine, points in sorted(engines.items()):
            points.sort()
            ax.plot([s for s, _ in points], [ms for _, ms in points],
                    marker="o", markersize=3, label=engine)
        ax.set_xscale("log")
        ax.set_yscale("log")
        ax.set_xlabel("DP-table size")
        ax.set_ylabel("running time (ms, simulated)")
        ax.set_title(f"Fig. 3({group}) reproduction")
        ax.legend(fontsize=7, ncol=3)
        ax.grid(True, which="both", alpha=0.3)
        out = f"{prefix}_{group}.png"
        fig.tight_layout()
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
