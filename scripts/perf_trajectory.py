#!/usr/bin/env python3
"""Fold a bench --json output into a BENCH_<name>.json perf trajectory.

Every bench binary that takes `--json <path>` emits a flat array of
records {name, ns, cells, probes, cache_hits}. This script appends one
labelled run to a history file (BENCH_<bench>.json in --history-dir, the
repo root by default) and prints per-record deltas against the previous
run, so regressions in cell evaluations or cache hit rate are visible
across commits:

    build/bench/bench_micro --json /tmp/micro.json
    scripts/perf_trajectory.py --bench micro --input /tmp/micro.json

History format: {"bench": <name>, "runs": [{"label": <rev>, "records":
[...]}, ...]}. The fold/delta logic lives in pure functions so
scripts/test_perf_trajectory.py can exercise it without a git checkout
or bench binaries.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REQUIRED_FIELDS = {"name", "ns", "cells", "probes", "cache_hits"}


def git_label() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unlabelled"


def validate_records(records):
    """Returns an error string for malformed input, else None."""
    if not isinstance(records, list):
        return "input must be a JSON array of records"
    for rec in records:
        if not isinstance(rec, dict):
            return f"record is not an object: {rec!r}"
        missing = REQUIRED_FIELDS - set(rec)
        if missing:
            return f"record missing fields {sorted(missing)}: {rec}"
    return None


def load_history(text, bench):
    """Parses a history file's contents into a usable history dict.

    Tolerates every state a fresh or half-written checkout produces: an
    empty or whitespace-only file (e.g. created by `touch` or a truncated
    upload), a JSON document that is not an object (null, a bare array),
    and a "runs" key that is missing or not a list. Each of those folds
    to a fresh seed history instead of crashing the CI step that only
    wanted to append a datapoint. Raises json.JSONDecodeError only for
    non-empty text that is not JSON at all, which deserves a loud failure.
    """
    if not text.strip():
        return {"bench": bench, "runs": []}
    history = json.loads(text)
    if not isinstance(history, dict):
        return {"bench": bench, "runs": []}
    history.setdefault("bench", bench)
    if not isinstance(history.get("runs"), list):
        history["runs"] = []
    return history


def previous_records(history):
    """Latest-run-wins index of record name -> record over all prior runs.

    Tolerates an empty or partially formed history (no "runs" key, runs
    without "records" or that are not objects), which is what the first
    CI run on a fresh branch sees.
    """
    previous = {}
    for run in history.get("runs", []):
        if not isinstance(run, dict):
            continue
        records = run.get("records")
        if not isinstance(records, list):
            continue
        for rec in records:
            if isinstance(rec, dict) and "name" in rec:
                previous[rec["name"]] = rec
    return previous


def fold_run(history, label, records):
    """Appends one labelled run to the history in place and returns the
    pre-fold record index used for delta reporting."""
    previous = previous_records(history)
    history.setdefault("runs", []).append(
        {"label": label, "records": records})
    return previous


def delta_lines(records, previous):
    """Human-readable per-record deltas against the previous run."""

    def delta(rec, prev, key):
        if prev[key] == 0:
            return f"{key}={rec[key]}"
        change = rec[key] / prev[key] - 1.0
        return f"{key}={rec[key]} ({change:+.0%})"

    lines = []
    for rec in records:
        prev = previous.get(rec["name"])
        if prev is None:
            lines.append(f"  {rec['name']}: cells={rec['cells']} "
                         f"hits={rec['cache_hits']} (new)")
            continue
        lines.append(f"  {rec['name']}: {delta(rec, prev, 'cells')} "
                     f"{delta(rec, prev, 'ns')} "
                     f"hits={rec['cache_hits']} (prev {prev['cache_hits']})")
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="bench name, e.g. probe_cache or micro")
    parser.add_argument("--input", required=True,
                        help="JSON file written by the bench's --json flag")
    parser.add_argument("--history-dir", default=".",
                        help="directory holding BENCH_<name>.json")
    parser.add_argument("--label", default=None,
                        help="run label (default: short git revision)")
    args = parser.parse_args()

    input_text = pathlib.Path(args.input).read_text()
    if not input_text.strip():
        print(f"{args.input}: empty input (bench wrote no records?)",
              file=sys.stderr)
        return 1
    try:
        records = json.loads(input_text)
    except json.JSONDecodeError as err:
        print(f"{args.input}: not valid JSON: {err}", file=sys.stderr)
        return 1
    error = validate_records(records)
    if error is not None:
        print(error, file=sys.stderr)
        return 1

    history_path = (pathlib.Path(args.history_dir) /
                    f"BENCH_{args.bench}.json")
    history_text = history_path.read_text() if history_path.exists() else ""
    history = load_history(history_text, args.bench)

    label = args.label or git_label()
    previous = fold_run(history, label, records)
    history_path.write_text(json.dumps(history, indent=2) + "\n")

    print(f"{history_path}: appended run '{label}' "
          f"({len(records)} records, {len(history['runs'])} total runs)")
    for line in delta_lines(records, previous):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
