#!/usr/bin/env python3
"""Fold a bench --json output into a BENCH_<name>.json perf trajectory.

Every bench binary that takes `--json <path>` emits a flat array of
records {name, ns, cells, probes, cache_hits}. This script appends one
labelled run to a history file (BENCH_<bench>.json in --history-dir, the
repo root by default) and prints per-record deltas against the previous
run, so regressions in cell evaluations or cache hit rate are visible
across commits:

    build/bench/bench_micro --json /tmp/micro.json
    scripts/perf_trajectory.py --bench micro --input /tmp/micro.json

History format: {"bench": <name>, "runs": [{"label": <rev>, "records":
[...]}, ...]}. The fold/delta logic lives in pure functions so
scripts/test_perf_trajectory.py can exercise it without a git checkout
or bench binaries.
"""

import argparse
import json
import pathlib
import subprocess
import sys

REQUIRED_FIELDS = {"name", "ns", "cells", "probes", "cache_hits"}


def git_label() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unlabelled"


def validate_records(records):
    """Returns an error string for malformed input, else None."""
    if not isinstance(records, list):
        return "input must be a JSON array of records"
    for rec in records:
        if not isinstance(rec, dict):
            return f"record is not an object: {rec!r}"
        missing = REQUIRED_FIELDS - set(rec)
        if missing:
            return f"record missing fields {sorted(missing)}: {rec}"
    return None


def previous_records(history):
    """Latest-run-wins index of record name -> record over all prior runs.

    Tolerates an empty or partially formed history (no "runs" key, runs
    without "records"), which is what the first CI run on a fresh branch
    sees.
    """
    previous = {}
    for run in history.get("runs", []):
        for rec in run.get("records", []):
            previous[rec["name"]] = rec
    return previous


def fold_run(history, label, records):
    """Appends one labelled run to the history in place and returns the
    pre-fold record index used for delta reporting."""
    previous = previous_records(history)
    history.setdefault("runs", []).append(
        {"label": label, "records": records})
    return previous


def delta_lines(records, previous):
    """Human-readable per-record deltas against the previous run."""

    def delta(rec, prev, key):
        if prev[key] == 0:
            return f"{key}={rec[key]}"
        change = rec[key] / prev[key] - 1.0
        return f"{key}={rec[key]} ({change:+.0%})"

    lines = []
    for rec in records:
        prev = previous.get(rec["name"])
        if prev is None:
            lines.append(f"  {rec['name']}: cells={rec['cells']} "
                         f"hits={rec['cache_hits']} (new)")
            continue
        lines.append(f"  {rec['name']}: {delta(rec, prev, 'cells')} "
                     f"{delta(rec, prev, 'ns')} "
                     f"hits={rec['cache_hits']} (prev {prev['cache_hits']})")
    return lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="bench name, e.g. probe_cache or micro")
    parser.add_argument("--input", required=True,
                        help="JSON file written by the bench's --json flag")
    parser.add_argument("--history-dir", default=".",
                        help="directory holding BENCH_<name>.json")
    parser.add_argument("--label", default=None,
                        help="run label (default: short git revision)")
    args = parser.parse_args()

    records = json.loads(pathlib.Path(args.input).read_text())
    error = validate_records(records)
    if error is not None:
        print(error, file=sys.stderr)
        return 1

    history_path = (pathlib.Path(args.history_dir) /
                    f"BENCH_{args.bench}.json")
    if history_path.exists():
        history = json.loads(history_path.read_text())
    else:
        history = {"bench": args.bench, "runs": []}

    label = args.label or git_label()
    previous = fold_run(history, label, records)
    history_path.write_text(json.dumps(history, indent=2) + "\n")

    print(f"{history_path}: appended run '{label}' "
          f"({len(records)} records, {len(history['runs'])} total runs)")
    for line in delta_lines(records, previous):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
