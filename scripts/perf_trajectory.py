#!/usr/bin/env python3
"""Fold a bench --json output into a BENCH_<name>.json perf trajectory.

Every bench binary that takes `--json <path>` emits a flat array of
records {name, ns, cells, probes, cache_hits}. This script appends one
labelled run to a history file (BENCH_<bench>.json in --history-dir, the
repo root by default) and prints per-record deltas against the previous
run, so regressions in cell evaluations or cache hit rate are visible
across commits:

    build/bench/bench_probe_cache --json /tmp/pc.json
    scripts/perf_trajectory.py --bench probe_cache --input /tmp/pc.json

History format: {"bench": <name>, "runs": [{"label": <rev>, "records":
[...]}, ...]}.
"""

import argparse
import json
import pathlib
import subprocess
import sys


def git_label() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unlabelled"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="bench name, e.g. probe_cache or micro")
    parser.add_argument("--input", required=True,
                        help="JSON file written by the bench's --json flag")
    parser.add_argument("--history-dir", default=".",
                        help="directory holding BENCH_<name>.json")
    parser.add_argument("--label", default=None,
                        help="run label (default: short git revision)")
    args = parser.parse_args()

    records = json.loads(pathlib.Path(args.input).read_text())
    if not isinstance(records, list):
        print("input must be a JSON array of records", file=sys.stderr)
        return 1
    for rec in records:
        missing = {"name", "ns", "cells", "probes", "cache_hits"} - set(rec)
        if missing:
            print(f"record missing fields {sorted(missing)}: {rec}",
                  file=sys.stderr)
            return 1

    history_path = (pathlib.Path(args.history_dir) /
                    f"BENCH_{args.bench}.json")
    if history_path.exists():
        history = json.loads(history_path.read_text())
    else:
        history = {"bench": args.bench, "runs": []}

    previous = {rec["name"]: rec
                for run in history["runs"] for rec in run["records"]}
    label = args.label or git_label()
    history["runs"].append({"label": label, "records": records})
    history_path.write_text(json.dumps(history, indent=2) + "\n")

    print(f"{history_path}: appended run '{label}' "
          f"({len(records)} records, {len(history['runs'])} total runs)")
    for rec in records:
        prev = previous.get(rec["name"])
        if prev is None:
            print(f"  {rec['name']}: cells={rec['cells']} "
                  f"hits={rec['cache_hits']} (new)")
            continue
        def delta(key: str) -> str:
            if prev[key] == 0:
                return f"{key}={rec[key]}"
            change = rec[key] / prev[key] - 1.0
            return f"{key}={rec[key]} ({change:+.0%})"
        print(f"  {rec['name']}: {delta('cells')} {delta('ns')} "
              f"hits={rec['cache_hits']} (prev {prev['cache_hits']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
