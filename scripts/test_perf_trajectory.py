#!/usr/bin/env python3
"""Unit tests for the fold/delta logic in perf_trajectory.py.

Run directly or via ctest (perf_trajectory_unit):

    python3 scripts/test_perf_trajectory.py
"""

import unittest

import perf_trajectory


def record(name, ns=100, cells=50, probes=10, cache_hits=0):
    return {"name": name, "ns": ns, "cells": cells, "probes": probes,
            "cache_hits": cache_hits}


class ValidateRecordsTest(unittest.TestCase):
    def test_accepts_well_formed_records(self):
        self.assertIsNone(perf_trajectory.validate_records([record("a")]))
        self.assertIsNone(perf_trajectory.validate_records([]))

    def test_rejects_non_list_input(self):
        self.assertIn("array", perf_trajectory.validate_records({"runs": []}))

    def test_rejects_missing_fields(self):
        error = perf_trajectory.validate_records([{"name": "a", "ns": 1}])
        self.assertIn("cache_hits", error)
        self.assertIn("cells", error)

    def test_rejects_non_object_records(self):
        self.assertIn("not an object",
                      perf_trajectory.validate_records(["oops"]))


class LoadHistoryTest(unittest.TestCase):
    def test_empty_text_seeds_fresh_history(self):
        # A history file created by `touch` (or a truncated artifact
        # download) must fold to a fresh seed, not a JSONDecodeError.
        history = perf_trajectory.load_history("", "micro")
        self.assertEqual(history, {"bench": "micro", "runs": []})

    def test_whitespace_only_seeds_fresh_history(self):
        history = perf_trajectory.load_history("  \n\t\n", "serve")
        self.assertEqual(history, {"bench": "serve", "runs": []})

    def test_non_object_document_seeds_fresh_history(self):
        for text in ("null", "[]", '"oops"', "42"):
            history = perf_trajectory.load_history(text, "micro")
            self.assertEqual(history, {"bench": "micro", "runs": []},
                             f"for document {text!r}")

    def test_missing_or_malformed_runs_key_is_repaired(self):
        history = perf_trajectory.load_history('{"bench": "micro"}', "micro")
        self.assertEqual(history["runs"], [])
        history = perf_trajectory.load_history(
            '{"bench": "micro", "runs": null}', "micro")
        self.assertEqual(history["runs"], [])

    def test_missing_bench_name_is_filled_in(self):
        history = perf_trajectory.load_history('{"runs": []}', "serve")
        self.assertEqual(history["bench"], "serve")

    def test_well_formed_history_passes_through(self):
        text = ('{"bench": "micro", "runs": '
                '[{"label": "rev1", "records": []}]}')
        history = perf_trajectory.load_history(text, "micro")
        self.assertEqual(len(history["runs"]), 1)
        self.assertEqual(history["runs"][0]["label"], "rev1")

    def test_garbage_text_still_raises(self):
        import json
        with self.assertRaises(json.JSONDecodeError):
            perf_trajectory.load_history("not json at all", "micro")


class PreviousRecordsTest(unittest.TestCase):
    def test_tolerates_non_dict_runs_and_records(self):
        history = {"runs": [None, "oops", {"records": None},
                            {"records": [None, {"no_name": 1},
                                         record("a", cells=3)]}]}
        previous = perf_trajectory.previous_records(history)
        self.assertEqual(list(previous), ["a"])
        self.assertEqual(previous["a"]["cells"], 3)


class FoldRunTest(unittest.TestCase):
    def test_fold_into_empty_history(self):
        history = {"bench": "micro", "runs": []}
        previous = perf_trajectory.fold_run(history, "rev1", [record("a")])
        self.assertEqual(previous, {})
        self.assertEqual(len(history["runs"]), 1)
        self.assertEqual(history["runs"][0]["label"], "rev1")

    def test_fold_tolerates_missing_runs_key(self):
        # The first CI run on a fresh branch sees a history file that may
        # predate the schema; fold must not crash on it.
        history = {"bench": "micro"}
        previous = perf_trajectory.fold_run(history, "rev1", [record("a")])
        self.assertEqual(previous, {})
        self.assertEqual(len(history["runs"]), 1)

    def test_previous_prefers_latest_run(self):
        history = {"bench": "micro", "runs": []}
        perf_trajectory.fold_run(history, "rev1", [record("a", cells=10)])
        perf_trajectory.fold_run(history, "rev2", [record("a", cells=20)])
        previous = perf_trajectory.fold_run(history, "rev3",
                                            [record("a", cells=30)])
        self.assertEqual(previous["a"]["cells"], 20)
        self.assertEqual([run["label"] for run in history["runs"]],
                         ["rev1", "rev2", "rev3"])


class DeltaLinesTest(unittest.TestCase):
    def test_new_record_marked_new(self):
        lines = perf_trajectory.delta_lines([record("a", cells=5)], {})
        self.assertEqual(len(lines), 1)
        self.assertIn("(new)", lines[0])
        self.assertIn("cells=5", lines[0])

    def test_delta_against_previous(self):
        previous = {"a": record("a", ns=100, cells=50, cache_hits=2)}
        lines = perf_trajectory.delta_lines(
            [record("a", ns=150, cells=25, cache_hits=3)], previous)
        self.assertIn("cells=25 (-50%)", lines[0])
        self.assertIn("ns=150 (+50%)", lines[0])
        self.assertIn("hits=3 (prev 2)", lines[0])

    def test_zero_previous_value_has_no_percentage(self):
        previous = {"a": record("a", ns=0, cells=0)}
        lines = perf_trajectory.delta_lines([record("a", ns=9, cells=7)],
                                            previous)
        self.assertIn("cells=7 ", lines[0])
        self.assertNotIn("%", lines[0])


if __name__ == "__main__":
    unittest.main()
