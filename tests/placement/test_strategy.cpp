#include "placement/strategy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/checked_math.hpp"

namespace pcmax::placement {
namespace {

partition::BlockedLayout small_layout() {
  // 6x4x6 table cut 3x2x3: 18 blocks over 6 block-levels.
  return partition::BlockedLayout(dp::MixedRadix({6, 4, 6}), {3, 2, 3});
}

std::uint64_t flat(const dp::MixedRadix& grid, std::vector<std::int64_t> c) {
  return grid.flatten(c);
}

TEST(PlacementKind, NamesRoundTrip) {
  for (const auto kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLevelContiguous,
        PlacementKind::kMemoryBalanced})
    EXPECT_EQ(parse_placement_kind(placement_kind_name(kind)), kind);
  EXPECT_EQ(parse_placement_kind("random"), std::nullopt);
}

TEST(MakePlacement, ProducesTheRequestedKind) {
  for (const auto kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLevelContiguous,
        PlacementKind::kMemoryBalanced}) {
    const auto strategy = make_placement(kind);
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->kind(), kind);
    EXPECT_EQ(strategy->name(), placement_kind_name(kind));
  }
}

// The core contract: place() is a total function from blocks to valid
// devices — every block placed exactly once, no device id out of range.
TEST(PlacementStrategy, EveryBlockPlacedExactlyOnce) {
  const auto layout = small_layout();
  const std::vector<std::int64_t> reach{1, 1, 1};
  for (const auto kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLevelContiguous,
        PlacementKind::kMemoryBalanced}) {
    const auto strategy = make_placement(kind);
    for (const int n : {1, 2, 3, 4, 7, 32}) {
      const std::vector<int> plan = strategy->place(layout, n, reach);
      ASSERT_EQ(plan.size(), layout.block_count())
          << strategy->name() << " n=" << n;
      for (const int d : plan) {
        EXPECT_GE(d, 0);
        EXPECT_LT(d, n);
      }
    }
  }
}

TEST(PlacementStrategy, OneDeviceGetsEverything) {
  const auto layout = small_layout();
  for (const auto kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLevelContiguous,
        PlacementKind::kMemoryBalanced}) {
    const std::vector<int> plan = make_placement(kind)->place(layout, 1);
    EXPECT_TRUE(std::all_of(plan.begin(), plan.end(),
                            [](int d) { return d == 0; }));
  }
}

TEST(RoundRobin, AssignsBlocksCyclically) {
  const auto layout = small_layout();
  const std::vector<int> plan =
      make_placement(PlacementKind::kRoundRobin)->place(layout, 4);
  for (std::size_t b = 0; b < plan.size(); ++b)
    EXPECT_EQ(plan[b], static_cast<int>(b % 4));
}

TEST(LevelContiguous, SplitsEachLevelIntoOrderedRuns) {
  const auto layout = small_layout();
  const std::vector<int> plan =
      make_placement(PlacementKind::kLevelContiguous)->place(layout, 3);
  const dp::LevelBuckets buckets(layout.grid());
  for (std::int64_t level = 0; level <= layout.grid().max_level(); ++level) {
    int previous = 0;
    for (const std::uint64_t id : buckets.cells_at(level)) {
      const int d = plan[id];
      EXPECT_GE(d, previous) << "level " << level;
      previous = d;
    }
  }
}

// The memory-balance invariant: no device ever holds more than
// ceil(blocks / devices) blocks, the bound the per-device table-shard
// accounting (and the resilient pre-flight) relies on.
TEST(MemoryBalanced, NeverExceedsTheBlockCap) {
  const auto layouts = {
      small_layout(),
      partition::BlockedLayout(dp::MixedRadix({4, 4, 6, 6}), {2, 2, 3, 3}),
      partition::BlockedLayout(dp::MixedRadix({8, 8}), {8, 8}),
  };
  const auto strategy = make_placement(PlacementKind::kMemoryBalanced);
  for (const auto& layout : layouts) {
    const std::vector<std::int64_t> reach(layout.grid().dims(), 1);
    for (const int n : {2, 3, 4, 5, 8}) {
      const std::vector<int> plan = strategy->place(layout, n, reach);
      std::vector<std::uint64_t> load(static_cast<std::size_t>(n), 0);
      for (const int d : plan) ++load[static_cast<std::size_t>(d)];
      const std::uint64_t cap = util::ceil_div(
          layout.block_count(), static_cast<std::uint64_t>(n));
      for (const std::uint64_t l : load) EXPECT_LE(l, cap) << "n=" << n;
    }
  }
}

TEST(MemoryBalanced, IsDeterministic) {
  const auto layout = small_layout();
  const std::vector<std::int64_t> reach{1, 1, 1};
  const auto strategy = make_placement(PlacementKind::kMemoryBalanced);
  EXPECT_EQ(strategy->place(layout, 3, reach),
            strategy->place(layout, 3, reach));
}

// Recovery re-placement: with an exclusion mask every strategy must spread
// all blocks over the survivors only, deterministically.
TEST(PlacementStrategy, ExclusionMaskRemovesDevicesFromConsideration) {
  const auto layout = small_layout();
  const std::vector<std::int64_t> reach{1, 1, 1};
  for (const auto kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLevelContiguous,
        PlacementKind::kMemoryBalanced}) {
    const auto strategy = make_placement(kind);
    const std::vector<std::uint8_t> excluded{0, 1, 0, 1};  // 1 and 3 lost
    const auto plan = strategy->place(layout, 4, reach, excluded);
    ASSERT_EQ(plan.size(), layout.block_count()) << strategy->name();
    std::set<int> used;
    for (const int d : plan) {
      EXPECT_TRUE(d == 0 || d == 2) << strategy->name() << " placed on " << d;
      used.insert(d);
    }
    // Both survivors actually carry blocks — exclusion is not "pile
    // everything on one device".
    EXPECT_EQ(used.size(), 2u) << strategy->name();
    // Deterministic under the same mask.
    EXPECT_EQ(plan, strategy->place(layout, 4, reach, excluded));
  }
}

TEST(PlacementStrategy, EmptyAndAllZeroMasksMatch) {
  const auto layout = small_layout();
  const std::vector<std::int64_t> reach{1, 1, 1};
  const std::vector<std::uint8_t> none(3, 0);
  for (const auto kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLevelContiguous,
        PlacementKind::kMemoryBalanced}) {
    const auto strategy = make_placement(kind);
    EXPECT_EQ(strategy->place(layout, 3, reach),
              strategy->place(layout, 3, reach, none))
        << strategy->name();
  }
}

TEST(PlacementStrategy, LoneSurvivorTakesEverything) {
  const auto layout = small_layout();
  const std::vector<std::uint8_t> excluded{1, 1, 0, 1};
  for (const auto kind :
       {PlacementKind::kRoundRobin, PlacementKind::kLevelContiguous,
        PlacementKind::kMemoryBalanced}) {
    const auto plan = make_placement(kind)->place(layout, 4, {}, excluded);
    for (const int d : plan) EXPECT_EQ(d, 2);
  }
}

TEST(ForEachReachPredecessor, EnumeratesTheClippedReachBox) {
  const dp::MixedRadix grid({3, 3});
  const std::vector<std::int64_t> g{1, 1}, reach{1, 1};
  std::set<std::uint64_t> seen;
  for_each_reach_predecessor(grid, g, reach,
                             [&](std::uint64_t id) { seen.insert(id); });
  // Predecessors of (1,1) with reach (1,1): (0,0), (0,1), (1,0).
  EXPECT_EQ(seen, (std::set<std::uint64_t>{flat(grid, {0, 0}),
                                           flat(grid, {0, 1}),
                                           flat(grid, {1, 0})}));
}

TEST(ForEachReachPredecessor, OriginHasNoPredecessors) {
  const dp::MixedRadix grid({3, 3});
  const std::vector<std::int64_t> g{0, 0}, reach{2, 2};
  int count = 0;
  for_each_reach_predecessor(grid, g, reach, [&](std::uint64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ForEachReachPredecessor, MissingReachDimensionsCountAsZero) {
  const dp::MixedRadix grid({3, 3});
  const std::vector<std::int64_t> g{2, 2}, reach{1};  // dim 1 unreachable
  std::set<std::uint64_t> seen;
  for_each_reach_predecessor(grid, g, reach,
                             [&](std::uint64_t id) { seen.insert(id); });
  EXPECT_EQ(seen, (std::set<std::uint64_t>{flat(grid, {1, 2})}));
}

}  // namespace
}  // namespace pcmax::placement
