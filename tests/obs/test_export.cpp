// Exporter tests: Chrome-trace JSON track routing, metrics JSON shape, the
// text summary, and determinism of the golden-trace digest.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pcmax::obs {
namespace {

/// A small trace exercising all three tracks. `sim` shifts the simulated
/// clock; the digest must not depend on anything else.
void record_scenario(TraceRecorder& recorder, std::int64_t sim) {
  recorder.begin_span("ptas/solve", {arg("k", 2)});
  recorder.instant("search/probe", {arg("target", 40), arg("verdict", 1)});
  std::int64_t now = sim;
  recorder.set_sim_clock([&now] { return now; });
  recorder.begin_span("gpu/dp-solve", {arg("table", 64)});
  recorder.complete("dp-kernel", kStreamPidBase, kParentTid, sim, 3000,
                    {arg("threads", 64)});
  recorder.complete("dp-child", kStreamPidBase, kChildTid, sim + 100, 800);
  now = sim + 3000;
  recorder.end_span("gpu/dp-solve");
  recorder.set_sim_clock(nullptr);
  recorder.end_span("ptas/solve");
}

TEST(Export, ChromeTraceRoutesTracksByClockDomain) {
  TraceRecorder recorder;
  record_scenario(recorder, 10'000);
  const std::string json = chrome_trace_json(recorder);

  // Valid envelope and per-track metadata.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("host (wall clock)"), std::string::npos);
  EXPECT_NE(json.find("algorithm (sim time)"), std::string::npos);
  EXPECT_NE(json.find("gpusim stream 0 (sim time)"), std::string::npos);

  // Wall-clock host span: no sim stamp when it was recorded.
  EXPECT_NE(json.find("{\"ph\":\"B\",\"pid\":1,"), std::string::npos);
  // Sim-stamped host span routed to the algorithm track.
  EXPECT_NE(json.find("{\"ph\":\"B\",\"pid\":10,"), std::string::npos);
  // Kernel complete events keep their stream pid and explicit extent
  // (10000 ps = 0.010000 us).
  EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":100,\"tid\":1,\"ts\":0.010000,"
                      "\"dur\":0.003000,"),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  // Instants are marked thread-scoped and carry args.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"target\":40,\"verdict\":1}"),
            std::string::npos);
}

TEST(Export, MetricsJsonListsCountersAndNonzeroBuckets) {
  MetricsRegistry registry;
  registry.add("dp.invocations", 6);
  registry.observe("dp.table_size", 3);
  registry.observe("dp.table_size", 100);
  const std::string json = metrics_json(registry);
  EXPECT_NE(json.find("\"dp.invocations\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"dp.table_size\": {\"total\": 2, \"sum\": 103,"),
            std::string::npos);
  EXPECT_NE(json.find("{\"le\": 3, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 127, \"count\": 1}"), std::string::npos);
  // Empty buckets are omitted.
  EXPECT_EQ(json.find("\"count\": 0"), std::string::npos);
}

TEST(Export, TextSummaryCountsEventKinds) {
  TraceRecorder recorder;
  MetricsRegistry registry;
  record_scenario(recorder, 500);
  registry.add("search.rounds", 3);
  const std::string summary = text_summary(recorder, registry);
  EXPECT_NE(summary.find("trace: 7 events (2 spans, 2 kernel spans,"
                         " 1 instants)"),
            std::string::npos);
  EXPECT_NE(summary.find("search.rounds = 3"), std::string::npos);
}

TEST(Export, DigestIsDeterministicAndExcludesWallClock) {
  // Two recorders created at different wall times with identical logical
  // content must produce byte-identical digests.
  TraceRecorder first;
  record_scenario(first, 10'000);
  TraceRecorder second;
  record_scenario(second, 10'000);
  EXPECT_EQ(trace_digest(first), trace_digest(second));

  // The digest nests by span depth and stamps simulated time only.
  const std::string digest = trace_digest(first);
  EXPECT_NE(digest.find("begin ptas/solve k=2\n"), std::string::npos);
  EXPECT_NE(digest.find("  begin gpu/dp-solve table=64 sim=10000\n"),
            std::string::npos);
  EXPECT_NE(digest.find("    kernel stream=0 tid=1 dp-kernel start=10000 "
                        "dur=3000 threads=64\n"),
            std::string::npos);
  EXPECT_EQ(digest.find("wall"), std::string::npos);

  // A different simulated schedule changes the digest.
  TraceRecorder third;
  record_scenario(third, 20'000);
  EXPECT_NE(trace_digest(first), trace_digest(third));
}

TEST(Export, WriteFileThrowsOnUnwritablePath) {
  EXPECT_THROW(write_file("/nonexistent-dir/trace.json", "{}"),
               std::runtime_error);
}

}  // namespace
}  // namespace pcmax::obs
