// TraceRecorder unit tests: the disabled path, installation, event capture
// across both clock domains, and thread safety of the arena.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

namespace pcmax::obs {
namespace {

/// Installs a recorder for the test body and always uninstalls it, so a
/// failing assertion cannot leak tracing into later tests.
class InstallGuard {
 public:
  explicit InstallGuard(TraceRecorder& recorder) { install_trace(&recorder); }
  ~InstallGuard() { install_trace(nullptr); }
};

TEST(Trace, DisabledByDefault) {
  EXPECT_EQ(trace(), nullptr);
  // Instrumentation sites are silent no-ops without a recorder.
  const ScopedSpan span("noop/span", {arg("x", 1)});
  SimClockGuard clock([] { return std::int64_t{42}; });
  EXPECT_EQ(trace(), nullptr);
}

TEST(Trace, InstallAndUninstall) {
  TraceRecorder recorder;
  {
    InstallGuard guard(recorder);
    EXPECT_EQ(trace(), &recorder);
    trace()->instant("tick");
  }
  EXPECT_EQ(trace(), nullptr);
  EXPECT_EQ(recorder.size(), 1u);
}

TEST(Trace, SpanEventsCarryNamesAndArgs) {
  TraceRecorder recorder;
  recorder.begin_span("outer", {arg("lb", 3), arg("ub", 9)});
  recorder.instant("probe", {arg("target", 5)});
  recorder.end_span("outer");

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kSpanBegin);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[0].args[0].key, "lb");
  EXPECT_EQ(events[0].args[0].value, 3);
  EXPECT_STREQ(events[0].args[1].key, "ub");
  EXPECT_EQ(events[0].args[1].value, 9);
  EXPECT_EQ(events[1].kind, EventKind::kInstant);
  EXPECT_EQ(events[1].args[0].value, 5);
  EXPECT_FALSE(events[1].args[1].used());
  EXPECT_EQ(events[2].kind, EventKind::kSpanEnd);
  // Wall clock is always stamped; no sim clock was installed.
  for (const auto& e : events) {
    EXPECT_GE(e.wall_ns, 0);
    EXPECT_EQ(e.sim_ps, -1);
  }
}

TEST(Trace, LongNamesAndKeysTruncateSafely) {
  TraceRecorder recorder;
  const std::string long_name(200, 'n');
  recorder.instant(long_name, {arg(std::string(99, 'k'), 7)});
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].name), sizeof(TraceEvent{}.name) - 1);
  EXPECT_EQ(std::strlen(events[0].args[0].key), sizeof(TraceArg{}.key) - 1);
  EXPECT_EQ(events[0].args[0].value, 7);
}

TEST(Trace, SimClockStampsHostEvents) {
  TraceRecorder recorder;
  std::int64_t now_ps = 100;
  const auto previous =
      recorder.set_sim_clock([&now_ps] { return now_ps; });
  EXPECT_EQ(previous, nullptr);
  recorder.instant("a");
  now_ps = 250;
  recorder.begin_span("b");
  recorder.end_span("b");
  recorder.set_sim_clock(nullptr);
  recorder.instant("c");

  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].sim_ps, 100);
  EXPECT_EQ(events[1].sim_ps, 250);
  EXPECT_EQ(events[2].sim_ps, 250);
  EXPECT_EQ(events[3].sim_ps, -1);
}

TEST(Trace, SimClockGuardRestoresPrevious) {
  TraceRecorder recorder;
  InstallGuard install(recorder);
  recorder.set_sim_clock([] { return std::int64_t{1}; });
  {
    SimClockGuard guard([] { return std::int64_t{2}; });
    recorder.instant("inner");
  }
  recorder.instant("outer");
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].sim_ps, 2);
  EXPECT_EQ(events[1].sim_ps, 1);
}

TEST(Trace, CompleteKeepsExplicitTrack) {
  TraceRecorder recorder;
  recorder.complete("kernel", kStreamPidBase + 3, kChildTid, 1000, 500,
                    {arg("threads", 64)});
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kComplete);
  EXPECT_EQ(events[0].pid, kStreamPidBase + 3);
  EXPECT_EQ(events[0].tid, kChildTid);
  EXPECT_EQ(events[0].sim_ps, 1000);
  EXPECT_EQ(events[0].dur_ps, 500);
}

TEST(Trace, ArenaGrowsPastOneBlock) {
  TraceRecorder recorder;
  constexpr std::size_t kEvents = 3000;  // > 2 blocks of 1024
  for (std::size_t i = 0; i < kEvents; ++i)
    recorder.instant("e", {arg("i", static_cast<std::int64_t>(i))});
  EXPECT_EQ(recorder.size(), kEvents);
  const auto events = recorder.snapshot();
  ASSERT_EQ(events.size(), kEvents);
  for (std::size_t i = 0; i < kEvents; ++i)
    EXPECT_EQ(events[i].args[0].value, static_cast<std::int64_t>(i));
}

TEST(Trace, ConcurrentRecordingKeepsUniqueSequence) {
  TraceRecorder recorder;
  InstallGuard install(recorder);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        const ScopedSpan span("worker/span", {arg("thread", t)});
        trace()->instant("worker/tick");
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto events = recorder.snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kPerThread * 3));
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size());
  // snapshot() returns record order.
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.seq < b.seq;
                             }));
}

}  // namespace
}  // namespace pcmax::obs
