// Golden-trace regression tests: deterministic solver runs recorded under an
// ObsSession, digested with obs::trace_digest (wall-clock free) plus the
// text summary, and compared byte-for-byte against checked-in goldens in
// tests/obs/golden/. On intentional instrumentation changes, regenerate with
//
//   build/tests/test_obs_golden --update-goldens
//
// and review the diff like any other code change: it IS the observable
// behaviour of the instrumentation.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include "core/probe_cache.hpp"
#include "core/ptas.hpp"
#include "dp/solver.hpp"
#include "gpu/gpu_ptas.hpp"
#include "obs/export.hpp"
#include "obs/session.hpp"
#include "workload/generators.hpp"

namespace {

using namespace pcmax;

bool g_update_goldens = false;

std::string golden_path(const std::string& name) {
  return std::string(PCMAX_GOLDEN_DIR) + "/" + name + ".txt";
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (g_update_goldens) {
    obs::write_file(path, actual);
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — regenerate with test_obs_golden --update-goldens";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "golden trace drifted for '" << name
      << "'. If the instrumentation change is intentional, regenerate with "
         "test_obs_golden --update-goldens and review the diff.";
}

/// Digest + summary for whatever `run` records under a fresh session.
template <typename Run>
std::string record(Run&& run) {
  obs::ObsSession session;
  run();
  return obs::trace_digest(session.trace()) + "----\n" +
         obs::text_summary(session.trace(), session.metrics());
}

TEST(GoldenTrace, BisectionBucket) {
  const Instance instance = workload::uniform_instance(12, 3, 1, 40, 7);
  check_golden("bisection_bucket", record([&] {
    const dp::LevelBucketSolver solver;
    PtasOptions options;
    options.epsilon = 0.5;
    (void)solve_ptas(instance, solver, options);
  }));
}

TEST(GoldenTrace, QuarterSplitWithProbeCache) {
  const Instance instance = workload::uniform_instance(16, 4, 1, 60, 11);
  check_golden("quarter_cache", record([&] {
    const dp::LevelBucketSolver solver;
    ProbeCache shared;
    PtasOptions options;
    options.epsilon = 0.5;
    options.strategy = SearchStrategy::kQuarterSplit;
    options.use_probe_cache = true;
    options.probe_cache = &shared;
    // The second run replays the first from the warm cache, so the golden
    // pins both the miss path and the cache-hit instants.
    (void)solve_ptas(instance, solver, options);
    (void)solve_ptas(instance, solver, options);
  }));
}

TEST(GoldenTrace, GpuEndToEnd) {
  const Instance instance = workload::uniform_instance(10, 3, 1, 30, 5);
  check_golden("gpu_small", record([&] {
    gpusim::Device device(gpusim::DeviceSpec::k40());
    gpu::GpuPtasOptions options;
    options.epsilon = 0.5;
    options.partition_dims = 5;
    (void)gpu::solve_gpu_ptas(instance, device, options);
  }));
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-goldens") g_update_goldens = true;
  }
  return RUN_ALL_TESTS();
}
