// MetricsRegistry unit tests: counters, power-of-two histogram buckets, and
// the disabled-path convenience helpers.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace pcmax::obs {
namespace {

class InstallGuard {
 public:
  explicit InstallGuard(MetricsRegistry& registry) {
    install_metrics(&registry);
  }
  ~InstallGuard() { install_metrics(nullptr); }
};

TEST(Metrics, CountersAccumulateAndSort) {
  MetricsRegistry registry;
  registry.add("b.second");
  registry.add("a.first", 3);
  registry.add("a.first", 2);
  EXPECT_EQ(registry.counter("a.first"), 5u);
  EXPECT_EQ(registry.counter("b.second"), 1u);
  EXPECT_EQ(registry.counter("never.touched"), 0u);

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");
  EXPECT_EQ(counters[1].first, "b.second");
}

TEST(Metrics, BucketIndexIsPowerOfTwo) {
  EXPECT_EQ(MetricsRegistry::bucket_index(-5), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_index(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_index(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucket_index(2), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_index(3), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_index(4), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_index(7), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_index(8), 4u);
  // Everything huge lands in the last bucket instead of overflowing.
  EXPECT_EQ(MetricsRegistry::bucket_index(std::numeric_limits<std::int64_t>::max()),
            MetricsRegistry::kHistogramBuckets - 1);
}

TEST(Metrics, BucketUpperMatchesIndex) {
  EXPECT_EQ(MetricsRegistry::bucket_upper(0), 0);
  EXPECT_EQ(MetricsRegistry::bucket_upper(1), 1);
  EXPECT_EQ(MetricsRegistry::bucket_upper(2), 3);
  EXPECT_EQ(MetricsRegistry::bucket_upper(3), 7);
  // Every in-range value's bucket upper bound is >= the value itself.
  for (const std::int64_t v : {1, 2, 5, 100, 4095, 4096, 1 << 20}) {
    const auto b = MetricsRegistry::bucket_index(v);
    EXPECT_GE(MetricsRegistry::bucket_upper(b), v) << "value " << v;
    if (b > 1) {
      EXPECT_LT(MetricsRegistry::bucket_upper(b - 1), v) << "value " << v;
    }
  }
}

TEST(Metrics, HistogramSnapshotsCarryTotalsAndBuckets) {
  MetricsRegistry registry;
  registry.observe("sizes", 1);
  registry.observe("sizes", 3);
  registry.observe("sizes", 3);
  registry.observe("sizes", 0);
  const auto histograms = registry.histograms();
  ASSERT_EQ(histograms.size(), 1u);
  const auto& h = histograms[0];
  EXPECT_EQ(h.name, "sizes");
  EXPECT_EQ(h.total, 4u);
  EXPECT_EQ(h.sum, 7);
  EXPECT_EQ(h.counts[0], 1u);  // the 0 sample
  EXPECT_EQ(h.counts[1], 1u);  // the 1 sample
  EXPECT_EQ(h.counts[2], 2u);  // both 3 samples
}

TEST(Metrics, HelpersNoOpWhenDisabled) {
  ASSERT_EQ(metrics(), nullptr);
  count("ignored");
  observe("ignored", 17);
  EXPECT_EQ(metrics(), nullptr);
}

TEST(Metrics, HelpersReachInstalledRegistry) {
  MetricsRegistry registry;
  InstallGuard guard(registry);
  count("hits");
  count("hits", 4);
  observe("latency", 12);
  EXPECT_EQ(registry.counter("hits"), 5u);
  ASSERT_EQ(registry.histograms().size(), 1u);
  EXPECT_EQ(registry.histograms()[0].total, 1u);
}

}  // namespace
}  // namespace pcmax::obs
