#include "util/sim_time.hpp"

#include <gtest/gtest.h>

namespace pcmax::util {
namespace {

TEST(SimTime, UnitConversions) {
  EXPECT_EQ(SimTime::nanoseconds(1).ps(), 1'000);
  EXPECT_EQ(SimTime::microseconds(1).ps(), 1'000'000);
  EXPECT_EQ(SimTime::milliseconds(1).ps(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(3).ms(), 3.0);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(3).us(), 3.0);
  EXPECT_DOUBLE_EQ(SimTime::nanoseconds(3).ns(), 3.0);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::nanoseconds(10);
  const auto b = SimTime::nanoseconds(4);
  EXPECT_EQ((a + b).ps(), 14'000);
  EXPECT_EQ((a - b).ps(), 6'000);
  EXPECT_EQ((a * 3).ps(), 30'000);
  EXPECT_EQ((3 * a).ps(), 30'000);
  EXPECT_EQ((a / 2).ps(), 5'000);
  auto c = a;
  c += b;
  EXPECT_EQ(c.ps(), 14'000);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::nanoseconds(1), SimTime::nanoseconds(2));
  EXPECT_GT(SimTime::milliseconds(1), SimTime::microseconds(999));
  EXPECT_EQ(SimTime::microseconds(1000), SimTime::milliseconds(1));
  EXPECT_EQ(SimTime{}, SimTime::picoseconds(0));
}

TEST(SimTime, FromNsRounds) {
  EXPECT_EQ(SimTime::from_ns(1.5).ps(), 1'500);
  EXPECT_EQ(SimTime::from_ns(0.0004).ps(), 0);
  EXPECT_EQ(SimTime::from_ns(0.0006).ps(), 1);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::milliseconds(2).to_string(), "2.000 ms");
  EXPECT_EQ(SimTime::microseconds(2).to_string(), "2.000 us");
  EXPECT_EQ(SimTime::nanoseconds(2).to_string(), "2.000 ns");
}

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ps(), 0);
  EXPECT_DOUBLE_EQ(SimTime{}.ms(), 0.0);
}

}  // namespace
}  // namespace pcmax::util
