#include "util/rng.hpp"

#include <gtest/gtest.h>

namespace pcmax::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0, 1'000'000) == b.uniform(0, 1'000'000)) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(3, 2), contract_violation);
}

TEST(Rng, ClampedNormalStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.clamped_normal(50.0, 100.0, 0, 100);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 100);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace pcmax::util
