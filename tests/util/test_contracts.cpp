#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pcmax::util {
namespace {

TEST(Contracts, ExpectsPassesOnTrue) {
  PCMAX_EXPECTS(1 + 1 == 2);  // must not throw
  PCMAX_ENSURES(true);
}

TEST(Contracts, ExpectsThrowsWithLocation) {
  try {
    PCMAX_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const contract_violation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Expects"), std::string::npos);
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrowsWithKind) {
  try {
    PCMAX_ENSURES(false);
    FAIL() << "should have thrown";
  } catch (const contract_violation& e) {
    EXPECT_NE(std::string(e.what()).find("Ensures"), std::string::npos);
  }
}

TEST(Contracts, ViolationIsLogicError) {
  // Callers may catch std::logic_error generically.
  EXPECT_THROW(PCMAX_EXPECTS(false), std::logic_error);
}

TEST(Contracts, ConditionEvaluatedOnce) {
  int count = 0;
  PCMAX_EXPECTS(++count == 1);
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace pcmax::util
