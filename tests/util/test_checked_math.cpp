#include "util/checked_math.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace pcmax::util {
namespace {

TEST(CheckedMath, MulBasics) {
  EXPECT_EQ(checked_mul(0, 0), 0u);
  EXPECT_EQ(checked_mul(1, 17), 17u);
  EXPECT_EQ(checked_mul(3, 5), 15u);
  EXPECT_EQ(checked_mul(1u << 31, 1u << 31), std::uint64_t{1} << 62);
}

TEST(CheckedMath, MulOverflowThrows) {
  const auto max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_THROW((void)checked_mul(max, 2), overflow_error);
  EXPECT_THROW((void)checked_mul(std::uint64_t{1} << 33, std::uint64_t{1} << 33),
               overflow_error);
  // max * 1 is exactly representable.
  EXPECT_EQ(checked_mul(max, 1), max);
}

TEST(CheckedMath, AddBasics) {
  EXPECT_EQ(checked_add(2, 3), 5u);
  const auto max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(checked_add(max - 1, 1), max);
  EXPECT_THROW((void)checked_add(max, 1), overflow_error);
}

TEST(CheckedMath, MulAtInt64MaxBoundary) {
  // Table sizes and load sums live in int64 territory; products adjacent to
  // INT64_MAX must be exact, and the uint64 headroom above it must not be
  // mistaken for safety.
  const auto i64max =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(checked_mul(i64max, 1), i64max);
  EXPECT_EQ(checked_mul(i64max, 2), i64max * 2);  // 2^64 - 2, still uint64
  EXPECT_THROW((void)checked_mul(i64max, 3), overflow_error);
  EXPECT_EQ(checked_add(i64max, i64max), i64max * 2);
  EXPECT_THROW((void)checked_add(i64max * 2, 2), overflow_error);
}

TEST(CheckedMath, ClassIndexArithmeticBoundary) {
  // Hochbaum-Shmoys classifies a job via t_j * k^2 (class index
  // floor(t_j * k^2 / T)). For the tightest supported epsilon = 0.1,
  // k^2 = 100; the largest t_j whose product is representable sits at
  // umax / 100, and one past it must throw rather than wrap.
  const std::uint64_t k = 10;
  const std::uint64_t k2 = k * k;
  const auto umax = std::numeric_limits<std::uint64_t>::max();
  const auto largest_t = umax / k2;
  EXPECT_EQ(checked_mul(largest_t, k2), largest_t * k2);
  EXPECT_THROW((void)checked_mul(largest_t + 1, k2), overflow_error);
  // The class index itself stays in [k, k^2] for a long job at t = T.
  const auto t = largest_t;
  const auto target = largest_t;  // t == T: the largest long job
  EXPECT_EQ(checked_mul(t, k2) / target, k2);
}

TEST(CheckedMath, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_EQ(ceil_div(10, 5), 2u);
}

TEST(CheckedMath, CeilDivExtremes) {
  const auto umax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(ceil_div(umax, 1), umax);
  EXPECT_EQ(ceil_div(umax, umax), 1u);
  EXPECT_EQ(ceil_div(umax - 1, umax), 1u);
  EXPECT_EQ(ceil_div(umax, 2), (umax / 2) + 1);
}

TEST(CheckedMath, IsqrtExactSquares) {
  for (std::uint64_t i = 0; i <= 1000; ++i) EXPECT_EQ(isqrt(i * i), i);
}

TEST(CheckedMath, IsqrtBetweenSquares) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(2), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(5), 2u);
  EXPECT_EQ(isqrt(8), 2u);
  EXPECT_EQ(isqrt(15), 3u);
  EXPECT_EQ(isqrt(17), 4u);
  EXPECT_EQ(isqrt(9999), 99u);
}

TEST(CheckedMath, IsqrtLargeValues) {
  const auto max = std::numeric_limits<std::uint64_t>::max();
  const auto r = isqrt(max);
  EXPECT_LE(r * r, max);
  // (r+1)^2 would overflow; verify r is the floor sqrt via division.
  EXPECT_LT(max / (r + 1), r + 1);
}

// Property sweep: isqrt(n)^2 <= n < (isqrt(n)+1)^2 on a pseudo-random set.
TEST(CheckedMath, IsqrtProperty) {
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t n = x >> 16;  // keep (r+1)^2 representable
    const auto r = isqrt(n);
    EXPECT_LE(r * r, n);
    EXPECT_GT((r + 1) * (r + 1), n);
  }
}

}  // namespace
}  // namespace pcmax::util
