#include "util/text_table.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pcmax::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.to_string();
  // Every line must have the second column starting at the same offset.
  const auto lines_start = out.find("name");
  ASSERT_NE(lines_start, std::string::npos);
  EXPECT_NE(out.find("long-name  22"), std::string::npos);
  EXPECT_NE(out.find("a          1"), std::string::npos);
}

TEST(TextTable, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_violation);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), contract_violation);
}

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), contract_violation);
}

TEST(TextTable, CellFormatting) {
  EXPECT_EQ(TextTable::cell(std::uint64_t{42}), "42");
  EXPECT_EQ(TextTable::cell(std::int64_t{-7}), "-7");
  EXPECT_EQ(TextTable::cell(1.5), "1.500");
  EXPECT_EQ(TextTable::cell("abc"), "abc");
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(FormatVector, PaperNotation) {
  EXPECT_EQ(format_vector({6, 4, 6, 6, 4}), "(6, 4, 6, 6, 4)");
  EXPECT_EQ(format_vector({3}), "(3)");
  EXPECT_EQ(format_vector({}), "()");
}

}  // namespace
}  // namespace pcmax::util
