// The resilience acceptance matrix: seeded FaultPlans crossed with engine
// families. Every solve under every plan must end in a valid schedule within
// its stated bound or a clean typed error — zero crashes, zero hangs, zero
// unclassified failures. Plus the two teeth tests the subsystem exists for:
// an always-failing GPU must fall back to LPT (visibly, in trace and
// metrics) and still meet the LPT guarantee against the exact optimum, and
// a tight deadline must yield a prompt typed status with a valid
// best-effort schedule, never a partial or corrupt one.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/resilient.hpp"
#include "faultsim/injector.hpp"
#include "gpu/resilient_gpu.hpp"
#include "gpusim/device.hpp"
#include "obs/session.hpp"
#include "testkit/generators.hpp"
#include "testkit/invariants.hpp"
#include "testkit/oracles.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

/// Random plan: each site independently gets a one-shot or probability rule,
/// so plans range from benign (no rules) to storms (every site firing).
faultsim::FaultPlan random_plan(util::Rng& rng) {
  faultsim::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(rng.uniform(0, 1'000'000));
  for (std::size_t s = 0; s < faultsim::kSiteCount; ++s) {
    if (rng.uniform01() > 0.45) continue;
    faultsim::FaultRule rule;
    rule.site = static_cast<faultsim::Site>(s);
    if (rng.uniform01() < 0.5)
      rule.nth = static_cast<std::uint64_t>(rng.uniform(1, 8));
    else
      rule.permille = static_cast<std::uint32_t>(rng.uniform(50, 700));
    if (rule.site == faultsim::Site::kStreamSync) {
      // Below, at, and far past the 2 s default watchdog.
      constexpr std::int64_t kStalls[] = {50, 2000, 5000};
      rule.stall_ms = kStalls[rng.uniform(0, 2)];
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

Instance matrix_instance(util::Rng& rng) {
  testkit::InstanceLimits limits;
  limits.max_jobs = 14;
  limits.max_machines = 5;
  limits.max_time = 500;
  return testkit::random_instance(rng, limits);
}

TEST(FaultMatrix, FiveHundredPlansAcrossEngineFamilies) {
  ResilientOptions options;
  options.max_transient_retries = 2;
  options.backoff_ms = 1;  // charged to sim time only; no wall sleeps
  obs::ObsSession session;  // exercise the obs emission paths too
  int solves = 0;
  for (std::uint64_t seed = 0; seed < 250; ++seed) {
    util::Rng rng(seed);
    const auto plan = random_plan(rng);
    const auto instance = matrix_instance(rng);

    // Family 1: CPU chain (level-bucket, reference, LPT).
    ResilientResult cpu_result;
    {
      faultsim::ScopedFaultInjector scoped(plan);
      cpu_result = solve_resilient(instance, options);
    }
    if (auto bad = testkit::check_resilient_result(instance, cpu_result))
      FAIL() << "cpu chain, seed " << seed << ", plan " << plan.to_string()
             << ": " << *bad;
    ++solves;

    // Family 2: GPU chain (simulated-GPU PTAS, CPU engines, LPT).
    ResilientResult gpu_result;
    {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const auto chain = gpu::make_gpu_chain(device);
      faultsim::ScopedFaultInjector scoped(plan);
      gpu_result = solve_resilient(instance, chain, options);
    }
    if (auto bad = testkit::check_resilient_result(instance, gpu_result))
      FAIL() << "gpu chain, seed " << seed << ", plan " << plan.to_string()
             << ": " << *bad;
    ++solves;
  }
  EXPECT_EQ(solves, 500);
  EXPECT_GT(session.metrics().counter("resilient.attempts"), 500u);
}

TEST(FaultMatrix, AlwaysFailingGpuFallsBackToLptWithinBound) {
  // Every device allocation fails, so the GPU engine can never start; the
  // driver must land on LPT, record the degradation, make the fallback
  // visible in trace and metrics, and the LPT schedule must meet
  // (4/3 - 1/(3m)) * OPT against the exact optimum.
  obs::ObsSession session;
  // Fixed instances with guaranteed long jobs (t * k > LB), so the GPU PTAS
  // must allocate device memory — an all-short instance would solve greedily
  // without ever touching the faulty device.
  const Instance instances[] = {
      {3, {40, 35, 30, 25, 20, 15, 10, 5, 5, 5}},
      {2, {9, 8, 7, 6, 5, 4}},
      {4, {50, 47, 43, 41, 38, 36, 10, 9, 8, 3, 2, 1}},
      {3, {17, 17, 17, 16, 16, 16, 2, 1}},
      {2, {31, 29, 23, 19, 17, 13, 11, 7}},
  };
  int rounds = 0;
  for (const Instance& instance : instances) {
    const int round = rounds++;
    gpusim::Device device(gpusim::DeviceSpec::k40());
    std::vector<SolveEngine> chain;
    chain.push_back(gpu::make_gpu_engine(device));
    chain.push_back(make_lpt_engine());
    ResilientOptions options;
    options.max_transient_retries = 1;
    options.backoff_ms = 1;

    ResilientResult result;
    {
      faultsim::ScopedFaultInjector scoped(
          *faultsim::parse_fault_plan("seed=7;device-alloc:permille=1000"));
      result = solve_resilient(instance, chain, options);
    }
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    EXPECT_EQ(result.engine, "lpt");
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.bound_num, 4 * instance.machines - 1);
    EXPECT_EQ(result.bound_den, 3 * instance.machines);
    ASSERT_FALSE(testkit::check_resilient_result(instance, result)
                     .has_value());

    const auto exact = testkit::exact_makespan(instance);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(result.achieved_makespan * result.bound_den,
              result.bound_num * *exact)
        << "LPT fallback above its Graham bound, round " << round;
    // Failed GPU attempts are on the record, classified as transient OOM.
    ASSERT_GE(result.attempts.size(), 3u);
    EXPECT_EQ(result.attempts[0].status.code(),
              StatusCode::kDeviceOutOfMemory);
  }

  // The injected faults and the fallback decisions are observable.
  EXPECT_GE(session.metrics().counter("resilient.fallbacks"), 5u);
  EXPECT_GE(session.metrics().counter("fault.injected.device-alloc"), 5u);
  EXPECT_GE(session.metrics().counter(
                "resilient.status.device-oom"), 5u);
  bool saw_fallback_instant = false;
  for (const auto& event : session.trace().snapshot())
    if (std::strcmp(event.name, "resilient/fallback") == 0)
      saw_fallback_instant = true;
  EXPECT_TRUE(saw_fallback_instant)
      << "fallbacks must be visible in the trace";
}

TEST(FaultMatrix, TightDeadlineYieldsPromptTypedBestEffort) {
  // The first engine burns past the whole-solve deadline; the driver must
  // return kDeadlineExceeded with a valid best-effort schedule promptly —
  // never a partial or corrupt result, never a hang.
  std::vector<SolveEngine> chain = make_default_chain();
  SolveEngine& slow = chain.front();
  const auto inner = slow.run;
  slow.run = [inner](const Instance& inst, std::int64_t k,
                     const EngineContext& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return inner(inst, k, ctx);  // DeadlineSolver notices before probing
  };

  util::Rng rng(99);
  testkit::InstanceLimits limits;
  limits.max_jobs = 20;
  limits.max_machines = 4;
  const auto instance = testkit::random_instance(rng, limits);

  ResilientOptions options;
  options.deadline_ms = 5;
  const auto start = std::chrono::steady_clock::now();
  const auto result = solve_resilient(instance, chain, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.engine, "lpt");
  ASSERT_FALSE(
      testkit::check_resilient_result(instance, result).has_value());
  validate_schedule(instance, result.schedule);
  EXPECT_EQ(result.achieved_makespan, makespan(instance, result.schedule));
  // Promptness: bounded by one engine attempt, nowhere near a retry storm.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

}  // namespace
}  // namespace pcmax
