// The resilience acceptance matrix: seeded FaultPlans crossed with engine
// families. Every solve under every plan must end in a valid schedule within
// its stated bound or a clean typed error — zero crashes, zero hangs, zero
// unclassified failures. Plus the two teeth tests the subsystem exists for:
// an always-failing GPU must fall back to LPT (visibly, in trace and
// metrics) and still meet the LPT guarantee against the exact optimum, and
// a tight deadline must yield a prompt typed status with a valid
// best-effort schedule, never a partial or corrupt one.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "core/resilient.hpp"
#include "faultsim/injector.hpp"
#include "gpu/resilient_gpu.hpp"
#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"
#include "obs/session.hpp"
#include "serve/server.hpp"
#include "testkit/generators.hpp"
#include "testkit/invariants.hpp"
#include "testkit/oracles.hpp"
#include "util/rng.hpp"

namespace pcmax {
namespace {

/// Random plan: each site independently gets a one-shot or probability rule,
/// so plans range from benign (no rules) to storms (every site firing).
faultsim::FaultPlan random_plan(util::Rng& rng) {
  faultsim::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(rng.uniform(0, 1'000'000));
  for (std::size_t s = 0; s < faultsim::kSiteCount; ++s) {
    if (rng.uniform01() > 0.45) continue;
    faultsim::FaultRule rule;
    rule.site = static_cast<faultsim::Site>(s);
    if (rng.uniform01() < 0.5)
      rule.nth = static_cast<std::uint64_t>(rng.uniform(1, 8));
    else
      rule.permille = static_cast<std::uint32_t>(rng.uniform(50, 700));
    if (rule.site == faultsim::Site::kStreamSync) {
      // Below, at, and far past the 2 s default watchdog.
      constexpr std::int64_t kStalls[] = {50, 2000, 5000};
      rule.stall_ms = kStalls[rng.uniform(0, 2)];
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

Instance matrix_instance(util::Rng& rng) {
  testkit::InstanceLimits limits;
  limits.max_jobs = 14;
  limits.max_machines = 5;
  limits.max_time = 500;
  return testkit::random_instance(rng, limits);
}

TEST(FaultMatrix, FiveHundredPlansAcrossEngineFamilies) {
  ResilientOptions options;
  options.max_transient_retries = 2;
  options.backoff_ms = 1;  // charged to sim time only; no wall sleeps
  obs::ObsSession session;  // exercise the obs emission paths too
  int solves = 0;
  for (std::uint64_t seed = 0; seed < 250; ++seed) {
    util::Rng rng(seed);
    const auto plan = random_plan(rng);
    const auto instance = matrix_instance(rng);

    // Family 1: CPU chain (level-bucket, reference, LPT).
    ResilientResult cpu_result;
    {
      faultsim::ScopedFaultInjector scoped(plan);
      cpu_result = solve_resilient(instance, options);
    }
    if (auto bad = testkit::check_resilient_result(instance, cpu_result))
      FAIL() << "cpu chain, seed " << seed << ", plan " << plan.to_string()
             << ": " << *bad;
    ++solves;

    // Family 2: GPU chain (simulated-GPU PTAS, CPU engines, LPT).
    ResilientResult gpu_result;
    {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const auto chain = gpu::make_gpu_chain(device);
      faultsim::ScopedFaultInjector scoped(plan);
      gpu_result = solve_resilient(instance, chain, options);
    }
    if (auto bad = testkit::check_resilient_result(instance, gpu_result))
      FAIL() << "gpu chain, seed " << seed << ", plan " << plan.to_string()
             << ": " << *bad;
    ++solves;
  }
  EXPECT_EQ(solves, 500);
  EXPECT_GT(session.metrics().counter("resilient.attempts"), 500u);
}

TEST(FaultMatrix, AlwaysFailingGpuFallsBackToLptWithinBound) {
  // Every device allocation fails, so the GPU engine can never start; the
  // driver must land on LPT, record the degradation, make the fallback
  // visible in trace and metrics, and the LPT schedule must meet
  // (4/3 - 1/(3m)) * OPT against the exact optimum.
  obs::ObsSession session;
  // Fixed instances with guaranteed long jobs (t * k > LB), so the GPU PTAS
  // must allocate device memory — an all-short instance would solve greedily
  // without ever touching the faulty device.
  const Instance instances[] = {
      {3, {40, 35, 30, 25, 20, 15, 10, 5, 5, 5}},
      {2, {9, 8, 7, 6, 5, 4}},
      {4, {50, 47, 43, 41, 38, 36, 10, 9, 8, 3, 2, 1}},
      {3, {17, 17, 17, 16, 16, 16, 2, 1}},
      {2, {31, 29, 23, 19, 17, 13, 11, 7}},
  };
  int rounds = 0;
  for (const Instance& instance : instances) {
    const int round = rounds++;
    gpusim::Device device(gpusim::DeviceSpec::k40());
    std::vector<SolveEngine> chain;
    chain.push_back(gpu::make_gpu_engine(device));
    chain.push_back(make_lpt_engine());
    ResilientOptions options;
    options.max_transient_retries = 1;
    options.backoff_ms = 1;

    ResilientResult result;
    {
      faultsim::ScopedFaultInjector scoped(
          *faultsim::parse_fault_plan("seed=7;device-alloc:permille=1000"));
      result = solve_resilient(instance, chain, options);
    }
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    EXPECT_EQ(result.engine, "lpt");
    EXPECT_TRUE(result.degraded);
    // LPT results are certified a posteriori from the critical machine, so
    // the bound is at most the a-priori (4m-1)/(3m) and never tier kNone.
    EXPECT_NE(result.certificate_tier, CertificateTier::kNone);
    EXPECT_LE(result.bound_num * (3 * instance.machines),
              (4 * instance.machines - 1) * result.bound_den);
    ASSERT_FALSE(testkit::check_resilient_result(instance, result)
                     .has_value());

    const auto exact = testkit::exact_makespan(instance);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(result.achieved_makespan * result.bound_den,
              result.bound_num * *exact)
        << "LPT fallback above its Graham bound, round " << round;
    // Failed GPU attempts are on the record, classified as transient OOM.
    ASSERT_GE(result.attempts.size(), 3u);
    EXPECT_EQ(result.attempts[0].status.code(),
              StatusCode::kDeviceOutOfMemory);
  }

  // The injected faults and the fallback decisions are observable.
  EXPECT_GE(session.metrics().counter("resilient.fallbacks"), 5u);
  EXPECT_GE(session.metrics().counter("fault.injected.device-alloc"), 5u);
  EXPECT_GE(session.metrics().counter(
                "resilient.status.device-oom"), 5u);
  bool saw_fallback_instant = false;
  for (const auto& event : session.trace().snapshot())
    if (std::strcmp(event.name, "resilient/fallback") == 0)
      saw_fallback_instant = true;
  EXPECT_TRUE(saw_fallback_instant)
      << "fallbacks must be visible in the trace";
}

TEST(FaultMatrix, ServeBurstDegradesFaultedRequestsWithoutCrossTalk) {
  // Serve-mode teeth: a fault plan killing every device allocation while a
  // burst is in flight. Each worker's GPU engine fails; each request must
  // degrade to a CPU engine *individually* — valid schedule, exact rational
  // bound, typed attempt record — and no request may fail or corrupt
  // another's answer. The degraded results must still be deterministic:
  // identical to a standalone degraded solve of the same instance.
  const auto plan =
      *faultsim::parse_fault_plan("seed=7;device-alloc:permille=1000");

  // Long-job instances so the GPU PTAS must touch the faulty allocator.
  const std::vector<Instance> instances = {
      {3, {40, 35, 30, 25, 20, 15, 10, 5, 5, 5}},
      {2, {9, 8, 7, 6, 5, 4}},
      {4, {50, 47, 43, 41, 38, 36, 10, 9, 8, 3, 2, 1}},
      {3, {17, 17, 17, 16, 16, 16, 2, 1}},
      {2, {31, 29, 23, 19, 17, 13, 11, 7}},
      {3, {60, 55, 50, 45, 40, 35, 30, 25}},
  };
  ResilientOptions solve_options;
  solve_options.max_transient_retries = 1;
  solve_options.backoff_ms = 1;
  solve_options.num_threads = 1;

  std::vector<serve::SolveResponse> responses;
  {
    faultsim::ScopedFaultInjector scoped(plan);
    serve::ServeOptions options;
    options.workers = 4;
    options.start_paused = true;
    serve::SolveServer server(options);
    std::vector<std::future<serve::SolveResponse>> futures;
    for (const Instance& instance : instances) {
      serve::SolveRequest request;
      request.instance = instance;
      request.options = solve_options;
      auto admitted = server.submit(std::move(request));
      ASSERT_TRUE(admitted.has_value()) << admitted.status().to_string();
      futures.push_back(std::move(*admitted));
    }
    server.resume();
    for (auto& future : futures) responses.push_back(future.get());
    const serve::ServeStats stats = server.stats();
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(stats.completed, instances.size());
  }

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const serve::SolveResponse& response = responses[i];
    ASSERT_TRUE(response.ok())
        << "request " << i << ": " << response.status.to_string();
    EXPECT_TRUE(response.result.degraded) << "request " << i;
    EXPECT_NE(response.result.engine, "gpu-ptas") << "request " << i;
    if (auto bad =
            testkit::check_resilient_result(instances[i], response.result))
      FAIL() << "request " << i << ": " << *bad;
    // The failed GPU attempts are on each request's own record, typed.
    ASSERT_FALSE(response.result.attempts.empty());
    EXPECT_EQ(response.result.attempts[0].status.code(),
              StatusCode::kDeviceOutOfMemory)
        << "request " << i;

    // Cross-talk check: the served degraded answer equals a standalone
    // degraded solve of the same instance under the same plan.
    ResilientResult reference;
    {
      gpusim::Device device(gpusim::DeviceSpec::k40());
      const auto chain = gpu::make_gpu_chain(device);
      faultsim::ScopedFaultInjector scoped(plan);
      reference = solve_resilient(instances[i], chain, solve_options);
    }
    EXPECT_EQ(response.result.schedule.assignment,
              reference.schedule.assignment)
        << "request " << i;
    EXPECT_EQ(response.result.achieved_makespan,
              reference.achieved_makespan)
        << "request " << i;
    EXPECT_EQ(response.result.engine, reference.engine) << "request " << i;
    EXPECT_EQ(response.result.bound_num, reference.bound_num);
    EXPECT_EQ(response.result.bound_den, reference.bound_den);
  }
}

TEST(FaultMatrix, TightDeadlineYieldsPromptTypedBestEffort) {
  // The first engine burns past the whole-solve deadline; the driver must
  // return kDeadlineExceeded with a valid best-effort schedule promptly —
  // never a partial or corrupt result, never a hang.
  std::vector<SolveEngine> chain = make_default_chain();
  SolveEngine& slow = chain.front();
  const auto inner = slow.run;
  slow.run = [inner](const Instance& inst, std::int64_t k,
                     const EngineContext& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return inner(inst, k, ctx);  // DeadlineSolver notices before probing
  };

  util::Rng rng(99);
  testkit::InstanceLimits limits;
  limits.max_jobs = 20;
  limits.max_machines = 4;
  const auto instance = testkit::random_instance(rng, limits);

  ResilientOptions options;
  options.deadline_ms = 5;
  const auto start = std::chrono::steady_clock::now();
  const auto result = solve_resilient(instance, chain, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.engine, "lpt");
  ASSERT_FALSE(
      testkit::check_resilient_result(instance, result).has_value());
  validate_schedule(instance, result.schedule);
  EXPECT_EQ(result.achieved_makespan, makespan(instance, result.schedule));
  // Promptness: bounded by one engine attempt, nowhere near a retry storm.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST(FaultMatrix, ShardedTopologyChainRecoversFromDeviceAllocFault) {
  // One device of a four-device topology faults its first allocation
  // mid-sharded-solve; the resilient driver must classify it, reset the
  // whole topology, retry, and still answer within the certificate bound.
  const Instance instance{3, {40, 35, 30, 25, 20, 15, 10, 5, 5, 5}};
  gpusim::Topology topology(4, gpusim::DeviceSpec::k40());
  const auto chain = gpu::make_gpu_chain(topology);
  ResilientOptions options;
  options.max_transient_retries = 2;
  options.backoff_ms = 1;

  ResilientResult result;
  {
    faultsim::ScopedFaultInjector scoped(
        *faultsim::parse_fault_plan("seed=3;device-alloc:nth=2"));
    result = solve_resilient(instance, chain, options);
  }
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  // The retry (after topology.reset()) succeeds on the GPU engine itself.
  EXPECT_EQ(result.engine, "gpu-ptas");
  EXPECT_FALSE(result.degraded);
  ASSERT_FALSE(testkit::check_resilient_result(instance, result).has_value());
  EXPECT_GE(result.attempts.size(), 2u);
  EXPECT_EQ(result.attempts[0].status.code(), StatusCode::kDeviceOutOfMemory);
  // The faulted attempt left nothing allocated behind on any device.
  for (int d = 0; d < 4; ++d)
    EXPECT_EQ(topology.device(d).memory_in_use(), 0u);
}

/// Loss-only plans: device-lost and/or link-down, with ordinals spread so
/// losses land at the first barrier, mid-wavefront, the tail, or during a
/// transfer, plus probabilistic storms (double losses included).
faultsim::FaultPlan random_loss_plan(util::Rng& rng) {
  faultsim::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(rng.uniform(0, 1'000'000));
  {
    faultsim::FaultRule rule;
    rule.site = faultsim::Site::kDeviceLost;
    if (rng.uniform01() < 0.7)
      rule.nth = static_cast<std::uint64_t>(rng.uniform(1, 30));
    else
      rule.permille = static_cast<std::uint32_t>(rng.uniform(20, 400));
    plan.rules.push_back(rule);
  }
  if (rng.uniform01() < 0.5) {
    faultsim::FaultRule rule;
    rule.site = faultsim::Site::kLinkDown;
    if (rng.uniform01() < 0.7)
      rule.nth = static_cast<std::uint64_t>(rng.uniform(1, 20));
    else
      rule.permille = static_cast<std::uint32_t>(rng.uniform(20, 300));
    plan.rules.push_back(rule);
  }
  return plan;
}

TEST(FaultMatrix, HundredDeviceLossPlansRecoverBitIdenticalOrDegradeTyped) {
  // The PR's acceptance matrix: 100 seeded loss plans against the
  // checkpointed 4-device topology chain. Whenever the GPU engine still
  // answers, in-solve recovery must have made it BIT-IDENTICAL to the
  // fault-free solve; whenever it degrades, the fallback must be typed and
  // certified. No crashes, no hangs, no unclassified failures.
  const Instance instances[] = {
      {3, {40, 35, 30, 25, 20, 15, 10, 5, 5, 5}},
      {4, {50, 47, 43, 41, 38, 36, 10, 9, 8, 3, 2, 1}},
      {2, {31, 29, 23, 19, 17, 13, 11, 7}},
  };
  ResilientOptions options;
  options.max_transient_retries = 1;
  options.backoff_ms = 1;

  struct Config {
    std::int64_t checkpoint_every;
    int min_devices;
  };
  constexpr Config kConfigs[] = {{1, 1}, {2, 2}};

  // Fault-free baselines, one per (instance, config): recovery must
  // reproduce these bit for bit.
  std::vector<ResilientResult> baselines;
  for (const Config& config : kConfigs)
    for (const Instance& instance : instances) {
      gpu::GpuPtasOptions base;
      base.recovery.checkpoint_every = config.checkpoint_every;
      base.recovery.min_devices = config.min_devices;
      gpusim::Topology topology(4, gpusim::DeviceSpec::k40());
      baselines.push_back(solve_resilient(
          instance, gpu::make_gpu_chain(topology, base), options));
      ASSERT_TRUE(baselines.back().ok());
      ASSERT_EQ(baselines.back().engine, "gpu-ptas");
    }

  obs::ObsSession session;
  int solves = 0;
  std::uint64_t recovered = 0, degraded = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed);
    const auto plan = random_loss_plan(rng);
    std::size_t baseline_index = 0;
    for (const Config& config : kConfigs) {
      const Instance& instance = instances[seed % std::size(instances)];
      const ResilientResult& baseline =
          baselines[baseline_index * std::size(instances) +
                    seed % std::size(instances)];
      ++baseline_index;

      gpu::GpuPtasOptions base;
      base.recovery.checkpoint_every = config.checkpoint_every;
      base.recovery.min_devices = config.min_devices;
      ResilientResult result;
      {
        gpusim::Topology topology(4, gpusim::DeviceSpec::k40(),
                                  seed % 2 == 0
                                      ? gpusim::TopologyKind::kFullMesh
                                      : gpusim::TopologyKind::kRing);
        faultsim::ScopedFaultInjector scoped(plan);
        result = solve_resilient(instance,
                                 gpu::make_gpu_chain(topology, base), options);
      }
      ++solves;
      if (auto bad = testkit::check_resilient_result(instance, result))
        FAIL() << "seed " << seed << ", plan " << plan.to_string() << ": "
               << *bad;
      ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                               << result.status.to_string();
      if (result.engine == "gpu-ptas") {
        // Fault-free or recovered: either way, bit-identical. (Ring vs
        // fullmesh only changes charged time, never values.)
        EXPECT_EQ(result.schedule.assignment, baseline.schedule.assignment)
            << "seed " << seed << ", plan " << plan.to_string();
        EXPECT_EQ(result.achieved_makespan, baseline.achieved_makespan);
        EXPECT_EQ(result.k, baseline.k);
        ++recovered;
      } else {
        // Unrecoverable loss: typed degradation with a certified bound.
        EXPECT_TRUE(result.degraded) << "seed " << seed;
        bool saw_lost = false;
        for (const AttemptRecord& attempt : result.attempts)
          saw_lost = saw_lost ||
                     attempt.status.code() == StatusCode::kDeviceLost;
        EXPECT_TRUE(saw_lost)
            << "seed " << seed << ": degraded without a kDeviceLost attempt, "
            << "plan " << plan.to_string();
        EXPECT_NE(result.certificate_tier, CertificateTier::kNone);
        ++degraded;
      }
    }
  }
  EXPECT_EQ(solves, 100);
  // The matrix must actually exercise both paths, or the sweep is vacuous.
  EXPECT_GT(recovered, 0u);
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(session.metrics().counter("recover.device_lost"), 0u);
}

TEST(FaultMatrix, DoubleLossDegradesWithStrictlyTighterCertificate) {
  // The second acceptance scenario: a loss storm no checkpoint can outrun
  // (every barrier loses a device; min_devices = 3 refuses after the second
  // loss). The chain must land on LPT with a typed kDeviceLost attempt on
  // record, and the degraded result's a-posteriori certificate must be
  // STRICTLY tighter than Graham's (4m-1)/(3m) on at least one instance —
  // verified against the exact branch-and-bound optimum.
  const Instance instances[] = {
      // Long jobs (so the GPU PTAS must run the DP and hit the loss storm)
      // whose LPT critical machine carries 4+ jobs: c >= 4 tightens the
      // a-posteriori bound below Graham's.
      {2, {9, 8, 7, 6, 5, 4, 3, 2}},
      {3, {17, 17, 17, 16, 16, 16, 2, 1}},
      {2, {31, 29, 23, 19, 17, 13, 11, 7}},
  };
  ResilientOptions options;
  options.max_transient_retries = 1;
  options.backoff_ms = 1;
  int strictly_tighter = 0;
  for (const Instance& instance : instances) {
    gpu::GpuPtasOptions base;
    base.recovery.checkpoint_every = 1;
    base.recovery.min_devices = 3;
    gpusim::Topology topology(4, gpusim::DeviceSpec::k40());
    std::vector<SolveEngine> chain;
    chain.push_back(gpu::make_gpu_engine(topology, base));
    chain.push_back(make_lpt_engine());

    ResilientResult result;
    {
      faultsim::ScopedFaultInjector scoped(
          *faultsim::parse_fault_plan("seed=11;device-lost:permille=600"));
      result = solve_resilient(instance, chain, options);
    }
    ASSERT_TRUE(result.ok()) << result.status.to_string();
    EXPECT_EQ(result.engine, "lpt");
    EXPECT_TRUE(result.degraded);
    bool saw_lost = false;
    for (const AttemptRecord& attempt : result.attempts)
      saw_lost = saw_lost || attempt.status.code() == StatusCode::kDeviceLost;
    EXPECT_TRUE(saw_lost) << "the GPU attempt must fail typed as kDeviceLost";
    ASSERT_FALSE(testkit::check_resilient_result(instance, result)
                     .has_value());

    // The certificate holds against the exact optimum...
    const auto exact = testkit::exact_makespan(instance);
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(result.achieved_makespan * result.bound_den,
              result.bound_num * *exact);
    // ...and is strictly tighter than the a-priori bound when the critical
    // machine is busy enough.
    if (result.certificate_tier == CertificateTier::kAPosteriori &&
        result.bound_num * (3 * instance.machines) <
            (4 * instance.machines - 1) * result.bound_den)
      ++strictly_tighter;
  }
  EXPECT_GE(strictly_tighter, 1)
      << "no instance produced a strictly tighter a-posteriori certificate";
}

}  // namespace
}  // namespace pcmax
