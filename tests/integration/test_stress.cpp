// Robustness tests at the edges: large instances, extreme processing-time
// magnitudes, and degenerate machine counts, end to end through the PTAS,
// plus testkit-driven adversarial sweeps with full certificate checking.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/certificate.hpp"
#include "core/ptas.hpp"
#include "core/rounding.hpp"
#include "testkit/generators.hpp"
#include "testkit/invariants.hpp"
#include "testkit/replay.hpp"
#include "workload/generators.hpp"

namespace pcmax {
namespace {

const dp::LevelBucketSolver kSolver;

TEST(Stress, ThousandJobs) {
  const auto inst = workload::uniform_instance(1000, 32, 1, 500, 1);
  const auto r = solve_ptas(inst, kSolver);
  validate_schedule(inst, r.schedule);
  EXPECT_TRUE(within_ptas_guarantee(r.achieved_makespan, r.best_target, 4));
  EXPECT_GE(r.achieved_makespan, makespan_lower_bound(inst));
}

TEST(Stress, LargeProcessingTimes) {
  // Times near 10^12: all the integer arithmetic (rounding classes,
  // bounds, loads) must stay exact with no overflow.
  Instance inst;
  inst.machines = 3;
  const std::int64_t big = 1'000'000'000'000;
  inst.times = {big, big - 1, big / 2, big / 3, big / 5, big / 7, 1};
  const auto r = solve_ptas(inst, kSolver);
  validate_schedule(inst, r.schedule);
  EXPECT_TRUE(within_ptas_guarantee(r.achieved_makespan, r.best_target, 4));
  EXPECT_GE(r.best_target, makespan_lower_bound(inst));
  EXPECT_LE(r.best_target, makespan_upper_bound(inst));
}

TEST(Stress, ManyMachinesFewJobs) {
  const Instance inst{1000, {7, 5, 3}};
  const auto r = solve_ptas(inst, kSolver);
  EXPECT_EQ(r.achieved_makespan, 7);
}

TEST(Stress, AllJobsIdenticalLarge) {
  Instance inst;
  inst.machines = 7;
  inst.times.assign(700, 13);
  const auto r = solve_ptas(inst, kSolver);
  EXPECT_EQ(r.achieved_makespan, 1300);  // exactly 100 jobs per machine
}

TEST(Stress, AdversarialEpsilonStillBounded) {
  // Tight epsilon (k = 10, capacity 100) exercised on a bimodal instance
  // whose long jobs cluster in a narrow band, keeping the class count — and
  // therefore the table dimensionality — bounded while the fine-grained
  // rounding machinery runs for real. (A wide uniform spread at eps = 0.1
  // explodes into 10+ dimensions and minutes of DP — the curse of
  // dimensionality the paper is about; that regime belongs to the benches.)
  const auto inst =
      workload::bimodal_instance(48, 6, 1, 5, 70, 80, 0.3, 2);
  PtasOptions options;
  options.epsilon = 0.1;
  const auto r = solve_ptas(inst, kSolver, options);
  validate_schedule(inst, r.schedule);
  EXPECT_TRUE(
      within_ptas_guarantee(r.achieved_makespan, r.best_target, 10));
}

TEST(Stress, QuarterSplitOnWideRange) {
  // One giant job forces a huge [LB, UB] interval.
  Instance inst;
  inst.machines = 2;
  inst.times = {1'000'000, 1, 1, 1};
  PtasOptions options;
  options.strategy = SearchStrategy::kQuarterSplit;
  const auto r = solve_ptas(inst, kSolver, options);
  EXPECT_EQ(r.achieved_makespan, 1'000'000);
}

TEST(Stress, AdversarialInstancesHoldTheFullCertificate) {
  // testkit's adversarial generator covers regimes the curated cases above
  // miss (all-short, power-of-two, few-dominant); every result must pass
  // the complete certificate check, not just the guarantee inequality.
  testkit::InstanceLimits limits;
  limits.max_jobs = 32;
  limits.max_machines = 8;
  limits.max_time = 100'000;
  for (std::uint64_t index = 0; index < 15; ++index) {
    util::Rng rng(testkit::case_rng_seed(testkit::CaseId{7, index}));
    const auto inst = testkit::random_instance(rng, limits);
    const auto r = solve_ptas(inst, kSolver);
    const auto bad = testkit::check_ptas_result(inst, r, 4);
    EXPECT_EQ(bad, std::nullopt)
        << testkit::format_case({7, index}) << ": " << bad.value_or("");
  }
}

TEST(Stress, AdversarialDpProblemsKeepTablesSelfConsistent) {
  // Random degenerate/tight/infeasible DP problems: the solved table must
  // satisfy the structural invariants (monotonicity, weight and level
  // bounds) that hold for any correct solver.
  testkit::DpProblemLimits limits;
  limits.max_cells = 4'000;
  const dp::LevelBucketSolver solver;
  for (std::uint64_t index = 0; index < 25; ++index) {
    util::Rng rng(testkit::case_rng_seed(testkit::CaseId{8, index}));
    const auto problem = testkit::random_dp_problem(rng, limits);
    const auto result = solver.solve(problem);
    const auto bad = testkit::check_dp_table(problem, result);
    EXPECT_EQ(bad, std::nullopt)
        << testkit::format_case({8, index}) << ": " << bad.value_or("");
  }
}

}  // namespace
}  // namespace pcmax
