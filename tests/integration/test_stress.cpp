// Robustness tests at the edges: large instances, extreme processing-time
// magnitudes, and degenerate machine counts, end to end through the PTAS.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/certificate.hpp"
#include "core/ptas.hpp"
#include "core/rounding.hpp"
#include "workload/generators.hpp"

namespace pcmax {
namespace {

const dp::LevelBucketSolver kSolver;

TEST(Stress, ThousandJobs) {
  const auto inst = workload::uniform_instance(1000, 32, 1, 500, 1);
  const auto r = solve_ptas(inst, kSolver);
  validate_schedule(inst, r.schedule);
  EXPECT_TRUE(within_ptas_guarantee(r.achieved_makespan, r.best_target, 4));
  EXPECT_GE(r.achieved_makespan, makespan_lower_bound(inst));
}

TEST(Stress, LargeProcessingTimes) {
  // Times near 10^12: all the integer arithmetic (rounding classes,
  // bounds, loads) must stay exact with no overflow.
  Instance inst;
  inst.machines = 3;
  const std::int64_t big = 1'000'000'000'000;
  inst.times = {big, big - 1, big / 2, big / 3, big / 5, big / 7, 1};
  const auto r = solve_ptas(inst, kSolver);
  validate_schedule(inst, r.schedule);
  EXPECT_TRUE(within_ptas_guarantee(r.achieved_makespan, r.best_target, 4));
  EXPECT_GE(r.best_target, makespan_lower_bound(inst));
  EXPECT_LE(r.best_target, makespan_upper_bound(inst));
}

TEST(Stress, ManyMachinesFewJobs) {
  const Instance inst{1000, {7, 5, 3}};
  const auto r = solve_ptas(inst, kSolver);
  EXPECT_EQ(r.achieved_makespan, 7);
}

TEST(Stress, AllJobsIdenticalLarge) {
  Instance inst;
  inst.machines = 7;
  inst.times.assign(700, 13);
  const auto r = solve_ptas(inst, kSolver);
  EXPECT_EQ(r.achieved_makespan, 1300);  // exactly 100 jobs per machine
}

TEST(Stress, AdversarialEpsilonStillBounded) {
  // Tight epsilon (k = 10, capacity 100) exercised on a bimodal instance
  // whose long jobs cluster in a narrow band, keeping the class count — and
  // therefore the table dimensionality — bounded while the fine-grained
  // rounding machinery runs for real. (A wide uniform spread at eps = 0.1
  // explodes into 10+ dimensions and minutes of DP — the curse of
  // dimensionality the paper is about; that regime belongs to the benches.)
  const auto inst =
      workload::bimodal_instance(48, 6, 1, 5, 70, 80, 0.3, 2);
  PtasOptions options;
  options.epsilon = 0.1;
  const auto r = solve_ptas(inst, kSolver, options);
  validate_schedule(inst, r.schedule);
  EXPECT_TRUE(
      within_ptas_guarantee(r.achieved_makespan, r.best_target, 10));
}

TEST(Stress, QuarterSplitOnWideRange) {
  // One giant job forces a huge [LB, UB] interval.
  Instance inst;
  inst.machines = 2;
  inst.times = {1'000'000, 1, 1, 1};
  PtasOptions options;
  options.strategy = SearchStrategy::kQuarterSplit;
  const auto r = solve_ptas(inst, kSolver, options);
  EXPECT_EQ(r.achieved_makespan, 1'000'000);
}

}  // namespace
}  // namespace pcmax
