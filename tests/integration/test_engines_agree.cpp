// Cross-engine integration: every DP engine in the repository must produce
// the identical table (or identical OPT, for OPT-only engines) on every
// Fig. 3 group-(a) shape — the invariant the benchmark harness relies on.
#include <gtest/gtest.h>

#include "dp/frontier_solver.hpp"
#include "dp/solver.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "partition/block_solver.hpp"
#include "workload/shapes.hpp"

namespace pcmax {
namespace {

class EnginesAgree
    : public ::testing::TestWithParam<workload::TableShape> {};

TEST_P(EnginesAgree, AllEnginesIdenticalOnShape) {
  const auto problem = workload::dp_problem_for_extents(GetParam().extents);
  const auto reference = dp::LevelBucketSolver().solve(problem);
  ASSERT_NE(reference.opt, dp::kInfeasible);

  EXPECT_EQ(dp::LevelScanSolver().solve(problem).table, reference.table);
  EXPECT_EQ(dp::ReferenceSolver().solve(problem).table, reference.table);
  EXPECT_EQ(partition::BlockedSolver(3).solve(problem).table,
            reference.table);
  EXPECT_EQ(partition::BlockedSolver(6).solve(problem).table,
            reference.table);

  gpusim::Device device(gpusim::DeviceSpec::k40());
  EXPECT_EQ(gpu::GpuDpSolver(device, 5).solve(problem).table,
            reference.table);
  EXPECT_EQ(gpu::NaiveGpuDpSolver(device).solve(problem).table,
            reference.table);

  EXPECT_EQ(dp::solve_frontier(problem).opt, reference.opt);
}

INSTANTIATE_TEST_SUITE_P(
    Fig3GroupA, EnginesAgree,
    ::testing::ValuesIn(workload::fig3_group('a')),
    [](const ::testing::TestParamInfo<workload::TableShape>& param_info) {
      std::string name = param_info.param.label;
      for (auto& c : name)
        if (c == '/' || c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace pcmax
