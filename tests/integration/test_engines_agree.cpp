// Cross-engine integration: every DP engine in the repository must produce
// the identical table (or identical OPT, for OPT-only engines) on every
// Fig. 3 group-(a) shape and the small end of group (b) — the invariant the
// benchmark harness relies on. The frontier solver joins the full-table
// comparison through its keep_table option.
#include <gtest/gtest.h>

#include "dp/frontier_solver.hpp"
#include "dp/solver.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "partition/block_solver.hpp"
#include "workload/shapes.hpp"

namespace pcmax {
namespace {

std::string shape_test_name(
    const ::testing::TestParamInfo<workload::TableShape>& param_info) {
  std::string name = param_info.param.label;
  for (auto& c : name)
    if (c == '/' || c == '-') c = '_';
  return name;
}

/// The small end of Fig. 3 group (b): 20'000..40'000-cell tables, big enough
/// to exercise multi-level block wavefronts yet cheap enough for tier-1.
std::vector<workload::TableShape> fig3_group_b_small() {
  std::vector<workload::TableShape> shapes;
  for (const auto& shape : workload::fig3_group('b'))
    if (shape.table_size <= 40'000) shapes.push_back(shape);
  return shapes;
}

class EnginesAgree
    : public ::testing::TestWithParam<workload::TableShape> {};

TEST_P(EnginesAgree, AllEnginesIdenticalOnShape) {
  const auto problem = workload::dp_problem_for_extents(GetParam().extents);
  const auto reference = dp::LevelBucketSolver().solve(problem);
  ASSERT_NE(reference.opt, dp::kInfeasible);

  EXPECT_EQ(dp::LevelScanSolver().solve(problem).table, reference.table);
  EXPECT_EQ(dp::ReferenceSolver().solve(problem).table, reference.table);
  EXPECT_EQ(partition::BlockedSolver(3).solve(problem).table,
            reference.table);
  EXPECT_EQ(partition::BlockedSolver(6).solve(problem).table,
            reference.table);

  gpusim::Device device(gpusim::DeviceSpec::k40());
  EXPECT_EQ(gpu::GpuDpSolver(device, 5).solve(problem).table,
            reference.table);
  EXPECT_EQ(gpu::NaiveGpuDpSolver(device).solve(problem).table,
            reference.table);

  dp::FrontierOptions frontier_options;
  frontier_options.keep_table = true;
  const auto frontier = dp::solve_frontier(problem, frontier_options);
  EXPECT_EQ(frontier.opt, reference.opt);
  EXPECT_EQ(frontier.table, reference.table);
}

INSTANTIATE_TEST_SUITE_P(Fig3GroupA, EnginesAgree,
                         ::testing::ValuesIn(workload::fig3_group('a')),
                         shape_test_name);

INSTANTIATE_TEST_SUITE_P(Fig3GroupBSmall, EnginesAgree,
                         ::testing::ValuesIn(fig3_group_b_small()),
                         shape_test_name);

}  // namespace
}  // namespace pcmax
