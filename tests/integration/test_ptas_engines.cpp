// PTAS-level cross-engine integration: the full Algorithm-1 pipeline must
// find the same optimal target and an equally good schedule no matter
// which DP engine drives it, on generated instances of varying character.
#include <gtest/gtest.h>

#include "core/certificate.hpp"
#include "core/ptas.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "partition/block_solver.hpp"
#include "workload/generators.hpp"

namespace pcmax {
namespace {

struct InstanceCase {
  const char* name;
  Instance instance;
};

std::vector<InstanceCase> cases() {
  return {
      {"uniform_small", workload::uniform_instance(24, 4, 1, 50, 11)},
      {"uniform_wide", workload::uniform_instance(40, 6, 1, 400, 12)},
      {"bimodal", workload::bimodal_instance(36, 5, 1, 8, 60, 90, 0.4, 13)},
      {"normalish", workload::normal_instance(30, 4, 80.0, 25.0, 14)},
      {"few_jobs", workload::uniform_instance(6, 3, 10, 90, 15)},
  };
}

TEST(PtasEngines, SameTargetAndMakespanAcrossEngines) {
  for (const auto& c : cases()) {
    const auto baseline = solve_ptas(c.instance, dp::LevelBucketSolver());
    validate_schedule(c.instance, baseline.schedule);

    // Scan solver (Algorithm 2 verbatim).
    const auto scan = solve_ptas(c.instance, dp::LevelScanSolver());
    EXPECT_EQ(scan.best_target, baseline.best_target) << c.name;
    EXPECT_EQ(scan.achieved_makespan, baseline.achieved_makespan) << c.name;

    // Blocked solver (the partitioning scheme on the CPU).
    const auto blocked =
        solve_ptas(c.instance, partition::BlockedSolver(5));
    EXPECT_EQ(blocked.best_target, baseline.best_target) << c.name;
    EXPECT_EQ(blocked.achieved_makespan, baseline.achieved_makespan)
        << c.name;

    // Simulated-GPU engine.
    gpusim::Device device(gpusim::DeviceSpec::k40());
    const auto gpu = solve_ptas(c.instance, gpu::GpuDpSolver(device, 6));
    EXPECT_EQ(gpu.best_target, baseline.best_target) << c.name;
    EXPECT_EQ(gpu.achieved_makespan, baseline.achieved_makespan) << c.name;

    // And the result always certifies against the guarantee.
    EXPECT_TRUE(within_ptas_guarantee(baseline.achieved_makespan,
                                      baseline.best_target, 4))
        << c.name;
  }
}

TEST(PtasEngines, QuarterSplitAgreesAcrossEngines) {
  PtasOptions quarter;
  quarter.strategy = SearchStrategy::kQuarterSplit;
  for (const auto& c : cases()) {
    const auto a = solve_ptas(c.instance, dp::LevelBucketSolver(), quarter);
    const auto b =
        solve_ptas(c.instance, partition::BlockedSolver(4), quarter);
    EXPECT_EQ(a.best_target, b.best_target) << c.name;
    EXPECT_EQ(a.achieved_makespan, b.achieved_makespan) << c.name;
  }
}

}  // namespace
}  // namespace pcmax
