// Unit tests for the pure checkpoint bookkeeping: frontier computation,
// digests, buddy assignment, and the replay journal. No simulated device is
// involved anywhere here — that is the module's contract.
#include "recover/checkpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dp/mixed_radix.hpp"
#include "partition/blocked_layout.hpp"
#include "util/contracts.hpp"

namespace pcmax::recover {
namespace {

// 6x4x6 table cut 3x2x3: 18 blocks on a 3x2x3 grid, block-levels 0..5.
partition::BlockedLayout small_layout() {
  return partition::BlockedLayout(dp::MixedRadix({6, 4, 6}), {3, 2, 3});
}

std::int64_t block_level(const dp::MixedRadix& grid, std::uint64_t id) {
  std::vector<std::int64_t> coords(grid.dims());
  grid.unflatten(id, coords);
  std::int64_t level = 0;
  for (const std::int64_t c : coords) level += c;
  return level;
}

TEST(ComputeFrontier, CoversExactlyTheReachWindow) {
  const auto layout = small_layout();
  const std::vector<std::int64_t> reach{1, 0, 1};  // window = 2
  const auto frontier = compute_frontier(layout, 3, reach);
  ASSERT_FALSE(frontier.empty());
  for (const std::uint64_t id : frontier) {
    const std::int64_t lvl = block_level(layout.grid(), id);
    EXPECT_GE(lvl, 1);
    EXPECT_LT(lvl, 3);
  }
  // Every block on levels [1, 2] is present — the frontier is the full
  // slice, not a sample.
  std::uint64_t expected = 0;
  for (std::uint64_t id = 0; id < layout.block_count(); ++id) {
    const std::int64_t lvl = block_level(layout.grid(), id);
    if (lvl >= 1 && lvl < 3) ++expected;
  }
  EXPECT_EQ(frontier.size(), expected);
}

TEST(ComputeFrontier, ZeroReachStillKeepsOneLevel) {
  const auto layout = small_layout();
  // Empty reach -> window clamps to 1: successors always read the previous
  // level.
  const auto frontier = compute_frontier(layout, 2, {});
  for (const std::uint64_t id : frontier)
    EXPECT_EQ(block_level(layout.grid(), id), 1);
  EXPECT_FALSE(frontier.empty());
}

TEST(ComputeFrontier, ClipsAtTheGridBoundaries) {
  const auto layout = small_layout();
  const std::vector<std::int64_t> reach{2, 2, 2};
  EXPECT_TRUE(compute_frontier(layout, 0, reach).empty());
  // Deep past the last level the window still only picks existing levels.
  const auto tail = compute_frontier(layout, 100, reach);
  EXPECT_TRUE(tail.empty());
}

TEST(FrontierDigest, SensitiveToLevelFrontierAndOwners) {
  const std::vector<std::uint64_t> frontier{0, 1, 2};
  const std::vector<int> manifest{0, 1, 0, 1};
  const std::uint64_t base = frontier_digest(3, frontier, manifest);
  EXPECT_EQ(base, frontier_digest(3, frontier, manifest));  // deterministic
  EXPECT_NE(base, frontier_digest(4, frontier, manifest));
  const std::vector<std::uint64_t> other_frontier{0, 1, 3};
  EXPECT_NE(base, frontier_digest(3, other_frontier, manifest));
  std::vector<int> other_manifest = manifest;
  other_manifest[1] = 0;  // re-home a frontier block
  EXPECT_NE(base, frontier_digest(3, frontier, other_manifest));
}

TEST(AssignBuddies, CyclicNextAliveSkippingExcluded) {
  const std::vector<std::uint8_t> none{0, 0, 0, 0};
  EXPECT_EQ(assign_buddies(none), (std::vector<int>{1, 2, 3, 0}));

  const std::vector<std::uint8_t> one_lost{0, 1, 0, 0};
  // Device 0 skips the lost device 1 and mirrors onto 2; 1 gets no buddy.
  EXPECT_EQ(assign_buddies(one_lost), (std::vector<int>{2, -1, 3, 0}));

  const std::vector<std::uint8_t> lone{1, 1, 0, 1};
  // A lone survivor has nowhere to mirror.
  EXPECT_EQ(assign_buddies(lone), (std::vector<int>{-1, -1, -1, -1}));
}

TEST(CheckpointLog, MergesRepeatRecordsByBlock) {
  CheckpointLog log;
  log.begin_level(2);
  log.record({7, 10, 100, 5});
  log.record({9, 1, 2, 3});
  log.record({7, 10, 100, 5});  // second in-block level of block 7
  ASSERT_EQ(log.replay().size(), 1u);
  const auto& blocks = log.replay()[0].blocks;
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].block_id, 7u);
  EXPECT_EQ(blocks[0].cells, 20u);
  EXPECT_EQ(blocks[0].candidates, 200u);
  EXPECT_EQ(blocks[0].deps, 10u);
  EXPECT_EQ(blocks[1].block_id, 9u);
  EXPECT_EQ(log.levels_since_checkpoint(), 1);
}

TEST(CheckpointLog, BeginLevelIsIdempotentPerLevel) {
  CheckpointLog log;
  log.begin_level(1);
  log.begin_level(1);
  log.begin_level(2);
  EXPECT_EQ(log.levels_since_checkpoint(), 2);
}

TEST(CheckpointLog, InstallRecordsMirrorSitesAndResetsReplay) {
  CheckpointLog log;
  log.begin_level(1);
  log.record({4, 1, 1, 1});
  log.record({5, 1, 1, 1});

  WavefrontCheckpoint ckpt;
  ckpt.level = 2;
  ckpt.shard_manifest = {0, 0, 1, 1, 0, 1};  // block -> owner
  ckpt.mirror_of = {1, 0};                   // device -> buddy
  const std::vector<std::uint64_t> mirrored{4, 5};
  log.install(ckpt, mirrored);

  EXPECT_TRUE(log.has_checkpoint());
  EXPECT_EQ(log.last().level, 2);
  EXPECT_EQ(log.levels_since_checkpoint(), 0);
  EXPECT_EQ(log.mirror_site(4), 1);  // owner 0 -> buddy 1
  EXPECT_EQ(log.mirror_site(5), 0);  // owner 1 -> buddy 0
  EXPECT_EQ(log.mirror_site(3), -1);  // never mirrored

  log.clear();
  EXPECT_FALSE(log.has_checkpoint());
  EXPECT_EQ(log.mirror_site(4), -1);
  EXPECT_EQ(log.levels_since_checkpoint(), 0);
}

TEST(CheckpointLog, RecordWithoutLevelIsAContractViolation) {
  CheckpointLog log;
  EXPECT_THROW(log.record({1, 1, 1, 1}), util::contract_violation);
}

}  // namespace
}  // namespace pcmax::recover
