// Unit tests for the recovery planner: which blocks restore from mirrors,
// which replay from the journal, and when the plan refuses. Pure decisions
// over plain data, matching the module's no-device contract.
#include "recover/recovery.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pcmax::recover {
namespace {

// A 6-block toy wavefront: blocks 0..5, devices {0, 1}, device 1 lost.
// Checkpoint mirrored blocks {0, 1, 2}; blocks {3, 4} ran after it.
CheckpointLog journal_with_checkpoint() {
  CheckpointLog log;
  log.begin_level(0);
  log.record({0, 1, 1, 0});
  log.record({1, 1, 1, 0});
  log.begin_level(1);
  log.record({2, 2, 2, 1});

  WavefrontCheckpoint ckpt;
  ckpt.level = 2;
  ckpt.shard_manifest = {0, 1, 0, 1, 0, 1};
  ckpt.mirror_of = {1, 0};  // 0 mirrors onto 1, 1 onto 0
  log.install(ckpt, std::vector<std::uint64_t>{0, 1, 2});

  log.begin_level(2);
  log.record({3, 4, 8, 2});
  log.record({4, 4, 8, 2});
  return log;
}

const std::vector<int> kOldPlan{0, 1, 0, 1, 0, 1};

TEST(RecoveryRefusalName, CoversEveryValue) {
  EXPECT_EQ(recovery_refusal_name(RecoveryRefusal::kNone), "none");
  EXPECT_EQ(recovery_refusal_name(RecoveryRefusal::kBelowMinDevices),
            "below-min-devices");
  EXPECT_EQ(recovery_refusal_name(RecoveryRefusal::kMirrorLost),
            "mirror-lost");
}

TEST(PlanRecovery, RestoresMirroredBlocksAndReplaysYoungerOnes) {
  const auto log = journal_with_checkpoint();
  const std::vector<int> new_plan{0, 0, 0, 0, 0, 0};  // all onto survivor 0
  const std::vector<std::uint8_t> excluded{0, 1};
  const std::vector<std::uint64_t> frontier{0, 1, 2};
  RecoveryOptions options;
  options.min_devices = 1;

  const RecoveryPlan plan = plan_recovery(log, kOldPlan, new_plan, excluded,
                                          frontier, options);
  ASSERT_TRUE(plan.recoverable());

  // Block 1 was owned by the lost device and mirrored onto device 0.
  ASSERT_EQ(plan.restores.size(), 1u);
  EXPECT_EQ(plan.restores[0].block_id, 1u);
  EXPECT_EQ(plan.restores[0].mirror_device, 0);
  EXPECT_EQ(plan.restores[0].new_owner, 0);

  // Block 3 ran after the checkpoint on the lost device: replay, with the
  // journal's recorded work, on its new owner. Block 4 belonged to the
  // survivor and needs nothing.
  ASSERT_EQ(plan.replays.size(), 1u);
  EXPECT_EQ(plan.replays[0].level, 2);
  EXPECT_EQ(plan.replays[0].work.block_id, 3u);
  EXPECT_EQ(plan.replays[0].work.candidates, 8u);
  EXPECT_EQ(plan.replays[0].new_owner, 0);
}

TEST(PlanRecovery, SurvivorBlocksNeedNothing) {
  const auto log = journal_with_checkpoint();
  const std::vector<int> new_plan = kOldPlan;
  const std::vector<std::uint8_t> none{0, 0};
  const RecoveryPlan plan = plan_recovery(
      log, kOldPlan, new_plan, none, std::vector<std::uint64_t>{0, 1, 2}, {});
  ASSERT_TRUE(plan.recoverable());
  EXPECT_TRUE(plan.restores.empty());
  EXPECT_TRUE(plan.replays.empty());
}

TEST(PlanRecovery, RefusesBelowMinDevices) {
  const auto log = journal_with_checkpoint();
  const std::vector<std::uint8_t> excluded{0, 1};
  RecoveryOptions options;
  options.min_devices = 2;
  const RecoveryPlan plan = plan_recovery(log, kOldPlan, kOldPlan, excluded,
                                          {}, options);
  EXPECT_FALSE(plan.recoverable());
  EXPECT_EQ(plan.refusal, RecoveryRefusal::kBelowMinDevices);
  EXPECT_TRUE(plan.restores.empty());
  EXPECT_TRUE(plan.replays.empty());
}

TEST(PlanRecovery, RefusesWhenTheMirrorDiedToo) {
  // Three devices; 1 mirrors onto 2. Losing both 1 and 2 strands block 1's
  // only copy.
  CheckpointLog log;
  log.begin_level(0);
  log.record({1, 1, 1, 0});
  WavefrontCheckpoint ckpt;
  ckpt.level = 1;
  ckpt.shard_manifest = {0, 1, 2};
  ckpt.mirror_of = {1, 2, 0};
  log.install(ckpt, std::vector<std::uint64_t>{1});

  const std::vector<int> old_plan{0, 1, 2};
  const std::vector<int> new_plan{0, 0, 0};
  const std::vector<std::uint8_t> excluded{0, 1, 1};
  const std::vector<std::uint64_t> frontier{1};
  const RecoveryPlan plan = plan_recovery(log, old_plan, new_plan, excluded,
                                          frontier, {});
  EXPECT_FALSE(plan.recoverable());
  EXPECT_EQ(plan.refusal, RecoveryRefusal::kMirrorLost);
  // A refused plan carries no half-built steps.
  EXPECT_TRUE(plan.restores.empty());
  EXPECT_TRUE(plan.replays.empty());
}

TEST(PlanRecovery, NeverMirroredFrontierBlockIsUnrecoverable) {
  // No checkpoint at all: a lost frontier block has no copy anywhere.
  CheckpointLog log;
  const std::vector<int> old_plan{0, 1};
  const std::vector<int> new_plan{0, 0};
  const std::vector<std::uint8_t> excluded{0, 1};
  const std::vector<std::uint64_t> frontier{1};
  const RecoveryPlan plan = plan_recovery(log, old_plan, new_plan, excluded,
                                          frontier, {});
  EXPECT_EQ(plan.refusal, RecoveryRefusal::kMirrorLost);
}

TEST(PlanRecovery, ReplayedBlocksAreNotAlsoRestored) {
  // Block 3 is both in the replay journal and (artificially) on the
  // frontier: the planner must charge it once, as a replay.
  const auto log = journal_with_checkpoint();
  const std::vector<int> new_plan{0, 0, 0, 0, 0, 0};
  const std::vector<std::uint8_t> excluded{0, 1};
  const std::vector<std::uint64_t> frontier{1, 3};
  const RecoveryPlan plan = plan_recovery(log, kOldPlan, new_plan, excluded,
                                          frontier, {});
  ASSERT_TRUE(plan.recoverable());
  ASSERT_EQ(plan.replays.size(), 1u);
  EXPECT_EQ(plan.replays[0].work.block_id, 3u);
  for (const RestoreStep& step : plan.restores)
    EXPECT_NE(step.block_id, 3u);
}

}  // namespace
}  // namespace pcmax::recover
