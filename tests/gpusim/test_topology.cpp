#include "gpusim/topology.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "faultsim/injector.hpp"
#include "util/contracts.hpp"

namespace pcmax::gpusim {
namespace {

// Defaults: 5 us link latency, 16 GB/s bandwidth. 16000 bytes serialize in
// exactly 1 us (1 GB/s = one byte per nanosecond), keeping expectations
// integral.
constexpr std::uint64_t kPayload = 16'000;
const util::SimTime kHop =
    util::SimTime::microseconds(5) + util::SimTime::microseconds(1);

TEST(TopologyKind, NamesRoundTrip) {
  EXPECT_EQ(topology_kind_name(TopologyKind::kRing), "ring");
  EXPECT_EQ(topology_kind_name(TopologyKind::kFullMesh), "fullmesh");
  EXPECT_EQ(parse_topology_kind("ring"), TopologyKind::kRing);
  EXPECT_EQ(parse_topology_kind("fullmesh"), TopologyKind::kFullMesh);
  EXPECT_EQ(parse_topology_kind("torus"), std::nullopt);
}

TEST(Topology, DevicesCarryTheirOrdinals) {
  Topology t(3, DeviceSpec::k40());
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t.device(i).ordinal(), i);
}

TEST(Topology, RingHopCountsTakeTheShorterDirection) {
  const Topology t(5, DeviceSpec::k40(), TopologyKind::kRing);
  EXPECT_EQ(t.hop_count(0, 0), 0);
  EXPECT_EQ(t.hop_count(0, 1), 1);
  EXPECT_EQ(t.hop_count(0, 2), 2);
  EXPECT_EQ(t.hop_count(0, 3), 2);  // backward is shorter
  EXPECT_EQ(t.hop_count(0, 4), 1);
  EXPECT_EQ(t.hop_count(3, 1), 2);
}

TEST(Topology, FullMeshIsAlwaysOneHop) {
  const Topology t(6, DeviceSpec::k40(), TopologyKind::kFullMesh);
  for (int a = 0; a < 6; ++a)
    for (int b = 0; b < 6; ++b)
      EXPECT_EQ(t.hop_count(a, b), a == b ? 0 : 1);
}

TEST(Topology, SingleHopTransferChargesLatencyPlusSerialization) {
  Topology t(2, DeviceSpec::k40());
  EXPECT_EQ(t.transfer(0, 1, kPayload), kHop);
}

TEST(Topology, RingMultiHopIsStoreAndForward) {
  Topology t(4, DeviceSpec::k40(), TopologyKind::kRing);
  EXPECT_EQ(t.transfer(0, 2, kPayload), 2 * kHop);
  EXPECT_EQ(t.transfer_stats().hops, 2u);
}

TEST(Topology, SameLinkTransfersContend) {
  Topology t(2, DeviceSpec::k40());
  EXPECT_EQ(t.transfer(0, 1, kPayload), kHop);
  // The link is busy until the first payload arrived, so the second one
  // departs then and lands a full hop later.
  EXPECT_EQ(t.transfer(0, 1, kPayload), 2 * kHop);
}

TEST(Topology, OppositeDirectionsAreDistinctLinks) {
  Topology t(2, DeviceSpec::k40(), TopologyKind::kRing);
  EXPECT_EQ(t.transfer(0, 1, kPayload), kHop);
  EXPECT_EQ(t.transfer(1, 0, kPayload), kHop);
}

TEST(Topology, AntipodalRingTieRoutesForward) {
  Topology t(4, DeviceSpec::k40(), TopologyKind::kRing);
  // 0 -> 2 is a tie (2 hops either way); the deterministic route is the
  // +1 direction, so its first hop occupies link 0->1 and a subsequent
  // 0 -> 1 transfer contends with it.
  (void)t.transfer(0, 2, kPayload);
  EXPECT_EQ(t.transfer(0, 1, kPayload), 2 * kHop);
}

TEST(Topology, TransferDepartsAtTheSourceClock) {
  Topology t(2, DeviceSpec::k40());
  t.device(0).advance(util::SimTime::milliseconds(3));
  EXPECT_EQ(t.transfer(0, 1, kPayload),
            util::SimTime::milliseconds(3) + kHop);
}

TEST(Topology, BarrierAlignsEveryDeviceToTheLatestClock) {
  Topology t(3, DeviceSpec::k40());
  t.device(1).advance(util::SimTime::milliseconds(7));
  // synchronize() charges a per-device sync overhead on top of the latest
  // clock, so the barrier lands at >= 7 ms — what matters is that every
  // device ends on the same instant.
  const util::SimTime at = t.barrier();
  EXPECT_GE(at, util::SimTime::milliseconds(7));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(t.device(i).now(), at);
  EXPECT_EQ(t.now(), at);
}

TEST(Topology, TransferStatsAccumulate) {
  Topology t(4, DeviceSpec::k40(), TopologyKind::kRing);
  (void)t.transfer(0, 1, 100);
  (void)t.transfer(0, 2, 200);
  const Topology::TransferStats& s = t.transfer_stats();
  EXPECT_EQ(s.transfers, 2u);
  EXPECT_EQ(s.bytes, 300u);
  EXPECT_EQ(s.hops, 3u);
  EXPECT_GT(s.busy, util::SimTime{});
}

TEST(Topology, ResetClearsEveryDeviceButKeepsClocks) {
  Topology t(2, DeviceSpec::k40());
  t.advance(util::SimTime::milliseconds(1));
  t.device(0).launch_estimated(0, "a", {64, 640, 2, 0});
  t.reset();
  // Device::reset drops pending work and memory accounting; simulated time
  // never runs backwards.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(t.device(i).memory_in_use(), 0u);
    EXPECT_EQ(t.device(i).now(), util::SimTime::milliseconds(1));
  }
}

TEST(Topology, RejectsInvalidConstructionAndSelfTransfer) {
  EXPECT_THROW(Topology(0, DeviceSpec::k40()), util::contract_violation);
  InterconnectSpec bad;
  bad.link_bandwidth_gbps = 0.0;
  EXPECT_THROW(Topology(2, DeviceSpec::k40(), TopologyKind::kRing, bad),
               util::contract_violation);
  Topology t(2, DeviceSpec::k40());
  EXPECT_THROW(t.transfer(0, 0, 1), util::contract_violation);
  EXPECT_THROW(t.transfer(0, 2, 1), util::contract_violation);
}

TEST(TopologyFaults, DeviceLostAtSyncIsStickyAndSkipped) {
  faultsim::ScopedFaultInjector scoped(
      *faultsim::parse_fault_plan("seed=1;device-lost:nth=1"));
  Topology t(3, DeviceSpec::k40());
  // The first synchronize in the barrier loses its device, typed.
  EXPECT_THROW((void)t.barrier(), DeviceLost);
  EXPECT_TRUE(t.device_lost(0));
  EXPECT_EQ(t.alive_count(), 2);
  // Sticky: every touch of the lost device keeps throwing.
  EXPECT_THROW((void)t.device(0).allocate(64), DeviceLost);
  EXPECT_THROW((void)t.transfer(0, 1, kPayload), DeviceLost);
  EXPECT_THROW((void)t.transfer(1, 0, kPayload), DeviceLost);
  // The barrier and clock advance skip it; its clock stays frozen.
  const util::SimTime frozen = t.device(0).now();
  (void)t.barrier();
  t.advance(util::SimTime::milliseconds(2));
  EXPECT_EQ(t.device(0).now(), frozen);
  EXPECT_GT(t.device(1).now(), frozen);
}

TEST(TopologyFaults, RingReroutesTheOtherDirectionAroundADownLink) {
  faultsim::ScopedFaultInjector scoped(
      *faultsim::parse_fault_plan("seed=1;link-down:nth=1"));
  Topology t(4, DeviceSpec::k40(), TopologyKind::kRing);
  // The preferred one-hop route 0->1 loses its first link; the reroute goes
  // the long way round (0->3->2->1), store-and-forward.
  EXPECT_EQ(t.transfer(0, 1, kPayload), 3 * kHop);
  EXPECT_EQ(t.down_link_count(), 1);
  // The link stays down: later transfers keep taking the detour.
  EXPECT_EQ(t.hop_count(0, 1), 1);  // static shape, not the live route
  EXPECT_EQ(t.transfer_stats().hops, 3u);
}

TEST(TopologyFaults, FullMeshDetoursThroughLowestLiveIntermediate) {
  faultsim::ScopedFaultInjector scoped(
      *faultsim::parse_fault_plan("seed=1;link-down:nth=1"));
  Topology t(3, DeviceSpec::k40(), TopologyKind::kFullMesh);
  // Direct 0->1 goes down; the detour is two hops via device 2.
  EXPECT_EQ(t.transfer(0, 1, kPayload), 2 * kHop);
  EXPECT_EQ(t.down_link_count(), 1);
}

TEST(TopologyFaults, UnreachableDestinationBecomesLost) {
  faultsim::ScopedFaultInjector scoped(
      *faultsim::parse_fault_plan("seed=1;link-down:nth=1"));
  Topology t(2, DeviceSpec::k40(), TopologyKind::kFullMesh);
  // Two devices, the only 0->1 link goes down: no live route remains, so
  // the destination is marked lost and the transfer reports it typed.
  EXPECT_THROW((void)t.transfer(0, 1, kPayload), DeviceLost);
  EXPECT_TRUE(t.device_lost(1));
  EXPECT_EQ(t.alive_count(), 1);
}

// The satellite pin: reset() cold-starts the interconnect, so an identical
// transfer sequence after each of two resets charges bit-identical times
// (link free-at timestamps and TransferStats cannot leak across).
TEST(TopologyFaults, ResetMakesTransferChargesReproducible) {
  Topology t(4, DeviceSpec::k40(), TopologyKind::kRing);
  const auto sequence = [&t] {
    std::vector<util::SimTime> charges;
    charges.push_back(t.transfer(0, 1, kPayload));
    charges.push_back(t.transfer(0, 1, kPayload));  // contends with the 1st
    charges.push_back(t.transfer(0, 2, 2 * kPayload));
    charges.push_back(t.transfer(3, 2, kPayload));
    return charges;
  };
  const auto first = sequence();
  t.reset();
  const auto second = sequence();
  t.reset();
  const auto third = sequence();
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, third);
  EXPECT_EQ(t.transfer_stats().transfers, 4u);  // stats restarted by reset
}

TEST(TopologyFaults, ResetResurrectsLostDevicesAndDownedLinks) {
  {
    faultsim::ScopedFaultInjector scoped(*faultsim::parse_fault_plan(
        "seed=1;device-lost:nth=1;link-down:nth=1"));
    Topology t(2, DeviceSpec::k40(), TopologyKind::kFullMesh);
    EXPECT_THROW((void)t.transfer(0, 1, kPayload), DeviceLost);
    EXPECT_THROW((void)t.barrier(), DeviceLost);
    EXPECT_EQ(t.alive_count(), 0);
    EXPECT_EQ(t.down_link_count(), 1);
    t.reset();
    EXPECT_EQ(t.alive_count(), 2);
    EXPECT_EQ(t.down_link_count(), 0);
    EXPECT_FALSE(t.device_lost(0));
    EXPECT_FALSE(t.device_lost(1));
    // Healthy again end to end (the injector's one-shot rules are spent).
    const util::SimTime depart = t.device(0).now();
    EXPECT_EQ(t.transfer(0, 1, kPayload), depart + kHop);
    (void)t.barrier();
  }
}

TEST(Topology, AggregateStatsSumOverDevices) {
  Topology t(2, DeviceSpec::k40());
  t.device(0).launch_estimated(0, "a", {64, 640, 2, 0});
  t.device(1).launch_estimated(0, "b", {64, 640, 2, 0});
  (void)t.barrier();
  EXPECT_EQ(t.aggregate_stats().kernels, 2u);
}

}  // namespace
}  // namespace pcmax::gpusim
