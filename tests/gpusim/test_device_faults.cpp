// Fault-injection and recovery behavior of the simulated device: injected
// allocation failures, launch failures, stream stalls against the watchdog,
// and reset() semantics (wholesale reclamation, stale-buffer no-ops).
#include <gtest/gtest.h>

#include <utility>

#include "faultsim/injector.hpp"
#include "gpusim/device.hpp"

namespace pcmax::gpusim {
namespace {

faultsim::FaultPlan plan_from(const char* text) {
  auto plan = faultsim::parse_fault_plan(text);
  EXPECT_TRUE(plan.has_value()) << text;
  return *plan;
}

WorkEstimate small_work() {
  WorkEstimate w;
  w.threads = 64;
  w.thread_ops = 640;
  return w;
}

TEST(DeviceFaults, InjectedAllocationFailureDespiteFreeMemory) {
  faultsim::ScopedFaultInjector scoped(plan_from("seed=1;device-alloc:nth=2"));
  Device device(DeviceSpec::k40());
  auto first = device.allocate(1024);
  EXPECT_THROW((void)device.allocate(1024), OutOfMemory);
  // The failed allocation must not leak accounting.
  EXPECT_EQ(device.memory_in_use(), 1024u);
  // One-shot fault: the next allocation succeeds.
  auto third = device.allocate(2048);
  EXPECT_EQ(device.memory_in_use(), 1024u + 2048u);
}

TEST(DeviceFaults, InjectedLaunchFailureLeavesQueueConsistent) {
  faultsim::ScopedFaultInjector scoped(
      plan_from("seed=1;kernel-launch:nth=2"));
  Device device(DeviceSpec::k40());
  device.launch_estimated(0, "survivor", small_work());
  EXPECT_THROW(device.launch_estimated(0, "victim", small_work()),
               LaunchFailure);
  // The survivor still runs; the victim never entered the queue.
  device.launch_estimated(0, "after", small_work());
  device.synchronize();
  ASSERT_EQ(device.log().size(), 2u);
  EXPECT_EQ(device.log()[0].name, "survivor");
  EXPECT_EQ(device.log()[1].name, "after");
}

TEST(DeviceFaults, StallPastWatchdogThrowsAndChargesTheWatchdog) {
  faultsim::ScopedFaultInjector scoped(
      plan_from("seed=1;stream-sync:nth=1:stall-ms=10000"));
  Device device(DeviceSpec::k40());
  device.launch_estimated(0, "doomed", small_work());
  EXPECT_THROW((void)device.synchronize(), StreamStalled);
  // The clock advanced exactly to the watchdog where the driver gave up.
  EXPECT_EQ(device.now(), device.spec().stall_watchdog);
}

TEST(DeviceFaults, SubWatchdogStallOnlyDelays) {
  faultsim::ScopedFaultInjector scoped(
      plan_from("seed=1;stream-sync:nth=1:stall-ms=50"));
  Device stalled(DeviceSpec::k40());
  stalled.launch_estimated(0, "k", small_work());
  const auto t_stalled = stalled.synchronize();

  Device clean(DeviceSpec::k40());
  clean.launch_estimated(0, "k", small_work());
  const auto t_clean = clean.synchronize();

  EXPECT_EQ(t_stalled, t_clean + util::SimTime::milliseconds(50));
}

TEST(DeviceFaults, ResetDropsPendingWorkAndMemory) {
  Device device(DeviceSpec::k40());
  auto buffer = device.allocate(4096);
  device.launch_estimated(0, "doomed", small_work());
  device.reset();
  EXPECT_EQ(device.memory_in_use(), 0u);
  // The dropped launch never runs (launch *counters* survive reset — they
  // record submissions, not completions — but the kernel never retires).
  const auto before = device.now();
  device.synchronize();
  EXPECT_EQ(device.log().size(), 0u);
  EXPECT_EQ(device.stats().kernels, 1u);
  // Post-reset the device accepts work again.
  device.launch_estimated(0, "fresh", small_work());
  device.synchronize();
  ASSERT_EQ(device.log().size(), 1u);
  EXPECT_EQ(device.log()[0].name, "fresh");
  EXPECT_GT(device.now(), before);
}

TEST(DeviceFaults, StaleBufferReleaseAfterResetIsANoOp) {
  Device device(DeviceSpec::k40());
  auto stale = device.allocate(1ull << 20);
  device.reset();
  auto fresh = device.allocate(512);
  EXPECT_EQ(device.memory_in_use(), 512u);
  // Releasing the pre-reset buffer must not underflow the accounting of the
  // new epoch.
  stale.release();
  EXPECT_EQ(device.memory_in_use(), 512u);
  fresh.release();
  EXPECT_EQ(device.memory_in_use(), 0u);
}

TEST(DeviceFaults, StaleBufferDestructionAfterResetIsANoOp) {
  Device device(DeviceSpec::k40());
  {
    auto stale = device.allocate(2048);
    device.reset();
    EXPECT_EQ(device.memory_in_use(), 0u);
  }  // stale destructs here, against the new epoch
  EXPECT_EQ(device.memory_in_use(), 0u);
  auto ok = device.allocate(64);
  EXPECT_EQ(device.memory_in_use(), 64u);
}

TEST(DeviceFaults, OrganicOomStillFiresWithoutInjector) {
  Device device(DeviceSpec::k40());
  auto big = device.allocate(11ull << 30);
  EXPECT_THROW((void)device.allocate(2ull << 30), OutOfMemory);
  // Recovery by reset: wholesale reclamation makes room.
  device.reset();
  auto ok = device.allocate(2ull << 30);
  EXPECT_EQ(device.memory_in_use(), 2ull << 30);
}

TEST(DeviceFaults, PartialAllocationSequenceCleansUpOnFailure) {
  // Mirrors the solver pattern: allocate several buffers, fail midway, and
  // rely on RAII to return every successful allocation.
  faultsim::ScopedFaultInjector scoped(plan_from("seed=1;device-alloc:nth=3"));
  Device device(DeviceSpec::k40());
  EXPECT_THROW(
      {
        auto a = device.allocate(1024);
        auto b = device.allocate(1024);
        auto c = device.allocate(1024);  // injected failure
      },
      OutOfMemory);
  EXPECT_EQ(device.memory_in_use(), 0u);
}

}  // namespace
}  // namespace pcmax::gpusim
