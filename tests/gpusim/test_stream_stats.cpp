#include "gpusim/stream_stats.hpp"

#include <gtest/gtest.h>

namespace pcmax::gpusim {
namespace {

WorkEstimate small_work() {
  WorkEstimate w;
  w.threads = 64;
  w.thread_ops = 64'000;
  return w;
}

TEST(StreamStats, EmptyDevice) {
  Device device(DeviceSpec::k40());
  const auto timeline = summarize_streams(device);
  EXPECT_TRUE(timeline.streams.empty());
  EXPECT_EQ(timeline.total_span, util::SimTime{});
  EXPECT_DOUBLE_EQ(timeline.concurrency(), 0.0);
}

TEST(StreamStats, SingleStreamAccounting) {
  Device device(DeviceSpec::k40());
  device.launch_estimated(0, "a", small_work());
  device.launch_estimated(0, "b", small_work());
  device.synchronize();
  const auto timeline = summarize_streams(device);
  ASSERT_EQ(timeline.streams.size(), 1u);
  EXPECT_EQ(timeline.streams[0].stream, 0);
  EXPECT_EQ(timeline.streams[0].kernels, 2u);
  EXPECT_GT(timeline.streams[0].busy, util::SimTime{});
  // FIFO kernels on one stream: busy <= span.
  EXPECT_LE(timeline.streams[0].busy, timeline.streams[0].span);
}

TEST(StreamStats, ConcurrencyAboveOneWithTwoStreams) {
  Device device(DeviceSpec::k40());
  WorkEstimate heavy;
  heavy.threads = 2048;
  heavy.thread_ops = 100'000'000;
  device.launch_estimated(0, "a", heavy);
  device.launch_estimated(1, "b", heavy);
  device.synchronize();
  const auto timeline = summarize_streams(device);
  ASSERT_EQ(timeline.streams.size(), 2u);
  EXPECT_GT(timeline.concurrency(), 1.2);
}

TEST(StreamStats, SerializedStreamsConcurrencyNearOne) {
  Device device(DeviceSpec::k40());
  WorkEstimate heavy;
  heavy.threads = 2048;
  heavy.thread_ops = 100'000'000;
  device.launch_estimated(0, "a", heavy);
  device.launch_estimated(0, "b", heavy);
  device.synchronize();
  const auto timeline = summarize_streams(device);
  EXPECT_LE(timeline.concurrency(), 1.0 + 1e-9);
}

TEST(StreamStats, SpanCoversAllStreams) {
  Device device(DeviceSpec::k40());
  device.launch_estimated(0, "a", small_work());
  device.launch_estimated(3, "b", small_work());
  device.launch_estimated(7, "c", small_work());
  device.synchronize();
  const auto timeline = summarize_streams(device);
  EXPECT_EQ(timeline.streams.size(), 3u);
  for (const auto& s : timeline.streams) {
    EXPECT_LE(s.span, timeline.total_span);
    EXPECT_LE(s.busy, timeline.total_span);
  }
}

// Work conservation for the fluid scheduler, observed through the log: the
// sum of exclusive kernel durations can never beat capacity x span.
TEST(StreamStats, WorkConservation) {
  Device device(DeviceSpec::k40());
  WorkEstimate w;
  w.threads = 15 * 64 * 32;  // fills the device
  w.thread_ops = 50'000'000;
  for (int s = 0; s < 8; ++s) device.launch_estimated(s, "k", w);
  device.synchronize();
  const auto timeline = summarize_streams(device);
  double busy_ns = 0.0;
  for (const auto& s : timeline.streams) busy_ns += s.busy.ns();
  // Each kernel's wall duration >= its exclusive time; 8 device-filling
  // kernels cannot all overlap fully, so total busy exceeds the span but
  // stays below streams x span.
  EXPECT_LE(busy_ns, 8.0 * timeline.total_span.ns() + 1.0);
  EXPECT_GE(busy_ns, timeline.total_span.ns() - 1.0);
}

}  // namespace
}  // namespace pcmax::gpusim
