#include "gpusim/coalescing.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pcmax::gpusim {
namespace {

std::vector<ThreadTrace> unit_stride_warp(int threads, std::uint64_t base,
                                          std::uint64_t word = 4) {
  std::vector<ThreadTrace> traces(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    traces[static_cast<std::size_t>(t)] = {base +
                                           static_cast<std::uint64_t>(t) * word};
  return traces;
}

TEST(Coalescing, FullyCoalescedWarpIsOneTransaction) {
  // 32 threads reading consecutive 4-byte words: 128 bytes = 1 segment.
  const auto traces = unit_stride_warp(32, 0);
  EXPECT_EQ(warp_transactions(traces, 128), 1u);
}

TEST(Coalescing, MisalignedUnitStrideTouchesTwoSegments) {
  const auto traces = unit_stride_warp(32, 64);  // straddles a boundary
  EXPECT_EQ(warp_transactions(traces, 128), 2u);
}

TEST(Coalescing, FullyStridedWarpIsOneTransactionPerThread) {
  std::vector<ThreadTrace> traces(32);
  for (int t = 0; t < 32; ++t)
    traces[static_cast<std::size_t>(t)] = {
        static_cast<std::uint64_t>(t) * 128};
  EXPECT_EQ(warp_transactions(traces, 128), 32u);
}

TEST(Coalescing, BroadcastIsOneTransaction) {
  std::vector<ThreadTrace> traces(32, ThreadTrace{4096});
  EXPECT_EQ(warp_transactions(traces, 128), 1u);
}

TEST(Coalescing, StepsAccumulate) {
  // Two instructions: one coalesced, one strided.
  std::vector<ThreadTrace> traces(32);
  for (int t = 0; t < 32; ++t) {
    const auto u = static_cast<std::uint64_t>(t);
    traces[static_cast<std::size_t>(t)] = {u * 4, 100000 + u * 256};
  }
  EXPECT_EQ(warp_transactions(traces, 128), 1u + 32u);
}

TEST(Coalescing, DivergentThreadsSitOut) {
  // Only 4 threads issue a second access, all in one segment.
  std::vector<ThreadTrace> traces(32);
  for (int t = 0; t < 32; ++t) {
    traces[static_cast<std::size_t>(t)] = {static_cast<std::uint64_t>(t) * 4};
    if (t < 4) traces[static_cast<std::size_t>(t)].push_back(8192);
  }
  EXPECT_EQ(warp_transactions(traces, 128), 1u + 1u);
}

TEST(Coalescing, EmptyWarpNoTransactions) {
  std::vector<ThreadTrace> traces(32);
  EXPECT_EQ(warp_transactions(traces, 128), 0u);
}

TEST(Coalescing, SegmentSizeMatters) {
  const auto traces = unit_stride_warp(32, 0);  // bytes 0..127
  EXPECT_EQ(warp_transactions(traces, 128), 1u);
  EXPECT_EQ(warp_transactions(traces, 64), 2u);
  EXPECT_EQ(warp_transactions(traces, 32), 4u);
}

TEST(Coalescing, RejectsBadSegment) {
  std::vector<ThreadTrace> traces(1, ThreadTrace{0});
  EXPECT_THROW((void)warp_transactions(traces, 0), util::contract_violation);
}

TEST(Coalescing, GridGroupsByWarp) {
  // 64 threads unit-stride: warp 0 covers segments 0-1 partially? No:
  // 64 threads * 4B = 256B; warp 0 -> bytes 0..127 (1 segment), warp 1 ->
  // bytes 128..255 (1 segment).
  const auto traces = unit_stride_warp(64, 0);
  EXPECT_EQ(grid_transactions(traces, 32, 128), 2u);
  // With warp size 64 all accesses form one instruction over 2 segments.
  EXPECT_EQ(grid_transactions(traces, 64, 128), 2u);
}

TEST(Coalescing, PartialTrailingWarp) {
  const auto traces = unit_stride_warp(40, 0);
  // Warp 0: 32 threads -> 1 segment; warp 1: 8 threads in bytes 128..159.
  EXPECT_EQ(grid_transactions(traces, 32, 128), 2u);
}

}  // namespace
}  // namespace pcmax::gpusim
