#include "gpusim/device.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pcmax::gpusim {
namespace {

TEST(DeviceSpecTest, K40Defaults) {
  const auto spec = DeviceSpec::k40();
  EXPECT_EQ(spec.name, "tesla-k40");
  EXPECT_EQ(spec.total_cores(), 2880);
  EXPECT_EQ(spec.global_memory_bytes, 12ull << 30);
  EXPECT_EQ(spec.max_streams, 32);
  spec.validate();  // must not throw
}

TEST(DeviceSpecTest, PresetsAreValidAndDistinct) {
  for (const auto& spec :
       {DeviceSpec::k20(), DeviceSpec::k40(), DeviceSpec::modern()}) {
    spec.validate();
  }
  EXPECT_LT(DeviceSpec::k20().sm_count, DeviceSpec::k40().sm_count);
  EXPECT_GT(DeviceSpec::modern().mem_bandwidth_gbps,
            DeviceSpec::k40().mem_bandwidth_gbps);
  EXPECT_LT(DeviceSpec::modern().child_launch_overhead,
            DeviceSpec::k40().child_launch_overhead);
}

TEST(DeviceSpecTest, ValidateCatchesNonsense) {
  auto spec = DeviceSpec::k40();
  spec.sm_count = 0;
  EXPECT_THROW(spec.validate(), util::contract_violation);
}

TEST(Device, MemoryAccounting) {
  Device device(DeviceSpec::k40());
  EXPECT_EQ(device.memory_in_use(), 0u);
  {
    auto a = device.allocate(1ull << 30);
    EXPECT_EQ(device.memory_in_use(), 1ull << 30);
    auto b = device.allocate(2ull << 30);
    EXPECT_EQ(device.memory_in_use(), 3ull << 30);
  }
  EXPECT_EQ(device.memory_in_use(), 0u);
  EXPECT_EQ(device.peak_memory(), 3ull << 30);
}

TEST(Device, OutOfMemoryThrows) {
  Device device(DeviceSpec::k40());
  auto big = device.allocate(11ull << 30);
  EXPECT_THROW((void)device.allocate(2ull << 30), OutOfMemory);
  // Freeing makes room again.
  big.release();
  auto ok = device.allocate(2ull << 30);
  EXPECT_EQ(ok.bytes(), 2ull << 30);
}

TEST(Device, BufferMoveTransfersOwnership) {
  Device device(DeviceSpec::k40());
  auto a = device.allocate(1024);
  auto b = std::move(a);
  EXPECT_EQ(b.bytes(), 1024u);
  EXPECT_EQ(device.memory_in_use(), 1024u);
  b.release();
  EXPECT_EQ(device.memory_in_use(), 0u);
}

TEST(Device, BufferMoveAssignTransfersEpochAcrossReset) {
  Device device(DeviceSpec::k40());
  // reset() bumps the device epoch, so a buffer allocated afterwards and
  // move-ASSIGNED (not move-constructed) into another slot must still carry
  // the fresh epoch, or release() skips the accounting decrement.
  device.reset();
  Device::Buffer slot;
  slot = device.allocate(1024);
  EXPECT_EQ(device.memory_in_use(), 1024u);
  slot.release();
  EXPECT_EQ(device.memory_in_use(), 0u);

  // Conversely, a buffer from before a reset stays stale after move-assign.
  Device::Buffer stale;
  stale = device.allocate(512);
  device.reset();
  EXPECT_EQ(device.memory_in_use(), 0u);
  stale.release();
  EXPECT_EQ(device.memory_in_use(), 0u);
}

TEST(Device, ClockAdvancesAtSynchronize) {
  Device device(DeviceSpec::k40());
  EXPECT_EQ(device.now(), util::SimTime{});
  WorkEstimate w;
  w.threads = 32;
  w.thread_ops = 32;
  device.launch_estimated(0, "noop-ish", w);
  const auto t1 = device.synchronize();
  EXPECT_GT(t1, util::SimTime{});
  // Launch overhead at minimum.
  EXPECT_GE(t1, device.spec().host_launch_overhead);
}

TEST(Device, SynchronizeWithoutWorkCostsOnlySyncOverhead) {
  Device device(DeviceSpec::k40());
  const auto t = device.synchronize();
  EXPECT_EQ(t, device.spec().sync_overhead);
}

TEST(Device, StreamsOverlapAcrossSynchronize) {
  // Two big analytic kernels on different streams overlap; the same two on
  // one stream serialize. Overlapped elapsed must be strictly smaller.
  WorkEstimate w;
  w.threads = 15 * 2048;  // saturates a K40 at width 15... per kernel
  w.thread_ops = 200'000'000;

  Device overlap(DeviceSpec::k40());
  overlap.launch_estimated(0, "a", w);
  overlap.launch_estimated(1, "b", w);
  const auto t_overlap = overlap.synchronize();

  Device serial(DeviceSpec::k40());
  serial.launch_estimated(0, "a", w);
  serial.launch_estimated(0, "b", w);
  const auto t_serial = serial.synchronize();

  // Full contention: same total work, so equal end-to-end, or better when
  // latency overlaps. Overlap must never be slower.
  EXPECT_LE(t_overlap, t_serial);
}

TEST(Device, HyperQStreamLimitEnforced) {
  Device device(DeviceSpec::k40());
  WorkEstimate w;
  w.threads = 1;
  EXPECT_THROW(device.launch_estimated(32, "bad", w),
               util::contract_violation);
  EXPECT_THROW(device.launch_estimated(-1, "bad", w),
               util::contract_violation);
}

TEST(Device, LogRecordsKernelTimes) {
  Device device(DeviceSpec::k40());
  WorkEstimate w;
  w.threads = 64;
  w.thread_ops = 6400;
  device.launch_estimated(0, "first", w);
  device.launch_estimated(0, "second", w);
  device.synchronize();
  ASSERT_EQ(device.log().size(), 2u);
  EXPECT_EQ(device.log()[0].name, "first");
  EXPECT_EQ(device.log()[1].name, "second");
  EXPECT_LE(device.log()[0].finish, device.log()[1].finish);
  EXPECT_GE(device.log()[1].start, device.log()[0].finish);
}

TEST(Device, StatsAccumulate) {
  Device device(DeviceSpec::k40());
  WorkEstimate w;
  w.threads = 128;
  w.thread_ops = 1000;
  w.transactions = 10;
  w.child_launches = 2;
  device.launch_estimated(3, "k", w);
  device.synchronize();
  EXPECT_EQ(device.stats().kernels, 1u);
  EXPECT_EQ(device.stats().child_kernels, 2u);
  EXPECT_EQ(device.stats().threads, 128u);
  EXPECT_EQ(device.stats().thread_ops, 1000u);
  EXPECT_EQ(device.stats().transactions, 10u);
  EXPECT_EQ(device.stats().synchronizations, 1u);
}

TEST(Device, ExecutableKernelComputesAndTimes) {
  Device device(DeviceSpec::k40());
  std::vector<int> data(256, 0);
  device.launch(0, "fill", LaunchConfig{2, 128}, [&](ThreadCtx& ctx) {
    data[ctx.global_id()] = 1;
    ctx.store(ctx.global_id() * 4);
    ctx.ops(1);
  });
  // Data is visible immediately (eager execution)...
  for (const auto v : data) EXPECT_EQ(v, 1);
  // ...timing resolves at synchronize.
  const auto t = device.synchronize();
  EXPECT_GT(t, device.spec().host_launch_overhead);
  EXPECT_EQ(device.stats().transactions, 8u);  // 256 * 4 B / 128 B
}

TEST(Device, ChildLaunchUsesDeviceSideLatency) {
  // Device-side (Dynamic Parallelism) launches pay the pending-launch-buffer
  // latency, host launches the driver latency; the two must differ exactly
  // by the spec's overheads for an otherwise identical kernel.
  WorkEstimate w;
  w.threads = 32;
  w.thread_ops = 32;

  Device host_launched(DeviceSpec::k40());
  host_launched.launch_estimated(0, "k", w, /*is_child=*/false);
  const auto t_host = host_launched.synchronize();

  Device child_launched(DeviceSpec::k40());
  child_launched.launch_estimated(0, "k", w, /*is_child=*/true);
  const auto t_child = child_launched.synchronize();

  const auto& spec = DeviceSpec::k40();
  EXPECT_EQ(t_child - t_host,
            spec.child_launch_overhead - spec.host_launch_overhead);
}

TEST(Fluid, CostModelMonotoneInWork) {
  const auto spec = DeviceSpec::k40();
  WorkEstimate small;
  small.threads = 1024;
  small.thread_ops = 10'000;
  small.transactions = 100;
  WorkEstimate big = small;
  big.thread_ops = 100'000;
  big.transactions = 1'000;
  EXPECT_LT(estimate_cost(spec, small).exclusive,
            estimate_cost(spec, big).exclusive);
}

TEST(Fluid, CostModelCoalescingMatters) {
  // Same threads/ops; 32x the transactions (strided access) must be slower.
  const auto spec = DeviceSpec::k40();
  WorkEstimate coalesced;
  coalesced.threads = 32 * 2048;
  coalesced.transactions = 2048;
  WorkEstimate strided = coalesced;
  strided.transactions = 2048 * 32;
  EXPECT_LT(estimate_cost(spec, coalesced).exclusive,
            estimate_cost(spec, strided).exclusive);
}

TEST(Fluid, CostModelWidthGrowsWithThreads) {
  const auto spec = DeviceSpec::k40();
  WorkEstimate one_warp;
  one_warp.threads = 32;
  one_warp.thread_ops = 320;
  WorkEstimate many;
  many.threads = 32 * 1024;
  many.thread_ops = 320;
  EXPECT_EQ(estimate_cost(spec, one_warp).width_sms, 1);
  EXPECT_EQ(estimate_cost(spec, many).width_sms, spec.sm_count);
}

TEST(Fluid, CostModelZeroWorkKernel) {
  const auto spec = DeviceSpec::k40();
  const auto cost = estimate_cost(spec, WorkEstimate{});
  EXPECT_EQ(cost.exclusive, util::SimTime{});
  EXPECT_EQ(cost.work, util::SimTime{});
  EXPECT_EQ(cost.width_sms, 1);
}

TEST(Fluid, CostModelBandwidthBoundAtScale) {
  // Enough coalesced transactions that the bandwidth roofline dominates
  // latency: doubling transactions must double the time (not saturate).
  const auto spec = DeviceSpec::k40();
  WorkEstimate w;
  w.threads = 15 * 64 * 32;  // full occupancy: latency fully hidden
  w.transactions = 50'000'000;
  WorkEstimate w2 = w;
  w2.transactions = 100'000'000;
  const double t1 = estimate_cost(spec, w).exclusive.ns();
  const double t2 = estimate_cost(spec, w2).exclusive.ns();
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
  // And the absolute rate matches the spec bandwidth: X * 128 B / B.
  EXPECT_NEAR(t1, 50'000'000.0 * 128.0 / spec.mem_bandwidth_gbps, t1 * 0.01);
}

TEST(Fluid, CostModelChildLaunchesAddSerialTime) {
  const auto spec = DeviceSpec::k40();
  WorkEstimate w;
  w.threads = 32;
  w.child_launches = 100;
  const auto cost = estimate_cost(spec, w);
  // 100 launches over dp_launch_lanes queues.
  EXPECT_EQ(cost.exclusive,
            spec.child_launch_overhead * 100 / spec.dp_launch_lanes);
}

}  // namespace
}  // namespace pcmax::gpusim
