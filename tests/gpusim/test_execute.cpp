#include "gpusim/execute.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.hpp"

namespace pcmax::gpusim {
namespace {

DeviceSpec spec() { return DeviceSpec::k40(); }

TEST(Execute, CountsThreadsAndOps) {
  LaunchConfig cfg{4, 64};
  const auto est = execute_kernel(
      cfg, [](ThreadCtx& ctx) { ctx.ops(3); }, spec());
  EXPECT_EQ(est.threads, 256u);
  EXPECT_EQ(est.thread_ops, 3u * 256u);
  EXPECT_EQ(est.transactions, 0u);
}

TEST(Execute, CoalescedLoadsOneTransactionPerWarp) {
  LaunchConfig cfg{1, 128};  // 4 warps
  const auto est = execute_kernel(
      cfg, [](ThreadCtx& ctx) { ctx.load(ctx.global_id() * 4); }, spec());
  EXPECT_EQ(est.transactions, 4u);  // 128 threads * 4 B = 4 segments
}

TEST(Execute, StridedLoadsOneTransactionPerThread) {
  LaunchConfig cfg{1, 64};
  const auto est = execute_kernel(
      cfg, [](ThreadCtx& ctx) { ctx.load(ctx.global_id() * 128); }, spec());
  EXPECT_EQ(est.transactions, 64u);
}

TEST(Execute, KernelsMutateUserData) {
  std::vector<int> data(64, 0);
  LaunchConfig cfg{1, 64};
  const auto est = execute_kernel(
      cfg,
      [&](ThreadCtx& ctx) {
        data[ctx.global_id()] = static_cast<int>(ctx.global_id());
        ctx.store(ctx.global_id() * 4);
      },
      spec());
  EXPECT_EQ(est.threads, 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(data[static_cast<std::size_t>(i)], i);
}

TEST(Execute, BlockAndThreadIndicesExposed) {
  LaunchConfig cfg{3, 10};
  std::vector<int> hits(30, 0);
  (void)execute_kernel(
      cfg,
      [&](ThreadCtx& ctx) {
        EXPECT_LT(ctx.block_idx(), 3u);
        EXPECT_LT(ctx.thread_idx(), 10u);
        EXPECT_EQ(ctx.block_dim(), 10u);
        ++hits[ctx.global_id()];
      },
      spec());
  for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(Execute, WarpsDoNotSpanBlocks) {
  // Two blocks of 16 threads each, all touching distinct segments within a
  // block but the same segments across blocks: 1 transaction per block-warp.
  LaunchConfig cfg{2, 16};
  const auto est = execute_kernel(
      cfg, [](ThreadCtx& ctx) { ctx.load(ctx.thread_idx() * 4); }, spec());
  EXPECT_EQ(est.transactions, 2u);
}

TEST(Execute, RejectsEmptyKernel) {
  EXPECT_THROW(
      (void)execute_kernel(LaunchConfig{1, 1}, KernelFn{}, spec()),
      util::contract_violation);
}

}  // namespace
}  // namespace pcmax::gpusim
