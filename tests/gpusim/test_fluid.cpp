#include "gpusim/fluid.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"

namespace pcmax::gpusim {
namespace {

using util::SimTime;

FluidTask task(int stream, std::int64_t latency_ns, std::int64_t work_ns,
               int width, std::uint64_t tag = 0) {
  FluidTask t;
  t.stream = stream;
  t.latency = SimTime::nanoseconds(latency_ns);
  t.work = SimTime::nanoseconds(work_ns);
  t.width_sms = width;
  t.tag = tag;
  return t;
}

TEST(Fluid, SingleTaskRunsLatencyPlusWorkOverWidth) {
  FluidScheduler sched(4);
  sched.submit(task(0, 100, 1000, 2));
  const auto end = sched.run(SimTime{});
  // 100 ns latency + 1000 SM-ns at 2 SMs = 600 ns.
  EXPECT_EQ(end, SimTime::nanoseconds(600));
  ASSERT_EQ(sched.completed().size(), 1u);
  EXPECT_EQ(sched.completed()[0].start, SimTime{});
  EXPECT_EQ(sched.completed()[0].finish, SimTime::nanoseconds(600));
}

TEST(Fluid, WidthCappedByCapacity) {
  FluidScheduler sched(2);
  sched.submit(task(0, 0, 1000, 8));  // wants 8 SMs, only 2 exist
  EXPECT_EQ(sched.run(SimTime{}), SimTime::nanoseconds(500));
}

TEST(Fluid, SameStreamSerializes) {
  FluidScheduler sched(16);
  sched.submit(task(0, 100, 800, 1, 1));
  sched.submit(task(0, 100, 800, 1, 2));
  const auto end = sched.run(SimTime{});
  EXPECT_EQ(end, SimTime::nanoseconds(2 * 900));
  ASSERT_EQ(sched.completed().size(), 2u);
  // FIFO order preserved.
  EXPECT_EQ(sched.completed()[0].task.tag, 1u);
  EXPECT_EQ(sched.completed()[1].task.tag, 2u);
  EXPECT_EQ(sched.completed()[1].start, SimTime::nanoseconds(900));
}

TEST(Fluid, DifferentStreamsOverlapWhenCapacityAllows) {
  FluidScheduler sched(8);
  sched.submit(task(0, 0, 1000, 4));
  sched.submit(task(1, 0, 1000, 4));
  // Both get their full width concurrently: 250 ns each.
  EXPECT_EQ(sched.run(SimTime{}), SimTime::nanoseconds(250));
}

TEST(Fluid, ContentionSharesFairly) {
  FluidScheduler sched(4);
  sched.submit(task(0, 0, 1000, 4));
  sched.submit(task(1, 0, 1000, 4));
  // Water-fill alternates SMs: 2 each, so both take 500 ns.
  EXPECT_EQ(sched.run(SimTime{}), SimTime::nanoseconds(500));
}

TEST(Fluid, FreedCapacityReallocated) {
  FluidScheduler sched(4);
  sched.submit(task(0, 0, 400, 4));   // alone would take 100 ns
  sched.submit(task(1, 0, 2000, 4));  // alone would take 500 ns
  // Phase 1: 2 SMs each. Task A drains 400 SM-ns in 200 ns. Task B has
  // consumed 400, leaving 1600 SM-ns; with all 4 SMs that is 400 ns more.
  EXPECT_EQ(sched.run(SimTime{}), SimTime::nanoseconds(600));
}

TEST(Fluid, LatencyPhaseUsesNoCapacity) {
  FluidScheduler sched(1);
  sched.submit(task(0, 500, 100, 1));
  sched.submit(task(1, 0, 400, 1));
  // Stream 1 runs its 400 ns of work entirely inside stream 0's latency.
  const auto end = sched.run(SimTime{});
  EXPECT_EQ(end, SimTime::nanoseconds(600));
}

TEST(Fluid, ZeroWorkTaskCompletesAfterLatency) {
  FluidScheduler sched(1);
  sched.submit(task(0, 250, 0, 1));
  EXPECT_EQ(sched.run(SimTime{}), SimTime::nanoseconds(250));
}

TEST(Fluid, EmptyRunReturnsStart) {
  FluidScheduler sched(4);
  EXPECT_EQ(sched.run(SimTime::nanoseconds(42)), SimTime::nanoseconds(42));
}

TEST(Fluid, StartOffsetPropagates) {
  FluidScheduler sched(1);
  sched.submit(task(0, 0, 100, 1));
  EXPECT_EQ(sched.run(SimTime::nanoseconds(1000)),
            SimTime::nanoseconds(1100));
}

TEST(Fluid, ManyStreamsBeyondCapacityAllComplete) {
  FluidScheduler sched(2);
  for (int s = 0; s < 16; ++s) sched.submit(task(s, 0, 100, 1, 100 + s));
  const auto end = sched.run(SimTime{});
  EXPECT_EQ(sched.completed().size(), 16u);
  // Total work 1600 SM-ns over 2 SMs: at least 800 ns.
  EXPECT_GE(end, SimTime::nanoseconds(800));
}

TEST(Fluid, DeterministicAcrossRuns) {
  auto build = [] {
    FluidScheduler sched(3);
    for (int s = 0; s < 5; ++s) {
      sched.submit(task(s, 10 * s, 97 * (s + 1), 1 + s % 3, 0));
      sched.submit(task(s, 5, 31 * (s + 2), 2, 1));
    }
    return sched.run(SimTime{});
  };
  EXPECT_EQ(build(), build());
}

TEST(Fluid, RejectsInvalidTasks) {
  FluidScheduler sched(1);
  EXPECT_THROW(sched.submit(task(-1, 0, 10, 1)), util::contract_violation);
  FluidTask bad = task(0, 0, 10, 0);
  EXPECT_THROW(sched.submit(bad), util::contract_violation);
  EXPECT_THROW(FluidScheduler(0), util::contract_violation);
}

TEST(Fluid, WaterFillPrefersLowerStreams) {
  // 3 SMs over two tasks of width 2: stream 0 gets 2, stream 1 gets 1.
  FluidScheduler sched(3);
  sched.submit(task(0, 0, 600, 2, 7));
  sched.submit(task(1, 0, 600, 2, 8));
  (void)sched.run(SimTime{});
  ASSERT_EQ(sched.completed().size(), 2u);
  // Task 7 finishes first (drains 600 at rate 2 = 300 ns).
  EXPECT_EQ(sched.completed()[0].task.tag, 7u);
  EXPECT_EQ(sched.completed()[0].finish, SimTime::nanoseconds(300));
}

TEST(Fluid, RandomizedInvariants) {
  // For random task sets: every task completes exactly once, per-stream
  // FIFO order holds, finish >= start + latency + work/capacity, and the
  // schedule is work-conserving (makespan * capacity >= total work).
  std::uint64_t x = 0x2545F4914F6CDD1Dull;
  const auto rnd = [&x](std::int64_t lo, std::int64_t hi) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return lo + static_cast<std::int64_t>(x % static_cast<std::uint64_t>(
                                                  hi - lo + 1));
  };
  for (int trial = 0; trial < 20; ++trial) {
    const int capacity = static_cast<int>(rnd(1, 8));
    FluidScheduler sched(capacity);
    const int n = static_cast<int>(rnd(1, 30));
    std::int64_t total_work_ns = 0;
    for (int i = 0; i < n; ++i) {
      FluidTask t;
      t.stream = static_cast<int>(rnd(0, 5));
      t.latency = SimTime::nanoseconds(rnd(0, 50));
      t.work = SimTime::nanoseconds(rnd(0, 500));
      t.width_sms = static_cast<int>(rnd(1, 6));
      t.tag = static_cast<std::uint64_t>(i);
      total_work_ns += t.work.ps() / 1000;
      sched.submit(t);
    }
    const auto end = sched.run(SimTime{});
    const auto done = sched.completed();
    ASSERT_EQ(done.size(), static_cast<std::size_t>(n));

    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    std::vector<SimTime> last_finish(6);
    for (const auto& c : done) {
      ASSERT_FALSE(seen[c.task.tag]);
      seen[c.task.tag] = true;
      // Duration lower bound.
      EXPECT_GE(c.finish - c.start,
                c.task.latency + c.task.work / capacity);
      // Stream FIFO: starts after the previous task on the stream finished.
      const auto stream = static_cast<std::size_t>(c.task.stream);
      EXPECT_GE(c.start, last_finish[stream]);
      last_finish[stream] = std::max(last_finish[stream], c.finish);
      EXPECT_LE(c.finish, end);
    }
    // Work conservation: the device cannot do more than capacity SM-ns per
    // ns of wall time.
    EXPECT_GE(end.ns() * capacity + 1e-6,
              static_cast<double>(total_work_ns));
  }
}

}  // namespace
}  // namespace pcmax::gpusim
