// Multi-device sharded wavefront: results must be bit-identical to the
// single-device solver for every device count, topology, and placement; the
// modeled interconnect traffic must reconcile with the obs counters; and the
// per-device memory pre-flight must let larger tables through at higher
// device counts without k-halving.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/resilient.hpp"
#include "core/rounding.hpp"
#include "dp/solver.hpp"
#include "gpu/gpu_dp_solver.hpp"
#include "gpu/gpu_ptas.hpp"
#include "gpu/resilient_gpu.hpp"
#include "gpusim/topology.hpp"
#include "obs/session.hpp"

namespace pcmax::gpu {
namespace {

constexpr gpusim::TopologyKind kKinds[] = {gpusim::TopologyKind::kRing,
                                           gpusim::TopologyKind::kFullMesh};
constexpr placement::PlacementKind kPlacements[] = {
    placement::PlacementKind::kRoundRobin,
    placement::PlacementKind::kLevelContiguous,
    placement::PlacementKind::kMemoryBalanced};

dp::DpProblem ptas_like_problem() {
  return dp::DpProblem{{2, 3, 1, 2}, {4, 5, 7, 11}, 16};
}

// Size 8640 shape (Table II): enough blocks to spread over 8 devices.
dp::DpProblem table2_problem() {
  return dp::DpProblem{{4, 2, 5, 2, 3, 3, 1}, {4, 5, 6, 7, 8, 9, 10}, 16};
}

TEST(ShardedGpuDpSolver, BitIdenticalAcrossDevicesTopologiesAndPlacements) {
  for (const auto& p : {ptas_like_problem(), table2_problem()}) {
    const auto ref = dp::ReferenceSolver().solve(p);
    for (const int devices : {1, 2, 4}) {
      for (const auto kind : kKinds) {
        for (const auto strategy : kPlacements) {
          gpusim::Topology topology(devices, gpusim::DeviceSpec::k40(), kind);
          const GpuDpSolver solver(topology, 5, 4, StreamPolicy::kCyclic,
                                   strategy);
          const auto r = solver.solve(p);
          EXPECT_EQ(r.table, ref.table)
              << devices << " devices, "
              << gpusim::topology_kind_name(kind) << ", "
              << placement::placement_kind_name(strategy);
          EXPECT_EQ(r.opt, ref.opt);
        }
      }
    }
  }
}

TEST(ShardedGpuDpSolver, OneDeviceTopologyShortCircuits) {
  const auto p = table2_problem();
  gpusim::Device device(gpusim::DeviceSpec::k40());
  const GpuDpSolver direct(device, 5);
  (void)direct.solve(p);

  gpusim::Topology topology(1, gpusim::DeviceSpec::k40());
  const GpuDpSolver sharded(topology, 5);
  (void)sharded.solve(p);

  // Identical charged time — the one-device topology takes the exact
  // single-device path — and no interconnect activity at all.
  EXPECT_EQ(sharded.last_solve_time(), direct.last_solve_time());
  EXPECT_EQ(topology.transfer_stats().transfers, 0u);
  EXPECT_EQ(sharded.last_device_peaks().size(), 1u);
}

TEST(ShardedGpuDpSolver, MultiDeviceIssuesModeledTransfers) {
  gpusim::Topology topology(2, gpusim::DeviceSpec::k40());
  const GpuDpSolver solver(topology, 5);
  (void)solver.solve(table2_problem());
  EXPECT_GT(topology.transfer_stats().transfers, 0u);
  EXPECT_GT(topology.transfer_stats().bytes, 0u);
  EXPECT_GT(solver.last_solve_time(), util::SimTime{});
}

TEST(ShardedGpuDpSolver, TransferBytesReconcileWithObsCounters) {
  obs::ObsSession session;
  gpusim::Topology topology(4, gpusim::DeviceSpec::k40(),
                            gpusim::TopologyKind::kRing);
  const GpuDpSolver solver(topology, 5);
  (void)solver.solve(table2_problem());
  const gpusim::Topology::TransferStats& stats = topology.transfer_stats();
  ASSERT_GT(stats.transfers, 0u);
  EXPECT_EQ(session.metrics().counter("interconnect.bytes"), stats.bytes);
  EXPECT_EQ(session.metrics().counter("interconnect.transfers"),
            stats.transfers);
}

TEST(ShardedGpuDpSolver, TracksPerDevicePeaks) {
  gpusim::Topology topology(4, gpusim::DeviceSpec::k40());
  const GpuDpSolver solver(topology, 5);
  (void)solver.solve(table2_problem());
  const auto peaks = solver.last_device_peaks();
  ASSERT_EQ(peaks.size(), 4u);
  for (const std::uint64_t peak : peaks) EXPECT_GT(peak, 0u);
  EXPECT_EQ(solver.last_peak_memory(),
            *std::max_element(peaks.begin(), peaks.end()));
  // Everything is released after the solve, on every device.
  for (int d = 0; d < 4; ++d)
    EXPECT_EQ(topology.device(d).memory_in_use(), 0u);
}

TEST(ShardedGpuDpSolver, DeterministicTiming) {
  const auto run = [] {
    gpusim::Topology topology(4, gpusim::DeviceSpec::k40(),
                              gpusim::TopologyKind::kRing);
    const GpuDpSolver solver(topology, 5);
    (void)solver.solve(table2_problem());
    return solver.last_solve_time();
  };
  EXPECT_EQ(run(), run());
}

TEST(ShardedGpuDpSolver, MoreDevicesChargeLessTimeOnBigTables) {
  const auto time_at = [](int devices) {
    gpusim::Topology topology(devices, gpusim::DeviceSpec::k40());
    const GpuDpSolver solver(topology, 5);
    (void)solver.solve(table2_problem());
    return solver.last_solve_time();
  };
  EXPECT_LT(time_at(4), time_at(1));
}

TEST(ShardedGpuPtas, EndToEndMatchesSingleDevice) {
  Instance instance;
  instance.machines = 6;
  instance.times = {23, 19, 47, 31, 8, 5, 40, 27, 14, 33, 21, 9, 38, 16};

  gpusim::Device device(gpusim::DeviceSpec::k40());
  const GpuPtasResult single = solve_gpu_ptas(instance, device);

  for (const auto kind : kKinds) {
    gpusim::Topology topology(4, gpusim::DeviceSpec::k40(), kind);
    const GpuPtasResult sharded = solve_gpu_ptas(instance, topology);
    EXPECT_EQ(sharded.ptas.achieved_makespan, single.ptas.achieved_makespan);
    EXPECT_EQ(sharded.ptas.best_target, single.ptas.best_target);
    EXPECT_EQ(sharded.ptas.schedule.assignment,
              single.ptas.schedule.assignment);
  }
}

// The per-device pre-flight: a budget too small for the one-device estimate
// but large enough for a quarter share must force k-halving (degradation)
// on one device and pass untouched on four.
TEST(ResilientGpuTopology, FourDevicesAvoidKHalvingUnderTightBudget) {
  Instance instance;
  instance.machines = 8;
  for (int j = 0; j < 24; ++j)
    instance.times.push_back(40 + 13 * (j % 7) + j);

  ResilientOptions options;  // epsilon 0.3 -> k0 = 4
  const std::int64_t k0 = k_for_epsilon(options.epsilon);

  gpusim::Topology one(1, gpusim::DeviceSpec::k40());
  gpusim::Topology four(4, gpusim::DeviceSpec::k40());
  const SolveEngine e1 = make_gpu_engine(one);
  const SolveEngine e4 = make_gpu_engine(four);
  const std::uint64_t est1 = e1.mem_estimate(instance, k0);
  const std::uint64_t est4 = e4.mem_estimate(instance, k0);
  ASSERT_LT(est4, est1);
  options.mem_budget_bytes = (est1 + est4) / 2;

  const ResilientResult r4 =
      solve_resilient(instance, make_gpu_chain(four), options);
  ASSERT_TRUE(r4.ok()) << r4.status.message();
  EXPECT_EQ(r4.engine, "gpu-ptas");
  EXPECT_FALSE(r4.degraded);

  const ResilientResult r1 =
      solve_resilient(instance, make_gpu_chain(one), options);
  ASSERT_TRUE(r1.ok()) << r1.status.message();
  EXPECT_TRUE(r1.degraded);

  // Both runs still hand back schedules whose real makespan matches what
  // they claim.
  EXPECT_EQ(makespan(instance, r4.schedule), r4.achieved_makespan);
  EXPECT_EQ(makespan(instance, r1.schedule), r1.achieved_makespan);
}

}  // namespace
}  // namespace pcmax::gpu
