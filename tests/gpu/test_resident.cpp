#include "gpu/resident.hpp"

#include <gtest/gtest.h>

#include "dp/config.hpp"
#include "partition/blocked_layout.hpp"
#include "partition/divisor.hpp"
#include "workload/shapes.hpp"

namespace pcmax::gpu {
namespace {

dp::DpProblem ptas_like_problem() {
  return dp::DpProblem{{5, 5, 5, 5}, {4, 5, 6, 7}, 16};
}

TEST(Resident, ReachBoundsDependencies) {
  // Soundness: for every cell and every fitting configuration, the
  // dependency's block must lie within the per-dimension reach box.
  const auto p = ptas_like_problem();
  const auto analysis = analyze_block_residency(p, 3);
  const dp::MixedRadix radix = p.radix();
  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), 3));
  const dp::ConfigSet configs(p.counts, p.weights, p.capacity, radix);
  const auto& bs = layout.block().extents();

  std::vector<std::int64_t> v(radix.dims()), u(radix.dims());
  for (std::uint64_t id = 0; id < radix.size(); ++id) {
    radix.unflatten(id, v);
    for (std::size_t c = 0; c < configs.size(); ++c) {
      if (!configs.fits(c, v)) continue;
      const auto s = configs.config(c);
      for (std::size_t i = 0; i < v.size(); ++i) {
        u[i] = v[i] - s[i];
        const std::int64_t gv = v[i] / bs[i];
        const std::int64_t gu = u[i] / bs[i];
        ASSERT_LE(gv - gu, analysis.reach[i]);
        ASSERT_GE(gv - gu, 0);
      }
    }
  }
}

TEST(Resident, PeakNeverExceedsTable) {
  for (const std::size_t dims : {1u, 3u, 5u, 9u}) {
    const auto a = analyze_block_residency(ptas_like_problem(), dims);
    EXPECT_LE(a.peak_resident_cells, a.table_cells);
    EXPECT_GE(a.saving_factor(), 1.0);
  }
}

TEST(Resident, SavingsOnPaperShapes) {
  // On the large published shapes the working set is a strict subset of
  // the table — the effect the paper's future-work section predicts. The
  // saving is largest for coarse partitioning (big blocks step over the
  // dependency reach) and shrinks as blocks approach single cells, where
  // the reach box covers most of the grid.
  const auto p = workload::dp_problem_for_extents({5, 6, 3, 7, 6, 4, 8, 3});
  const auto coarse = analyze_block_residency(p, 3);
  EXPECT_LT(coarse.peak_resident_cells, coarse.table_cells);
  EXPECT_GT(coarse.saving_factor(), 1.5);
  const auto fine = analyze_block_residency(p, 7);
  EXPECT_LT(fine.peak_resident_cells, fine.table_cells);
  EXPECT_LT(fine.saving_factor(), coarse.saving_factor());
}

TEST(Resident, UnpartitionedTableHasNoSaving) {
  // With divisor 1 everywhere there is a single block: everything resident.
  const auto a = analyze_block_residency(ptas_like_problem(), 0);
  EXPECT_EQ(a.peak_resident_cells, a.table_cells);
  EXPECT_DOUBLE_EQ(a.saving_factor(), 1.0);
}

TEST(Resident, LevelsCoverWavefront) {
  const auto p = ptas_like_problem();
  const auto a = analyze_block_residency(p, 4);
  const dp::MixedRadix radix = p.radix();
  const partition::BlockedLayout layout(
      radix, partition::compute_divisor(radix.extents(), 4));
  EXPECT_EQ(a.resident_cells_per_level.size(),
            static_cast<std::size_t>(layout.block_levels()));
  for (const auto cells : a.resident_cells_per_level) {
    EXPECT_GT(cells, 0u);
    EXPECT_EQ(cells % layout.cells_per_block(), 0u);
  }
}

TEST(Resident, ReachShrinksWithBiggerBlocks) {
  // Fewer partitioned dimensions -> bigger blocks -> smaller block reach.
  const auto p = ptas_like_problem();
  const auto fine = analyze_block_residency(p, 4);
  const auto coarse = analyze_block_residency(p, 1);
  std::int64_t fine_total = 0, coarse_total = 0;
  for (const auto r : fine.reach) fine_total += r;
  for (const auto r : coarse.reach) coarse_total += r;
  EXPECT_GE(fine_total, coarse_total);
}

}  // namespace
}  // namespace pcmax::gpu
