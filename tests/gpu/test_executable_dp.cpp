#include "gpu/executable_dp.hpp"

#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "workload/shapes.hpp"

namespace pcmax::gpu {
namespace {

dp::DpProblem small_problem() {
  return dp::DpProblem{{2, 3, 1, 2}, {4, 5, 7, 11}, 16};
}

TEST(ExecutableDp, MatchesReferenceTable) {
  gpusim::Device device(gpusim::DeviceSpec::k40());
  const auto report = run_executable_dp(small_problem(), device, 3);
  const auto ref = dp::ReferenceSolver().solve(small_problem());
  EXPECT_EQ(report.result.table, ref.table);
  EXPECT_EQ(report.result.opt, ref.opt);
}

TEST(ExecutableDp, MatchesReferenceAcrossPartitionDims) {
  const auto p = small_problem();
  const auto ref = dp::ReferenceSolver().solve(p);
  for (const std::size_t dims : {1u, 2u, 4u}) {
    gpusim::Device device(gpusim::DeviceSpec::k40());
    EXPECT_EQ(run_executable_dp(p, device, dims).result.table, ref.table);
  }
}

TEST(ExecutableDp, MeasuredThreadCountsMatchStructure) {
  gpusim::Device device(gpusim::DeviceSpec::k40());
  const auto report = run_executable_dp(small_problem(), device, 3);
  const auto sigma = small_problem().table_size();
  // FindOPT runs one thread per cell (padded to warp grids).
  EXPECT_GE(report.measured_find_opt.threads, sigma);
  // FindValidSub enumerates all candidates: sum over cells of prod(v+1),
  // which strictly exceeds the table size.
  EXPECT_GT(report.measured_find_valid_sub.threads, sigma);
  // SetOPT runs one thread per dependency.
  dp::SolveOptions opt;
  opt.collect_deps = true;
  const auto ref = dp::ReferenceSolver().solve(small_problem(), opt);
  std::uint64_t total_deps = 0;
  for (const auto d : ref.deps) total_deps += d;
  EXPECT_GE(report.measured_set_opt.threads, total_deps);
}

TEST(ExecutableDp, AnalyticChargesTrackMeasuredTraffic) {
  // The analytic formulas are coarse by design; require agreement within
  // an order of magnitude on transactions for the dominant kernel (SetOPT)
  // and on total thread ops.
  gpusim::Device device(gpusim::DeviceSpec::k40());
  const auto p = workload::dp_problem_for_extents({4, 3, 4, 3});
  const auto report = run_executable_dp(p, device, 3);

  const auto ratio = [](double a, double b) {
    return a > b ? a / b : b / a;
  };
  ASSERT_GT(report.measured_set_opt.transactions, 0u);
  ASSERT_GT(report.analytic_set_opt.transactions, 0u);
  // Transactions carry the widest band: the analytic formula packs scanned
  // words densely into 128-byte segments, while the traced scan fragments
  // across segment boundaries (8-byte coordinate words, per-thread offsets),
  // costing about an order of magnitude more. The gap is one constant and
  // is absorbed by the calibrated scan_broadcast/launch parameters.
  EXPECT_LT(ratio(static_cast<double>(report.measured_set_opt.transactions),
                  static_cast<double>(report.analytic_set_opt.transactions)),
            20.0);
  ASSERT_GT(report.measured_set_opt.thread_ops, 0u);
  EXPECT_LT(ratio(static_cast<double>(report.measured_set_opt.thread_ops),
                  static_cast<double>(report.analytic_set_opt.thread_ops)),
            10.0);
  EXPECT_LT(
      ratio(static_cast<double>(report.measured_find_valid_sub.thread_ops),
            static_cast<double>(report.analytic_find_valid_sub.thread_ops)),
      10.0);
}

TEST(ExecutableDp, AdvancesDeviceClock) {
  gpusim::Device device(gpusim::DeviceSpec::k40());
  const auto report = run_executable_dp(small_problem(), device, 2);
  EXPECT_GT(report.device_time, util::SimTime{});
  EXPECT_GT(device.stats().kernels, 0u);
  EXPECT_GT(device.stats().transactions, 0u);
}

TEST(ExecutableDp, RejectsHugeTables) {
  dp::DpProblem huge;
  huge.counts.assign(6, 9);  // 10^6 cells
  huge.weights = {1, 2, 3, 4, 5, 6};
  huge.capacity = 21;
  gpusim::Device device(gpusim::DeviceSpec::k40());
  EXPECT_THROW((void)run_executable_dp(huge, device, 3),
               util::contract_violation);
}

TEST(ExecutableDp, PaperShapeTableI) {
  // Full Table I shape (3456 cells) through the executable kernels.
  gpusim::Device device(gpusim::DeviceSpec::k40());
  const auto p = workload::dp_problem_for_extents({6, 4, 6, 6, 4});
  const auto report = run_executable_dp(p, device, 5);
  EXPECT_EQ(report.result.table, dp::ReferenceSolver().solve(p).table);
}

}  // namespace
}  // namespace pcmax::gpu
